// Fig. 6 — the key stability observation: RSS differences between
// neighbouring locations and between adjacent links vary much less over
// time than the RSS readings themselves.
#include "bench_common.hpp"

#include "linalg/vec.hpp"
#include "sim/sampler.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 6: RSS differences are stable, RSS readings are not",
      "neighbouring-location and adjacent-link differences have far "
      "smaller variation than the raw readings");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const auto& dep = run.testbed.deployment();
  const std::size_t samples = 200;  // 100 s

  // Raw readings of link 2 with the target at (band 2, slot 5); the
  // difference traces use the neighbouring slot and the adjacent link at
  // the same relative slot.  All three readings are taken within the same
  // probing interval (tick/read), the way the paper's back-to-back
  // measurement sessions share the environmental conditions — that common
  // component is exactly what differencing cancels.
  sim::Sampler sampler(run.testbed, "fig06");
  const std::size_t cell = dep.cell_index(2, 5);
  const std::size_t cell_neighbor = dep.cell_index(2, 6);
  const std::size_t cell_adjacent = dep.cell_index(3, 5);

  std::vector<double> raw(samples), diff_loc(samples), diff_link(samples);
  for (std::size_t k = 0; k < samples; ++k) {
    sampler.tick();
    const double v = sampler.read(2, cell, 0);
    const double v_neighbor = sampler.read(2, cell_neighbor, 0);
    const double v_adjacent = sampler.read(3, cell_adjacent, 0);
    raw[k] = v;
    diff_loc[k] = v - v_neighbor;
    diff_link[k] = v - v_adjacent;
  }

  // Centre each series so the table compares *variation*, as Fig. 6 does.
  eval::Table table({"series", "stddev [dB]", "peak-to-peak [dB]"});
  const auto report = [&](const std::string& name, std::vector<double> t) {
    const double m = linalg::mean(t);
    double lo = t[0], hi = t[0];
    for (double v : t) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    (void)m;
    table.add_row(name, {linalg::stdev(t), hi - lo});
  };
  report("RSS readings", raw);
  report("difference, neighbouring locations", diff_loc);
  report("difference, adjacent links", diff_link);
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nNote: the difference traces subtract *concurrent* readings of two\n"
      "locations/links, cancelling the common fading component; the\n"
      "remaining variation is what Constraint 2 must tolerate.\n");
  std::printf("paper: differences stay within ~+-1 dB while raw RSS swings "
              "~5 dB\n");
  return 0;
}
