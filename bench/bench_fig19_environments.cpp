// Fig. 19 — reconstruction error across the three rooms: the hall (low
// multipath) reconstructs best, the library (high multipath) worst, and
// even after 3 months the library error stays comparable to the natural
// short-term RSS variation.
#include "bench_common.hpp"

#include "api/engine.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 19: reconstruction error in hall / office / library",
      "hall < office < library at every stamp; library after 3 months "
      "~ the RSS random variation (paper: 4.9 dB)");

  eval::Table table({"environment", "3 days", "5 days", "15 days",
                     "45 days", "3 months"});
  struct Room {
    std::string label;
    sim::Testbed testbed;
  };
  std::vector<Room> rooms;
  rooms.push_back({"hall (low multipath)", sim::make_hall_testbed()});
  rooms.push_back({"office (medium multipath)", sim::make_office_testbed()});
  rooms.push_back({"library (high multipath)", sim::make_library_testbed()});

  for (auto& room : rooms) {
    eval::EnvironmentRun run(std::move(room.testbed));
    api::Engine engine;
    eval::register_run(engine, run, "room");
    const auto cells = engine.reference_cells("room").value();
    std::vector<double> means;
    for (std::size_t day : sim::paper_update_stamps()) {
      const auto rep = engine.reconstruct(
          eval::collect_update_request(run, "room", cells, day));
      means.push_back(
          eval::score_reconstruction(run, rep.value().x_hat(), day).mean_db);
    }
    table.add_row(room.label, means);
  }
  std::printf("mean reconstruction error [dB]:\n%s", table.render().c_str());
  std::printf("paper: hall lowest (LoS benefit), library highest (metal "
              "shelves), all growing slowly with the interval\n");
  return 0;
}
