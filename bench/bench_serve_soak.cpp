// Fleet soak harness for the serving layer (driven by scripts/soak.sh).
//
// Replays a simulated device fleet against a multi-site Engine: reader
// threads stream drifting online RSS measurements (the sim drift model
// moves the field day by day) through localize — alternating between the
// direct lock-free path and the ServeFront coalescing front — while a
// background thread commits periodic updates with a tight history limit,
// so bundle publication, warm-start reuse and snapshot eviction all churn
// underneath the readers for the whole run.
//
// Exit code is the verdict: nonzero on any failed localize/update, or if
// the zero-locks read-path contract was violated.  Reports total QPS and
// p50/p99/p999 single-call latency on stdout.  Built plainly (no
// google-benchmark), so it runs unchanged under ASan and TSan — that is
// the CI serve-soak smoke job.
//
// Usage: bench_serve_soak [duration_s] [readers] [sites] [update_ms]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "serve/front.hpp"
#include "serve/shard.hpp"
#include "sim/sampler.hpp"

namespace {

using namespace iup;
using Clock = std::chrono::steady_clock;

struct SoakConfig {
  double duration_s = 10.0;
  std::size_t readers = 4;
  std::size_t sites = 2;
  std::size_t update_period_ms = 250;
};

struct ReaderStats {
  std::vector<double> latencies_us;
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  std::string first_error;
};

double percentile_us(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig config;
  if (argc > 1) config.duration_s = std::atof(argv[1]);
  if (argc > 2) config.readers = static_cast<std::size_t>(std::atol(argv[2]));
  if (argc > 3) config.sites = static_cast<std::size_t>(std::atol(argv[3]));
  if (argc > 4) {
    config.update_period_ms = static_cast<std::size_t>(std::atol(argv[4]));
  }
  if (config.duration_s <= 0 || config.readers == 0 || config.sites == 0) {
    std::fprintf(stderr,
                 "usage: %s [duration_s] [readers] [sites] [update_ms]\n",
                 argv[0]);
    return 2;
  }

  const eval::EnvironmentRun run(sim::make_office_testbed());
  // Tight history limit: the background updates evict snapshots while
  // readers hold published bundles — the evict-while-read soak.
  api::Engine engine(api::EngineConfig().history_limit(4));
  std::vector<std::string> sites;
  for (std::size_t s = 0; s < config.sites; ++s) {
    sites.push_back("site-" + std::to_string(s));
    const auto registered = eval::register_run(engine, run, sites.back());
    if (!registered.ok()) {
      std::fprintf(stderr, "register %s: %s\n", sites.back().c_str(),
                   registered.status().to_string().c_str());
      return 1;
    }
  }
  serve::ServeFrontOptions front_options;
  front_options.max_batch = 16;
  front_options.max_wait = std::chrono::microseconds(200);
  serve::ServeFront front(engine.shards(), front_options);

  // The fleet's drifting traces: each reader replays measurements whose
  // day index walks through the drift model's trajectory, so the online
  // vectors decorrelate from the day-0 database exactly the way a real
  // deployment's would between updates.
  const std::vector<std::size_t> trace_days = {0, 5, 15, 30, 45};
  const std::size_t cells = run.testbed.num_cells();

  const std::uint64_t violations_before = serve::read_path_lock_violations();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates_committed{0};
  std::atomic<std::uint64_t> update_errors{0};

  std::vector<ReaderStats> stats(config.readers);
  std::vector<std::thread> readers;
  readers.reserve(config.readers);
  const auto soak_start = Clock::now();
  for (std::size_t t = 0; t < config.readers; ++t) {
    readers.emplace_back([&, t] {
      ReaderStats& my = stats[t];
      sim::Sampler sampler(run.testbed, "soak-" + std::to_string(t));
      // Even readers take the direct lock-free path, odd readers go
      // through the coalescing front — both serve the same bundles.
      const bool via_front = (t % 2) == 1;
      std::size_t k = t;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string& site = sites[k % sites.size()];
        const std::size_t day = trace_days[(k / 3) % trace_days.size()];
        const auto query =
            sampler.online_measurement((k * 7) % cells, day, 1);
        const auto t0 = Clock::now();
        const auto result = via_front ? front.localize(site, query)
                                      : engine.localize(site, query);
        const auto t1 = Clock::now();
        ++my.queries;
        my.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if (!result.ok()) {
          ++my.errors;
          if (my.first_error.empty()) {
            my.first_error = result.status().to_string();
          }
        }
        ++k;
      }
    });
  }

  std::thread updater([&] {
    std::size_t u = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string& site = sites[u % sites.size()];
      const std::size_t day = trace_days[1 + u % (trace_days.size() - 1)];
      const auto cells_r = engine.reference_cells(site);
      if (!cells_r.ok()) {
        ++update_errors;
        break;
      }
      const auto result = engine.update(eval::collect_update_request(
          run, site, cells_r.value(), day, 5,
          "soak-update-" + std::to_string(u)));
      if (result.ok()) {
        ++updates_committed;
      } else {
        std::fprintf(stderr, "update %s day %zu: %s\n", site.c_str(), day,
                     result.status().to_string().c_str());
        ++update_errors;
      }
      ++u;
      const auto wake = Clock::now() +
                        std::chrono::milliseconds(config.update_period_ms);
      while (Clock::now() < wake && !stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  });

  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.duration_s));
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  updater.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - soak_start).count();

  std::vector<double> all_us;
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  for (const ReaderStats& s : stats) {
    queries += s.queries;
    errors += s.errors;
    all_us.insert(all_us.end(), s.latencies_us.begin(),
                  s.latencies_us.end());
  }
  std::sort(all_us.begin(), all_us.end());
  const std::uint64_t violations =
      serve::read_path_lock_violations() - violations_before;

  std::printf("serve soak: %.1f s, %zu readers, %zu sites, update every "
              "%zu ms\n",
              wall, config.readers, config.sites, config.update_period_ms);
  std::printf("  queries   %llu (%.0f qps)\n",
              static_cast<unsigned long long>(queries),
              wall > 0 ? static_cast<double>(queries) / wall : 0.0);
  std::printf("  latency   p50 %.1f us   p99 %.1f us   p999 %.1f us\n",
              percentile_us(all_us, 0.50), percentile_us(all_us, 0.99),
              percentile_us(all_us, 0.999));
  std::printf("  updates   %llu committed, %llu failed\n",
              static_cast<unsigned long long>(updates_committed.load()),
              static_cast<unsigned long long>(update_errors.load()));
  std::printf("  front     %llu requests in %llu batches (largest %llu)\n",
              static_cast<unsigned long long>(front.total_requests()),
              static_cast<unsigned long long>(front.total_batches()),
              static_cast<unsigned long long>(front.largest_batch()));
  std::printf("  read-path lock violations: %llu\n",
              static_cast<unsigned long long>(violations));

  if (errors > 0) {
    for (const ReaderStats& s : stats) {
      if (!s.first_error.empty()) {
        std::fprintf(stderr, "reader error: %s\n", s.first_error.c_str());
        break;
      }
    }
    return 1;
  }
  if (update_errors.load() > 0) return 1;
  if (violations != 0) return 1;
  if (queries == 0 || updates_committed.load() == 0) {
    std::fprintf(stderr, "soak did not exercise the pipeline (queries=%llu "
                 "updates=%llu)\n",
                 static_cast<unsigned long long>(queries),
                 static_cast<unsigned long long>(updates_committed.load()));
    return 1;
  }
  std::puts("serve soak OK");
  return 0;
}
