// Fleet soak harness for the serving layer (driven by scripts/soak.sh).
//
// Replays a simulated device fleet against a multi-site Engine: reader
// threads stream drifting online RSS measurements (the sim drift model
// moves the field day by day) through localize — alternating between the
// direct lock-free path and the ServeFront coalescing front — while a
// background thread commits periodic updates with a tight history limit,
// so bundle publication, warm-start reuse and snapshot eviction all churn
// underneath the readers for the whole run.
//
// Exit code is the verdict: nonzero on any failed localize/update, or if
// the zero-locks read-path contract was violated.  Reports total QPS and
// p50/p99/p999 single-call latency on stdout.  Built plainly (no
// google-benchmark), so it runs unchanged under ASan and TSan — that is
// the CI serve-soak smoke job.
//
// CHAOS MODE (5th arg "chaos", or CHAOS=1 through scripts/soak.sh): the
// background updater is replaced by the full supervised ingest pipeline —
// an ingest::UpdateSupervisor thread, a producer streaming drifting (and
// deterministically corrupted) observations, and a seeded FaultInjector
// conducting three phases: solver outages (sites retry, degrade, keep
// serving last-good), slow solves against a calibrated deadline (commits
// abort at before_publish), then all faults clear.  The verdict then also
// requires: zero read-path violations and reader errors THROUGH the fault
// window, at least one breaker trip, deadline trip and quarantined
// observation, and — the recovery contract — every watched site back to
// HEALTHY on a freshly committed version once faults cleared.
//
// RECOVER MODE (arg "recover", or RECOVER=1 through scripts/soak.sh,
// composable with chaos): a persist::DurabilityManager journals every
// commit of the soak to a scratch directory (WAL + periodic checkpoint
// rolls) while the fleet hammers the read path — the WAL fsyncs ride the
// committing threads, so the zero-violations verdict doubles as proof
// that durability adds nothing to the lock-free serve path.  After the
// run a SECOND engine recovers from the directory and must serve
// bit-identical localizations at the same version as the live engine.
//
// Usage: bench_serve_soak [duration_s] [readers] [sites] [update_ms]
//                         [chaos] [recover]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "ingest/faults.hpp"
#include "ingest/supervisor.hpp"
#include "persist/durability.hpp"
#include "serve/front.hpp"
#include "serve/shard.hpp"
#include "sim/sampler.hpp"

namespace {

using namespace iup;
using Clock = std::chrono::steady_clock;

struct SoakConfig {
  double duration_s = 10.0;
  std::size_t readers = 4;
  std::size_t sites = 2;
  std::size_t update_period_ms = 250;
  bool chaos = false;
  bool recover = false;
};

struct ReaderStats {
  std::vector<double> latencies_us;
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  std::string first_error;
};

double percentile_us(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig config;
  if (argc > 1) config.duration_s = std::atof(argv[1]);
  if (argc > 2) config.readers = static_cast<std::size_t>(std::atol(argv[2]));
  if (argc > 3) config.sites = static_cast<std::size_t>(std::atol(argv[3]));
  if (argc > 4) {
    config.update_period_ms = static_cast<std::size_t>(std::atol(argv[4]));
  }
  for (int a = 5; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "chaos" || flag == "1") config.chaos = true;
    if (flag == "recover") config.recover = true;
  }
  if (config.duration_s <= 0 || config.readers == 0 || config.sites == 0) {
    std::fprintf(stderr,
                 "usage: %s [duration_s] [readers] [sites] [update_ms] "
                 "[chaos] [recover]\n",
                 argv[0]);
    return 2;
  }

  const eval::EnvironmentRun run(sim::make_office_testbed());
  // The chaos run injects every fault through the engine's hook seams;
  // loose stagnation early-stop keeps each (frequently retried) solve
  // cheap enough that the sanitizer-slowed run still cycles the whole
  // fail -> degrade -> recover arc inside the soak window.
  ingest::FaultInjector faults(0xC7A05EEDULL);
  std::optional<persist::DurabilityManager> durability;
  std::string durable_dir;
  if (config.recover) {
    std::string tmpl = "/tmp/iup-soak-recover-XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp for the durability dir failed\n");
      return 1;
    }
    durable_dir = tmpl;
    durability.emplace(
        persist::DurabilityOptions{durable_dir, /*checkpoint_every=*/8,
                                   /*fsync=*/true});
  }
  api::EngineConfig engine_config;
  engine_config.history_limit(4);
  {
    api::UpdateHooks hooks;
    if (config.chaos) {
      core::RsvdOptions rsvd;
      rsvd.stagnation_tol = 1e-3;
      engine_config.rsvd(rsvd);
      hooks = faults.engine_hooks();
    }
    // Durability composes OUTSIDE the injector: its after_commit tap sees
    // only commits that actually published, faults and all.
    if (durability) hooks = durability->engine_hooks(std::move(hooks));
    engine_config.update_hooks(std::move(hooks));
  }
  // Tight history limit: the background updates evict snapshots while
  // readers hold published bundles — the evict-while-read soak.
  api::Engine engine(engine_config);
  if (durability) {
    const auto bound = durability->bind(&engine);
    if (!bound.ok()) {
      std::fprintf(stderr, "durability bind: %s\n",
                   bound.to_string().c_str());
      return 1;
    }
  }
  std::vector<std::string> sites;
  for (std::size_t s = 0; s < config.sites; ++s) {
    sites.push_back("site-" + std::to_string(s));
    const auto registered = eval::register_run(engine, run, sites.back());
    if (!registered.ok()) {
      std::fprintf(stderr, "register %s: %s\n", sites.back().c_str(),
                   registered.status().to_string().c_str());
      return 1;
    }
  }
  serve::ServeFrontOptions front_options;
  front_options.max_batch = 16;
  front_options.max_wait = std::chrono::microseconds(200);
  serve::ServeFront front(engine.shards(), front_options);

  // The fleet's drifting traces: each reader replays measurements whose
  // day index walks through the drift model's trajectory, so the online
  // vectors decorrelate from the day-0 database exactly the way a real
  // deployment's would between updates.
  const std::vector<std::size_t> trace_days = {0, 5, 15, 30, 45};
  const std::size_t cells = run.testbed.num_cells();

  const std::uint64_t violations_before = serve::read_path_lock_violations();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates_committed{0};
  std::atomic<std::uint64_t> update_errors{0};

  std::vector<ReaderStats> stats(config.readers);
  std::vector<std::thread> readers;
  readers.reserve(config.readers);
  const auto soak_start = Clock::now();
  for (std::size_t t = 0; t < config.readers; ++t) {
    readers.emplace_back([&, t] {
      ReaderStats& my = stats[t];
      sim::Sampler sampler(run.testbed, "soak-" + std::to_string(t));
      // Even readers take the direct lock-free path, odd readers go
      // through the coalescing front — both serve the same bundles.
      const bool via_front = (t % 2) == 1;
      std::size_t k = t;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string& site = sites[k % sites.size()];
        const std::size_t day = trace_days[(k / 3) % trace_days.size()];
        const auto query =
            sampler.online_measurement((k * 7) % cells, day, 1);
        const auto t0 = Clock::now();
        const auto result = via_front ? front.localize(site, query)
                                      : engine.localize(site, query);
        const auto t1 = Clock::now();
        ++my.queries;
        my.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if (!result.ok()) {
          ++my.errors;
          if (my.first_error.empty()) {
            my.first_error = result.status().to_string();
          }
        }
        ++k;
      }
    });
  }

  // --- update side: plain periodic updater by default, the supervised
  // ingest pipeline (observation stream + drift triggers + fault phases)
  // in chaos mode --------------------------------------------------------
  ingest::SupervisorOptions sup_options;
  sup_options.poll_period = std::chrono::milliseconds(10);
  sup_options.backoff_initial = std::chrono::milliseconds(20);
  sup_options.backoff_max = std::chrono::milliseconds(200);
  sup_options.breaker_threshold = 2;
  sup_options.breaker_cooldown = std::chrono::milliseconds(100);
  ingest::UpdateSupervisor supervisor(engine, sup_options);
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> producer_rejected{0};
  std::chrono::nanoseconds deadline{0};
  std::thread update_side;

  if (config.chaos) {
    for (const std::string& site : sites) {
      ingest::WatchOptions watch;
      watch.drift.alpha = 0.1;
      watch.drift.threshold_db = 2.0;
      watch.drift.min_observations = 32;
      const auto watched = supervisor.watch(site, watch);
      if (!watched.ok()) {
        std::fprintf(stderr, "watch %s: %s\n", site.c_str(),
                     watched.to_string().c_str());
        return 1;
      }
    }
    // Calibrate the cooperative deadline off one clean update (no faults
    // armed yet), so the sanitizer-slowed build gets a budget its honest
    // solves fit and only the injected slow solves blow.
    const auto cal_cells = engine.reference_cells(sites[0]);
    const auto cal_start = Clock::now();
    const auto calibration = engine.update(eval::collect_update_request(
        run, sites[0], cal_cells.value(), 5, 5, "chaos-calibration"));
    if (!calibration.ok()) {
      std::fprintf(stderr, "calibration update: %s\n",
                   calibration.status().to_string().c_str());
      return 1;
    }
    // Clamp the budget so one injected slow solve (delay + honest solve)
    // still finishes inside a fault phase even when a sanitizer stretches
    // the honest solve itself to seconds.
    const auto phase_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(config.duration_s / 3.0));
    deadline = std::clamp<std::chrono::nanoseconds>(
        4 * (Clock::now() - cal_start),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::milliseconds(100)),
        phase_ns / 2);
    faults.set_solve_delay(deadline);  // delay + any solve > deadline
    supervisor.start();

    update_side = std::thread([&] {
      sim::Sampler sampler(run.testbed, "chaos-producer");
      std::size_t p = 0;
      auto next_trigger = Clock::now();
      while (!stop.load(std::memory_order_acquire)) {
        const std::string& site = sites[p % sites.size()];
        const std::size_t day = trace_days[(p / 16) % trace_days.size()];
        const std::size_t cell = (p * 11) % cells;
        const auto sample = sampler.online_measurement(cell, day, 1);
        for (std::size_t link = 0; link < sample.size(); ++link) {
          ingest::Observation obs{link, cell, sample[link],
                                  static_cast<std::uint64_t>(day)};
          if (faults.fire(ingest::FaultKind::kCorruptObservation)) {
            faults.corrupt(obs);
          }
          ++produced;
          if (!supervisor.observe(site, obs).ok()) {
            ++producer_rejected;  // quarantined / back-pressured, by design
          }
        }
        if (Clock::now() >= next_trigger) {
          for (const std::string& s : sites) supervisor.trigger(s);
          next_trigger = Clock::now() +
                         std::chrono::milliseconds(config.update_period_ms);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++p;
      }
    });
  } else {
    update_side = std::thread([&] {
      std::size_t u = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string& site = sites[u % sites.size()];
        const std::size_t day = trace_days[1 + u % (trace_days.size() - 1)];
        const auto cells_r = engine.reference_cells(site);
        if (!cells_r.ok()) {
          ++update_errors;
          break;
        }
        const auto result = engine.update(eval::collect_update_request(
            run, site, cells_r.value(), day, 5,
            "soak-update-" + std::to_string(u)));
        if (result.ok()) {
          ++updates_committed;
        } else {
          std::fprintf(stderr, "update %s day %zu: %s\n", site.c_str(), day,
                       result.status().to_string().c_str());
          ++update_errors;
        }
        ++u;
        const auto wake = Clock::now() +
                          std::chrono::milliseconds(config.update_period_ms);
        while (Clock::now() < wake && !stop.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }

  if (config.chaos) {
    // Three fault phases, runtime-armed mid-soak: outages, slow solves
    // against the deadline, then clear skies for recovery.  Each phase
    // sleeps its nominal third of the duration and then extends — bounded
    // at 3x — until its signature event lands, so sanitizer slowdowns
    // stretch the conductor instead of racing it.
    const double phase_s = config.duration_s / 3.0;
    const auto fleet_total = [&](std::uint64_t api::SiteHealth::*member) {
      std::uint64_t total = 0;
      for (const std::string& site : sites) {
        const auto health = engine.site_health(site);
        if (health.ok()) total += health.value().*member;
      }
      return total;
    };
    const auto conduct = [&](auto done) {
      const auto t0 = Clock::now();
      std::this_thread::sleep_for(std::chrono::duration<double>(phase_s));
      while (!done() && Clock::now() - t0 <
                            std::chrono::duration<double>(3.0 * phase_s)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    };

    faults.arm(ingest::FaultKind::kSolverFailure);  // every solve fails
    faults.arm(ingest::FaultKind::kCorruptObservation, {0, 0, 3});
    conduct([&] {
      return fleet_total(&api::SiteHealth::breaker_trips) >= sites.size();
    });

    faults.clear(ingest::FaultKind::kSolverFailure);
    faults.set_deadline(deadline);
    faults.arm(ingest::FaultKind::kSlowSolve, {0, 0, 2});  // every other
    conduct([&] {
      return fleet_total(&api::SiteHealth::deadline_trips) >= 1;
    });

    faults.clear();  // faults clear: the recovery window
    faults.set_deadline(std::chrono::nanoseconds(0));
    conduct([&] {
      for (const std::string& site : sites) {
        const auto health = engine.site_health(site);
        if (!health.ok() ||
            health.value().state != serve::SiteState::kHealthy ||
            health.value().serving_version < 2) {
          return false;
        }
      }
      return true;
    });
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.duration_s));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  update_side.join();

  if (config.chaos) {
    // Bounded post-fault grace: the supervisor thread is still pumping,
    // so probe until every site closed its breaker and committed fresh —
    // the recovery contract this harness exists to enforce.
    const auto grace_end = Clock::now() + std::chrono::seconds(15);
    while (Clock::now() < grace_end) {
      bool all_recovered = true;
      for (const std::string& site : sites) {
        const auto health = engine.site_health(site);
        if (!health.ok() ||
            health.value().state != serve::SiteState::kHealthy ||
            health.value().serving_version < 2) {
          all_recovered = false;
          break;
        }
      }
      if (all_recovered) break;
      for (const std::string& site : sites) supervisor.trigger(site);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    supervisor.stop();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - soak_start).count();

  std::vector<double> all_us;
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  for (const ReaderStats& s : stats) {
    queries += s.queries;
    errors += s.errors;
    all_us.insert(all_us.end(), s.latencies_us.begin(),
                  s.latencies_us.end());
  }
  std::sort(all_us.begin(), all_us.end());
  const std::uint64_t violations =
      serve::read_path_lock_violations() - violations_before;

  std::printf("serve soak: %.1f s, %zu readers, %zu sites, update every "
              "%zu ms\n",
              wall, config.readers, config.sites, config.update_period_ms);
  std::printf("  queries   %llu (%.0f qps)\n",
              static_cast<unsigned long long>(queries),
              wall > 0 ? static_cast<double>(queries) / wall : 0.0);
  std::printf("  latency   p50 %.1f us   p99 %.1f us   p999 %.1f us\n",
              percentile_us(all_us, 0.50), percentile_us(all_us, 0.99),
              percentile_us(all_us, 0.999));
  std::printf("  updates   %llu committed, %llu failed\n",
              static_cast<unsigned long long>(updates_committed.load()),
              static_cast<unsigned long long>(update_errors.load()));
  std::printf("  front     %llu requests in %llu batches (largest %llu)\n",
              static_cast<unsigned long long>(front.total_requests()),
              static_cast<unsigned long long>(front.total_batches()),
              static_cast<unsigned long long>(front.largest_batch()));
  std::printf("  read-path lock violations: %llu\n",
              static_cast<unsigned long long>(violations));

  if (errors > 0) {
    for (const ReaderStats& s : stats) {
      if (!s.first_error.empty()) {
        std::fprintf(stderr, "reader error: %s\n", s.first_error.c_str());
        break;
      }
    }
    return 1;
  }
  // In chaos mode update failures are injected on purpose; the recovery
  // verdict below replaces the plain-mode updates_committed checks.
  if (!config.chaos && update_errors.load() > 0) return 1;
  if (violations != 0) return 1;
  if (queries == 0 || (!config.chaos && updates_committed.load() == 0)) {
    std::fprintf(stderr, "soak did not exercise the pipeline (queries=%llu "
                 "updates=%llu)\n",
                 static_cast<unsigned long long>(queries),
                 static_cast<unsigned long long>(updates_committed.load()));
    return 1;
  }

  if (durability) {
    // Recovery verdict: a second engine restored from the journal must
    // serve the exact state the live engine ended the soak on —
    // same latest version per site, byte-identical database, and
    // bit-identical localize answers for a probe panel.
    const auto durable_error = durability->last_error();
    if (!durable_error.ok()) {
      std::fprintf(stderr, "recover: durability degraded mid-soak: %s\n",
                   durable_error.to_string().c_str());
      return 1;
    }
    persist::DurabilityManager reader(
        persist::DurabilityOptions{durable_dir, 8, true});
    api::Engine recovered(
        api::EngineConfig().history_limit(4).update_hooks(
            reader.engine_hooks()));
    const auto recovered_status = reader.recover(&recovered);
    if (!recovered_status.ok()) {
      std::fprintf(stderr, "recover: %s\n",
                   recovered_status.to_string().c_str());
      return 1;
    }
    int recover_rc = 0;
    sim::Sampler probe_sampler(run.testbed, "recover-probe");
    for (const std::string& site : sites) {
      const auto live = engine.store().latest(site);
      const auto back = recovered.store().latest(site);
      if (!live.ok() || !back.ok() ||
          live.value()->version() != back.value()->version() ||
          !(live.value()->database() == back.value()->database())) {
        std::fprintf(stderr, "recover: %s state diverged (live v%llu, "
                     "recovered v%llu)\n", site.c_str(),
                     live.ok() ? static_cast<unsigned long long>(
                                     live.value()->version()) : 0ull,
                     back.ok() ? static_cast<unsigned long long>(
                                     back.value()->version()) : 0ull);
        recover_rc = 1;
        continue;
      }
      for (std::size_t p = 0; p < 8; ++p) {
        const auto query =
            probe_sampler.online_measurement((p * 13) % cells, 15, 1);
        const auto a = engine.localize(site, query);
        const auto b = recovered.localize(site, query);
        if (!a.ok() || !b.ok() || a.value().cell != b.value().cell ||
            a.value().score != b.value().score) {
          std::fprintf(stderr, "recover: %s probe %zu diverged\n",
                       site.c_str(), p);
          recover_rc = 1;
          break;
        }
      }
    }
    std::printf("  recover   %llu WAL appends, %llu checkpoints, recovered "
                "engine bit-identical: %s\n",
                static_cast<unsigned long long>(durability->wal_appends()),
                static_cast<unsigned long long>(
                    durability->checkpoints_written()),
                recover_rc == 0 ? "yes" : "NO");
    std::filesystem::remove_all(durable_dir);
    if (recover_rc != 0) return recover_rc;
  }

  if (config.chaos) {
    int chaos_rc = 0;
    std::uint64_t fleet_breaker = 0;
    std::uint64_t fleet_deadline = 0;
    std::uint64_t fleet_quarantined = 0;
    std::uint64_t fleet_drift = 0;
    std::uint64_t fleet_ok = 0;
    std::uint64_t fleet_failed = 0;
    std::printf("  chaos     %llu observations produced (%llu rejected at "
                "ingest)\n",
                static_cast<unsigned long long>(produced.load()),
                static_cast<unsigned long long>(producer_rejected.load()));
    for (const std::string& site : sites) {
      const auto health_r = engine.site_health(site);
      if (!health_r.ok()) {
        std::fprintf(stderr, "site_health %s: %s\n", site.c_str(),
                     health_r.status().to_string().c_str());
        chaos_rc = 1;
        continue;
      }
      const api::SiteHealth& h = health_r.value();
      const std::string state_name(serve::to_string(h.state));
      std::printf("  %-10s %s v%llu/%llu  ok %llu fail %llu  drift %llu  "
                  "deadline %llu  breaker %llu  recoveries %llu  "
                  "quarantined %llu\n",
                  site.c_str(), state_name.c_str(),
                  static_cast<unsigned long long>(h.serving_version),
                  static_cast<unsigned long long>(h.latest_version),
                  static_cast<unsigned long long>(h.updates_ok),
                  static_cast<unsigned long long>(h.updates_failed),
                  static_cast<unsigned long long>(h.drift_triggers),
                  static_cast<unsigned long long>(h.deadline_trips),
                  static_cast<unsigned long long>(h.breaker_trips),
                  static_cast<unsigned long long>(h.recoveries),
                  static_cast<unsigned long long>(h.quarantined_total()));
      fleet_breaker += h.breaker_trips;
      fleet_deadline += h.deadline_trips;
      fleet_quarantined += h.quarantined_total();
      fleet_drift += h.drift_triggers;
      fleet_ok += h.updates_ok;
      fleet_failed += h.updates_failed;
      if (h.state != serve::SiteState::kHealthy) {
        std::fprintf(stderr, "chaos: %s did not recover (state %s)\n",
                     site.c_str(), state_name.c_str());
        chaos_rc = 1;
      }
      if (h.serving_version < 2 || h.serving_version != h.latest_version) {
        std::fprintf(stderr,
                     "chaos: %s not serving a fresh committed version "
                     "(serving v%llu, latest v%llu)\n",
                     site.c_str(),
                     static_cast<unsigned long long>(h.serving_version),
                     static_cast<unsigned long long>(h.latest_version));
        chaos_rc = 1;
      }
      if (h.updates_ok == 0) {
        std::fprintf(stderr, "chaos: %s never committed an update\n",
                     site.c_str());
        chaos_rc = 1;
      }
      if (h.breaker_trips > 0 && h.recoveries == 0) {
        std::fprintf(stderr, "chaos: %s tripped its breaker but never "
                     "recovered\n", site.c_str());
        chaos_rc = 1;
      }
    }
    std::printf("  fleet     ok %llu fail %llu  drift %llu  deadline %llu  "
                "breaker %llu  quarantined %llu\n",
                static_cast<unsigned long long>(fleet_ok),
                static_cast<unsigned long long>(fleet_failed),
                static_cast<unsigned long long>(fleet_drift),
                static_cast<unsigned long long>(fleet_deadline),
                static_cast<unsigned long long>(fleet_breaker),
                static_cast<unsigned long long>(fleet_quarantined));
    if (fleet_breaker == 0) {
      std::fprintf(stderr, "chaos: no breaker ever tripped -- fault phase 1 "
                   "did not bite\n");
      chaos_rc = 1;
    }
    if (fleet_deadline == 0) {
      std::fprintf(stderr, "chaos: no deadline ever tripped -- fault phase 2 "
                   "did not bite\n");
      chaos_rc = 1;
    }
    if (fleet_quarantined == 0) {
      std::fprintf(stderr, "chaos: no observation was ever quarantined\n");
      chaos_rc = 1;
    }
    if (chaos_rc != 0) return chaos_rc;
    std::puts("chaos soak OK");
    return 0;
  }

  std::puts("serve soak OK");
  return 0;
}
