// Fig. 17 — Claim 3: Constraint 2 defeats short-term RSS variation.
// Reconstructing from 80% (or 50%) of measured entries *plus the
// constraint* localizes as well as (or better than) using 100% raw
// measurements, because the constraint filters measurement outliers.
#include "bench_common.hpp"

#include "baselines/traditional.hpp"
#include "core/self_augmented.hpp"
#include "rng/rng.hpp"

namespace {

using namespace iup;

// Survey all cells with the paper's 5-sample budget, keep `frac` of the
// affected entries (plus the whole no-decrease set), and reconstruct the
// rest with Constraint 2 only (no reference locations needed here:
// the observed set already covers every row densely).
linalg::Matrix partial_with_constraint(const eval::EnvironmentRun& run,
                                       const linalg::Matrix& survey,
                                       double frac, std::uint64_t seed) {
  const auto layout = core::band_layout_of(survey);
  linalg::Matrix b = run.b_mask;
  linalg::Matrix xb = survey.hadamard(b);
  rng::Rng rng(seed);
  for (std::size_t i = 0; i < survey.rows(); ++i) {
    for (std::size_t j = 0; j < survey.cols(); ++j) {
      if (b(i, j) == 0.0 && rng.uniform() < frac) {
        b(i, j) = 1.0;
        xb(i, j) = survey(i, j);
      }
    }
  }
  core::RsvdOptions opt;
  opt.use_constraint1 = false;
  opt.use_constraint2 = true;
  const core::SelfAugmentedRsvd solver(layout, opt);
  core::RsvdProblem p;
  p.x_b = xb;
  p.b = b;
  return solver.solve(p).x_hat;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 17: Constraint 2 vs short-term variation",
      "80% measured + Constraint 2 localizes even better than 100% "
      "measured; 50% + Constraint 2 matches 100%");

  eval::EnvironmentRun run(sim::make_office_testbed());
  eval::Table table({"database", "3 days", "5 days", "15 days", "45 days",
                     "3 months"});

  std::vector<double> m100, m80, m50;
  for (std::size_t day : sim::paper_update_stamps()) {
    sim::Sampler sampler(run.testbed, "fig17-" + std::to_string(day));
    const auto survey = baselines::traditional_full_resurvey(sampler, day, 5);
    const auto x80 = partial_with_constraint(run, survey, 0.8, 17 + day);
    const auto x50 = partial_with_constraint(run, survey, 0.5, 170 + day);

    m100.push_back(eval::mean_of(eval::localization_errors(
        run, survey, eval::LocalizerKind::kOmp, day, 5)));
    m80.push_back(eval::mean_of(eval::localization_errors(
        run, x80, eval::LocalizerKind::kOmp, day, 5)));
    m50.push_back(eval::mean_of(eval::localization_errors(
        run, x50, eval::LocalizerKind::kOmp, day, 5)));
  }
  table.add_row("80% data + Constraint 2", m80);
  table.add_row("50% data + Constraint 2", m50);
  table.add_row("measured 100% (ground truth survey)", m100);
  std::printf("mean localization error [m]:\n%s", table.render().c_str());
  std::printf("paper: the 80%%+C2 bar is lowest; 50%%+C2 roughly ties the "
              "fully measured database\n");
  return 0;
}
