// Figs. 8 + 9 — Observations 2 and 3: CDFs of the normalized
// location-continuity statistic NLC (Eq. 5) and the adjacent-link
// similarity statistic ALS (Eq. 6) over the six ground-truth matrices.
#include "bench_common.hpp"

#include "core/constraints.hpp"
#include "core/fingerprint.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Figs. 8/9: location continuity (NLC) and adjacent-link similarity "
      "(ALS)",
      "NLC < 0.2 for >90% of entries; ALS < 0.4 for >80% of entries, at "
      "every time stamp");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const auto layout = core::band_layout_of(run.ground_truth.at_day(0));
  const auto t = core::neighbor_matrix(layout.slots);

  eval::Table table({"stamp", "NLC median", "P(NLC<0.2)", "ALS median",
                     "P(ALS<0.4)"});
  for (std::size_t day : sim::paper_time_stamps()) {
    const auto xd = core::extract_largely_decrease(
        run.ground_truth.at_day(day), layout);
    const auto nlc = core::nlc_values(xd, t);
    const auto als = core::als_values(xd);
    const std::vector<double> nlc_v(nlc.data().begin(), nlc.data().end());
    const std::vector<double> als_v(als.data().begin(), als.data().end());
    table.add_row(
        {eval::stamp_label(day),
         eval::fmt(eval::median_of(nlc_v), 3),
         eval::fmt_percent(core::fraction_below(nlc, 0.2)),
         eval::fmt(eval::median_of(als_v), 3),
         eval::fmt_percent(core::fraction_below(als, 0.4))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: Fig. 8 shows P(NLC<0.2) > 90%%; Fig. 9 shows "
              "P(ALS<0.4) > 80%% at all six stamps\n");
  return 0;
}
