// Figs. 21 + 22 — localization accuracy.  Fig. 21: office CDF at 45 days
// for Groundtruth / iUpdater / OMP-without-reconstruction (paper medians
// 0.78 / 1.1 m, stale ~54% worse than iUpdater).  Fig. 22: mean errors in
// all three rooms at all five stamps (paper: 66.7/57.4/55.1% improvement
// over the stale database in hall/office/library).
//
// All reconstructions run through the iup::api::Engine facade (one site
// per room, non-committing reconstruct() per stamp).
#include "bench_common.hpp"

#include <cstdlib>

#include "api/engine.hpp"

namespace {

using namespace iup;

linalg::Matrix engine_reconstruction(api::Engine& engine,
                                     const eval::EnvironmentRun& run,
                                     const std::string& site,
                                     std::size_t day) {
  const auto cells = engine.reference_cells(site);
  if (!cells.ok()) {
    std::fprintf(stderr, "%s\n", cells.status().to_string().c_str());
    std::exit(1);
  }
  const auto request =
      eval::collect_update_request(run, site, cells.value(), day);
  const auto rep = engine.reconstruct(request);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().to_string().c_str());
    std::exit(1);
  }
  return rep.value().x_hat();
}

struct RoomSeries {
  std::vector<double> truth, updated, stale;
};

RoomSeries evaluate_room(api::Engine& engine, eval::EnvironmentRun& run,
                         const std::string& site) {
  const auto& x0 = run.ground_truth.at_day(0);
  RoomSeries out;
  for (std::size_t day : sim::paper_update_stamps()) {
    const auto x_hat = engine_reconstruction(engine, run, site, day);
    out.truth.push_back(eval::mean_of(eval::localization_errors(
        run, run.ground_truth.at_day(day), eval::LocalizerKind::kOmp, day,
        5)));
    out.updated.push_back(eval::mean_of(eval::localization_errors(
        run, x_hat, eval::LocalizerKind::kOmp, day, 5)));
    out.stale.push_back(eval::mean_of(eval::localization_errors(
        run, x0, eval::LocalizerKind::kOmp, day, 5)));
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Figs. 21/22: localization accuracy (Groundtruth / iUpdater / OMP "
      "w/o rec.)",
      "office @45d medians 0.78 m (GT) vs 1.1 m (iUpdater) vs ~54% worse "
      "stale; iUpdater improves 66.7/57.4/55.1% across rooms");

  // Fig. 21: office CDF at 45 days.
  {
    eval::EnvironmentRun run(sim::make_office_testbed());
    const auto& x0 = run.ground_truth.at_day(0);
    api::Engine engine;
    if (const auto reg = eval::register_run(engine, run, "office");
        !reg.ok()) {
      std::fprintf(stderr, "%s\n", reg.status().to_string().c_str());
      return 1;
    }
    const auto x_hat = engine_reconstruction(engine, run, "office", 45);
    std::printf("office, 45 days, localization error CDF [m]:\n");
    const auto gt = eval::localization_errors(
        run, run.ground_truth.at_day(45), eval::LocalizerKind::kOmp, 45, 5, 3);
    const auto up = eval::localization_errors(
        run, x_hat, eval::LocalizerKind::kOmp, 45, 5, 3);
    const auto st = eval::localization_errors(
        run, x0, eval::LocalizerKind::kOmp, 45, 5, 3);
    bench::print_cdf_row("Groundtruth", gt);
    bench::print_cdf_row("iUpdater", up);
    bench::print_cdf_row("OMP w/o rec.", st);
    std::printf("  stale-vs-iUpdater median gap: %s (paper: ~54%%)\n\n",
                eval::fmt_percent(1.0 - eval::median_of(
                                            std::vector<double>(up)) /
                                            std::max(eval::median_of(
                                                         std::vector<double>(
                                                             st)),
                                                     1e-9))
                    .c_str());
  }

  // Fig. 22: three rooms x five stamps x three databases.
  struct Room {
    std::string label;
    sim::Testbed testbed;
  };
  std::vector<Room> rooms;
  rooms.push_back({"hall (low multipath)", sim::make_hall_testbed()});
  rooms.push_back({"office (medium multipath)", sim::make_office_testbed()});
  rooms.push_back({"library (high multipath)", sim::make_library_testbed()});

  for (auto& room : rooms) {
    eval::EnvironmentRun run(std::move(room.testbed));
    api::Engine engine;
    if (const auto reg = eval::register_run(engine, run, room.label);
        !reg.ok()) {
      std::fprintf(stderr, "%s\n", reg.status().to_string().c_str());
      return 1;
    }
    const auto series = evaluate_room(engine, run, room.label);
    eval::Table table({"database (" + room.label + ")", "3 days", "5 days",
                       "15 days", "45 days", "3 months"});
    table.add_row("Groundtruth", series.truth);
    table.add_row("iUpdater", series.updated);
    table.add_row("OMP w/o rec.", series.stale);
    std::printf("%s", table.render().c_str());
    double improve = 0.0;
    for (std::size_t k = 0; k < series.updated.size(); ++k) {
      improve += 1.0 - series.updated[k] / std::max(series.stale[k], 1e-9);
    }
    std::printf("  mean improvement over stale: %s\n\n",
                eval::fmt_percent(improve /
                                  static_cast<double>(series.updated.size()))
                    .c_str());
  }
  std::printf("paper: iUpdater tracks the ground-truth database closely "
              "and improves 66.7%% (hall), 57.4%% (office), 55.1%% "
              "(library) over the stale database\n");
  return 0;
}
