// Shared helpers for the figure-reproduction bench binaries.
//
// Every binary regenerates the series of one paper figure (or a pair of
// closely related figures) and prints them as aligned tables, together
// with the headline numbers quoted in the paper's prose so the comparison
// in EXPERIMENTS.md is one-to-one.
#pragma once

#include <cstdio>
#include <string>

#include "eval/cdf.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"

namespace iup::bench {

inline void print_header(const std::string& figure,
                         const std::string& claim) {
  std::printf("%s", eval::banner(figure).c_str());
  std::printf("paper: %s\n\n", claim.c_str());
}

/// Print a CDF as a fixed set of quantile rows.
inline void print_cdf_row(const std::string& label,
                          const std::vector<double>& samples) {
  const eval::EmpiricalCdf cdf(samples);
  std::printf("  %-26s p25 %6.2f   median %6.2f   p75 %6.2f   p90 %6.2f   "
              "mean %6.2f\n",
              label.c_str(), cdf.percentile(0.25), cdf.median(),
              cdf.percentile(0.75), cdf.percentile(0.90), cdf.mean());
}

}  // namespace iup::bench
