// Figs. 23 + 24 — comparison with the state-of-the-art RASS system in the
// office.  Paper medians at 45 days: iUpdater 1.1 m, RASS with the
// reconstructed database 1.6 m, RASS with the stale database 3.3 m; the
// reconstruction alone improves RASS by ~50%.
#include "bench_common.hpp"

#include "api/engine.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Figs. 23/24: comparison with RASS (SVR-based state of the art)",
      "45-day medians 1.1 / 1.6 / 3.3 m for iUpdater / RASS w rec. / RASS "
      "w/o rec.; iUpdater best at every stamp");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const auto& x0 = run.ground_truth.at_day(0);
  api::Engine engine;
  eval::register_run(engine, run, "office");
  const auto cells = engine.reference_cells("office").value();

  // Fig. 23: CDF at 45 days.
  {
    const auto rep = engine.reconstruct(
        eval::collect_update_request(run, "office", cells, 45));
    const auto& x_hat = rep.value().x_hat();
    const auto iup_err = eval::localization_errors(
        run, x_hat, eval::LocalizerKind::kOmp, 45, 5, 3);
    const auto rass_rec = eval::localization_errors(
        run, x_hat, eval::LocalizerKind::kRass, 45, 5, 3);
    const auto rass_stale = eval::localization_errors(
        run, x0, eval::LocalizerKind::kRass, 45, 5, 3);
    std::printf("office, 45 days, localization error CDF [m]:\n");
    bench::print_cdf_row("iUpdater (OMP + rec.)", iup_err);
    bench::print_cdf_row("RASS w/ rec.", rass_rec);
    bench::print_cdf_row("RASS w/o rec.", rass_stale);
    const double rec_gain =
        1.0 - eval::median_of(std::vector<double>(rass_rec)) /
                  std::max(eval::median_of(std::vector<double>(rass_stale)),
                           1e-9);
    std::printf("  reconstruction alone improves RASS by %s "
                "(paper: ~50%%)\n\n",
                eval::fmt_percent(rec_gain).c_str());
  }

  // Fig. 24: mean errors at the five stamps.
  eval::Table table({"method", "3 days", "5 days", "15 days", "45 days",
                     "3 months"});
  std::vector<double> iup_m, rec_m, stale_m;
  for (std::size_t day : sim::paper_update_stamps()) {
    const auto rep = engine.reconstruct(
        eval::collect_update_request(run, "office", cells, day));
    const auto& x_hat = rep.value().x_hat();
    iup_m.push_back(eval::mean_of(eval::localization_errors(
        run, x_hat, eval::LocalizerKind::kOmp, day, 5)));
    rec_m.push_back(eval::mean_of(eval::localization_errors(
        run, x_hat, eval::LocalizerKind::kRass, day, 5)));
    stale_m.push_back(eval::mean_of(eval::localization_errors(
        run, x0, eval::LocalizerKind::kRass, day, 5)));
  }
  table.add_row("iUpdater", iup_m);
  table.add_row("RASS w/ rec.", rec_m);
  table.add_row("RASS w/o rec.", stale_m);
  std::printf("mean localization error [m]:\n%s", table.render().c_str());
  std::printf("paper: iUpdater < RASS w/ rec. < RASS w/o rec. at every "
              "stamp; the gain comes from both the reconstruction and the "
              "OMP matcher\n");
  return 0;
}
