// Figs. 14 + 15 — Claim 1: the MIC-selected reference locations are the
// minimum set for accurate reconstruction.  Removing one hurts badly,
// adding one more helps little, and random selections need many more.
#include "bench_common.hpp"

#include "api/engine.hpp"
#include "rng/rng.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Figs. 14/15: reconstruction error vs reference-location choice",
      "7 refs: median +~27%; 8+1 refs: ~same as 8; 11 random: +~47% "
      "(45 days); the MIC set of 8 is minimal");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const auto& x0 = run.ground_truth.at_day(0);

  api::Engine base;
  eval::register_run(base, run, "office");
  const auto mic_cells =
      to_raw_cells(base.reference_cells("office").value());

  rng::Rng rng(2024);
  std::vector<std::size_t> seven(mic_cells.begin(), mic_cells.end() - 1);
  std::vector<std::size_t> nine = mic_cells;
  nine.push_back((mic_cells.back() + 7) % x0.cols());
  std::vector<std::size_t> eleven = rng.sample_without_replacement(
      x0.cols(), 11);

  struct Config {
    std::string label;
    std::vector<std::size_t> cells;
  };
  const std::vector<Config> configs = {
      {"7 reference locations", seven},
      {"8 reference locations (iUpdater)", mic_cells},
      {"8 reference + 1 random", nine},
      {"11 random locations", eleven},
  };

  // Fig. 14: CDF at 45 days.
  std::printf("reconstruction-error CDF at 45 days [dB]:\n");
  std::vector<double> medians;
  for (const auto& cfg : configs) {
    api::Engine engine;
    eval::register_run(engine, run, "office");
    (void)engine.set_reference_cells("office", to_cell_ids(cfg.cells));
    const auto rep = engine.reconstruct(
        eval::collect_update_request(run, "office", cfg.cells, 45));
    const auto score =
        eval::score_reconstruction(run, rep.value().x_hat(), 45);
    bench::print_cdf_row(cfg.label, score.abs_errors_db);
    medians.push_back(score.median_db);
  }
  std::printf("\nmedian vs iUpdater's 8: 7 refs %+.1f%%, 8+1 %+.1f%%, "
              "11 random %+.1f%%\n",
              100.0 * (medians[0] / medians[1] - 1.0),
              100.0 * (medians[2] / medians[1] - 1.0),
              100.0 * (medians[3] / medians[1] - 1.0));
  std::printf("paper: 7 refs +~27%% median, 8+1 ~unchanged, 11 random "
              "+~47%%\n\n");

  // Fig. 15: mean errors across the five update stamps.
  eval::Table table({"config", "3 days", "5 days", "15 days", "45 days",
                     "3 months"});
  for (const auto& cfg : configs) {
    api::Engine engine;
    eval::register_run(engine, run, "office");
    (void)engine.set_reference_cells("office", to_cell_ids(cfg.cells));
    std::vector<double> means;
    for (std::size_t day : sim::paper_update_stamps()) {
      const auto rep = engine.reconstruct(
          eval::collect_update_request(run, "office", cfg.cells, day));
      means.push_back(
          eval::score_reconstruction(run, rep.value().x_hat(), day).mean_db);
    }
    table.add_row(cfg.label, means);
  }
  std::printf("mean reconstruction error [dB] at the five stamps:\n%s",
              table.render().c_str());
  std::printf("paper (Fig. 15): the 8-reference iUpdater column stays "
              "lowest at every stamp\n");
  return 0;
}
