// Fig. 16 — Claim 2: adding Constraint 1 (the MIC correlation) and then
// Constraint 2 (continuity + similarity) to the basic RSVD reduces the
// reconstruction error step by step.
//
// Extension ablations beyond the paper (DESIGN.md Sec. 7): the published
// per-column curvature ("literal") vs. our Gauss-Seidel repair, and the
// G-matrix midpoint redefinition on/off.
#include "bench_common.hpp"

#include "core/constraints.hpp"
#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "core/self_augmented.hpp"

namespace {

using namespace iup;

struct Setup {
  const eval::EnvironmentRun& run;
  core::MicResult mic;
  linalg::Matrix z;
  core::BandLayout layout;
};

double reconstruct_error(const Setup& s, std::size_t day,
                         const core::RsvdOptions& opt) {
  const auto inputs =
      eval::collect_update_inputs(s.run, s.mic.reference_cells, day);
  const core::SelfAugmentedRsvd solver(s.layout, opt);
  core::RsvdProblem p;
  p.x_b = inputs.x_b;
  p.b = s.run.b_mask;
  if (opt.use_constraint1) p.p = inputs.x_r * s.z;
  const auto result = solver.solve(p);
  return eval::score_reconstruction(s.run, result.x_hat, day).mean_db;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 16: constraint ablation (basic RSVD / +C1 / +C1+C2)",
      "errors drop significantly with Constraint 1 and further with "
      "Constraint 2, at all five stamps");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const auto& x0 = run.ground_truth.at_day(0);
  Setup s{run, core::extract_mic(x0), {}, core::band_layout_of(x0)};
  s.z = core::solve_lrr(s.mic.x_mic, x0).z;

  core::RsvdOptions rsvd_only;
  rsvd_only.use_constraint1 = false;
  rsvd_only.use_constraint2 = false;
  core::RsvdOptions with_c1 = rsvd_only;
  with_c1.use_constraint1 = true;
  core::RsvdOptions with_c1c2 = with_c1;
  with_c1c2.use_constraint2 = true;

  eval::Table table({"method", "3 days", "5 days", "15 days", "45 days",
                     "3 months"});
  const auto sweep = [&](const std::string& label,
                         const core::RsvdOptions& opt) {
    std::vector<double> means;
    for (std::size_t day : sim::paper_update_stamps()) {
      means.push_back(reconstruct_error(s, day, opt));
    }
    table.add_row(label, means);
  };
  sweep("RSVD", rsvd_only);
  sweep("RSVD + Constraint 1", with_c1);
  sweep("RSVD + Constraint 1 + Constraint 2", with_c1c2);
  std::printf("mean reconstruction error [dB]:\n%s", table.render().c_str());
  std::printf("paper: the three curves are strictly ordered with "
              "+C1+C2 lowest at every stamp\n\n");

  // --- extension ablations ---------------------------------------------
  eval::Table ext({"variant", "45 days"});
  core::RsvdOptions literal = with_c1c2;
  literal.c2_mode = core::Constraint2Mode::kPaperLiteral;
  literal.w_continuity = 0.01;  // the literal curvature is pure shrinkage
  literal.w_similarity = 0.01;  // and only tolerates tiny weights
  ext.add_row("C2 Gauss-Seidel (default)",
              {reconstruct_error(s, 45, with_c1c2)});
  ext.add_row("C2 paper-literal (w=0.01)",
              {reconstruct_error(s, 45, literal)});
  core::RsvdOptions autos = with_c1c2;
  autos.auto_scale = true;
  ext.add_row("auto-scaled weights (paper Sec. IV-E)",
              {reconstruct_error(s, 45, autos)});
  std::printf("extension ablation (not in the paper):\n%s",
              ext.render().c_str());
  return 0;
}
