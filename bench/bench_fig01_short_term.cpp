// Fig. 1 — short-term RSS variation: readings at a fixed location wander
// by ~5 dB within 100 seconds (0.5 s probing interval).
#include "bench_common.hpp"

#include "linalg/vec.hpp"
#include "sim/sampler.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 1: short-term RSS variation",
      "RSS measured at the same location within 100 s varies by ~5 dB");

  eval::EnvironmentRun run(sim::make_office_testbed());
  sim::Sampler sampler(run.testbed, "fig01");
  const std::size_t samples = 200;  // 100 s at the 0.5 s beacon interval
  const auto trace = sampler.trace(0, std::size_t{5}, 0, samples);

  // Downsampled series (every 5 s) — the plotted curve.
  std::printf("time [s] : RSS [dBm]\n");
  for (std::size_t k = 0; k < samples; k += 10) {
    std::printf("  %5.1f  :  %7.2f\n", 0.5 * static_cast<double>(k),
                trace[k]);
  }

  double lo = trace[0], hi = trace[0];
  for (double v : trace) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("\nmeasured: swing %.2f dB, stddev %.2f dB over %zu samples\n",
              hi - lo, linalg::stdev(trace), samples);
  std::printf("paper   : variation of ~5 dB (Fig. 1)\n");
  return 0;
}
