// Fig. 5 — Observation 1: the fingerprint matrix is approximately low
// rank.  The normalized singular values of the six ground-truth matrices
// concentrate the energy in the first value, but the remaining M-1 values
// keep residual energy, so r = M = 8 (not r << M).
#include "bench_common.hpp"

#include "linalg/svd.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 5: normalized singular values of the six fingerprint matrices",
      "largest singular value dominates at every stamp; rank r = M = 8 "
      "(approximately low rank, not exactly low rank)");

  eval::EnvironmentRun run(sim::make_office_testbed());
  std::vector<std::string> headers = {"stamp"};
  for (int k = 1; k <= 8; ++k) headers.push_back("s" + std::to_string(k));
  headers.push_back("s1 energy");
  eval::Table table(headers);

  for (std::size_t day : sim::paper_time_stamps()) {
    const auto s = linalg::singular_values(run.ground_truth.at_day(day));
    double total = 0.0;
    for (double v : s) total += v;
    std::vector<std::string> row = {eval::stamp_label(day)};
    for (double v : s) row.push_back(eval::fmt(v / s.front(), 4));
    row.push_back(eval::fmt_percent(s.front() / total));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  const auto& x0 = run.ground_truth.at_day(0);
  std::printf("\nnumerical rank at every stamp: ");
  for (std::size_t day : sim::paper_time_stamps()) {
    std::printf("%zu ", linalg::numerical_rank(run.ground_truth.at_day(day),
                                               1e-6));
  }
  std::printf(" (matrix %zux%zu, M = %zu)\n", x0.rows(), x0.cols(),
              x0.rows());
  std::printf("paper: energy concentrated in the first singular value, "
              "r = M = 8 at all six stamps\n");
  return 0;
}
