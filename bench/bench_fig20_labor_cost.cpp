// Fig. 20 — human labor cost of a fingerprint update vs monitored-area
// scale, plus the headline savings from Sec. VI-C: the office update takes
// 46.9 min traditionally (50 samples/location) vs 55 s for iUpdater, a
// 97.9% saving (92.1% against a 5-sample traditional survey).
#include "bench_common.hpp"

#include "eval/labor.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 20: fingerprint update time vs area scale",
      "iUpdater's cost grows ~linearly in the edge length while a full "
      "re-survey grows quadratically; ~80 h vs minutes at 10x");

  // Headline numbers (office: 94 effective cells, 8 reference locations).
  const double t_trad50 = baselines::traditional_update_time_s(94, 50);
  const double t_trad5 = baselines::traditional_update_time_s(94, 5);
  const double t_iup = baselines::iupdater_update_time_s(8, 5);
  std::printf("office update cost:\n");
  std::printf("  traditional, 50 samples/loc : %7.1f s (%.1f min)\n",
              t_trad50, t_trad50 / 60.0);
  std::printf("  traditional,  5 samples/loc : %7.1f s\n", t_trad5);
  std::printf("  iUpdater, 8 refs x 5 samples: %7.1f s\n", t_iup);
  std::printf("  saving vs 50-sample survey  : %s (paper: 97.9%%)\n",
              eval::fmt_percent(1.0 - t_iup / t_trad50).c_str());
  std::printf("  saving vs 5-sample survey   : %s (paper: 92.1%%)\n\n",
              eval::fmt_percent(1.0 - t_iup / t_trad5).c_str());

  // The Fig. 20 sweep.
  std::vector<double> scales;
  for (int k = 1; k <= 10; ++k) scales.push_back(static_cast<double>(k));
  const auto sweep = eval::labor_cost_sweep(94, 8, scales);
  eval::Table table({"edge scale", "cells", "refs", "traditional [h]",
                     "iUpdater [h]", "saving"});
  for (const auto& p : sweep) {
    table.add_row({eval::fmt(p.scale, 0) + "x", std::to_string(p.cells),
                   std::to_string(p.references),
                   eval::fmt(p.traditional_hours, 2),
                   eval::fmt(p.iupdater_hours, 3),
                   eval::fmt_percent(p.saving_fraction)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: existing systems reach ~80 h at 10x the edge length "
              "while iUpdater stays near zero\n");
  return 0;
}
