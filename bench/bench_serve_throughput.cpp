// Serving-path micro benches (google-benchmark): concurrent localize
// throughput through the lock-free shard read path, direct and through
// the ServeFront coalescing front.
//
// BM_ServeThroughput/R drives R reader threads of single-measurement
// engine.localize() calls and reports wall-clock per iteration (manual
// time: the threads' overlapped window, not CPU time) plus aggregate
// counters: qps, and p50_us / p99_us single-call latency percentiles.
// The multi-reader rows measure the host's core count as much as the
// code, so scripts/bench_check.py skip-lists them; the /1 rows and their
// latency counters are gated.
//
// scripts/bench.sh runs this binary alongside bench_micro_solvers and
// merges both into BENCH_micro.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "serve/front.hpp"
#include "sim/sampler.hpp"

namespace {

using namespace iup;

const eval::EnvironmentRun& office() {
  static eval::EnvironmentRun run(sim::make_office_testbed());
  return run;
}

std::vector<std::vector<double>> serve_queries(std::size_t count) {
  sim::Sampler sampler(office().testbed, "bench-serve");
  std::vector<std::vector<double>> queries;
  queries.reserve(count);
  const std::size_t cells = office().testbed.num_cells();
  for (std::size_t k = 0; k < count; ++k) {
    queries.push_back(sampler.online_measurement((k * 7) % cells, 0, 3));
  }
  return queries;
}

double percentile_us(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

/// Shared harness: R readers each issue `per_reader` calls through
/// `call(query)` per iteration; wall time is the overlapped window.
template <typename Call>
void serve_throughput_loop(benchmark::State& state, std::size_t readers,
                           const std::vector<std::vector<double>>& queries,
                           Call&& call) {
  constexpr std::size_t kPerReader = 32;
  std::vector<double> latencies_us;
  double total_seconds = 0.0;
  std::uint64_t total_queries = 0;

  for (auto _ : state) {
    std::vector<std::vector<double>> lat(readers);
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (std::size_t t = 0; t < readers; ++t) {
      threads.emplace_back([&, t] {
        lat[t].reserve(kPerReader);
        ready.fetch_add(1, std::memory_order_release);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t k = 0; k < kPerReader; ++k) {
          const auto& query = queries[(t * 5 + k) % queries.size()];
          const auto t0 = std::chrono::steady_clock::now();
          benchmark::DoNotOptimize(call(query));
          const auto t1 = std::chrono::steady_clock::now();
          lat[t].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    while (ready.load(std::memory_order_acquire) < readers) {
      std::this_thread::yield();
    }
    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& thread : threads) thread.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    state.SetIterationTime(wall);
    total_seconds += wall;
    total_queries += readers * kPerReader;
    for (const auto& per_thread : lat) {
      latencies_us.insert(latencies_us.end(), per_thread.begin(),
                          per_thread.end());
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["qps"] =
      total_seconds > 0.0
          ? static_cast<double>(total_queries) / total_seconds
          : 0.0;
  state.counters["p50_us"] = percentile_us(latencies_us, 0.50);
  state.counters["p99_us"] = percentile_us(latencies_us, 0.99);
}

void BM_ServeThroughput(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine;
  const auto registered = eval::register_run(engine, run, "office");
  if (!registered.ok()) {
    state.SkipWithError(registered.status().to_string().c_str());
    return;
  }
  const auto queries = serve_queries(16);
  serve_throughput_loop(
      state, static_cast<std::size_t>(state.range(0)), queries,
      [&](const std::vector<double>& query) {
        return engine.localize("office", query);
      });
}
BENCHMARK(BM_ServeThroughput)->Arg(1)->Arg(4)->UseManualTime();

void BM_ServeFrontThroughput(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine;
  const auto registered = eval::register_run(engine, run, "office");
  if (!registered.ok()) {
    state.SkipWithError(registered.status().to_string().c_str());
    return;
  }
  serve::ServeFrontOptions options;
  options.max_batch = 16;
  options.max_wait = std::chrono::microseconds(100);
  serve::ServeFront front(engine.shards(), options);
  const auto queries = serve_queries(16);
  serve_throughput_loop(
      state, static_cast<std::size_t>(state.range(0)), queries,
      [&](const std::vector<double>& query) {
        return front.localize("office", query);
      });
  state.counters["batch_avg"] =
      front.total_batches() > 0
          ? static_cast<double>(front.total_requests()) /
                static_cast<double>(front.total_batches())
          : 0.0;
}
BENCHMARK(BM_ServeFrontThroughput)->Arg(1)->Arg(4)->UseManualTime();

}  // namespace
