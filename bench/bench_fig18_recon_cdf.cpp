// Fig. 18 — reconstruction-error CDFs at the five update stamps (office).
// Paper medians: 2.7 / 2.5 / 3.3 / 3.6 / 4.1 dB after 3/5/15/45 days and
// 3 months.  Runs through the iup::api::Engine facade: one registered
// site, non-committing reconstruct() per stamp (every stamp is evaluated
// against the original day-0 correlation, as in the paper).
#include "bench_common.hpp"

#include "api/engine.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 18: reconstruction-error CDF at five time stamps (office)",
      "median errors 2.7 / 2.5 / 3.3 / 3.6 / 4.1 dB; errors grow with the "
      "update interval");

  eval::EnvironmentRun run(sim::make_office_testbed());
  api::Engine engine;
  if (const auto reg = eval::register_run(engine, run, "office"); !reg.ok()) {
    std::fprintf(stderr, "%s\n", reg.status().to_string().c_str());
    return 1;
  }
  const auto cells = engine.reference_cells("office").value();

  eval::Table table({"stamp", "median [dB]", "mean [dB]", "p90 [dB]"});
  for (std::size_t day : sim::paper_update_stamps()) {
    const auto request =
        eval::collect_update_request(run, "office", cells, day);
    const auto rep = engine.reconstruct(request);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s\n", rep.status().to_string().c_str());
      return 1;
    }
    const auto score = eval::score_reconstruction(run, rep.value().x_hat(),
                                                  day);
    bench::print_cdf_row(eval::stamp_label(day), score.abs_errors_db);
    const eval::EmpiricalCdf cdf(score.abs_errors_db);
    table.add_row(eval::stamp_label(day),
                  {cdf.median(), cdf.mean(), cdf.percentile(0.9)});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("paper medians: 2.7 (3d), 2.5 (5d), 3.3 (15d), 3.6 (45d), "
              "4.1 dB (3mo) -- same growth shape expected, absolute values "
              "depend on the radio substrate\n");
  return 0;
}
