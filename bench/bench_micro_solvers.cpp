// Micro-benchmarks (google-benchmark) for the numerical kernels: SVD,
// LRR, one Algorithm-1 sweep, the full update, OMP localization and SVR
// training.  These are runtime numbers, not paper figures; the paper's
// desktop (i7-4790) runs the whole pipeline interactively and so must we.
#include <benchmark/benchmark.h>

#include "baselines/rass.hpp"
#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "core/updater.hpp"
#include "eval/experiment.hpp"
#include "linalg/svd.hpp"
#include "loc/omp.hpp"

namespace {

using namespace iup;

const eval::EnvironmentRun& office() {
  static eval::EnvironmentRun run(sim::make_office_testbed());
  return run;
}

void BM_SvdOfficeMatrix(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(x));
  }
}
BENCHMARK(BM_SvdOfficeMatrix);

void BM_MicExtraction(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_mic(x));
  }
}
BENCHMARK(BM_MicExtraction);

void BM_LrrCorrelation(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  const auto mic = core::extract_mic(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lrr(mic.x_mic, x));
  }
}
BENCHMARK(BM_LrrCorrelation);

void BM_FullUpdate(benchmark::State& state) {
  const auto& run = office();
  const core::IUpdater updater(run.ground_truth.at_day(0), run.b_mask);
  const auto inputs =
      eval::collect_update_inputs(run, updater.reference_cells(), 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(updater.reconstruct(inputs));
  }
}
BENCHMARK(BM_FullUpdate);

void BM_OmpLocalize(benchmark::State& state) {
  const auto& run = office();
  const auto& x = run.ground_truth.at_day(0);
  const loc::OmpLocalizer omp(x, {});
  const auto y = x.col(37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(omp.localize(y));
  }
}
BENCHMARK(BM_OmpLocalize);

void BM_RassTraining(benchmark::State& state) {
  const auto& run = office();
  const auto& x = run.ground_truth.at_day(0);
  for (auto _ : state) {
    baselines::Rass rass(x, run.testbed.deployment());
    benchmark::DoNotOptimize(rass);
  }
}
BENCHMARK(BM_RassTraining);

void BM_GroundTruthSurvey(benchmark::State& state) {
  const auto& run = office();
  sim::Sampler sampler(run.testbed, "bench-survey");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.survey_full(45, 5));
  }
}
BENCHMARK(BM_GroundTruthSurvey);

}  // namespace

BENCHMARK_MAIN();
