// Micro-benchmarks (google-benchmark) for the numerical kernels: SVD,
// LRR, the Algorithm-1 sweep at several thread counts, the full update,
// the batched engine entry points, OMP localization and SVR training.
// These are runtime numbers, not paper figures; the paper's desktop
// (i7-4790) runs the whole pipeline interactively and so must we.
//
// scripts/bench.sh runs this binary and records the JSON trajectory in
// BENCH_micro.json (previous run kept as "before").
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>

#include "api/engine.hpp"
#include "baselines/rass.hpp"
#include "core/lrr.hpp"
#include "linalg/cholesky.hpp"
#include "core/mic.hpp"
#include "core/updater.hpp"
#include "eval/experiment.hpp"
#include "ingest/buffer.hpp"
#include "ingest/drift.hpp"
#include "linalg/kernels/gemm.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/svd.hpp"
#include "loc/omp.hpp"
#include "persist/checkpoint.hpp"
#include "persist/durability.hpp"
#include "persist/wal.hpp"
#include "rng/rng.hpp"

namespace {

using namespace iup;

const eval::EnvironmentRun& office() {
  static eval::EnvironmentRun run(sim::make_office_testbed());
  return run;
}

void BM_SvdOfficeMatrix(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(x));
  }
}
BENCHMARK(BM_SvdOfficeMatrix);

void BM_MicExtraction(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_mic(x));
  }
}
BENCHMARK(BM_MicExtraction);

void BM_LrrCorrelation(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  const auto mic = core::extract_mic(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lrr(mic.x_mic, x));
  }
}
BENCHMARK(BM_LrrCorrelation);

void BM_FullUpdate(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine;
  eval::register_run(engine, run, "office");
  const auto cells = engine.reference_cells("office").value();
  const auto request = eval::collect_update_request(run, "office", cells, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.reconstruct(request));
  }
}
BENCHMARK(BM_FullUpdate);

// The Algorithm-1 sweep (reconstruction only) at explicit thread counts;
// Arg(1) is the single-thread allocation-free baseline the acceptance
// criteria track, higher args exercise the iup::parallel fan-out.
void BM_Algorithm1Sweep(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine(api::EngineConfig().threads(
      static_cast<std::size_t>(state.range(0))));
  eval::register_run(engine, run, "office");
  const auto cells = engine.reference_cells("office").value();
  const auto request = eval::collect_update_request(run, "office", cells, 45);
  api::Result<api::UpdateResult> last = api::Status::internal("never ran");
  for (auto _ : state) {
    last = engine.reconstruct(request);
    benchmark::DoNotOptimize(last);
  }
  // Mask-group coverage of the R-update (how many multi-RHS groups the
  // sweep factors once, and how many grid columns they cover).
  state.counters["mask_groups"] =
      static_cast<double>(last.value().solver.mask_groups);
  state.counters["grouped_columns"] =
      static_cast<double>(last.value().solver.grouped_columns);
}
BENCHMARK(BM_Algorithm1Sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The X_hat = L R^T kernel (objective evaluation) on factor shapes from
// the office grid up to a warehouse-scale grid.
void BM_XhatProduct(benchmark::State& state) {
  rng::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix l(16, 16);
  linalg::Matrix r(n, 16);
  for (double& v : l.data()) v = rng.normal();
  for (double& v : r.data()) v = rng.normal();
  linalg::Matrix out;
  for (auto _ : state) {
    linalg::multiply_transposed_into(l, r, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_XhatProduct)->Arg(96)->Arg(4096);

// Batched engine updates across independent sites.
void BM_UpdateBatchFourSites(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine(api::EngineConfig()
                         .threads(static_cast<std::size_t>(state.range(0)))
                         .history_limit(2));
  std::vector<api::UpdateRequest> requests;
  for (const char* site : {"a", "b", "c", "d"}) {
    eval::register_run(engine, run, site);
    const auto cells = engine.reference_cells(site).value();
    requests.push_back(eval::collect_update_request(run, site, cells, 45));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.update_batch(requests));
  }
}
BENCHMARK(BM_UpdateBatchFourSites)->Arg(1)->Arg(4);

// Batched localization of one measurement per grid cell.
void BM_LocalizeBatch(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine(api::EngineConfig().threads(
      static_cast<std::size_t>(state.range(0))));
  eval::register_run(engine, run, "office");
  const auto& x = run.ground_truth.at_day(0);
  std::vector<std::vector<double>> measurements;
  for (std::size_t j = 0; j < x.cols(); ++j) measurements.push_back(x.col(j));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.localize_batch("office", measurements));
  }
}
BENCHMARK(BM_LocalizeBatch)->Arg(1)->Arg(8);

void BM_OmpLocalize(benchmark::State& state) {
  const auto& run = office();
  const auto& x = run.ground_truth.at_day(0);
  const loc::OmpLocalizer omp(x, {});
  const auto y = x.col(37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(omp.localize(y));
  }
}
BENCHMARK(BM_OmpLocalize);

void BM_RassTraining(benchmark::State& state) {
  const auto& run = office();
  const auto& x = run.ground_truth.at_day(0);
  for (auto _ : state) {
    baselines::Rass rass(x, run.testbed.deployment());
    benchmark::DoNotOptimize(rass);
  }
}
BENCHMARK(BM_RassTraining);

void BM_GroundTruthSurvey(benchmark::State& state) {
  const auto& run = office();
  sim::Sampler sampler(run.testbed, "bench-survey");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.survey_full(45, 5));
  }
}
BENCHMARK(BM_GroundTruthSurvey);

// --- PR 3 additions, appended last: inserting functions mid-file shifts
// the code layout of every later benchmark, which on the office testbed
// moved BM_SvdOfficeMatrix/BM_FullUpdate by double-digit percentages with
// zero source changes.  Keep new registrations at the end.

// The LRR ADMM fan-out at explicit thread counts (the single-thread
// baseline is BM_LrrCorrelation above; results are bit-identical).
void BM_LrrCorrelationThreads(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  const auto mic = core::extract_mic(x);
  core::LrrOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lrr(mic.x_mic, x, options));
  }
}
BENCHMARK(BM_LrrCorrelationThreads)->Arg(2)->Arg(8);

// Parallel QRCP column scoring inside the MIC extraction.
void BM_MicExtractionThreads(benchmark::State& state) {
  const auto& x = office().ground_truth.at_day(0);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::extract_mic(x, core::MicStrategy::kQrcp,
                          core::kMicDefaultRelTol, threads));
  }
}
BENCHMARK(BM_MicExtractionThreads)->Arg(8);

// --- PR 4 additions (SIMD kernel layer + ADMM warm start), appended last
// per the code-layout note above.

// The dot micro-kernel at the sweep's factor width (16) and a grid-row
// width (4096).  Sub-microsecond: gated by the bench_check noise floor.
void BM_KernelDot(benchmark::State& state) {
  rng::Rng rng(21);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (double& v : a) v = rng.normal();
  for (double& v : b) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::dot(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_KernelDot)->Arg(16)->Arg(4096);

// The packed register-blocked GEMM micro-kernel on a warehouse-scale
// product (4096x16 factors) and a square blocked shape.
void BM_KernelGemm(benchmark::State& state) {
  rng::Rng rng(22);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = n;
  const std::size_t k = 16;
  std::vector<double> a(m * k), b(k * n), c(m * n, 0.0);
  for (double& v : a) v = rng.normal();
  for (double& v : b) v = rng.normal();
  for (auto _ : state) {
    linalg::kernels::gemm_accumulate(a.data(), k, b.data(), n, c.data(), n,
                                     m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_KernelGemm)->Arg(96)->Arg(512);

// Warm vs cold correlation refresh: the engine scenario, where the
// previous snapshot's ADMM state seeds the re-acquisition on a drifted
// database.  Pairs with BM_LrrCorrelation (the cold baseline above).
void BM_LrrCorrelationWarm(benchmark::State& state) {
  const auto& run = office();
  const auto& x0 = run.ground_truth.at_day(0);
  const auto& x1 = run.ground_truth.at_day(45);
  const auto mic0 = core::extract_mic(x0);
  const core::LrrOptions options;
  const auto cold = core::solve_lrr(mic0.x_mic, x0, options);
  core::LrrWarmStart warm;
  warm.z = cold.z;
  warm.y1 = cold.y1;
  warm.y2 = cold.y2;
  warm.mu = cold.mu_final;
  const auto mic1 = core::mic_from_cells(x1, mic0.reference_cells);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_lrr(mic1.x_mic, x1, options, &warm));
  }
}
BENCHMARK(BM_LrrCorrelationWarm);

// The batched RASS hyperparameter grid (3 C candidates x 2 axes, one
// fan-out).  Arg is the thread budget; multi-thread rows are on the
// bench-gate skip list (wall clock is a property of the host's cores).
void BM_RassGridSearch(benchmark::State& state) {
  const auto& run = office();
  const auto& x = run.ground_truth.at_day(0);
  baselines::RassOptions options;
  options.c_grid = {1.0, 10.0, 100.0};
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    baselines::Rass rass(x, run.testbed.deployment(), options);
    benchmark::DoNotOptimize(rass);
  }
}
BENCHMARK(BM_RassGridSearch)->Arg(1)->Arg(8);

// --- PR 5 additions (mask-grouped multi-RHS SPD pipeline), appended last
// per the code-layout note above.

// Factor-once multi-RHS SPD solve, the per-group hot path of the
// mask-grouped sweep: one 16x16 normal matrix, k right-hand sides solved
// as a panel through one factorisation.  Runs in microseconds — gated by
// a per-row noise floor in scripts/bench_check.py.
void BM_SpdSolveMulti(benchmark::State& state) {
  rng::Rng rng(24);
  const std::size_t n = 16;
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  linalg::Matrix base(n + 4, n);
  for (double& v : base.data()) v = rng.normal();
  linalg::Matrix a = base.gram();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.05;
  linalg::Matrix rhs(n, k);
  for (double& v : rhs.data()) v = rng.normal();
  linalg::Matrix factor, panel;
  std::vector<double> diag(n), dots(k);
  for (auto _ : state) {
    factor = a;
    panel = rhs;
    benchmark::DoNotOptimize(linalg::factor_spd(factor, diag));
    linalg::solve_factored_spd_multi(factor, panel, dots);
    benchmark::DoNotOptimize(panel.data().data());
  }
}
BENCHMARK(BM_SpdSolveMulti)->Arg(4)->Arg(16);

// Opt-in objective-stagnation early stop (RsvdOptions::stagnation_tol):
// the same full update as BM_FullUpdate, stopping once a sweep improves
// the objective by less than 1e-3 relative (the office trajectory flattens
// to ~5e-4/sweep early on).  The iteration counter shows the saving
// against the default 60-sweep trajectory.
void BM_FullUpdateStagnation(benchmark::State& state) {
  const auto& run = office();
  core::RsvdOptions rsvd;
  rsvd.stagnation_tol = 1e-3;
  api::Engine engine(api::EngineConfig().rsvd(rsvd));
  eval::register_run(engine, run, "office");
  const auto cells = engine.reference_cells("office").value();
  const auto request = eval::collect_update_request(run, "office", cells, 45);
  api::Result<api::UpdateResult> last = api::Status::internal("never ran");
  for (auto _ : state) {
    last = engine.reconstruct(request);
    benchmark::DoNotOptimize(last);
  }
  state.counters["iterations"] =
      static_cast<double>(last.value().solver.iterations);
}
BENCHMARK(BM_FullUpdateStagnation);

// The ingest front door: validate + fold one streamed reading into the
// per-(link, cell) running means.  This sits on the producer path of the
// continuous-update pipeline, so it must stay far below the localize
// read-path cost (tens of ns, not µs); bench_check.py floors the row.
void BM_IngestObservation(benchmark::State& state) {
  serve::SiteHealthCounters health;
  ingest::ObservationBuffer buffer(8, 96,
                                   health);  // office-sized id space
  std::uint64_t k = 0;
  for (auto _ : state) {
    ingest::Observation obs{k % 8, (k * 7) % 96,
                            -50.0 - static_cast<double>(k % 13), k};
    benchmark::DoNotOptimize(buffer.push(obs));
    if (++k % 4096 == 0) buffer.consume();  // stay under capacity
  }
}
BENCHMARK(BM_IngestObservation);

// One EWMA fold + threshold check per streamed residual.
void BM_DriftDetector(benchmark::State& state) {
  ingest::EwmaDriftDetector detector;
  std::uint64_t k = 0;
  for (auto _ : state) {
    detector.observe(static_cast<double>(k % 7) - 3.0);
    benchmark::DoNotOptimize(detector.drifted());
    ++k;
  }
}
BENCHMARK(BM_DriftDetector);

// --- PR 9 additions (durability: checkpoint + WAL), appended last per
// the code-layout note above.

// A self-deleting durability directory shared by one benchmark's setup.
struct BenchDir {
  BenchDir() {
    std::string tmpl = "/tmp/iup-bench-persist-XXXXXX";
    if (::mkdtemp(tmpl.data()) != nullptr) path = tmpl;
  }
  ~BenchDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  std::string path;
};

// Full checkpoint publication for the three-commit office engine:
// collect the image under the state lock, encode, write temp + fsync +
// rename.  This is the cost a checkpoint roll adds OFF the commit path
// (the DurabilityManager runs it outside the engine's commit lock).
void BM_CheckpointSave(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine(api::EngineConfig().threads(1));
  eval::register_run(engine, run, "office");
  const auto cells = engine.reference_cells("office").value();
  for (const std::size_t day : {30ul, 60ul}) {
    engine.update(eval::collect_update_request(run, "office", cells, day));
  }
  static BenchDir dir;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.save_checkpoint(dir.path));
  }
}
BENCHMARK(BM_CheckpointSave);

// One committed snapshot framed + appended to the log; Arg(1) adds the
// per-record fsync (the durability knob's true price — on CI's tmpfs it
// is nearly free, on a real disk it dominates).  The log is re-truncated
// periodically so the bench never fills /tmp.
void BM_WalAppend(benchmark::State& state) {
  const auto& run = office();
  api::Engine engine(api::EngineConfig().threads(1));
  eval::register_run(engine, run, "office");
  persist::WalRecord record;
  record.snapshot = engine.snapshot("office").value();
  const bool do_fsync = state.range(0) != 0;
  static BenchDir dir;
  persist::WalWriter wal;
  if (!wal.open(dir.path + "/WAL-bench", /*truncate=*/true).ok()) {
    state.SkipWithError("cannot open WAL");
    return;
  }
  std::uint64_t appended = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.append(record, do_fsync));
    if (++appended % 256 == 0) {
      state.PauseTiming();
      benchmark::DoNotOptimize(
          wal.open(dir.path + "/WAL-bench", /*truncate=*/true));
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1);

// Cold recovery into a fresh engine: load + CRC-check the checkpoint,
// replay the WAL suffix, rebuild localizers, publish.  The directory
// holds the six-commit office run rolled at checkpoint_every=4, so the
// replayed suffix is two records — the steady-state crash-restart shape.
void BM_Recover(benchmark::State& state) {
  const auto& run = office();
  static BenchDir dir;
  static const bool prepared = [&]() {
    persist::DurabilityManager manager(
        {dir.path, /*checkpoint_every=*/4, /*fsync=*/true});
    api::Engine engine(
        api::EngineConfig().threads(1).update_hooks(manager.engine_hooks()));
    if (!manager.bind(&engine).ok()) return false;
    eval::register_run(engine, run, "office");
    const auto cells = engine.reference_cells("office").value();
    for (const std::size_t day : {15ul, 30ul, 45ul, 60ul, 75ul}) {
      engine.update(eval::collect_update_request(run, "office", cells, day));
    }
    return true;
  }();
  if (!prepared) {
    state.SkipWithError("durable setup failed");
    return;
  }
  for (auto _ : state) {
    api::Engine recovered(api::EngineConfig().threads(1));
    benchmark::DoNotOptimize(recovered.restore_from(dir.path));
  }
}
BENCHMARK(BM_Recover);

}  // namespace

BENCHMARK_MAIN();
