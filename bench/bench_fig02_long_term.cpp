// Fig. 2 — long-term RSS drift: the distribution of RSS readings at a
// fixed location shifts by ~2.5 dB after 5 days and ~6 dB after 45 days.
#include "bench_common.hpp"

#include "linalg/vec.hpp"
#include "sim/sampler.hpp"

int main() {
  using namespace iup;
  bench::print_header(
      "Fig. 2: long-term RSS drift",
      "mean RSS at the same location shifts ~2.5 dB after 5 days and "
      "~6 dB after 45 days");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const std::size_t link = 2, cell = 30;
  const std::size_t samples = 400;

  double mean0 = 0.0;
  eval::Table table({"stamp", "mean RSS [dBm]", "stddev [dB]",
                     "|shift| vs original [dB]"});
  for (std::size_t day : {std::size_t{0}, std::size_t{5}, std::size_t{45}}) {
    sim::Sampler sampler(run.testbed, "fig02-" + std::to_string(day));
    const auto trace = sampler.trace(link, cell, day, samples);
    const double mean = linalg::mean(trace);
    if (day == 0) mean0 = mean;
    table.add_row(eval::stamp_label(day),
                  {mean, linalg::stdev(trace), std::abs(mean - mean0)});

    // Histogram (2 dB buckets), the shape Fig. 2 plots.
    std::printf("%s histogram:\n", eval::stamp_label(day).c_str());
    const double lo = mean - 8.0;
    for (int b = 0; b < 8; ++b) {
      const double a = lo + 2.0 * b;
      std::size_t count = 0;
      for (double v : trace) {
        if (v >= a && v < a + 2.0) ++count;
      }
      std::printf("  [%7.1f, %7.1f) dBm : %5.1f%%\n", a, a + 2.0,
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(samples));
    }
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("paper: shifts of 2.5 dB (5 days) and 6 dB (45 days)\n");
  return 0;
}
