#!/usr/bin/env bash
# Build Release and run the micro benches, maintaining the perf trajectory
# in BENCH_micro.json: the previous run's numbers rotate into "before" and
# the fresh run becomes "after", so every committed file carries a
# before/after pair.
#
# Usage:
#   scripts/bench.sh            full run (MIN_TIME=0.1s per benchmark)
#   MIN_TIME=0.01 scripts/bench.sh   CI smoke run
#   FILTER='BM_Algorithm1Sweep' scripts/bench.sh   subset
#   IUP_ARCH=x86-64-v3 scripts/bench.sh   pin the SIMD dispatch level
#
# Benches build at -march=native by default (IUP_ARCH=native): perf
# numbers are a property of the machine that ran them anyway, and native
# activates the AVX2 kernel level the solver hot path is written for.
# The CI bench gate benches base and head on the SAME runner, so the
# comparison stays apples-to-apples even across dispatch levels.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
MIN_TIME=${MIN_TIME:-0.1}
FILTER=${FILTER:-.}
OUT=${OUT:-BENCH_micro.json}
IUP_ARCH=${IUP_ARCH:-native}

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release -DIUP_API_WERROR=ON
            -DIUP_ARCH="$IUP_ARCH")
if command -v ccache > /dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target bench_micro_solvers bench_serve_throughput

# Both google-benchmark binaries feed one merged BENCH_micro.json: the
# solver micro benches and the serving-path throughput/latency rows.
BINS=("$BUILD_DIR/bench/bench_micro_solvers"
      "$BUILD_DIR/bench/bench_serve_throughput")
TMPS=()
trap 'rm -f "${TMPS[@]}"' EXIT
for BIN in "${BINS[@]}"; do
  if [ ! -x "$BIN" ]; then
    echo "$(basename "$BIN") was not built (google-benchmark missing?)" >&2
    exit 1
  fi
  TMP=$(mktemp)
  TMPS+=("$TMP")
  # Older google-benchmark wants a plain double for --benchmark_min_time;
  # newer releases accept it too (with a deprecation warning).
  "$BIN" --benchmark_min_time="$MIN_TIME" --benchmark_filter="$FILTER" \
         --benchmark_format=json > "$TMP"
done

python3 - "${TMPS[@]}" "$OUT" <<'EOF'
import json
import sys

runs = [json.load(open(path)) for path in sys.argv[1:-1]]
out_path = sys.argv[-1]
entry = {"context": runs[0].get("context", {}),
         "benchmarks": [b for run in runs
                        for b in run.get("benchmarks", [])]}
try:
    with open(out_path) as f:
        prev = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    prev = {}
doc = {"before": prev.get("after") or prev.get("before"), "after": entry}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

for b in entry["benchmarks"]:
    print(f"{b['name']:40s} {b['real_time'] / 1e6:10.3f} ms")
print(f"wrote {out_path}")
EOF
