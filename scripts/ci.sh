#!/usr/bin/env bash
# Configure + build + test, exactly what CI runs on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=${CMAKE_BUILD_TYPE:-Release} \
      -DIUP_API_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Bench smoke: make sure the micro benches still run (tiny min_time; the
# numbers are meaningless on shared CI hardware, the exercise is not).
if [ -x "$BUILD_DIR/bench/bench_micro_solvers" ]; then
  "$BUILD_DIR/bench/bench_micro_solvers" --benchmark_min_time=0.01 \
      --benchmark_filter='BM_Algorithm1Sweep|BM_FullUpdate|BM_LocalizeBatch'
fi
