#!/usr/bin/env bash
# Configure + build + test, exactly what CI runs on every push.
#
# Environment knobs (all optional), matching the CI job matrix:
#   BUILD_DIR        build tree (default: build)
#   CMAKE_BUILD_TYPE Debug / Release (default: Release)
#   SANITIZE         -fsanitize list, e.g. "address,undefined" or "thread";
#                    forwarded as -DIUP_SANITIZE and skips the bench smoke
#                    (numbers under instrumentation are meaningless)
#   CTEST_FILTER     regex for ctest -R (the TSan job restricts itself to
#                    the thread-pool / determinism suites)
#   ARCH             -march target forwarded as -DIUP_ARCH (the AVX2 cell
#                    passes x86-64-v3 to exercise the SIMD kernel level)
# ccache is picked up automatically when it is on PATH (the CI matrix
# installs it via hendrikmuhs/ccache-action so warm builds stay fast).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

# .gitignore hygiene: build trees must never be tracked (they bloat every
# clone this script runs in).  The repo ignores build/ and build-*/ — fail
# fast if anything slipped past that.
if git -C . rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  TRACKED_BUILD=$(git ls-files | grep -E '^build(/|-[^/]*/)' || true)
  if [ -n "$TRACKED_BUILD" ]; then
    echo "error: tracked files inside build trees (commit ignores them):" >&2
    echo "$TRACKED_BUILD" >&2
    exit 1
  fi
fi

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}"
            -DIUP_API_WERROR=ON)
if [ -n "${SANITIZE:-}" ]; then
  CMAKE_ARGS+=(-DIUP_SANITIZE="$SANITIZE")
fi
if [ -n "${ARCH:-}" ]; then
  CMAKE_ARGS+=(-DIUP_ARCH="$ARCH")
fi
if command -v ccache > /dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

CTEST_ARGS=(--output-on-failure -j "$(nproc)")
if [ -n "${CTEST_FILTER:-}" ]; then
  CTEST_ARGS+=(-R "$CTEST_FILTER")
fi
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}"

# Bench smoke: make sure the micro benches still run (tiny min_time; the
# numbers are meaningless on shared CI hardware, the exercise is not).
# Skipped under sanitizers, where the regression gate has its own job.
if [ -z "${SANITIZE:-}" ] && [ -x "$BUILD_DIR/bench/bench_micro_solvers" ]; then
  "$BUILD_DIR/bench/bench_micro_solvers" --benchmark_min_time=0.01 \
      --benchmark_filter='BM_Algorithm1Sweep|BM_FullUpdate|BM_LocalizeBatch'
fi
if [ -z "${SANITIZE:-}" ] && [ -x "$BUILD_DIR/bench/bench_serve_throughput" ]; then
  "$BUILD_DIR/bench/bench_serve_throughput" --benchmark_min_time=0.01 \
      --benchmark_filter='BM_ServeThroughput/1'
fi
