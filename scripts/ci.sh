#!/usr/bin/env bash
# Configure + build + test, exactly what CI runs on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=${CMAKE_BUILD_TYPE:-Release} \
      -DIUP_API_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
