#!/usr/bin/env bash
# Serve-path soak driver: build bench_serve_soak and replay a simulated
# device fleet (concurrent localize readers + background updates) against
# the serving layer, failing on any error status, latency accounting
# mismatch or read-path lock violation.
#
# Usage:
#   scripts/soak.sh                        10 s, 4 readers, 2 sites
#   DURATION=30 READERS=8 scripts/soak.sh  longer / wider
#   SANITIZE=thread scripts/soak.sh        TSan soak (CI smoke job)
#   SANITIZE=address scripts/soak.sh       ASan+UBSan soak
#   CHAOS=1 scripts/soak.sh                fault-injected supervised soak
#   RECOVER=1 scripts/soak.sh              journal every commit, then prove
#                                          a recovered engine serves
#                                          bit-identically (composes with
#                                          CHAOS)
#
# Sanitized runs build Debug (matching scripts/ci.sh) into their own build
# tree; plain runs build Release.
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=${DURATION:-10}
READERS=${READERS:-4}
SITES=${SITES:-2}
UPDATE_MS=${UPDATE_MS:-250}
SANITIZE=${SANITIZE:-}
CHAOS=${CHAOS:-}
RECOVER=${RECOVER:-}

if [ -n "$SANITIZE" ]; then
  # A comma list like SANITIZE=address,undefined must not leak commas into
  # the directory name (they break cmake -B and tab completion alike).
  BUILD_DIR=${BUILD_DIR:-build-soak-${SANITIZE//,/-}}
  CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Debug -DIUP_SANITIZE="$SANITIZE")
else
  BUILD_DIR=${BUILD_DIR:-build-soak}
  CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release)
fi
CMAKE_ARGS+=(-DIUP_API_WERROR=ON)
if command -v ccache > /dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_serve_soak

# Same runtime tightening as scripts/ci.sh: surface every finding, fail
# the run on it.
export ASAN_OPTIONS=${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1:halt_on_error=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}

SOAK_ARGS=("$DURATION" "$READERS" "$SITES" "$UPDATE_MS")
if [ -n "$CHAOS" ]; then
  SOAK_ARGS+=(chaos)
fi
if [ -n "$RECOVER" ]; then
  SOAK_ARGS+=(recover)
fi
"$BUILD_DIR/bench/bench_serve_soak" "${SOAK_ARGS[@]}"
