#!/usr/bin/env python3
"""Bench regression gate.

Compares a fresh micro-bench run against a baseline and FAILS (exit 1)
when any benchmark's wall-clock real_time regressed by more than
--max-regression (default 25%).  Two baseline sources:

- --baseline FILE: a run produced on the SAME machine (CI benches the
  base commit in the same job and passes it here).  Preferred — timings
  never cross hardware.
- default: the "before" half of BENCH_micro.json, which scripts/bench.sh
  rotated from the previously committed run.  Only meaningful on the
  reference machine that produced the committed numbers (used locally to
  sanity-check a change against the committed trajectory).

Known-noisy rows are skipped by default: the multi-thread wall-clock rows
(BM_*Sweep/2.., BM_UpdateBatchFourSites/4, BM_LocalizeBatch/8, ...) measure
the fan-out against however many cores the host happens to have, so their
wall clock is a property of the machine, not the code.  Additional rows can
be skipped with --skip (regex, repeatable).

Rows faster than --noise-floor-ns in BOTH runs are reported as warnings
only: at microsecond scale a shared CI box jitters past any reasonable
threshold.

Usage:
    scripts/bench.sh && python3 scripts/bench_check.py
    python3 scripts/bench_check.py --file BENCH_micro.json \
        --max-regression 0.25 --skip 'BM_RassTraining'
"""

import argparse
import json
import re
import sys

# Wall-clock depends on the host's core count for these, not on the code.
DEFAULT_SKIP = [
    r"^BM_Algorithm1Sweep/(?!1$)\d+$",
    r"^BM_LrrCorrelationThreads/\d+$",
    r"^BM_MicExtractionThreads/\d+$",
    r"^BM_UpdateBatchFourSites/(?!1$)\d+$",
    r"^BM_LocalizeBatch/(?!1$)\d+$",
    r"^BM_RassGridSearch/(?!1$)\d+$",
    # Multi-reader serve rows overlap R threads on however many cores the
    # host has; the /1 rows (and their latency counters) stay gated.
    r"^BM_ServeThroughput/(?!1/)\d",
    r"^BM_ServeFrontThroughput/(?!1/)\d",
]

# Latency counters gated alongside real_time.  Only "smaller is better"
# counters belong here — a throughput counter like qps would be read
# backwards by the ratio check.  Stored in the row table as
# "<benchmark>@<counter>", in ns, so the skip regexes and the report
# format apply unchanged.
LATENCY_COUNTERS = ("p50_us", "p99_us")

# Per-row noise-floor overrides (regex -> ns).  The dot micro-kernel rows
# run in nanoseconds: on a shared CI box their wall clock is dominated by
# frequency/turbo state, so they get a floor generous enough that they
# only ever warn.  The GEMM rows run hundreds of microseconds and are
# real measurements — they stay on the normal gate.  Matched before
# --noise-floor-ns; first hit wins.
ROW_NOISE_FLOORS = [
    (r"^BM_KernelDot", 50000.0),
    # One 16x16 factor + panel solve runs in ~1-3 us: pure turbo lottery
    # on a shared box, so it can only ever warn.
    (r"^BM_SpdSolveMulti", 50000.0),
    # Tail latency needs far more samples than a 0.1 s bench window
    # collects; below 100 us the p99 row is sampling noise, not a signal.
    (r"@p99_us$", 100000.0),
    # Single-observation ingest validation and one EWMA step run in tens
    # of nanoseconds: mutex-acquire + hash-map wall clock on a shared box
    # is turbo lottery, so these rows warn rather than gate.
    (r"^BM_IngestObservation", 50000.0),
    (r"^BM_DriftDetector", 50000.0),
    # Durability rows measure the filesystem (page cache, fsync, rename),
    # not the solver code: on a shared CI box their wall clock swings with
    # whatever else is hitting the disk, so they warn rather than gate.
    (r"^BM_CheckpointSave", 1.0e8),
    (r"^BM_WalAppend", 1.0e8),
    (r"^BM_Recover", 1.0e8),
]


def load_rows(section):
    rows = {}
    for b in section.get("benchmarks", []):
        rows[b["name"]] = b["real_time"]
        for counter in LATENCY_COUNTERS:
            if counter in b:
                rows[f"{b['name']}@{counter}"] = b[counter] * 1000.0  # -> ns
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", default="BENCH_micro.json")
    parser.add_argument("--baseline", default=None,
                        help="compare --file's 'after' against this file's "
                             "run instead of --file's own 'before'.  CI "
                             "benches the base commit on the same runner "
                             "and passes it here, so the gate never "
                             "compares timings across machines")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional slowdown (0.25 = +25%%)")
    parser.add_argument("--skip", action="append", default=[],
                        help="extra row-name regex to skip (repeatable)")
    parser.add_argument("--no-default-skips", action="store_true",
                        help="gate the thread-scaling rows too")
    parser.add_argument("--noise-floor-ns", type=float, default=20000.0,
                        help="rows faster than this in both runs only warn")
    args = parser.parse_args()

    with open(args.file) as f:
        doc = json.load(f)
    after = doc.get("after") or {}
    if args.baseline:
        with open(args.baseline) as f:
            base_doc = json.load(f)
        before = base_doc.get("after") or base_doc.get("before") or {}
        src = args.baseline
    else:
        before = doc.get("before") or {}
        src = f"{args.file} ('before')"
    if not before or not after:
        print(f"need both a fresh run in {args.file} and a baseline in "
              f"{src} (run scripts/bench.sh, or commit a baseline first)")
        return 1
    print(f"baseline: {src}")

    skips = list(args.skip)
    if not args.no_default_skips:
        skips += DEFAULT_SKIP
    skip_res = [re.compile(p) for p in skips]

    base = load_rows(before)
    fresh = load_rows(after)
    failures = []
    print(f"{'benchmark':44s} {'before':>12s} {'after':>12s} {'ratio':>8s}")
    for name in fresh:
        if name not in base:
            print(f"{name:44s} {'(new)':>12s} {fresh[name] / 1e6:9.3f} ms")
            continue
        ratio = fresh[name] / base[name] if base[name] > 0 else float("inf")
        line = (f"{name:44s} {base[name] / 1e6:9.3f} ms {fresh[name] / 1e6:9.3f} ms "
                f"{ratio:7.2f}x")
        if any(r.search(name) for r in skip_res):
            print(line + "  [skipped: noisy row]")
            continue
        if ratio > 1.0 + args.max_regression:
            floor = args.noise_floor_ns
            for pattern, row_floor in ROW_NOISE_FLOORS:
                if re.search(pattern, name):
                    floor = row_floor
                    break
            if base[name] < floor and fresh[name] < floor:
                print(line + "  [warn: below noise floor]")
                continue
            failures.append((name, ratio))
            print(line + "  [FAIL]")
        else:
            print(line)
    for name in base:
        if name not in fresh:
            print(f"{name:44s} removed from the fresh run")

    if failures:
        limit = 1.0 + args.max_regression
        print(f"\n{len(failures)} benchmark(s) regressed past {limit:.2f}x:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x")
        print("If intentional (trade-off documented in the PR), refresh the "
              "baseline with scripts/bench.sh and commit BENCH_micro.json.")
        return 1
    print("\nbench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
