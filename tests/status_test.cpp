// Status / StatusCode surface: every code round-trips through its string
// name, and every factory tags its code correctly.
#include "api/status.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace iup::api {
namespace {

const std::vector<StatusCode>& all_codes() {
  static const std::vector<StatusCode> codes = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kFailedPrecondition,
      StatusCode::kInternal,
      StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
      StatusCode::kDataLoss,
  };
  return codes;
}

TEST(StatusCodes, EveryCodeRoundTripsThroughItsName) {
  for (const StatusCode code : all_codes()) {
    const std::string_view name = to_string(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "UNKNOWN") << static_cast<int>(code);
    const auto back = status_code_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, code) << name;
  }
  // Names are distinct (a collision would alias two codes on the wire).
  for (const StatusCode a : all_codes()) {
    for (const StatusCode b : all_codes()) {
      if (a != b) EXPECT_NE(to_string(a), to_string(b));
    }
  }
  EXPECT_FALSE(status_code_from_string("UNKNOWN").has_value());
  EXPECT_FALSE(status_code_from_string("").has_value());
  EXPECT_FALSE(status_code_from_string("ok").has_value());
}

TEST(StatusCodes, NewRobustnessCodesHaveTheExpectedNames) {
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(to_string(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(to_string(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(StatusFactories, EveryFactoryTagsItsCode) {
  EXPECT_EQ(Status::invalid_argument("m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::not_found("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::failed_precondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::unavailable("m").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::deadline_exceeded("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::resource_exhausted("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::data_loss("m").code(), StatusCode::kDataLoss);

  const Status s = Status::resource_exhausted("buffer full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.to_string(), "RESOURCE_EXHAUSTED: buffer full");
  EXPECT_EQ(Status().to_string(), "OK");
}

}  // namespace
}  // namespace iup::api
