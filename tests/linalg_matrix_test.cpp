#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace iup::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(Matrix, DiagFromList) {
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(Matrix, ToeplitzMatchesPaperH) {
  // Eq. 17: center diagonal 1, first lower diagonal -1, rest 0.
  const Matrix h = Matrix::toeplitz(-1.0, 1.0, 0.0, 4);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(h(3, 2), -1.0);
  EXPECT_DOUBLE_EQ(h(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(h(2, 0), 0.0);
}

TEST(Matrix, FromColumnsAndRows) {
  const Matrix c = Matrix::from_columns({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
  const Matrix r = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 3.0);
  EXPECT_EQ(c, r.transpose());
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowColRoundTrip) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto row = m.row(1);
  EXPECT_EQ(row, (std::vector<double>{4.0, 5.0, 6.0}));
  const auto col = m.col(2);
  EXPECT_EQ(col, (std::vector<double>{3.0, 6.0}));
  m.set_row(0, std::vector<double>{7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(m(0, 2), 9.0);
  m.set_col(0, std::vector<double>{-1.0, -2.0});
  EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
}

TEST(Matrix, SetRowLengthMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.set_row(0, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(m.set_col(0, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, Block) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b, (Matrix{{5, 6}, {8, 9}}));
  EXPECT_THROW(m.block(2, 2, 2, 2), std::out_of_range);
}

TEST(Matrix, SelectColumnsAndRows) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const std::vector<std::size_t> idx = {2, 0};
  EXPECT_EQ(m.select_columns(idx), (Matrix{{3, 1}, {6, 4}}));
  const std::vector<std::size_t> ridx = {1};
  EXPECT_EQ(m.select_rows(ridx), (Matrix{{4, 5, 6}}));
  const std::vector<std::size_t> bad = {5};
  EXPECT_THROW(m.select_columns(bad), std::out_of_range);
}

TEST(Matrix, ArithmeticOperators) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(a + b, (Matrix{{6, 8}, {10, 12}}));
  EXPECT_EQ(b - a, (Matrix{{4, 4}, {4, 4}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Matrix{{0.5, 1}, {1.5, 2}}));
  EXPECT_EQ(-a, (Matrix{{-1, -2}, {-3, -4}}));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW((void)a.hadamard(b), std::invalid_argument);
}

TEST(Matrix, Product) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix b{{7, 8}, {9, 10}, {11, 12}};
  EXPECT_EQ(a * b, (Matrix{{58, 64}, {139, 154}}));
  EXPECT_THROW((void)(a * a), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> x = {1.0, -1.0};
  const auto y = a * std::span<const double>(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, Hadamard) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{0, 1}, {1, 0}};
  EXPECT_EQ(a.hadamard(b), (Matrix{{0, 2}, {3, 0}}));
}

TEST(Matrix, Reductions) {
  const Matrix a{{-3, 1}, {2, 0}};
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 3.0);
}

TEST(Matrix, EmptyReductionsThrow) {
  const Matrix m;
  EXPECT_THROW((void)m.max(), std::logic_error);
  EXPECT_THROW((void)m.min(), std::logic_error);
}

TEST(Matrix, ApproxEqual) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.0 + 1e-7, 2.0 - 1e-7}};
  EXPECT_TRUE(a.approx_equal(b, 1e-6));
  EXPECT_FALSE(a.approx_equal(b, 1e-8));
  EXPECT_FALSE(a.approx_equal(Matrix(1, 3), 1.0));
}

TEST(Matrix, GramMatchesExplicitProduct) {
  rng::Rng rng(5);
  const Matrix a = iup::test::random_matrix(5, 3, rng);
  iup::test::expect_matrix_near(a.gram(), a.transpose() * a, 1e-12);
}

TEST(Matrix, TransposeInvolution) {
  rng::Rng rng(6);
  const Matrix a = iup::test::random_matrix(4, 7, rng);
  EXPECT_EQ(a.transpose().transpose(), a);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 3.0);
  m.fill(-1.0);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, -1.0);
}

// Parameterized shape sweep: (A*B)^T == B^T * A^T for random shapes.
class MatrixShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatrixShapeSweep, ProductTransposeIdentity) {
  const auto [m, k, n] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  const Matrix a = iup::test::random_matrix(m, k, rng);
  const Matrix b = iup::test::random_matrix(k, n, rng);
  iup::test::expect_matrix_near((a * b).transpose(),
                                b.transpose() * a.transpose(), 1e-12);
}

TEST_P(MatrixShapeSweep, DistributivityOverAddition) {
  const auto [m, k, n] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(m * 91 + k * 7 + n));
  const Matrix a = iup::test::random_matrix(m, k, rng);
  const Matrix b = iup::test::random_matrix(k, n, rng);
  const Matrix c = iup::test::random_matrix(k, n, rng);
  iup::test::expect_matrix_near(a * (b + c), a * b + a * c, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixShapeSweep,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{5, 2, 7},
                                           std::tuple{8, 8, 8},
                                           std::tuple{3, 9, 2},
                                           std::tuple{10, 4, 6}));

}  // namespace
}  // namespace iup::linalg
