// QR, column-pivoted QR, LU, Cholesky, least squares.
#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/vec.hpp"
#include "test_util.hpp"

namespace iup::linalg {
namespace {

using iup::test::expect_matrix_near;
using iup::test::random_low_rank;
using iup::test::random_matrix;

TEST(Qr, FactorsMultiplyBack) {
  rng::Rng rng(1);
  const Matrix a = random_matrix(6, 4, rng);
  const auto f = qr(a);
  expect_matrix_near(f.q * f.r, a, 1e-10);
}

TEST(Qr, QHasOrthonormalColumns) {
  rng::Rng rng(2);
  const Matrix a = random_matrix(7, 5, rng);
  const auto f = qr(a);
  expect_matrix_near(f.q.gram(), Matrix::identity(5), 1e-10);
}

TEST(Qr, RIsUpperTriangular) {
  rng::Rng rng(3);
  const Matrix a = random_matrix(5, 5, rng);
  const auto f = qr(a);
  for (std::size_t i = 0; i < f.r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(f.r(i, j), 0.0, 1e-12);
    }
  }
}

TEST(Qrcp, PermutedFactorsMultiplyBack) {
  rng::Rng rng(4);
  const Matrix a = random_matrix(6, 8, rng);
  const auto f = qr_column_pivoted(a);
  const Matrix permuted = a.select_columns(f.perm);
  expect_matrix_near(f.q * f.r, permuted, 1e-10);
}

TEST(Qrcp, DetectsRank) {
  rng::Rng rng(5);
  const Matrix a = random_low_rank(6, 10, 3, rng);
  const auto f = qr_column_pivoted(a, 1e-8);
  EXPECT_EQ(f.rank, 3u);
}

TEST(Qrcp, FullRankSquare) {
  rng::Rng rng(6);
  const Matrix a = random_matrix(5, 5, rng);
  EXPECT_EQ(qr_column_pivoted(a).rank, 5u);
}

TEST(Qrcp, ZeroMatrixRankZero) {
  EXPECT_EQ(qr_column_pivoted(Matrix(4, 4)).rank, 0u);
}

TEST(LeastSquares, ExactForConsistentSystem) {
  rng::Rng rng(7);
  const Matrix a = random_matrix(8, 3, rng);
  const std::vector<double> x_true = {1.5, -2.0, 0.5};
  const auto b = a * std::span<const double>(x_true);
  const auto x = least_squares(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
  rng::Rng rng(8);
  const Matrix a = random_matrix(10, 4, rng);
  std::vector<double> b(10);
  for (double& v : b) v = rng.normal();
  const auto x = least_squares(a, b);
  const auto fitted = a * std::span<const double>(x);
  const auto r = sub(b, fitted);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    EXPECT_NEAR(dot(r, a.col(j)), 0.0, 1e-9);
  }
}

TEST(LeastSquares, UnderdeterminedThrows) {
  const Matrix a(2, 3);
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)least_squares(a, b), std::invalid_argument);
}

TEST(Lu, SolveKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b = {3.0, 5.0};
  const auto x = solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolveMatrixRhs) {
  rng::Rng rng(9);
  const Matrix a = random_matrix(5, 5, rng);
  const Matrix b = random_matrix(5, 3, rng);
  const Matrix x = solve(a, b);
  expect_matrix_near(a * x, b, 1e-9);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  rng::Rng rng(10);
  const Matrix a = random_matrix(6, 6, rng);
  expect_matrix_near(a * inverse(a), Matrix::identity(6), 1e-9);
}

TEST(Lu, SingularThrowsOnSolve) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)solve(a, b), std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW((void)lu_decompose(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DeterminantKnown) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(determinant(a), -2.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(determinant(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 0.0);
}

TEST(Cholesky, FactorsSpdMatrix) {
  rng::Rng rng(11);
  const Matrix g = random_matrix(5, 5, rng);
  Matrix spd = g.gram();
  for (std::size_t i = 0; i < 5; ++i) spd(i, i) += 1.0;
  const auto l = cholesky(spd);
  ASSERT_TRUE(l.has_value());
  expect_matrix_near(*l * l->transpose(), spd, 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix ind{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(ind).has_value());
}

TEST(Cholesky, SolveMatchesLu) {
  rng::Rng rng(12);
  const Matrix g = random_matrix(6, 6, rng);
  Matrix spd = g.gram();
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 2.0;
  std::vector<double> b(6);
  for (double& v : b) v = rng.normal();
  const auto x_chol = solve_spd(spd, b);
  const auto x_lu = solve(spd, b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x_chol[i], x_lu[i], 1e-8);
}

TEST(Cholesky, SolveSpdFallsBackOnIndefinite) {
  const Matrix ind{{1.0, 2.0}, {2.0, 1.0}};
  const std::vector<double> b = {1.0, 1.0};
  const auto x = solve_spd(ind, b);  // must not throw: LU fallback
  const auto fitted = ind * std::span<const double>(x);
  EXPECT_NEAR(fitted[0], 1.0, 1e-10);
  EXPECT_NEAR(fitted[1], 1.0, 1e-10);
}

class SolveSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolveSweep, LuSolveResidualSmall) {
  const int n = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(100 + n));
  const Matrix a = random_matrix(n, n, rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.normal();
  const auto x = solve(a, b);
  const auto fitted = a * std::span<const double>(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(fitted[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace iup::linalg
