// The trace CSV layer: bit-identical round-trips, schema validation and
// precise malformed-row rejection (file:line: column messages), for the
// fingerprint, observation and query formats.
#include "trace/fingerprint_csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "trace/csv.hpp"
#include "trace/observation_csv.hpp"
#include "test_util.hpp"

namespace iup::trace {
namespace {

using api::StatusCode;

FingerprintTable small_table() {
  FingerprintTable table;
  table.database = linalg::Matrix(2, 3);
  table.mask = linalg::Matrix(2, 3);
  rng::Rng rng(99);
  for (double& v : table.database.data()) v = -40.0 - 30.0 * rng.uniform();
  table.mask(0, 0) = 1.0;
  table.mask(1, 2) = 1.0;
  table.sources = {{SourceId(11), Technology::kWifi},
                   {SourceId(22), Technology::kBle}};
  table.cell_centers = {{0.5, 0.5}, {1.5, 0.5}, {2.5, 0.5}};
  return table;
}

TEST(FormatDouble, RoundTripsExactly) {
  for (const double v : {-67.3125, 1.0 / 3.0, -1e-17, 0.0, 1e300,
                         -0.1 + 0.2, 5e-324}) {
    const std::string text = format_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(FingerprintCsv, RoundTripIsBitIdentical) {
  const FingerprintTable table = small_table();
  std::ostringstream out;
  ASSERT_TRUE(export_fingerprint_csv(table, out).ok());

  std::istringstream in(out.str());
  const auto imported = import_fingerprint_csv(in, "mem");
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  const FingerprintTable& got = imported.value();
  EXPECT_EQ(got.database, table.database);
  EXPECT_EQ(got.mask, table.mask);
  EXPECT_EQ(got.sources, table.sources);
  ASSERT_EQ(got.cell_centers.size(), table.cell_centers.size());
  for (std::size_t j = 0; j < got.cell_centers.size(); ++j) {
    EXPECT_EQ(got.cell_centers[j].x, table.cell_centers[j].x);
    EXPECT_EQ(got.cell_centers[j].y, table.cell_centers[j].y);
  }

  // Export -> import -> export is byte-stable.
  std::ostringstream again;
  ASSERT_TRUE(export_fingerprint_csv(got, again).ok());
  EXPECT_EQ(again.str(), out.str());
}

TEST(FingerprintCsv, SnapshotExportSynthesisesLegacySources) {
  const auto& run = iup::test::office_run();
  api::Engine engine;
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  const auto snapshot = engine.snapshot("office").value();
  std::vector<geom::Point2> centers;
  for (std::size_t j = 0; j < run.testbed.num_cells(); ++j) {
    centers.push_back(run.testbed.deployment().cell_center(j));
  }
  std::ostringstream out;
  ASSERT_TRUE(export_fingerprint_csv(*snapshot, centers, out).ok());
  std::istringstream in(out.str());
  const auto imported = import_fingerprint_csv(in, "mem");
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  EXPECT_EQ(imported.value().database, snapshot->database());
  // Source-less snapshot exports the degenerate single-technology table.
  EXPECT_EQ(imported.value().sources,
            single_technology_sources(snapshot->database().rows()));
}

void expect_import_fails(const std::string& csv, const std::string& needle) {
  std::istringstream in(csv);
  const auto imported = import_fingerprint_csv(in, "bad");
  ASSERT_FALSE(imported.ok()) << "expected failure for: " << needle;
  EXPECT_EQ(imported.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(imported.status().message().find(needle), std::string::npos)
      << imported.status().message();
}

TEST(FingerprintCsv, MalformedRowsAreRejectedWithPreciseMessages) {
  const std::string header =
      "link,cell,source_id,technology,rss_db,mask,cell_x_m,cell_y_m\n";

  expect_import_fails("nope\n", "header has 1 columns");
  expect_import_fails(
      "link,cell,source_id,technology,rss_db,mask,cell_x_m,oops\n",
      "header column 7");
  expect_import_fails(header, "no fingerprint rows");
  expect_import_fails(header + "0,0,1,wifi,-50,1\n", "row has 6 fields");
  expect_import_fails(header + "0,0,1,zigbee,-50,1,0.5,0.5\n",
                      "unknown value 'zigbee'");
  expect_import_fails(header + "0,0,1,wifi,abc,1,0.5,0.5\n",
                      "column 'rss_db' has non-numeric value 'abc'");
  expect_import_fails(header + "0,0,1,wifi,nan,1,0.5,0.5\n",
                      "column 'rss_db' is non-finite");
  expect_import_fails(header + "0,0,1,wifi,-50,2,0.5,0.5\n",
                      "column 'mask' must be 0 or 1");
  expect_import_fails(header + "0,-1,1,wifi,-50,1,0.5,0.5\n",
                      "column 'cell' has non-integer value '-1'");
  expect_import_fails(header + "0,0,1,wifi,-50,1,0.5,0.5\n" +
                          "0,0,1,wifi,-51,1,0.5,0.5\n",
                      "duplicate (link 0, cell 0)");
  expect_import_fails(header + "0,0,1,wifi,-50,1,0.5,0.5\n" +
                          "0,1,2,ble,-51,1,1.5,0.5\n",
                      "changes its source mid-file");
  expect_import_fails(header + "0,0,1,wifi,-50,1,0.5,0.5\n" +
                          "1,0,2,ble,-51,1,0.75,0.5\n",
                      "changes its center mid-file");
  expect_import_fails(header + "0,1,1,wifi,-50,1,1.5,0.5\n",
                      "not rectangular");
  // Errors carry the label and line number.
  expect_import_fails(header + "0,0,1,wifi,-50,1,0.5,0.5\n" +
                          "0,1,1,wifi,oops,1,1.5,0.5\n",
                      "bad:3:");
}

TEST(ObservationCsv, RoundTripIsBitIdentical) {
  std::vector<ingest::Observation> stream;
  rng::Rng rng(7);
  for (std::size_t k = 0; k < 40; ++k) {
    ingest::Observation obs;
    obs.day = 3 + (k / 20) * 12;
    obs.link = k % 4;
    obs.cell = (k * 7) % 12;
    obs.source = SourceId(100 + obs.link);
    obs.rss_db = -80.0 + 40.0 * rng.uniform();
    stream.push_back(obs);
  }
  std::ostringstream out;
  ASSERT_TRUE(export_observation_csv(stream, out).ok());
  std::istringstream in(out.str());
  const auto imported = import_observation_csv(in, "mem");
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  ASSERT_EQ(imported.value().size(), stream.size());
  for (std::size_t k = 0; k < stream.size(); ++k) {
    EXPECT_EQ(imported.value()[k].day, stream[k].day);
    EXPECT_EQ(imported.value()[k].link, stream[k].link);
    EXPECT_EQ(imported.value()[k].cell, stream[k].cell);
    EXPECT_EQ(imported.value()[k].source, stream[k].source);
    EXPECT_EQ(imported.value()[k].rss_db, stream[k].rss_db);  // bit-exact
  }
}

TEST(ObservationCsv, ExportRejectsUnattributedReadings) {
  std::vector<ingest::Observation> stream(1);  // default: unspecified source
  std::ostringstream out;
  const auto status = export_observation_csv(stream, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ObservationCsv, ImportKeepsDirtyValuesForTheQuarantine) {
  // Range/finiteness are the ingest buffer's job: a -300 dB reading must
  // survive the import so a replay exercises the quarantine.
  std::istringstream in(
      "day,link,cell,source_id,rss_db\n"
      "3,0,0,100,-300\n");
  const auto imported = import_observation_csv(in, "mem");
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  EXPECT_EQ(imported.value()[0].rss_db, -300.0);
}

TEST(QueryCsv, RoundTripAndValidation) {
  std::vector<LocalizationQuery> queries;
  rng::Rng rng(13);
  for (std::uint64_t id = 0; id < 5; ++id) {
    LocalizationQuery q;
    q.id = id;
    q.day = 45;
    q.true_position = {0.3 * static_cast<double>(id), 1.25};
    for (std::size_t i = 0; i < 3; ++i) {
      q.rss_db.push_back(-70.0 + 30.0 * rng.uniform());
    }
    queries.push_back(std::move(q));
  }
  std::ostringstream out;
  ASSERT_TRUE(export_query_csv(queries, out).ok());
  std::istringstream in(out.str());
  const auto imported = import_query_csv(in, "mem", 3);
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  ASSERT_EQ(imported.value().size(), queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    EXPECT_EQ(imported.value()[k].id, queries[k].id);
    EXPECT_EQ(imported.value()[k].day, queries[k].day);
    EXPECT_EQ(imported.value()[k].true_position.x, queries[k].true_position.x);
    EXPECT_EQ(imported.value()[k].rss_db, queries[k].rss_db);
  }

  const std::string header = "query_id,day,true_x_m,true_y_m,link,rss_db\n";
  const auto fails = [](const std::string& csv, const std::string& needle) {
    std::istringstream bad(csv);
    const auto result = import_query_csv(bad, "bad", 2);
    ASSERT_FALSE(result.ok()) << needle;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find(needle), std::string::npos)
        << result.status().message();
  };
  fails(header + "0,45,0,0,0,-50\n", "missing link 1");
  fails(header + "0,45,0,0,0,-50\n0,45,0,0,0,-51\n", "repeats link 0");
  fails(header + "0,45,0,0,0,-50\n0,45,0,1,1,-51\n",
        "changes its day or ground-truth position");
  fails(header + "0,45,0,0,0,-50\n0,45,0,0,1,-51\n"
               + "1,45,1,0,0,-50\n1,45,1,0,1,-51\n"
               + "0,45,0,0,0,-50\n0,45,0,0,1,-51\n",
        "not contiguous");
  fails(header + "0,45,0,0,5,-50\n", "the deployment has 2 links");
  fails(header + "0,45,inf,0,0,-50\n", "non-finite");
}

TEST(PathWrappers, MissingFileIsNotFound) {
  EXPECT_EQ(read_fingerprint_csv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(read_observation_csv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(read_query_csv("/no/such/file.csv", 4).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace iup::trace
