// The service facade: snapshot versioning, Status/Result error paths,
// pluggable solver backends and batched entry points.
#include "api/engine.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/updater.hpp"
#include "eval/experiment.hpp"
#include "test_util.hpp"

namespace iup::api {
namespace {

Engine office_engine(const eval::EnvironmentRun& run,
                     EngineConfig config = {}) {
  Engine engine(std::move(config));
  const auto registered = eval::register_run(engine, run, "office");
  EXPECT_TRUE(registered.ok()) << registered.status().to_string();
  return engine;
}

TEST(EngineRegistration, RejectsMalformedSites) {
  const auto& run = iup::test::office_run();
  Engine engine;

  const auto empty_name =
      engine.register_site("", run.ground_truth.at_day(0), run.b_mask);
  EXPECT_EQ(empty_name.status().code(), StatusCode::kInvalidArgument);

  const auto shape_mismatch = engine.register_site(
      "office", run.ground_truth.at_day(0), linalg::Matrix(8, 90));
  EXPECT_EQ(shape_mismatch.status().code(), StatusCode::kInvalidArgument);

  // 90 columns over 8 links is not a band layout.
  const auto bad_band = engine.register_site("office", linalg::Matrix(8, 90),
                                             linalg::Matrix(8, 90));
  EXPECT_EQ(bad_band.status().code(), StatusCode::kInvalidArgument);

  const auto rank_zero = engine.register_site(
      "office", linalg::Matrix(8, 96, 0.0), linalg::Matrix(8, 96, 0.0));
  EXPECT_EQ(rank_zero.status().code(), StatusCode::kInvalidArgument);

  // Valid registration, then a duplicate.
  const auto ok =
      engine.register_site("office", run.ground_truth.at_day(0), run.b_mask);
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  const auto duplicate =
      engine.register_site("office", run.ground_truth.at_day(0), run.b_mask);
  EXPECT_EQ(duplicate.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRegistration, UnknownSiteIsNotFound) {
  Engine engine;
  EXPECT_EQ(engine.snapshot("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.reference_cells("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.update({"nope", {}, 0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.localize("nope", std::vector<double>(8)).status().code(),
            StatusCode::kNotFound);
}

TEST(EngineSnapshots, UpdateCommitsNewVersions) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto v1 = engine.snapshot("office").value();
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->reference_cells().size(), 8u);
  EXPECT_EQ(v1->correlation().rows(), 8u);
  EXPECT_EQ(v1->correlation().cols(), 96u);

  const auto cells = v1->reference_cells();
  const auto r15 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r15.ok()) << r15.status().to_string();
  EXPECT_EQ(r15.value().base_version, 1u);
  EXPECT_EQ(r15.value().committed_version, 2u);
  EXPECT_EQ(r15.value().snapshot->day(), 15u);

  const auto r45 =
      engine.update(eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(r45.ok()) << r45.status().to_string();
  EXPECT_EQ(r45.value().committed_version, 3u);

  // Every version stays addressable; the latest is v3.
  EXPECT_EQ(engine.store().version_count("office"), 3u);
  EXPECT_TRUE(engine.snapshot("office", 1).value()->database() ==
              run.ground_truth.at_day(0));
  EXPECT_TRUE(engine.snapshot("office").value()->database() ==
              r45.value().x_hat());
  EXPECT_EQ(engine.snapshot("office", 9).status().code(),
            StatusCode::kNotFound);
}

TEST(EngineSnapshots, ReconstructDoesNotCommit) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto cells = engine.reference_cells("office").value();
  const auto rep = engine.reconstruct(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep.value().committed_version, 0u);
  EXPECT_EQ(rep.value().snapshot, nullptr);
  EXPECT_EQ(engine.store().version_count("office"), 1u);
}

TEST(EngineSnapshots, HistoryLimitEvictsOldest) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run, EngineConfig().history_limit(2));
  const auto cells = engine.reference_cells("office").value();
  for (std::size_t day : {std::size_t{5}, std::size_t{15}}) {
    const auto res =
        engine.update(eval::collect_update_request(run, "office", cells, day));
    ASSERT_TRUE(res.ok()) << res.status().to_string();
  }
  EXPECT_EQ(engine.store().version_count("office"), 2u);
  EXPECT_EQ(engine.snapshot("office", 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.snapshot("office", 3).value()->version(), 3u);
}

TEST(EngineErrors, DimensionMismatchLeavesStoreUntouched) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);

  UpdateRequest bad_xr{"office", {linalg::Matrix(8, 96), linalg::Matrix(8, 3)},
                       45};
  const auto r1 = engine.update(bad_xr);
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  UpdateRequest bad_xb{"office", {linalg::Matrix(8, 90), linalg::Matrix(8, 8)},
                       45};
  const auto r2 = engine.update(bad_xb);
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.store().version_count("office"), 1u);
}

TEST(EngineErrors, NonFiniteUpdateInputsAreRejectedBeforeAnyMutation) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto cells = engine.reference_cells("office").value();
  const auto good = eval::collect_update_request(run, "office", cells, 45);

  for (const double poison : {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    UpdateRequest bad_xb = good;
    bad_xb.inputs.x_b(3, 40) = poison;
    const auto r1 = engine.update(bad_xb);
    EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

    UpdateRequest bad_xr = good;
    bad_xr.inputs.x_r(2, 5) = poison;
    const auto r2 = engine.update(bad_xr);
    EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  }

  // Nothing committed, nothing served: still version 1 all the way down.
  EXPECT_EQ(engine.store().version_count("office"), 1u);
  EXPECT_EQ(engine.snapshot("office").value()->version(), 1u);

  // The same gate guards registration and the localize read path.
  linalg::Matrix poisoned = run.ground_truth.at_day(0);
  poisoned(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.register_site("poisoned", poisoned, run.b_mask)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<double> query(8, -50.0);
  query[4] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.localize("office", query).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.localize_batch("office", {query}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineHealth, SiteHealthTracksServingAndUpdateOutcomes) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  EXPECT_EQ(engine.site_health("nope").status().code(), StatusCode::kNotFound);

  const auto fresh = engine.site_health("office");
  ASSERT_TRUE(fresh.ok()) << fresh.status().to_string();
  EXPECT_EQ(fresh.value().state, serve::SiteState::kHealthy);
  EXPECT_EQ(fresh.value().serving_version, 1u);
  EXPECT_EQ(fresh.value().latest_version, 1u);
  EXPECT_EQ(fresh.value().updates_ok, 0u);
  EXPECT_EQ(fresh.value().updates_failed, 0u);

  const auto cells = engine.reference_cells("office").value();
  ASSERT_TRUE(
      engine.update(eval::collect_update_request(run, "office", cells, 15))
          .ok());
  UpdateRequest bad = eval::collect_update_request(run, "office", cells, 45);
  bad.inputs.x_b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(engine.update(bad).ok());

  const auto after = engine.site_health("office").value();
  EXPECT_EQ(after.serving_version, 2u);
  EXPECT_EQ(after.latest_version, 2u);
  EXPECT_EQ(after.serving_day, 15u);
  EXPECT_EQ(after.updates_ok, 1u);
  EXPECT_EQ(after.updates_failed, 1u);
  // No observations streamed yet: no staleness to report.
  EXPECT_EQ(after.staleness_days, 0u);
  EXPECT_EQ(after.quarantined_total(), 0u);
}

TEST(EngineErrors, EmptyReferenceSetIsRejected) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto empty =
      engine.set_reference_cells("office", std::vector<CellId>{});
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  const auto out_of_range =
      engine.set_reference_cells("office", to_cell_ids({0, 400}));
  EXPECT_EQ(out_of_range.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.store().version_count("office"), 1u);
}

TEST(EngineSnapshots, ReferenceOverrideCommitsNewCorrelation) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const std::vector<std::size_t> cells = {0, 13, 26, 39, 52, 65, 78, 91, 95};
  ASSERT_TRUE(engine.set_reference_cells("office", to_cell_ids(cells)).ok());
  const auto snap = engine.snapshot("office").value();
  EXPECT_EQ(snap->version(), 2u);
  EXPECT_EQ(snap->reference_cells(), cells);
  EXPECT_EQ(engine.reference_cells("office").value(), to_cell_ids(cells));
  EXPECT_EQ(snap->correlation().rows(), 9u);
  const auto rep = engine.reconstruct(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep.value().reference_count, 9u);
}

TEST(EngineBackends, RegistryNamesResolve) {
  for (const std::string& name : backend_names()) {
    const auto backend = make_backend(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
  }
  EXPECT_EQ(make_backend("no-such-solver"), nullptr);
  EXPECT_THROW(Engine(EngineConfig().solver("no-such-solver")),
               std::invalid_argument);
}

TEST(EngineBackends, BackendSelectionChangesTheSolve) {
  const auto& run = iup::test::office_run();
  Engine full = office_engine(run);
  Engine basic = office_engine(run, EngineConfig().solver("basic-rsvd"));
  EXPECT_EQ(full.solver().name(), "self-augmented");
  EXPECT_EQ(basic.solver().name(), "basic-rsvd");

  const auto cells = full.reference_cells("office").value();
  const auto request = eval::collect_update_request(run, "office", cells, 45);
  const auto rep_full = full.reconstruct(request);
  const auto rep_basic = basic.reconstruct(request);
  ASSERT_TRUE(rep_full.ok());
  ASSERT_TRUE(rep_basic.ok());
  // The unconstrained completion must differ from the self-augmented one
  // and (on this drifted day) be worse.
  EXPECT_FALSE(rep_full.value().x_hat().approx_equal(rep_basic.value().x_hat(),
                                                     1e-9));
  const double full_err =
      eval::score_reconstruction(run, rep_full.value().x_hat(), 45).mean_db;
  const double basic_err =
      eval::score_reconstruction(run, rep_basic.value().x_hat(), 45).mean_db;
  EXPECT_LT(full_err, basic_err);
}

TEST(EngineBatch, BatchedUpdatesMatchSequentialExactly) {
  const auto& run = iup::test::office_run();
  const std::vector<std::size_t> days = {5, 15, 45};

  Engine sequential = office_engine(run);
  const auto cells = sequential.reference_cells("office").value();
  std::vector<linalg::Matrix> seq_hats;
  for (std::size_t day : days) {
    const auto res = sequential.update(
        eval::collect_update_request(run, "office", cells, day));
    ASSERT_TRUE(res.ok()) << res.status().to_string();
    seq_hats.push_back(res.value().x_hat());
  }

  Engine batched = office_engine(run);
  std::vector<UpdateRequest> batch;
  for (std::size_t day : days) {
    batch.push_back(eval::collect_update_request(run, "office", cells, day));
  }
  const auto results = batched.update_batch(batch);
  ASSERT_EQ(results.size(), days.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    ASSERT_TRUE(results[k].ok()) << results[k].status().to_string();
    EXPECT_TRUE(results[k].value().x_hat() == seq_hats[k]) << "day "
                                                           << days[k];
    EXPECT_EQ(results[k].value().committed_version, k + 2);
  }
  EXPECT_TRUE(batched.snapshot("office").value()->database() ==
              sequential.snapshot("office").value()->database());
  EXPECT_TRUE(batched.snapshot("office").value()->correlation() ==
              sequential.snapshot("office").value()->correlation());
}

TEST(EngineBatch, FailedRequestDoesNotBlockTheRest) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto cells = engine.reference_cells("office").value();
  std::vector<UpdateRequest> batch;
  batch.push_back(eval::collect_update_request(run, "office", cells, 15));
  batch.push_back({"no-such-site", {}, 15});
  batch.push_back(eval::collect_update_request(run, "office", cells, 45));
  const auto results = engine.update_batch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(engine.store().version_count("office"), 3u);
}

TEST(EngineLocalize, BatchMatchesSingleAndValidates) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  sim::Sampler sampler(run.testbed, "api-localize");
  std::vector<std::vector<double>> queries;
  for (std::size_t j = 0; j < 12; ++j) {
    queries.push_back(sampler.online_measurement(j * 8, 0, 3));
  }
  const auto batch = engine.localize_batch("office", queries);
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  ASSERT_EQ(batch.value().size(), queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const auto single = engine.localize("office", queries[k]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single.value().cell, batch.value()[k].cell);
  }
  const auto wrong_width =
      engine.localize("office", std::vector<double>(5));
  EXPECT_EQ(wrong_width.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineLocalize, RassNeedsDeploymentAttached) {
  const auto& run = iup::test::office_run();
  Engine engine(EngineConfig().localizer(LocalizerKind::kRass));
  const auto registered =
      engine.register_site("office", run.ground_truth.at_day(0), run.b_mask);
  ASSERT_TRUE(registered.ok());
  const auto no_dep =
      engine.localize("office", std::vector<double>(8, -50.0));
  EXPECT_EQ(no_dep.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(
      engine.attach_deployment("office", &run.testbed.deployment()).ok());
  const auto with_dep =
      engine.localize("office", std::vector<double>(8, -50.0));
  EXPECT_TRUE(with_dep.ok()) << with_dep.status().to_string();
}

std::vector<SourceInfo> office_sources() {
  std::vector<SourceInfo> sources;
  for (std::size_t i = 0; i < 8; ++i) {
    sources.push_back({SourceId(1000 + i),
                       i < 4 ? Technology::kWifi : Technology::kBle});
  }
  return sources;
}

TEST(EngineSources, RegistrationValidatesTheSourceTable) {
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  Engine engine;

  auto short_table = office_sources();
  short_table.pop_back();
  EXPECT_EQ(engine.register_site("office", x0, run.b_mask, short_table)
                .status().code(),
            StatusCode::kInvalidArgument);

  auto unspecified = office_sources();
  unspecified[2].id = SourceId();
  EXPECT_EQ(engine.register_site("office", x0, run.b_mask, unspecified)
                .status().code(),
            StatusCode::kInvalidArgument);

  auto duplicate = office_sources();
  duplicate[5].id = duplicate[1].id;
  EXPECT_EQ(engine.register_site("office", x0, run.b_mask, duplicate)
                .status().code(),
            StatusCode::kInvalidArgument);

  const auto ok = engine.register_site("office", x0, run.b_mask,
                                       office_sources());
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value()->sources(), office_sources());
  EXPECT_EQ(engine.sources("office").value(), office_sources());
}

TEST(EngineSources, TableIsCarriedAcrossVersionsAndEnforced) {
  const auto& run = iup::test::office_run();
  Engine engine;
  ASSERT_TRUE(engine
                  .register_site("office", run.ground_truth.at_day(0),
                                 run.b_mask, office_sources())
                  .ok());
  ASSERT_TRUE(
      engine.attach_deployment("office", &run.testbed.deployment()).ok());
  const auto cells = engine.reference_cells("office").value();

  // Inputs carrying the registered table commit fine...
  auto good = eval::collect_update_request(run, "office", cells, 15);
  good.inputs.sources = office_sources();
  const auto committed = engine.update(good);
  ASSERT_TRUE(committed.ok()) << committed.status().to_string();
  // ...and the new snapshot still carries the table.
  EXPECT_EQ(committed.value().snapshot->sources(), office_sources());

  // Inputs attributed to a different transmitter set are rejected.
  auto bad = eval::collect_update_request(run, "office", cells, 45);
  bad.inputs.sources = office_sources();
  bad.inputs.sources[3].id = SourceId(9999);
  EXPECT_EQ(engine.update(bad).status().code(),
            StatusCode::kInvalidArgument);
  auto wrong_tech = eval::collect_update_request(run, "office", cells, 45);
  wrong_tech.inputs.sources = office_sources();
  wrong_tech.inputs.sources[0].technology = Technology::kLora;
  EXPECT_EQ(engine.update(wrong_tech).status().code(),
            StatusCode::kInvalidArgument);

  // Source-less inputs stay accepted (legacy callers, assembled traces
  // from source-less snapshots).
  const auto legacy = eval::collect_update_request(run, "office", cells, 45);
  EXPECT_TRUE(engine.update(legacy).ok());
}

TEST(EngineSources, LegacyRegistrationHasEmptyTable) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  EXPECT_TRUE(engine.sources("office").value().empty());
  EXPECT_TRUE(engine.snapshot("office").value()->sources().empty());
}

}  // namespace
}  // namespace iup::api
