// Fingerprint containers, X_D extraction and the NLC/ALS statistics.
#include "core/fingerprint.hpp"

#include <gtest/gtest.h>

#include "core/constraints.hpp"
#include "test_util.hpp"

namespace iup::core {
namespace {

TEST(BandLayout, IndexingRoundTrip) {
  const BandLayout layout{4, 6};
  EXPECT_EQ(layout.num_cells(), 24u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t u = 0; u < 6; ++u) {
      const std::size_t j = layout.cell(i, u);
      EXPECT_EQ(layout.band_of(j), i);
      EXPECT_EQ(layout.slot_of(j), u);
    }
  }
}

TEST(BandLayout, OfMatrix) {
  const auto layout = band_layout_of(linalg::Matrix(4, 24));
  EXPECT_EQ(layout.links, 4u);
  EXPECT_EQ(layout.slots, 6u);
  EXPECT_THROW((void)band_layout_of(linalg::Matrix(4, 25)),
               std::invalid_argument);
  EXPECT_THROW((void)band_layout_of(linalg::Matrix{}), std::invalid_argument);
}

TEST(LargelyDecrease, ExtractMatchesDefinition2) {
  // 2 links, 3 slots: d_{i,u} = x_{i, (i-1)*N/M + u} (1-based indices).
  const linalg::Matrix x{{1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12}};
  const BandLayout layout{2, 3};
  const auto xd = extract_largely_decrease(x, layout);
  EXPECT_EQ(xd, (linalg::Matrix{{1, 2, 3}, {10, 11, 12}}));
}

TEST(LargelyDecrease, InsertRoundTrip) {
  rng::Rng rng(77);
  const BandLayout layout{3, 4};
  linalg::Matrix x = iup::test::random_matrix(3, 12, rng);
  const auto xd = extract_largely_decrease(x, layout);
  linalg::Matrix x2 = x;
  insert_largely_decrease(x2, xd, layout);
  EXPECT_EQ(x2, x);
  // Inserting a modified X_D changes exactly the band entries.
  linalg::Matrix xd2 = xd;
  xd2(1, 2) += 5.0;
  insert_largely_decrease(x2, xd2, layout);
  EXPECT_DOUBLE_EQ(x2(1, layout.cell(1, 2)), x(1, layout.cell(1, 2)) + 5.0);
}

TEST(LargelyDecrease, ShapeMismatchThrows) {
  const BandLayout layout{2, 3};
  EXPECT_THROW(
      (void)extract_largely_decrease(linalg::Matrix(2, 5), layout),
      std::invalid_argument);
  linalg::Matrix x(2, 6);
  linalg::Matrix xd(2, 4);
  EXPECT_THROW(insert_largely_decrease(x, xd, layout),
               std::invalid_argument);
}

TEST(Nlc, PerfectlyContinuousRowsGiveZero) {
  // Constant |X_D| rows: every entry equals its neighbour average.
  linalg::Matrix xd(2, 5, -70.0);
  xd(0, 0) = -60.0;  // one offset entry to create a nonzero spread
  const auto t = neighbor_matrix(5);
  const auto nlc = nlc_values(xd, t);
  // Entries far from the perturbed one have NLC == 0.
  EXPECT_NEAR(nlc(1, 2), 0.0, 1e-12);
}

TEST(Nlc, DetectsDiscontinuity) {
  linalg::Matrix xd(1, 5, -70.0);
  xd(0, 2) = -50.0;  // sharp bump
  const auto nlc = nlc_values(xd, neighbor_matrix(5));
  EXPECT_GT(nlc(0, 2), 0.9);  // bump deviates by ~the whole spread
}

TEST(Nlc, ShapeMismatchThrows) {
  EXPECT_THROW((void)nlc_values(linalg::Matrix(2, 5), neighbor_matrix(4)),
               std::invalid_argument);
}

TEST(Als, IdenticalRowsGiveZero) {
  linalg::Matrix xd(3, 4, -65.0);
  xd(0, 1) = -60.0;
  xd(1, 1) = -60.0;
  xd(2, 1) = -60.0;
  const auto als = als_values(xd);
  EXPECT_EQ(als.rows(), 2u);
  for (double v : als.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Als, NormalizedToLargestDifference) {
  linalg::Matrix xd(2, 3, -70.0);
  xd(1, 0) = -60.0;  // difference 10 at (1,0): the max
  xd(1, 1) = -65.0;  // difference 5
  const auto als = als_values(xd);
  EXPECT_DOUBLE_EQ(als(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(als(0, 1), 0.5);
}

TEST(Als, SingleLinkThrows) {
  EXPECT_THROW((void)als_values(linalg::Matrix(1, 5)),
               std::invalid_argument);
}

TEST(FractionBelow, Basics) {
  const linalg::Matrix v{{0.1, 0.3, 0.5, 0.7}};
  EXPECT_DOUBLE_EQ(fraction_below(v, 0.4), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(v, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below(v, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(linalg::Matrix{}, 0.5), 0.0);
}

TEST(PaperObservations, OfficeNlcMostlyContinuous) {
  // Validation 2 (Fig. 8): the probability of NLC < 0.2 is large at every
  // time stamp.  Our simulated office reproduces the qualitative claim.
  const auto& run = iup::test::office_run();
  const auto layout = band_layout_of(run.ground_truth.at_day(0));
  const auto t = neighbor_matrix(layout.slots);
  for (std::size_t day : sim::paper_time_stamps()) {
    const auto xd =
        extract_largely_decrease(run.ground_truth.at_day(day), layout);
    EXPECT_GT(fraction_below(nlc_values(xd, t), 0.2), 0.7)
        << "day " << day;
  }
}

TEST(PaperObservations, OfficeAlsMostlySimilar) {
  // Validation 3 (Fig. 9): more than half of the adjacent-link differences
  // are below 0.4 (normalised) at every stamp.
  const auto& run = iup::test::office_run();
  const auto layout = band_layout_of(run.ground_truth.at_day(0));
  for (std::size_t day : sim::paper_time_stamps()) {
    const auto xd =
        extract_largely_decrease(run.ground_truth.at_day(day), layout);
    EXPECT_GT(fraction_below(als_values(xd), 0.4), 0.35) << "day " << day;
  }
}

}  // namespace
}  // namespace iup::core
