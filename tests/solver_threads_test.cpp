// Thread-count invariance: the headline guarantee of the parallel sweep is
// that 1 thread and N threads produce bit-identical results — every
// column/row owns its output slot and no floating-point reduction is ever
// reordered.  These tests compare exact (operator==) equality, not
// tolerances.
#include <gtest/gtest.h>

#include <vector>

#include "api/engine.hpp"
#include "core/self_augmented.hpp"
#include "eval/experiment.hpp"
#include "test_util.hpp"

namespace iup {
namespace {

core::RsvdProblem synthetic_problem(const core::BandLayout& layout,
                                    rng::Rng& rng) {
  const std::size_t m = layout.links;
  const std::size_t n = layout.num_cells();
  const linalg::Matrix x_full = test::random_low_rank(m, n, 4, rng);
  core::RsvdProblem problem;
  problem.b = linalg::Matrix(m, n);
  for (double& v : problem.b.data()) v = rng.uniform() < 0.8 ? 1.0 : 0.0;
  problem.x_b = problem.b.hadamard(x_full);
  problem.p = x_full;
  for (double& v : problem.p.data()) v += rng.normal(0.0, 0.01);
  return problem;
}

core::RsvdResult solve_with_threads(const core::RsvdProblem& problem,
                                    const core::BandLayout& layout,
                                    std::size_t threads) {
  core::RsvdOptions options;
  options.max_iters = 8;
  options.threads = threads;
  const core::SelfAugmentedRsvd solver(layout, options);
  return solver.solve(problem);
}

TEST(SolverThreadInvariance, BitIdenticalAcrossThreadCounts) {
  rng::Rng rng(42);
  const core::BandLayout layout{8, 12};
  const core::RsvdProblem problem = synthetic_problem(layout, rng);

  const core::RsvdResult base = solve_with_threads(problem, layout, 1);
  ASSERT_GT(base.iterations, 0u);
  for (const std::size_t threads : {2u, 3u, 8u, 0u /* auto */}) {
    const core::RsvdResult other =
        solve_with_threads(problem, layout, threads);
    EXPECT_EQ(other.l, base.l) << threads << " threads";
    EXPECT_EQ(other.r, base.r) << threads << " threads";
    EXPECT_EQ(other.x_hat, base.x_hat) << threads << " threads";
    EXPECT_EQ(other.objective_history, base.objective_history);
    EXPECT_EQ(other.iterations, base.iterations);
  }
}

TEST(SolverThreadInvariance, PaperLiteralModeToo) {
  rng::Rng rng(43);
  const core::BandLayout layout{8, 12};
  const core::RsvdProblem problem = synthetic_problem(layout, rng);
  core::RsvdOptions options;
  options.max_iters = 5;
  options.c2_mode = core::Constraint2Mode::kPaperLiteral;

  options.threads = 1;
  const auto base = core::SelfAugmentedRsvd(layout, options).solve(problem);
  options.threads = 8;
  const auto par = core::SelfAugmentedRsvd(layout, options).solve(problem);
  EXPECT_EQ(par.l, base.l);
  EXPECT_EQ(par.r, base.r);
  EXPECT_EQ(par.x_hat, base.x_hat);
}

TEST(EngineThreadInvariance, UpdateResultBitIdenticalOnOfficeTestbed) {
  const auto& run = test::office_run();

  api::Engine serial(api::EngineConfig().threads(1));
  api::Engine parallel(api::EngineConfig().threads(8));
  ASSERT_TRUE(eval::register_run(serial, run, "office").ok());
  ASSERT_TRUE(eval::register_run(parallel, run, "office").ok());

  const auto cells = serial.reference_cells("office").value();
  ASSERT_EQ(cells, parallel.reference_cells("office").value());
  const auto request = eval::collect_update_request(run, "office", cells, 45);

  const auto serial_result = serial.update(request);
  const auto parallel_result = parallel.update(request);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().to_string();
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().to_string();
  EXPECT_EQ(parallel_result.value().x_hat(), serial_result.value().x_hat());
  EXPECT_EQ(parallel_result.value().solver.objective_history,
            serial_result.value().solver.objective_history);
  EXPECT_EQ(parallel_result.value().committed_version,
            serial_result.value().committed_version);
}

TEST(EngineThreadInvariance, MultiSiteUpdateBatchMatchesSequential) {
  const auto& run = test::office_run();

  api::Engine serial(api::EngineConfig().threads(1));
  api::Engine parallel(api::EngineConfig().threads(4));
  for (const char* site : {"north", "south", "east"}) {
    ASSERT_TRUE(eval::register_run(serial, run, site).ok());
    ASSERT_TRUE(eval::register_run(parallel, run, site).ok());
  }
  const auto cells = serial.reference_cells("north").value();

  // Interleaved sites with two updates per site: the batch must keep the
  // per-site chains ordered (day 15 before day 45) while fanning the
  // sites out.
  std::vector<api::UpdateRequest> requests;
  for (const std::size_t day : {15u, 45u}) {
    for (const char* site : {"north", "south", "east"}) {
      requests.push_back(eval::collect_update_request(run, site, cells, day));
    }
  }

  const auto serial_results = serial.update_batch(requests);
  const auto parallel_results = parallel.update_batch(requests);
  ASSERT_EQ(serial_results.size(), requests.size());
  ASSERT_EQ(parallel_results.size(), requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    ASSERT_TRUE(serial_results[k].ok());
    ASSERT_TRUE(parallel_results[k].ok())
        << parallel_results[k].status().to_string();
    EXPECT_EQ(parallel_results[k].value().x_hat(),
              serial_results[k].value().x_hat())
        << "request " << k;
    EXPECT_EQ(parallel_results[k].value().committed_version,
              serial_results[k].value().committed_version);
  }
  // Both engines end in the same store state.
  for (const char* site : {"north", "south", "east"}) {
    EXPECT_EQ(serial.store().version_count(site), 3u);
    EXPECT_EQ(parallel.store().version_count(site), 3u);
    EXPECT_EQ(parallel.snapshot(site).value()->database(),
              serial.snapshot(site).value()->database());
  }
}

TEST(EngineThreadInvariance, LocalizeBatchMatchesSequential) {
  const auto& run = test::office_run();
  api::Engine serial(api::EngineConfig().threads(1));
  api::Engine parallel(api::EngineConfig().threads(8));
  ASSERT_TRUE(eval::register_run(serial, run, "office").ok());
  ASSERT_TRUE(eval::register_run(parallel, run, "office").ok());

  const auto& x = run.ground_truth.at_day(0);
  std::vector<std::vector<double>> measurements;
  for (std::size_t j = 0; j < x.cols(); j += 7) {
    measurements.push_back(x.col(j));
  }

  const auto serial_estimates = serial.localize_batch("office", measurements);
  const auto parallel_estimates =
      parallel.localize_batch("office", measurements);
  ASSERT_TRUE(serial_estimates.ok());
  ASSERT_TRUE(parallel_estimates.ok());
  ASSERT_EQ(serial_estimates.value().size(), measurements.size());
  ASSERT_EQ(parallel_estimates.value().size(), measurements.size());
  for (std::size_t k = 0; k < measurements.size(); ++k) {
    EXPECT_EQ(parallel_estimates.value()[k].cell,
              serial_estimates.value()[k].cell);
    EXPECT_EQ(parallel_estimates.value()[k].score,
              serial_estimates.value()[k].score);
  }
}

}  // namespace
}  // namespace iup
