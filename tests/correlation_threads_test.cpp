// Thread-count invariance of the correlation pipeline (MIC + LRR) and the
// engine's versioned warm-start factor cache.
//
// The MIC column scoring and the LRR ADMM fan-out carry the same guarantee
// as the solver sweep: 1 thread and N threads produce bit-identical
// results, because every column owns its output slice and no floating-
// point reduction depends on the chunk partition.  These tests compare
// exact (operator==) equality, not tolerances — mirroring
// solver_threads_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "api/engine.hpp"
#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "core/self_augmented.hpp"
#include "eval/experiment.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace iup {
namespace {

TEST(MicThreadInvariance, BitIdenticalAcrossThreadCounts) {
  const auto& x = test::office_run().ground_truth.at_day(0);
  const auto base = core::extract_mic(x, core::MicStrategy::kQrcp,
                                      core::kMicDefaultRelTol, 1);
  ASSERT_GT(base.rank, 0u);
  for (const std::size_t threads : {2u, 3u, 8u, 0u /* auto */}) {
    const auto other = core::extract_mic(
        x, core::MicStrategy::kQrcp, core::kMicDefaultRelTol, threads);
    EXPECT_EQ(other.reference_cells, base.reference_cells)
        << threads << " threads";
    EXPECT_EQ(other.x_mic, base.x_mic) << threads << " threads";
    EXPECT_EQ(other.rank, base.rank) << threads << " threads";
  }
}

TEST(MicThreadInvariance, SyntheticLowRankKeepsRankAtAnyThreadCount) {
  rng::Rng rng(71);
  const auto x = test::random_low_rank(6, 40, 4, rng);
  const auto base = core::extract_mic(x, core::MicStrategy::kQrcp,
                                      core::kMicDefaultRelTol, 1);
  const auto par = core::extract_mic(x, core::MicStrategy::kQrcp,
                                     core::kMicDefaultRelTol, 8);
  EXPECT_EQ(base.rank, 4u);
  EXPECT_EQ(par.reference_cells, base.reference_cells);
  EXPECT_EQ(par.x_mic, base.x_mic);
}

TEST(LrrThreadInvariance, BitIdenticalAcrossThreadCounts) {
  const auto& x = test::office_run().ground_truth.at_day(0);
  const auto mic = core::extract_mic(x);
  core::LrrOptions options;
  options.threads = 1;
  const auto base = core::solve_lrr(mic.x_mic, x, options);
  ASSERT_GT(base.iterations, 0u);
  for (const std::size_t threads : {2u, 3u, 8u, 0u /* auto */}) {
    options.threads = threads;
    const auto other = core::solve_lrr(mic.x_mic, x, options);
    EXPECT_EQ(other.z, base.z) << threads << " threads";
    EXPECT_EQ(other.e, base.e) << threads << " threads";
    EXPECT_EQ(other.iterations, base.iterations) << threads << " threads";
    EXPECT_EQ(other.residual, base.residual) << threads << " threads";
    EXPECT_EQ(other.converged, base.converged) << threads << " threads";
  }
}

TEST(LrrThreadInvariance, ParallelSolveStillPredictsHeldOutColumns) {
  // Quality guard: the rewritten (parallel, Gram-side SVT) solver must
  // keep the correlation property the pipeline relies on (cf.
  // core_mic_lrr_test's serial variant).
  const auto& x0 = test::office_run().ground_truth.at_day(0);
  const auto mic = core::extract_mic(x0);
  core::LrrOptions options;
  options.threads = 8;
  const auto lrr = core::solve_lrr(mic.x_mic, x0, options);
  EXPECT_LT(linalg::relative_error(mic.x_mic * lrr.z, x0), 0.05);
}

TEST(SolverWarmStart, ExplicitL0ReproducesDefaultInitialisationExactly) {
  // Passing the solver's own initial factor through RsvdProblem::l0 must
  // change nothing: same iterates, bit for bit.
  const auto& run = test::office_run();
  const core::BandLayout layout = core::band_layout_of(run.b_mask);
  core::RsvdOptions options;
  options.max_iters = 6;
  const core::SelfAugmentedRsvd solver(layout, options);

  core::RsvdProblem problem;
  problem.x_b = run.b_mask.hadamard(run.ground_truth.at_day(45));
  problem.b = run.b_mask;
  problem.p = run.ground_truth.at_day(0);

  const core::RsvdResult cold = solver.solve(problem);
  core::RsvdProblem warmed = problem;
  warmed.l0 = solver.initial_factor(problem);
  const core::RsvdResult warm = solver.solve(warmed);
  EXPECT_EQ(warm.l, cold.l);
  EXPECT_EQ(warm.r, cold.r);
  EXPECT_EQ(warm.x_hat, cold.x_hat);
  EXPECT_EQ(warm.objective_history, cold.objective_history);
}

TEST(SolverWarmStart, ShapeMismatchThrows) {
  const auto& run = test::office_run();
  const core::BandLayout layout = core::band_layout_of(run.b_mask);
  core::RsvdOptions options;
  options.max_iters = 1;
  const core::SelfAugmentedRsvd solver(layout, options);
  core::RsvdProblem problem;
  problem.x_b = run.b_mask.hadamard(run.ground_truth.at_day(45));
  problem.b = run.b_mask;
  problem.p = run.ground_truth.at_day(0);
  problem.l0 = linalg::Matrix(3, 2);
  EXPECT_THROW((void)solver.solve(problem), std::invalid_argument);
}

TEST(EngineWarmStartCache, TracksCommittedVersions) {
  const auto& run = test::office_run();
  api::Engine engine{api::EngineConfig{}};
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  // Registration commits version 1 without a solve: no cached factor yet.
  EXPECT_FALSE(engine.warm_start_version("office").has_value());

  const auto cells = engine.reference_cells("office").value();
  const auto r1 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r1.ok()) << r1.status().to_string();
  ASSERT_EQ(r1.value().committed_version, 2u);
  EXPECT_EQ(engine.warm_start_version("office"),
            std::optional<std::uint64_t>{2});

  const auto r2 =
      engine.update(eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(r2.ok()) << r2.status().to_string();
  EXPECT_EQ(engine.warm_start_version("office"),
            std::optional<std::uint64_t>{3});

  ASSERT_TRUE(engine.drop_site("office").ok());
  EXPECT_FALSE(engine.warm_start_version("office").has_value());
}

TEST(EngineWarmStartCache, InvalidatedWhenTheSiteMovesWithoutASolve) {
  const auto& run = test::office_run();
  api::Engine engine{api::EngineConfig{}};
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  const auto cells = engine.reference_cells("office").value();

  const auto r1 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(engine.warm_start_version("office"),
            std::optional<std::uint64_t>{2});

  // set_reference_cells commits version 3 without running the solver: the
  // cache still holds the version-2 factor, which no current snapshot
  // matches — the next solve must initialise cold, then re-cache at its
  // own committed version.
  ASSERT_TRUE(engine.set_reference_cells("office", cells).ok());
  ASSERT_EQ(engine.snapshot("office").value()->version(), 3u);
  EXPECT_EQ(engine.warm_start_version("office"),
            std::optional<std::uint64_t>{2});

  const auto r2 =
      engine.update(eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(r2.ok()) << r2.status().to_string();
  EXPECT_EQ(r2.value().committed_version, 4u);
  EXPECT_EQ(engine.warm_start_version("office"),
            std::optional<std::uint64_t>{4});
}

TEST(EngineWarmStartCache, DisabledEngineNeverCaches) {
  const auto& run = test::office_run();
  api::Engine engine(api::EngineConfig().warm_start(false));
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  const auto cells = engine.reference_cells("office").value();
  const auto r1 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(engine.warm_start_version("office").has_value());
}

TEST(EngineWarmStartCache, BackendThatIgnoresL0NeverCaches) {
  // A kRandom-init solver never consumes problem.l0
  // (SolverBackend::uses_warm_start() is false), so the engine must not
  // pay for factor copies or retain cache memory for it.
  const auto& run = test::office_run();
  core::RsvdOptions options;
  options.init = core::FactorInit::kRandom;
  api::Engine engine(api::EngineConfig().rsvd(options));
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  const auto cells = engine.reference_cells("office").value();
  const auto r1 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r1.ok()) << r1.status().to_string();
  EXPECT_FALSE(engine.warm_start_version("office").has_value());
}

TEST(EngineWarmStartCache, WarmAndColdChainsStayThreadInvariant) {
  // The headline guarantee survives the cache: a serial and a parallel
  // engine evolve identical caches and produce bit-identical chains.
  const auto& run = test::office_run();
  api::Engine serial(api::EngineConfig().threads(1));
  api::Engine parallel(api::EngineConfig().threads(8));
  ASSERT_TRUE(eval::register_run(serial, run, "office").ok());
  ASSERT_TRUE(eval::register_run(parallel, run, "office").ok());
  const auto cells = serial.reference_cells("office").value();

  for (const std::size_t day : {15u, 45u, 90u}) {
    const auto request =
        eval::collect_update_request(run, "office", cells, day);
    const auto a = serial.update(request);
    const auto b = parallel.update(request);
    ASSERT_TRUE(a.ok()) << a.status().to_string();
    ASSERT_TRUE(b.ok()) << b.status().to_string();
    EXPECT_EQ(b.value().x_hat(), a.value().x_hat()) << "day " << day;
    EXPECT_EQ(b.value().snapshot->correlation(),
              a.value().snapshot->correlation())
        << "day " << day;
  }
}

TEST(LrrThreadInvariance, WarmRestartBitIdenticalAcrossThreadCounts) {
  // The warm ADMM path carries the same guarantee as the cold one: the
  // resumed multipliers / adaptive mu schedule never reorder a reduction
  // across the chunk partition.
  const auto& run = test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const auto& x1 = run.ground_truth.at_day(45);
  const auto mic = core::extract_mic(x0);
  core::LrrOptions options;
  const auto cold = core::solve_lrr(mic.x_mic, x0, options);

  core::LrrWarmStart warm;
  warm.z = cold.z;
  warm.y1 = cold.y1;
  warm.y2 = cold.y2;
  warm.mu = cold.mu_final;
  const auto mic1 = core::mic_from_cells(x1, mic.reference_cells);
  options.threads = 1;
  const auto base = core::solve_lrr(mic1.x_mic, x1, options, &warm);
  for (const std::size_t threads : {2u, 8u, 0u /* auto */}) {
    options.threads = threads;
    const auto other = core::solve_lrr(mic1.x_mic, x1, options, &warm);
    EXPECT_EQ(other.z, base.z) << threads << " threads";
    EXPECT_EQ(other.y1, base.y1) << threads << " threads";
    EXPECT_EQ(other.y2, base.y2) << threads << " threads";
    EXPECT_EQ(other.iterations, base.iterations) << threads << " threads";
  }
}

TEST(EngineLrrWarmCache, SeededAtRegistrationAndTrackedAcrossCommits) {
  const auto& run = test::office_run();
  api::Engine engine{api::EngineConfig{}};
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  // Registration itself seeds the refresh cache (unlike the solver-factor
  // cache, which needs an update's converged factor).
  EXPECT_EQ(engine.lrr_warm_version("office"),
            std::optional<std::uint64_t>{1});

  const auto cells = engine.reference_cells("office").value();
  const auto r1 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r1.ok()) << r1.status().to_string();
  EXPECT_EQ(engine.lrr_warm_version("office"),
            std::optional<std::uint64_t>{2});

  // set_reference_cells re-acquires cold and re-seeds at its version.
  ASSERT_TRUE(engine.set_reference_cells("office", cells).ok());
  EXPECT_EQ(engine.lrr_warm_version("office"),
            std::optional<std::uint64_t>{3});

  ASSERT_TRUE(engine.drop_site("office").ok());
  EXPECT_FALSE(engine.lrr_warm_version("office").has_value());
}

TEST(EngineLrrWarmCache, DisabledEngineMatchesColdRefreshesExactly) {
  // lrr_warm_start(false) must reproduce the cold-refresh chain bit for
  // bit, and never retain ADMM state.
  const auto& run = test::office_run();
  api::Engine warm_engine{api::EngineConfig{}};
  api::Engine cold_engine(api::EngineConfig().lrr_warm_start(false));
  ASSERT_TRUE(eval::register_run(warm_engine, run, "office").ok());
  ASSERT_TRUE(eval::register_run(cold_engine, run, "office").ok());
  EXPECT_FALSE(cold_engine.lrr_warm_version("office").has_value());
  // Registration is a cold solve either way: identical snapshots.
  EXPECT_EQ(warm_engine.snapshot("office").value()->correlation(),
            cold_engine.snapshot("office").value()->correlation());

  const auto cells = warm_engine.reference_cells("office").value();
  const auto request =
      eval::collect_update_request(run, "office", cells, 45);
  const auto warm_result = warm_engine.update(request);
  const auto cold_result = cold_engine.update(request);
  ASSERT_TRUE(warm_result.ok());
  ASSERT_TRUE(cold_result.ok());
  // Same reconstruction (the solve itself never sees the LRR cache)...
  EXPECT_EQ(warm_result.value().x_hat(), cold_result.value().x_hat());
  // ...and refreshed correlations that agree to the ADMM fixed point,
  // warm vs cold.
  const auto& zw = warm_result.value().snapshot->correlation();
  const auto& zc = cold_result.value().snapshot->correlation();
  EXPECT_LT(linalg::relative_error(zw, zc), 1e-5);
  EXPECT_FALSE(cold_engine.lrr_warm_version("office").has_value());
}

}  // namespace
}  // namespace iup
