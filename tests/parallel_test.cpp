// iup::parallel — deterministic partitioning and pool scheduling.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace iup::parallel {
namespace {

TEST(ChunkRange, CoversEveryIndexExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 64u, 100u, 1000u}) {
    for (const std::size_t ways : {1u, 2u, 3u, 8u, 13u, 64u}) {
      std::vector<int> hits(n, 0);
      std::size_t prev_end = 0;
      for (std::size_t c = 0; c < ways; ++c) {
        const auto [begin, end] = chunk_range(n, ways, c);
        EXPECT_EQ(begin, prev_end) << "chunks must be contiguous";
        prev_end = end;
        for (std::size_t i = begin; i < end; ++i) hits[i]++;
      }
      EXPECT_EQ(prev_end, n);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
    }
  }
}

TEST(ChunkRange, BalancedWithinOneElement) {
  const std::size_t n = 103;
  const std::size_t ways = 8;
  std::size_t smallest = n, largest = 0;
  for (std::size_t c = 0; c < ways; ++c) {
    const auto [begin, end] = chunk_range(n, ways, c);
    smallest = std::min(smallest, end - begin);
    largest = std::max(largest, end - begin);
  }
  EXPECT_LE(largest - smallest, 1u);
}

TEST(ResolveThreads, ZeroMeansHardwareAndNeverZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(8), 8u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(8, n, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, SlotsAreStableAndInRange) {
  const std::size_t n = 57;
  const std::size_t threads = 8;
  std::vector<std::size_t> slot_of(n, threads);
  parallel_for(threads, n,
               [&](std::size_t begin, std::size_t end, std::size_t slot) {
                 for (std::size_t i = begin; i < end; ++i) slot_of[i] = slot;
               });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_LT(slot_of[i], threads);
    // The slot must be the chunk index the static partition assigns.
    const auto [begin, end] = chunk_range(n, threads, slot_of[i]);
    EXPECT_GE(i, begin);
    EXPECT_LT(i, end);
  }
}

TEST(ParallelFor, SerialAndEmptyEdgeCases) {
  int calls = 0;
  parallel_for(1, 10, [&](std::size_t begin, std::size_t end, std::size_t s) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    EXPECT_EQ(s, 0u);
    calls++;
  });
  EXPECT_EQ(calls, 1);
  parallel_for(8, 0, [&](std::size_t, std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls, 1) << "n == 0 must not invoke the body";
}

TEST(ParallelFor, MoreWaysThanIndicesClampsToN) {
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> chunks{0};
  parallel_for(16, 3, [&](std::size_t begin, std::size_t end, std::size_t) {
    chunks++;
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  EXPECT_EQ(chunks.load(), 3);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedCallsKeepPartitionAndCoverage) {
  // Budgeted nesting: a nested fan-out submits to the shared pool (so
  // surplus workers can help), with the same (n, ways) partition and the
  // same slots as the sequential degrade — and it must never deadlock,
  // including when every outer chunk nests at once.
  const std::size_t outer = 4, inner = 20;
  std::vector<std::atomic<int>> hits(outer * inner);
  parallel_for(4, outer, [&](std::size_t ob, std::size_t oe, std::size_t) {
    for (std::size_t o = ob; o < oe; ++o) {
      parallel_for(4, inner,
                   [&](std::size_t ib, std::size_t ie, std::size_t slot) {
                     EXPECT_LT(slot, 4u);
                     for (std::size_t i = ib; i < ie; ++i) {
                       hits[o * inner + i]++;
                     }
                   });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, TripleNestingDegradesPastTheBudgetAndCompletes) {
  // Depth 0 and 1 submit to the pool; depth 2 runs inline.  Whatever the
  // scheduling, every leaf index is visited exactly once.
  const std::size_t a = 3, b = 4, c = 5;
  std::vector<std::atomic<int>> hits(a * b * c);
  parallel_for(8, a, [&](std::size_t ab, std::size_t ae, std::size_t) {
    for (std::size_t i = ab; i < ae; ++i) {
      parallel_for(8, b, [&](std::size_t bb, std::size_t be, std::size_t) {
        for (std::size_t j = bb; j < be; ++j) {
          parallel_for(8, c,
                       [&](std::size_t cb, std::size_t ce, std::size_t) {
                         for (std::size_t k = cb; k < ce; ++k) {
                           hits[(i * b + j) * c + k]++;
                         }
                       });
        }
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedDeterministicAcrossThreadCounts) {
  // The engine's update_batch shape: few outer chains, per-chain inner
  // fan-outs.  Outputs must be bit-identical whether the inner loops get
  // surplus workers (outer threads > chains) or run serially.
  const std::size_t chains = 2, n = 64;
  const auto run = [&](std::size_t outer_threads, std::size_t inner_threads) {
    std::vector<double> out(chains * n);
    parallel_for(outer_threads, chains,
                 [&](std::size_t ob, std::size_t oe, std::size_t) {
                   for (std::size_t o = ob; o < oe; ++o) {
                     parallel_for(inner_threads, n,
                                  [&](std::size_t ib, std::size_t ie,
                                      std::size_t) {
                                    for (std::size_t i = ib; i < ie; ++i) {
                                      double acc = 0.0;
                                      for (std::size_t k = 0; k <= i; ++k) {
                                        acc += 1.0 / double(k + 1 + o);
                                      }
                                      out[o * n + i] = acc;
                                    }
                                  });
                   }
                 });
    return out;
  };
  const auto serial = run(1, 1);
  EXPECT_EQ(run(8, 8), serial);
  EXPECT_EQ(run(2, 4), serial);
  EXPECT_EQ(run(8, 1), serial);
}

TEST(ParallelFor, DeterministicSumViaExclusiveSlots) {
  // The determinism contract: per-index results never depend on the
  // thread count because each index owns its output slot.
  const std::size_t n = 512;
  std::vector<double> out1(n), out8(n);
  const auto body = [](std::vector<double>& out) {
    return [&out](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k <= i; ++k) acc += 1.0 / double(k + 1);
        out[i] = acc;
      }
    };
  };
  parallel_for(1, n, body(out1));
  parallel_for(8, n, body(out8));
  EXPECT_EQ(out1, out8);
}

TEST(ThreadPool, DedicatedPoolRunsAndJoins) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.run(100, 4, [&](std::size_t begin, std::size_t end, std::size_t) {
      total += static_cast<int>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 1000);
}

}  // namespace
}  // namespace iup::parallel
