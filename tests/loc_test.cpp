// OMP and KNN localizers.
#include <gtest/gtest.h>

#include "loc/knn.hpp"
#include "loc/omp.hpp"
#include "test_util.hpp"

namespace iup::loc {
namespace {

TEST(Omp, RecoversExactAtoms) {
  const auto& run = iup::test::office_run();
  const auto& x = run.ground_truth.at_day(0);
  const OmpLocalizer omp(x, {});
  for (std::size_t j = 0; j < x.cols(); j += 7) {
    EXPECT_EQ(omp.localize(x.col(j)).cell, j) << "column " << j;
  }
}

TEST(Omp, MeasurementLengthMismatchThrows) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const OmpLocalizer omp(x, {});
  EXPECT_THROW((void)omp.localize(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Omp, EmptyDatabaseThrows) {
  EXPECT_THROW(OmpLocalizer(linalg::Matrix{}, {}), std::invalid_argument);
}

TEST(Omp, BaselineLengthMismatchThrows) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  EXPECT_THROW(OmpLocalizer(x, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Omp, NoisyMeasurementsMostlyNearTruth) {
  const auto& run = iup::test::office_run();
  const auto& x = run.ground_truth.at_day(0);
  const OmpLocalizer omp(x, {});
  sim::Sampler sampler(run.testbed, "omp-test");
  double total_err = 0.0;
  const std::size_t n = run.testbed.num_cells();
  for (std::size_t j = 0; j < n; ++j) {
    const auto y = sampler.online_measurement(j, 0, 5);
    total_err += cell_distance_m(run.testbed.deployment(), j,
                                 omp.localize(y).cell);
  }
  EXPECT_LT(total_err / static_cast<double>(n), 2.5);  // mean error bound
}

TEST(Omp, SparseSolveFindsPlantedTwoTargetSupport) {
  // Multi-target extension: y = atom_a + atom_b should put both cells in
  // the OMP support.
  const auto& run = iup::test::office_run();
  const auto& x = run.ground_truth.at_day(0);
  OmpOptions opt;
  opt.max_atoms = 4;
  opt.subtract_baseline = true;
  const OmpLocalizer omp(x, {}, opt);
  const std::size_t a = 5, b = 60;  // targets in different bands
  // Combined perturbation: sum of the two baseline-subtracted columns.
  std::vector<double> y(x.rows());
  const auto& base = omp.baselines();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = base[i] + (x(i, a) - base[i]) + (x(i, b) - base[i]);
  }
  const auto sol = omp.solve(y);
  // Fingerprint atoms within a band are strongly correlated (spatially
  // smooth multipath), so superposed targets lose within-band resolution;
  // what multi-target OMP reliably delivers is (i) detection of both
  // affected links and (ii) an accurate fix for at least one target.
  const auto& dep = run.testbed.deployment();
  const auto band_found = [&](std::size_t target) {
    for (std::size_t s : sol.support) {
      if (dep.band_of(s) == dep.band_of(target)) return true;
    }
    return false;
  };
  const auto best_distance = [&](std::size_t target) {
    double best = 1e9;
    for (std::size_t s : sol.support) {
      best = std::min(best, cell_distance_m(dep, s, target));
    }
    return best;
  };
  EXPECT_TRUE(band_found(a));
  EXPECT_TRUE(band_found(b));
  EXPECT_LT(std::min(best_distance(a), best_distance(b)), 1.25);
}

TEST(Omp, RawDomainVariantWorksOnExactColumns) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  OmpOptions opt;
  opt.subtract_baseline = false;
  const OmpLocalizer omp(x, {}, opt);
  // Raw-domain matching is weaker but must still recover exact columns.
  std::size_t hits = 0;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    if (omp.localize(x.col(j)).cell == j) ++hits;
  }
  EXPECT_GT(hits, x.cols() / 2);
}

TEST(Omp, ResidualThresholdStopsAtomSelection) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  OmpOptions opt;
  opt.max_atoms = 5;
  opt.residual_xi = 1.0;  // ||r||^2 < ||y||^2 immediately after one atom
  const OmpLocalizer omp(x, {}, opt);
  const auto sol = omp.solve(x.col(10));
  EXPECT_EQ(sol.support.size(), 1u);
}

TEST(Knn, NearestColumnExact) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const KnnLocalizer knn(x, KnnOptions{1});
  for (std::size_t j = 0; j < x.cols(); j += 11) {
    EXPECT_EQ(knn.localize(x.col(j)).cell, j);
  }
}

TEST(Knn, InvalidConstructionThrows) {
  EXPECT_THROW(KnnLocalizer(linalg::Matrix{}, {}), std::invalid_argument);
  EXPECT_THROW(KnnLocalizer(linalg::Matrix(2, 2), KnnOptions{0}),
               std::invalid_argument);
}

TEST(Knn, CentroidAveragingWithDeployment) {
  const auto& run = iup::test::office_run();
  const auto& x = run.ground_truth.at_day(0);
  KnnLocalizer knn(x, KnnOptions{3});
  knn.set_deployment(&run.testbed.deployment());
  sim::Sampler sampler(run.testbed, "knn-test");
  double total_err = 0.0;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const auto y = sampler.online_measurement(j, 0, 5);
    total_err += cell_distance_m(run.testbed.deployment(), j,
                                 knn.localize(y).cell);
  }
  EXPECT_LT(total_err / static_cast<double>(x.cols()), 2.5);
}

TEST(Knn, MeasurementLengthMismatchThrows) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const KnnLocalizer knn(x);
  EXPECT_THROW((void)knn.localize(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Localizer, CellDistance) {
  const auto& dep = iup::test::office_run().testbed.deployment();
  EXPECT_DOUBLE_EQ(cell_distance_m(dep, 3, 3), 0.0);
  EXPECT_NEAR(cell_distance_m(dep, 0, 1), 0.6, 1e-12);  // adjacent slots
}

}  // namespace
}  // namespace iup::loc
