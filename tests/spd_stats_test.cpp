// The process-wide SpdStats counters are incremented from thread-pool
// workers (the solver sweep's per-column solves and the LRR's factor-once
// path both run on iup::parallel), so they must be atomics: a torn or lost
// increment would silently misreport how often the solve path degrades.
// These tests hammer the counters from many pool chunks and assert EXACT
// totals — a data race would both lose counts and trip TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace iup::linalg {
namespace {

// Symmetric indefinite: the plain factorisation fails, both relative
// diagonal bumps (1e-10 and 1e-6 of the mean diagonal, here ~1) are far
// too small to rescue the -1 eigenvalue, and the solve must pay for LU.
Matrix indefinite_matrix() {
  Matrix a = Matrix::identity(4);
  a(3, 3) = -1.0;
  return a;
}

// Nearly-PSD: one diagonal entry is a hair negative, so the first
// factorisation fails, the 1e-10 bump is still short, and the 1e-6 bump
// (relative to the mean diagonal ~1) rescues it deterministically.
Matrix bump_rescued_matrix() {
  Matrix a = Matrix::identity(4);
  a(3, 3) = -1e-8;
  return a;
}

TEST(SpdStats, CountersAreExactUnderPoolConcurrency) {
  constexpr std::size_t kSolves = 256;
  constexpr std::size_t kThreads = 8;
  reset_spd_stats();

  parallel::parallel_for(
      kThreads, kSolves,
      [](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> bx(4, 1.0);
        std::vector<double> diag(4);
        for (std::size_t k = begin; k < end; ++k) {
          Matrix a = indefinite_matrix();
          std::fill(bx.begin(), bx.end(), 1.0);
          solve_spd_into(a, bx, diag);
        }
      });

  const SpdStats stats = spd_stats();
  EXPECT_EQ(stats.cholesky_failures, kSolves);
  EXPECT_EQ(stats.bump_recoveries, 0u);
  EXPECT_EQ(stats.lu_fallbacks, kSolves);
}

TEST(SpdStats, BumpRecoveriesAreExactUnderPoolConcurrency) {
  constexpr std::size_t kSolves = 256;
  constexpr std::size_t kThreads = 8;
  reset_spd_stats();

  parallel::parallel_for(
      kThreads, kSolves,
      [](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> bx(4, 1.0);
        std::vector<double> diag(4);
        for (std::size_t k = begin; k < end; ++k) {
          Matrix a = bump_rescued_matrix();
          std::fill(bx.begin(), bx.end(), 1.0);
          solve_spd_into(a, bx, diag);
        }
      });

  const SpdStats stats = spd_stats();
  EXPECT_EQ(stats.cholesky_failures, kSolves);
  EXPECT_EQ(stats.bump_recoveries, kSolves);
  EXPECT_EQ(stats.lu_fallbacks, 0u);
}

TEST(SpdStats, FactorSpdCountsAndRestoresOnFailure) {
  reset_spd_stats();
  Matrix a = indefinite_matrix();
  const Matrix original = a;
  std::vector<double> diag(4);
  EXPECT_FALSE(factor_spd(a, diag));
  // The failed factorisation restores the symmetrised, unbumped input.
  EXPECT_EQ(a, original);
  const SpdStats stats = spd_stats();
  EXPECT_EQ(stats.cholesky_failures, 1u);
  EXPECT_EQ(stats.lu_fallbacks, 0u);

  // A well-conditioned SPD factor succeeds and is usable for solves.
  Matrix spd = Matrix::identity(3);
  spd(0, 0) = 4.0;
  std::vector<double> d3(3);
  ASSERT_TRUE(factor_spd(spd, d3));
  std::vector<double> bx = {8.0, 2.0, 3.0};
  solve_factored_spd(spd, bx);
  EXPECT_DOUBLE_EQ(bx[0], 2.0);
  EXPECT_DOUBLE_EQ(bx[1], 2.0);
  EXPECT_DOUBLE_EQ(bx[2], 3.0);

  reset_spd_stats();
}

}  // namespace
}  // namespace iup::linalg
