// Kill-and-recover: SIGKILL the process at seeded fault points inside the
// WAL append and the checkpoint publication, then prove the recovered
// engine serves BIT-IDENTICAL localizations to an uninterrupted run of
// the same workload at the same version.
//
// Mechanics: each scenario forks; the CHILD arms one persist::CrashPoint
// and runs the durable workload until maybe_crash() raises SIGKILL
// mid-I/O; the PARENT (which computed the uninterrupted reference before
// forking) waits for the SIGKILL, recovers a fresh engine from the
// directory the child died in, and compares snapshots and localize
// estimates byte-for-byte against the reference at whatever version
// recovery reached.  Engines run with threads(1) so the child never
// inherits a dead thread pool — the fork happens before any engine
// exists in the child's lifetime of use.
//
// This is a plain fork harness rather than a gtest death test because the
// parent needs the child's DIRECTORY, not its output, and must assert on
// recovered state afterwards.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "persist/checkpoint.hpp"
#include "persist/crash.hpp"
#include "persist/durability.hpp"
#include "test_util.hpp"

namespace iup::persist {
namespace {

using api::Engine;
using api::EngineConfig;

struct TempDir {
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "iup-crash-XXXXXX";
    path = ::mkdtemp(tmpl.data()) != nullptr ? tmpl : std::string();
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  std::string path;
};

constexpr std::size_t kDays[] = {15, 30, 45, 60, 75};

/// The shared workload: register the office site and commit five updates
/// (6 commits total).  Stops early only if the process is killed.
void run_workload(Engine& engine, const eval::EnvironmentRun& run) {
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  const auto cells = engine.snapshot("office").value()->reference_cells();
  for (const std::size_t day : kDays) {
    const auto result =
        engine.update(eval::collect_update_request(run, "office", cells, day));
    ASSERT_TRUE(result.ok()) << result.status().to_string();
  }
}

/// Uninterrupted reference: every committed database + a localize panel,
/// indexed by version (1-based).
struct Reference {
  std::vector<linalg::Matrix> databases;                  // [version - 1]
  std::vector<std::vector<double>> probes;
  std::vector<std::vector<loc::LocalizationEstimate>> estimates;
};

Reference build_reference(const eval::EnvironmentRun& run) {
  Engine engine(EngineConfig().threads(1));
  run_workload(engine, run);
  Reference ref;
  const std::uint64_t latest =
      engine.store().latest("office").value()->version();
  for (std::uint64_t v = 1; v <= latest; ++v) {
    ref.databases.push_back(
        engine.store().at_version("office", v).value()->database());
  }
  const linalg::Matrix& v1 = ref.databases.front();
  for (std::size_t column = 0; column < v1.cols(); column += 11) {
    std::vector<double> probe(v1.rows());
    for (std::size_t i = 0; i < v1.rows(); ++i) {
      probe[i] = v1(i, column) + 2.0;
    }
    ref.probes.push_back(std::move(probe));
  }
  // Estimates per version: republish by replaying through a second engine
  // is unnecessary — localizers are pure functions of the database, so
  // compute the panel against each stored version via a throwaway engine.
  for (std::uint64_t v = 1; v <= latest; ++v) {
    Engine probe_engine(EngineConfig().threads(1));
    // Reconstruct serving at version v exactly: restore is overkill; use
    // the real engine by replay.  Cheaper: run the workload up to v - 1
    // updates and localize there.
    EXPECT_TRUE(eval::register_run(probe_engine, run, "office").ok())
        << "probe engine registration";
    const auto cells =
        probe_engine.snapshot("office").value()->reference_cells();
    for (std::uint64_t k = 0; k + 1 < v; ++k) {
      const auto result = probe_engine.update(
          eval::collect_update_request(run, "office", cells, kDays[k]));
      EXPECT_TRUE(result.ok());
    }
    std::vector<loc::LocalizationEstimate> row;
    for (const std::vector<double>& probe : ref.probes) {
      row.push_back(probe_engine.localize("office", probe).value());
    }
    ref.estimates.push_back(std::move(row));
  }
  return ref;
}

const Reference& reference(const eval::EnvironmentRun& run) {
  static const Reference ref = build_reference(run);
  return ref;
}

/// Child body: run the durable workload with `point` armed after
/// `skip_hits` benign passes.  Never returns when the crash fires.
void child_workload(const std::string& dir, const eval::EnvironmentRun& run,
                    CrashPoint point, std::uint64_t skip_hits,
                    std::size_t checkpoint_every) {
  arm_crash_point(point, skip_hits);
  DurabilityManager manager({dir, checkpoint_every, /*fsync=*/true});
  Engine engine(EngineConfig().threads(1).update_hooks(
      manager.engine_hooks()));
  if (!manager.bind(&engine).ok()) _exit(10);
  eval::register_run(engine, run, "office");
  const auto snapshot = engine.snapshot("office");
  if (!snapshot.ok()) _exit(11);
  const auto cells = snapshot.value()->reference_cells();
  for (const std::size_t day : kDays) {
    engine.update(eval::collect_update_request(run, "office", cells, day));
  }
  _exit(12);  // crash point never fired: the scenario is miswired
}

/// Fork, crash the child at `point`, recover in the parent, and require
/// the recovered engine to match the uninterrupted reference exactly at
/// whatever version recovery reached.
void crash_and_recover(const eval::EnvironmentRun& run, CrashPoint point,
                       std::uint64_t skip_hits,
                       std::size_t checkpoint_every) {
  const Reference& ref = reference(run);
  TempDir dir;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    child_workload(dir.path, run, point, skip_hits, checkpoint_every);
    _exit(13);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited " << WEXITSTATUS(status)
      << " instead of dying at the crash point";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  DurabilityManager manager({dir.path, checkpoint_every, /*fsync=*/true});
  Engine recovered(EngineConfig().threads(1).update_hooks(
      manager.engine_hooks()));
  ASSERT_TRUE(manager.recover(&recovered).ok());

  // The child died mid-commit-stream: recovery must land on SOME prefix
  // of the uninterrupted run (at least the commits the crash point let
  // through), and every recovered version must match it byte for byte.
  const auto latest = recovered.store().latest("office");
  ASSERT_TRUE(latest.ok()) << "no site recovered";
  const std::uint64_t version = latest.value()->version();
  ASSERT_GE(version, 1u);
  ASSERT_LE(version, ref.databases.size());
  for (std::uint64_t v = 1; v <= version; ++v) {
    EXPECT_TRUE(recovered.store().at_version("office", v).value()
                    ->database() == ref.databases[v - 1])
        << "database bytes diverge at version " << v;
  }
  // Bit-identical serving at the recovered version: same cell AND the
  // exact same score doubles as the uninterrupted engine produced.
  const std::vector<loc::LocalizationEstimate>& expected =
      ref.estimates[version - 1];
  for (std::size_t p = 0; p < ref.probes.size(); ++p) {
    const auto estimate = recovered.localize("office", ref.probes[p]);
    ASSERT_TRUE(estimate.ok());
    EXPECT_EQ(estimate.value().cell, expected[p].cell) << "probe " << p;
    EXPECT_EQ(estimate.value().score, expected[p].score) << "probe " << p;
  }
}

class PersistCrash : public ::testing::Test {
 protected:
  void SetUp() override { disarm_crash_points(); }
  void TearDown() override { disarm_crash_points(); }
};

// --- SIGKILL during update (WAL append), three seeded fault points ----

TEST_F(PersistCrash, KilledBeforeWalAppend) {
  const auto& run = iup::test::office_run();
  // skip_hits 2: registration and the first update append fine, the
  // second update dies before its record reaches the log.
  crash_and_recover(run, CrashPoint::kBeforeWalAppend, /*skip_hits=*/2,
                    /*checkpoint_every=*/0);
}

TEST_F(PersistCrash, KilledMidWalRecord) {
  const auto& run = iup::test::office_run();
  // Dies between the frame header and the payload: a genuine torn tail.
  crash_and_recover(run, CrashPoint::kMidWalRecord, /*skip_hits=*/3,
                    /*checkpoint_every=*/0);
}

TEST_F(PersistCrash, KilledAfterWalAppend) {
  const auto& run = iup::test::office_run();
  // Dies after fsync: the record is durable, recovery replays ALL of it.
  crash_and_recover(run, CrashPoint::kAfterWalAppend, /*skip_hits=*/4,
                    /*checkpoint_every=*/0);
}

// --- SIGKILL during checkpoint publication, three seeded fault points -

TEST_F(PersistCrash, KilledMidCheckpointWrite) {
  const auto& run = iup::test::office_run();
  // Rolls a checkpoint every 2 commits; the second roll dies halfway
  // through writing the temp file.  The previous checkpoint + WAL suffix
  // must still recover.
  crash_and_recover(run, CrashPoint::kMidCheckpointWrite, /*skip_hits=*/1,
                    /*checkpoint_every=*/2);
}

TEST_F(PersistCrash, KilledBeforeCheckpointRename) {
  const auto& run = iup::test::office_run();
  // Temp file complete and fsynced but never renamed: readers still see
  // the old checkpoint; the WAL had already been appended, so nothing is
  // lost.
  crash_and_recover(run, CrashPoint::kBeforeCheckpointRename,
                    /*skip_hits=*/1, /*checkpoint_every=*/2);
}

TEST_F(PersistCrash, KilledAfterCheckpointRename) {
  const auto& run = iup::test::office_run();
  // New checkpoint durable, WAL truncation never ran: replay of the stale
  // WAL must be idempotent over the checkpointed versions.
  crash_and_recover(run, CrashPoint::kAfterCheckpointRename,
                    /*skip_hits=*/1, /*checkpoint_every=*/2);
}

// A crash directory is recoverable repeatedly (recover is read + compact,
// not consume).
TEST_F(PersistCrash, RecoveryIsRepeatable) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    child_workload(dir.path, run, CrashPoint::kMidWalRecord, 3, 0);
    _exit(13);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  std::uint64_t first_version = 0;
  for (int round = 0; round < 2; ++round) {
    Engine recovered(EngineConfig().threads(1));
    ASSERT_TRUE(recovered.restore_from(dir.path).ok());
    const std::uint64_t version =
        recovered.store().latest("office").value()->version();
    if (round == 0) {
      first_version = version;
    } else {
      EXPECT_EQ(version, first_version);
    }
  }
}

}  // namespace
}  // namespace iup::persist
