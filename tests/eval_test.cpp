// CDF, metrics, labor sweep, report rendering, experiment scaffolding.
#include <gtest/gtest.h>

#include "eval/cdf.hpp"
#include "eval/experiment.hpp"
#include "eval/labor.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "test_util.hpp"

namespace iup::eval {
namespace {

TEST(Cdf, PercentilesOfKnownSamples) {
  const EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(Cdf, InterpolatesBetweenSamples) {
  const EmpiricalCdf cdf({0.0, 1.0});
  EXPECT_DOUBLE_EQ(cdf.percentile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.75), 0.75);
}

TEST(Cdf, FractionAtOrBelow) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4.0), 1.0);
}

TEST(Cdf, InvalidInputsThrow) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
  const EmpiricalCdf cdf({1.0});
  EXPECT_THROW((void)cdf.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cdf.percentile(1.1), std::invalid_argument);
}

TEST(Cdf, RenderContainsQuantiles) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0});
  const std::string s = cdf.render(3, "m");
  EXPECT_NE(s.find("CDF 0.000"), std::string::npos);
  EXPECT_NE(s.find("CDF 1.000"), std::string::npos);
  EXPECT_NE(s.find(" m"), std::string::npos);
}

TEST(Metrics, ReconstructionErrorsRespectMask) {
  const linalg::Matrix truth{{1.0, 2.0}, {3.0, 4.0}};
  const linalg::Matrix hat{{1.5, 2.0}, {3.0, 6.0}};
  const linalg::Matrix mask{{0.0, 1.0}, {1.0, 0.0}};
  const auto unknown = reconstruction_errors_db(hat, truth, mask, 0.0);
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_DOUBLE_EQ(unknown[0], 0.5);
  EXPECT_DOUBLE_EQ(unknown[1], 2.0);
  const auto known = reconstruction_errors_db(hat, truth, mask, 1.0);
  EXPECT_DOUBLE_EQ(known[0], 0.0);
  const auto all = reconstruction_errors_all_db(hat, truth);
  EXPECT_EQ(all.size(), 4u);
}

TEST(Metrics, ShapeMismatchThrows) {
  EXPECT_THROW((void)reconstruction_errors_all_db(linalg::Matrix(2, 2),
                                                  linalg::Matrix(2, 3)),
               std::invalid_argument);
}

TEST(Metrics, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(Labor, SweepShapesMatchPaperScaling) {
  // Fig. 20: cells grow ~k^2, references ~k; the saving approaches 100%.
  const auto sweep = labor_cost_sweep(94, 8, {1.0, 2.0, 10.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].cells, 94u);
  EXPECT_EQ(sweep[1].cells, 376u);
  EXPECT_EQ(sweep[2].cells, 9400u);
  EXPECT_EQ(sweep[2].references, 80u);
  EXPECT_GT(sweep[2].traditional_hours, 70.0);  // paper: ~80 h at 10x
  EXPECT_LT(sweep[2].iupdater_hours, 0.5);
  EXPECT_GT(sweep[2].saving_fraction, sweep[0].saving_fraction);
}

TEST(Report, TableRendersAligned) {
  Table t({"stamp", "median", "mean"});
  t.add_row({"3 days", "2.70", "3.10"});
  t.add_row("45 days", {3.6, 4.0});
  const std::string s = t.render();
  EXPECT_NE(s.find("stamp"), std::string::npos);
  EXPECT_NE(s.find("2.70"), std::string::npos);
  EXPECT_NE(s.find("3.60"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.921), "92.1%");
  EXPECT_NE(banner("Fig. 5").find("Fig. 5"), std::string::npos);
}

TEST(Experiment, StampLabels) {
  EXPECT_EQ(stamp_label(0), "original");
  EXPECT_EQ(stamp_label(3), "3 days");
  EXPECT_EQ(stamp_label(90), "3 months");
}

TEST(Experiment, CollectUpdateInputsShapes) {
  const auto& run = iup::test::office_run();
  const std::vector<std::size_t> refs = {1, 2, 3};
  const auto inputs = collect_update_inputs(run, refs, 15);
  EXPECT_EQ(inputs.x_b.rows(), 8u);
  EXPECT_EQ(inputs.x_b.cols(), 96u);
  EXPECT_EQ(inputs.x_r.cols(), 3u);
}

TEST(Experiment, LocalizationErrorsCountsTrials) {
  const auto& run = iup::test::office_run();
  const auto errs = localization_errors(run, run.ground_truth.at_day(0),
                                        LocalizerKind::kKnn, 0, 1, 2);
  EXPECT_EQ(errs.size(), 2u * run.testbed.num_cells());
}

}  // namespace
}  // namespace iup::eval
