#include <gtest/gtest.h>

#include "linalg/matrix_io.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace iup::linalg {
namespace {

TEST(Norms, FrobeniusKnown) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_norm_sq(a), 25.0);
}

TEST(Norms, NuclearEqualsSingularValueSum) {
  const Matrix a = Matrix::diag({2.0, 3.0, 0.0});
  EXPECT_NEAR(nuclear_norm(a), 5.0, 1e-10);
}

TEST(Norms, SpectralIsLargestSingularValue) {
  const Matrix a = Matrix::diag({2.0, 7.0});
  EXPECT_NEAR(spectral_norm(a), 7.0, 1e-10);
}

TEST(Norms, L21SumsColumnNorms) {
  const Matrix a{{3.0, 0.0}, {4.0, 2.0}};
  EXPECT_DOUBLE_EQ(l21_norm(a), 5.0 + 2.0);
}

TEST(Norms, NormInequalities) {
  rng::Rng rng(31);
  const Matrix a = iup::test::random_matrix(5, 7, rng);
  EXPECT_LE(spectral_norm(a), frobenius_norm(a) + 1e-9);
  EXPECT_LE(frobenius_norm(a), nuclear_norm(a) + 1e-9);
}

TEST(Norms, RelativeError) {
  const Matrix a{{2.0}};
  const Matrix b{{1.0}};
  EXPECT_DOUBLE_EQ(relative_error(a, b), 1.0);
  EXPECT_DOUBLE_EQ(relative_error(b, b), 0.0);
}

TEST(MatrixIo, ToStringContainsValues) {
  const Matrix a{{1.25, -2.0}};
  const std::string s = to_string(a, 2);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("-2.00"), std::string::npos);
}

TEST(MatrixIo, CsvRoundTrip) {
  rng::Rng rng(32);
  const Matrix a = iup::test::random_matrix(4, 6, rng);
  const Matrix back = from_csv(to_csv(a));
  iup::test::expect_matrix_near(back, a, 1e-8);
}

TEST(MatrixIo, FromCsvRejectsRagged) {
  EXPECT_THROW((void)from_csv("1,2\n3\n"), std::invalid_argument);
}

TEST(MatrixIo, FromCsvRejectsGarbage) {
  EXPECT_THROW((void)from_csv("1,banana\n"), std::invalid_argument);
}

TEST(MatrixIo, FromCsvSkipsBlankLines) {
  const Matrix m = from_csv("1,2\n\n3,4\n");
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

}  // namespace
}  // namespace iup::linalg
