// Deployment geometry and radio-model physics.
#include <gtest/gtest.h>

#include "sim/deployment.hpp"
#include "sim/radio_model.hpp"

namespace iup::sim {
namespace {

DeploymentConfig small_config() {
  DeploymentConfig c;
  c.num_links = 4;
  c.slots_per_link = 6;
  c.cell_spacing_m = 0.6;
  c.area_width_m = 10.0;
  c.area_height_m = 8.0;
  return c;
}

TEST(Deployment, CountsAndIndexing) {
  const Deployment d(small_config());
  EXPECT_EQ(d.num_links(), 4u);
  EXPECT_EQ(d.slots_per_link(), 6u);
  EXPECT_EQ(d.num_cells(), 24u);
  EXPECT_EQ(d.band_of(0), 0u);
  EXPECT_EQ(d.band_of(6), 1u);
  EXPECT_EQ(d.slot_of(7), 1u);
  EXPECT_EQ(d.cell_index(2, 3), 15u);
  EXPECT_EQ(d.band_of(d.cell_index(3, 5)), 3u);
  EXPECT_EQ(d.slot_of(d.cell_index(3, 5)), 5u);
}

TEST(Deployment, LinksAreEvenlySpacedAndHorizontal) {
  const Deployment d(small_config());
  EXPECT_DOUBLE_EQ(d.link_spacing(), 8.0 / 5.0);
  for (std::size_t i = 0; i < d.num_links(); ++i) {
    EXPECT_DOUBLE_EQ(d.link(i).a.y, d.link(i).b.y);
    EXPECT_DOUBLE_EQ(d.link(i).a.y, d.link_spacing() * (i + 1));
    EXPECT_DOUBLE_EQ(d.link(i).length(), 10.0);
  }
}

TEST(Deployment, BandCellsSitOnTheirLink) {
  const Deployment d(small_config());
  for (std::size_t j = 0; j < d.num_cells(); ++j) {
    const auto band = d.band_of(j);
    EXPECT_DOUBLE_EQ(d.cell_center(j).y, d.link(band).a.y);
  }
}

TEST(Deployment, CellSpacingAlongBand) {
  const Deployment d(small_config());
  const auto a = d.cell_center(d.cell_index(1, 0));
  const auto b = d.cell_center(d.cell_index(1, 1));
  EXPECT_NEAR(geom::distance(a, b), 0.6, 1e-12);
}

TEST(Deployment, NearestCellIdentity) {
  const Deployment d(small_config());
  for (std::size_t j = 0; j < d.num_cells(); ++j) {
    EXPECT_EQ(d.nearest_cell(d.cell_center(j)), j);
  }
}

TEST(Deployment, InvalidConfigThrows) {
  DeploymentConfig c = small_config();
  c.num_links = 0;
  EXPECT_THROW(Deployment{c}, std::invalid_argument);
  c = small_config();
  c.cell_spacing_m = -1.0;
  EXPECT_THROW(Deployment{c}, std::invalid_argument);
  c = small_config();
  c.slots_per_link = 100;  // 99 * 0.6 m does not fit 10 m
  EXPECT_THROW(Deployment{c}, std::invalid_argument);
  c = small_config();
  c.band_offset_frac = 1.5;
  EXPECT_THROW(Deployment{c}, std::invalid_argument);
}

TEST(Deployment, BandOffsetMovesCells) {
  DeploymentConfig c = small_config();
  c.band_offset_frac = 0.0;
  const Deployment left(c);
  c.band_offset_frac = 1.0;
  const Deployment right(c);
  EXPECT_LT(left.cell_center(0).x, right.cell_center(0).x);
}

TEST(RadioModel, PathLossIncreasesWithDistance) {
  RadioParams p;
  p.path_loss_exponent = 3.0;
  const RadioModel m(p);
  EXPECT_DOUBLE_EQ(m.path_loss_db(1.0), p.pl0_db);
  EXPECT_NEAR(m.path_loss_db(10.0), p.pl0_db + 30.0, 1e-12);
  EXPECT_LT(m.baseline_rss_dbm(10.0), m.baseline_rss_dbm(5.0));
  // Below the reference distance the loss saturates.
  EXPECT_DOUBLE_EQ(m.path_loss_db(0.1), p.pl0_db);
}

TEST(RadioModel, TargetLossRegimes) {
  const RadioModel m(RadioParams{});
  const geom::Segment link{{0, 0}, {12, 0}};
  const double on_path = m.target_loss_db(link, {6.0, 0.0});
  const double in_ffz = m.target_loss_db(link, {6.0, 0.5});
  const double outside = m.target_loss_db(link, {6.0, 3.0});
  EXPECT_GT(on_path, 6.0);     // blocking: large decrease
  EXPECT_GT(in_ffz, 0.0);      // inside FFZ: small decrease
  EXPECT_LT(in_ffz, on_path);
  EXPECT_NEAR(outside, 0.0, 1e-9);  // outside FFZ: no decrease
}

TEST(RadioModel, BlockingLossLargerNearTransceivers) {
  // Sec. IV-C-1: with transceivers at ~1 m height, the RSS decrease is
  // larger near the transceivers and smaller at the midpoint.
  const RadioModel m(RadioParams{});
  const geom::Segment link{{0, 0}, {12, 0}};
  const double near_tx = m.target_loss_db(link, {1.0, 0.0});
  const double mid = m.target_loss_db(link, {6.0, 0.0});
  EXPECT_GT(near_tx, mid);
}

TEST(RadioModel, NoLossOutsideSegment) {
  const RadioModel m(RadioParams{});
  const geom::Segment link{{0, 0}, {12, 0}};
  EXPECT_DOUBLE_EQ(m.target_loss_db(link, {-1.0, 0.0}), 0.0);
}

TEST(RadioModel, InsideFfzPredicate) {
  const RadioModel m(RadioParams{});
  const geom::Segment link{{0, 0}, {12, 0}};
  EXPECT_TRUE(m.inside_ffz(link, {6.0, 0.0}));
  EXPECT_TRUE(m.inside_ffz(link, {6.0, 0.6}));
  EXPECT_FALSE(m.inside_ffz(link, {6.0, 3.0}));
  EXPECT_FALSE(m.inside_ffz(link, {-1.0, 0.0}));
}

TEST(RadioModel, ClampRss) {
  const RadioModel m(RadioParams{});
  EXPECT_DOUBLE_EQ(m.clamp_rss(-200.0), -95.0);
  EXPECT_DOUBLE_EQ(m.clamp_rss(0.0), -20.0);
  EXPECT_DOUBLE_EQ(m.clamp_rss(-60.0), -60.0);
}

}  // namespace
}  // namespace iup::sim
