#include "linalg/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace iup::linalg {
namespace {

TEST(Vec, Dot) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
}

TEST(Vec, DotLengthMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)dot(a, b), std::invalid_argument);
}

TEST(Vec, Norms) {
  const std::vector<double> x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(Vec, Axpy) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  std::vector<double> bad = {1.0};
  EXPECT_THROW(axpy(1.0, x, bad), std::invalid_argument);
}

TEST(Vec, AddSubScale) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 5.0};
  EXPECT_EQ(add(a, b), (std::vector<double>{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(scale(-2.0, a), (std::vector<double>{-2.0, -4.0}));
}

TEST(Vec, Normalized) {
  const std::vector<double> x = {3.0, 4.0};
  const auto u = normalized(x);
  EXPECT_NEAR(norm2(u), 1.0, 1e-15);
  EXPECT_NEAR(u[0], 0.6, 1e-15);
  // Zero vector passes through unchanged.
  const std::vector<double> z = {0.0, 0.0};
  EXPECT_EQ(normalized(z), z);
}

TEST(Vec, MeanAndStdev) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(stdev(x), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stdev(std::vector<double>{1.0}), 0.0);
}

TEST(Vec, Argmax) {
  const std::vector<double> x = {1.0, -5.0, 3.0};
  EXPECT_EQ(argmax_abs(x), 1u);
  EXPECT_EQ(argmax(x), 2u);
  EXPECT_EQ(argmin(x), 1u);
}

TEST(Vec, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_THROW((void)linspace(0.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace iup::linalg
