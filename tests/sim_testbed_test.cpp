// Testbed, drift, sampler and fingerprint-builder behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/svd.hpp"
#include "sim/fingerprint_builder.hpp"
#include "sim/sampler.hpp"
#include "sim/testbeds.hpp"
#include "test_util.hpp"

namespace iup::sim {
namespace {

TEST(Testbed, PaperRoomDimensions) {
  const Testbed office = make_office_testbed();
  EXPECT_EQ(office.num_links(), 8u);
  EXPECT_EQ(office.num_cells(), 96u);  // paper: 94 effective grids
  const Testbed library = make_library_testbed();
  EXPECT_EQ(library.num_links(), 6u);
  EXPECT_EQ(library.num_cells(), 72u);  // matches the paper exactly
  const Testbed hall = make_hall_testbed();
  EXPECT_EQ(hall.num_links(), 8u);
  EXPECT_EQ(hall.num_cells(), 120u);  // matches the paper exactly
}

TEST(Testbed, PaperTimeStamps) {
  EXPECT_EQ(paper_time_stamps(),
            (std::vector<std::size_t>{0, 3, 5, 15, 45, 90}));
  EXPECT_EQ(paper_update_stamps(),
            (std::vector<std::size_t>{3, 5, 15, 45, 90}));
}

TEST(Testbed, DeterministicForSameSeed) {
  const Testbed a = make_office_testbed(7);
  const Testbed b = make_office_testbed(7);
  EXPECT_TRUE(a.mean_fingerprint(45).approx_equal(b.mean_fingerprint(45),
                                                  1e-12));
}

TEST(Testbed, DifferentSeedsDiffer) {
  const Testbed a = make_office_testbed(7);
  const Testbed b = make_office_testbed(8);
  EXPECT_FALSE(
      a.mean_fingerprint(0).approx_equal(b.mean_fingerprint(0), 0.1));
}

TEST(Testbed, ThreeRegimeStructure) {
  const Testbed tb = make_office_testbed();
  // Target on its own band: large decrease vs baseline.
  const std::size_t j_own = tb.deployment().cell_index(3, 5);
  const double own_change =
      tb.mean_baseline_rss(3, 0) - tb.mean_rss(3, j_own, 0);
  EXPECT_GT(own_change, 4.0);
  // Far link (band 0 vs link 7): negligible change.
  const double far_change =
      std::abs(tb.mean_baseline_rss(7, 0) - tb.mean_rss(7, 0, 0));
  EXPECT_LT(far_change, 1.5);
}

TEST(Testbed, RssInPhysicalRange) {
  const Testbed tb = make_library_testbed();
  const auto x = tb.mean_fingerprint(45);
  for (double v : x.data()) {
    EXPECT_GE(v, -95.0);
    EXPECT_LE(v, -20.0);
  }
}

TEST(Testbed, FingerprintApproximatelyLowRank) {
  // Observation 1 on the simulated office: dominant first singular value,
  // full numerical row rank.
  const Testbed tb = make_office_testbed();
  const auto s = linalg::singular_values(tb.mean_fingerprint(0));
  ASSERT_EQ(s.size(), 8u);
  double total = 0.0;
  for (double v : s) total += v;
  EXPECT_GT(s[0] / total, 0.8);
  EXPECT_GT(s[7], 0.0);
}

TEST(Testbed, DriftGrowsOverTime) {
  const Testbed tb = make_office_testbed();
  const auto x0 = tb.mean_fingerprint(0);
  double d5 = 0.0, d90 = 0.0;
  const auto x5 = tb.mean_fingerprint(5);
  const auto x90 = tb.mean_fingerprint(90);
  for (std::size_t k = 0; k < x0.size(); ++k) {
    d5 += std::abs(x5.data()[k] - x0.data()[k]);
    d90 += std::abs(x90.data()[k] - x0.data()[k]);
  }
  EXPECT_GT(d90, d5);
  EXPECT_GT(d5 / static_cast<double>(x0.size()), 0.2);  // visible shift
}

TEST(Testbed, MeanRssAtAgreesWithCellFingerprint) {
  const Testbed tb = make_hall_testbed();
  const std::size_t j = tb.deployment().cell_index(2, 7);
  const auto p = tb.deployment().cell_center(j);
  for (std::size_t i = 0; i < tb.num_links(); ++i) {
    EXPECT_NEAR(tb.mean_rss_at(i, p, 0), tb.mean_rss(i, j, 0), 2.0);
  }
}

TEST(Drift, ZeroAtDayZero) {
  const Testbed tb = make_office_testbed();
  EXPECT_DOUBLE_EQ(tb.drift().global_offset(0), 0.0);
  for (std::size_t i = 0; i < tb.num_links(); ++i) {
    EXPECT_DOUBLE_EQ(tb.drift().link_offset(i, 0), 0.0);
  }
  EXPECT_DOUBLE_EQ(tb.drift().morph_angle(0), 0.0);
  EXPECT_DOUBLE_EQ(tb.drift().aging_noise(0, 0, 0), 0.0);
}

TEST(Drift, BeyondHorizonThrows) {
  const Testbed tb = make_office_testbed();
  EXPECT_THROW((void)tb.drift().global_offset(100000), std::out_of_range);
}

TEST(Drift, MorphAngleGrowsDiffusively) {
  const Testbed tb = make_office_testbed();
  const double a4 = tb.drift().morph_angle(4);
  const double a16 = tb.drift().morph_angle(16);
  EXPECT_NEAR(a16 / a4, 2.0, 1e-9);  // sqrt(16)/sqrt(4)
}

TEST(Drift, AgingNoiseDeterministic) {
  const Testbed tb = make_office_testbed();
  EXPECT_DOUBLE_EQ(tb.drift().aging_noise(2, 30, 45),
                   tb.drift().aging_noise(2, 30, 45));
  EXPECT_NE(tb.drift().aging_noise(2, 30, 45),
            tb.drift().aging_noise(2, 31, 45));
}

TEST(Sampler, TraceLengthAndVariation) {
  const Testbed tb = make_office_testbed();
  Sampler s(tb, "test");
  const auto trace = s.trace(0, std::nullopt, 0, 200);
  ASSERT_EQ(trace.size(), 200u);
  double lo = trace[0], hi = trace[0];
  for (double v : trace) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Fig. 1: short-term swings of several dB.
  EXPECT_GT(hi - lo, 2.0);
  EXPECT_LT(hi - lo, 25.0);
}

TEST(Sampler, AveragingConvergesTowardMean) {
  const Testbed tb = make_office_testbed();
  Sampler s(tb, "avg");
  const double mean = tb.mean_baseline_rss(1, 0);
  const double avg = s.averaged(1, std::nullopt, 0, 400);
  EXPECT_NEAR(avg, mean, 1.0);
}

TEST(Sampler, StreamsAreIndependentButReproducible) {
  const Testbed tb = make_office_testbed();
  Sampler a1(tb, "s1");
  Sampler a2(tb, "s1");
  Sampler b(tb, "s2");
  const double va1 = a1.sample(0, std::nullopt, 0);
  const double va2 = a2.sample(0, std::nullopt, 0);
  const double vb = b.sample(0, std::nullopt, 0);
  EXPECT_DOUBLE_EQ(va1, va2);
  EXPECT_NE(va1, vb);
}

TEST(Sampler, OnlineMeasurementHasOneEntryPerLink) {
  const Testbed tb = make_library_testbed();
  Sampler s(tb, "online");
  EXPECT_EQ(s.online_measurement(10, 0).size(), tb.num_links());
}

TEST(FingerprintBuilder, GroundTruthSetLookup) {
  const auto& run = iup::test::office_run();
  EXPECT_EQ(run.ground_truth.days.size(), 6u);
  EXPECT_EQ(run.ground_truth.at_day(45).rows(), 8u);
  EXPECT_EQ(run.ground_truth.baselines_at_day(45).size(), 8u);
  EXPECT_THROW((void)run.ground_truth.at_day(17), std::out_of_range);
}

TEST(FingerprintBuilder, MaskExcludesEveryBandEntry) {
  const auto& run = iup::test::office_run();
  const auto& dep = run.testbed.deployment();
  for (std::size_t j = 0; j < dep.num_cells(); ++j) {
    EXPECT_DOUBLE_EQ(run.b_mask(dep.band_of(j), j), 0.0)
        << "band entry (" << dep.band_of(j) << ", " << j << ")";
  }
}

TEST(FingerprintBuilder, MaskMostlyOnes) {
  // Fig. 4: the large/small-decrease entries are a minority; most of the
  // matrix can be refreshed without labor.
  const auto& run = iup::test::office_run();
  const double ones = run.b_mask.sum();
  const double frac = ones / static_cast<double>(run.b_mask.size());
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.95);
}

TEST(FingerprintBuilder, NoDecreaseMatrixZeroOutsideMask) {
  const auto& run = iup::test::office_run();
  Sampler s(run.testbed, "xb");
  const auto xb = measure_no_decrease_matrix(s, run.b_mask, 45);
  for (std::size_t i = 0; i < xb.rows(); ++i) {
    for (std::size_t j = 0; j < xb.cols(); ++j) {
      if (run.b_mask(i, j) == 0.0) {
        EXPECT_DOUBLE_EQ(xb(i, j), 0.0);
      } else {
        EXPECT_LT(xb(i, j), -20.0);  // a real RSS reading
      }
    }
  }
}

TEST(MixedRadioTestbed, SourceTableAndGainsAreWired) {
  const Testbed testbed = make_mixed_radio_testbed();
  ASSERT_EQ(testbed.sources().size(), testbed.num_links());
  EXPECT_EQ(testbed.sources(), mixed_radio_sources(testbed.num_links()));
  // Three technologies present, each with its own link budget.
  const std::size_t third = testbed.num_links() / 3;
  EXPECT_EQ(testbed.sources()[0].technology, Technology::kWifi);
  EXPECT_EQ(testbed.sources()[third].technology, Technology::kBle);
  EXPECT_EQ(testbed.sources().back().technology, Technology::kLora);
  EXPECT_DOUBLE_EQ(testbed.source_gain_db(0), 0.0);
  EXPECT_LT(testbed.source_gain_db(third), 0.0);   // BLE weaker
  EXPECT_GT(testbed.source_gain_db(testbed.num_links() - 1), 0.0);  // LoRa
  // The gain is a plain dB offset on the mean path: zeroing the gain
  // table shifts every reading of the link by exactly its budget.
  Testbed flat = testbed;
  flat.set_sources(testbed.sources(), {});
  EXPECT_DOUBLE_EQ(
      testbed.mean_rss(third, 0, 0) - flat.mean_rss(third, 0, 0),
      testbed.source_gain_db(third));
}

TEST(MixedRadioTestbed, LegacyTestbedsCarryDegenerateSourceTable) {
  const Testbed office = make_office_testbed();
  EXPECT_EQ(office.sources(), single_technology_sources(office.num_links()));
  EXPECT_EQ(office.sensing_mode(), SensingMode::kDeviceFree);
  EXPECT_TRUE(office.missing_sources().empty());
  EXPECT_DOUBLE_EQ(office.source_gain_db(0), 0.0);
}

TEST(MixedRadioTestbed, MissingSourcesAreFlaggedPerLink) {
  MixedRadioOptions options;
  options.missing_sources = {SourceId(200 + options.num_links / 3)};
  const Testbed testbed = make_mixed_radio_testbed(options);
  std::size_t missing = 0;
  for (std::size_t i = 0; i < testbed.num_links(); ++i) {
    if (testbed.source_missing(i)) ++missing;
  }
  EXPECT_EQ(missing, 1u);
  EXPECT_TRUE(testbed.source_missing(options.num_links / 3));
}

TEST(MixedRadioTestbed, DeviceBasedModeChangesTheObservationModel) {
  MixedRadioOptions device_free;
  MixedRadioOptions device_based;
  device_based.mode = SensingMode::kDeviceBased;
  const Testbed free_tb = make_mixed_radio_testbed(device_free);
  const Testbed based_tb = make_mixed_radio_testbed(device_based);
  EXPECT_EQ(based_tb.sensing_mode(), SensingMode::kDeviceBased);
  // Same seed, same geometry: baselines (no target) agree, but a target
  // present reads differently — device-based RSS is transmitter-to-
  // receiver, not link perturbation.
  EXPECT_DOUBLE_EQ(free_tb.mean_baseline_rss(0, 0),
                   based_tb.mean_baseline_rss(0, 0));
  bool differs = false;
  for (std::size_t j = 0; j < free_tb.num_cells() && !differs; ++j) {
    differs = free_tb.mean_rss(0, j, 0) != based_tb.mean_rss(0, j, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(FingerprintBuilder, ReferenceMatrixShapeAndValues) {
  const auto& run = iup::test::office_run();
  Sampler s(run.testbed, "xr");
  const std::vector<std::size_t> cells = {4, 20, 50};
  const auto xr = measure_reference_matrix(s, cells, 45);
  EXPECT_EQ(xr.rows(), 8u);
  EXPECT_EQ(xr.cols(), 3u);
  // Column k should be close to the true day-45 fingerprint column.
  const auto& x45 = run.ground_truth.at_day(45);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(xr(i, k), x45(i, cells[k]), 4.0);
    }
  }
}

}  // namespace
}  // namespace iup::sim
