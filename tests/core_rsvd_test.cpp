// Basic RSVD and the self-augmented solver (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>

#include "core/rsvd.hpp"
#include "core/self_augmented.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace iup::core {
namespace {

// Synthetic completion problem: exactly low-rank matrix observed on a
// random mask.
struct CompletionFixture {
  linalg::Matrix x_true;
  linalg::Matrix b;
  linalg::Matrix x_b;
};

CompletionFixture make_completion(std::size_t m, std::size_t n,
                                  std::size_t rank, double observe_frac,
                                  std::uint64_t seed) {
  rng::Rng rng(seed);
  CompletionFixture f;
  f.x_true = iup::test::random_low_rank(m, n, rank, rng);
  f.b = linalg::Matrix(m, n);
  f.x_b = linalg::Matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform() < observe_frac) {
        f.b(i, j) = 1.0;
        f.x_b(i, j) = f.x_true(i, j);
      }
    }
  }
  return f;
}

TEST(BasicRsvd, CompletesLowRankFromPartialObservations) {
  const auto f = make_completion(8, 40, 2, 0.7, 61);
  RsvdOptions opt;
  opt.rank = 2;
  opt.lambda = 1e-3;
  opt.max_iters = 80;
  const auto result = basic_rsvd(f.x_b, f.b, opt);
  EXPECT_LT(linalg::relative_error(result.x_hat, f.x_true), 0.05);
}

TEST(BasicRsvd, ObjectiveDecreasesMonotonically) {
  const auto f = make_completion(6, 30, 3, 0.6, 62);
  RsvdOptions opt;
  opt.rank = 3;
  const auto result = basic_rsvd(f.x_b, f.b, opt);
  ASSERT_GE(result.objective_history.size(), 2u);
  for (std::size_t k = 1; k < result.objective_history.size(); ++k) {
    EXPECT_LE(result.objective_history[k],
              result.objective_history[k - 1] * 1.000001)
        << "iteration " << k;
  }
}

TEST(BasicRsvd, RandomInitReducesObjective) {
  // Plain masked ALS from a random factor can stall in spurious local
  // minima (which is why kWarmStart is the default); the paper's random
  // initialisation is still required to make solid progress.
  const auto f = make_completion(8, 40, 2, 0.75, 63);
  RsvdOptions opt;
  opt.rank = 2;
  opt.lambda = 1e-3;
  opt.max_iters = 120;
  opt.init = FactorInit::kRandom;
  const auto result = basic_rsvd(f.x_b, f.b, opt);
  ASSERT_FALSE(result.objective_history.empty());
  EXPECT_LT(result.objective_history.back(),
            0.5 * result.objective_history.front());
}

TEST(SelfAugmented, StagnationTolDefaultLeavesResultsUnchanged) {
  // The early stop is strictly opt-in: a default-constructed config and an
  // explicit stagnation_tol = 0 must produce the identical trajectory.
  const auto f = make_completion(8, 40, 2, 0.7, 64);
  RsvdOptions defaults;
  defaults.rank = 4;
  defaults.max_iters = 30;
  RsvdOptions explicit_off = defaults;
  explicit_off.stagnation_tol = 0.0;
  const BandLayout layout{8, 5};
  RsvdProblem problem;
  problem.x_b = f.x_b;
  problem.b = f.b;
  const auto a = SelfAugmentedRsvd(layout, defaults).solve(problem);
  const auto b = SelfAugmentedRsvd(layout, explicit_off).solve(problem);
  EXPECT_EQ(a.l, b.l);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.x_hat, b.x_hat);
  EXPECT_EQ(a.objective_history, b.objective_history);
  EXPECT_FALSE(a.stagnated);
  EXPECT_FALSE(b.stagnated);
}

TEST(SelfAugmented, StagnationTolOptInStopsEarlyNearTheSameObjective) {
  const auto f = make_completion(8, 40, 2, 0.7, 65);
  RsvdOptions full;
  full.rank = 4;
  full.max_iters = 60;
  RsvdOptions early = full;
  early.stagnation_tol = 1e-4;
  const BandLayout layout{8, 5};
  RsvdProblem problem;
  problem.x_b = f.x_b;
  problem.b = f.b;
  const auto ref = SelfAugmentedRsvd(layout, full).solve(problem);
  const auto cut = SelfAugmentedRsvd(layout, early).solve(problem);
  ASSERT_FALSE(ref.objective_history.empty());
  ASSERT_FALSE(cut.objective_history.empty());
  EXPECT_TRUE(cut.stagnated);
  ASSERT_LT(cut.iterations, ref.iterations);
  // The truncated run IS a prefix of the full one (same sweeps, earlier
  // exit), and the abandoned tail was already flat by construction.
  for (std::size_t k = 0; k < cut.objective_history.size(); ++k) {
    EXPECT_EQ(cut.objective_history[k], ref.objective_history[k]) << k;
  }
  EXPECT_NEAR(cut.objective_history.back(), ref.objective_history.back(),
              2e-2 * std::abs(ref.objective_history.back()));
}

TEST(SelfAugmented, RandomInitMatchesWarmStartOnRealPipeline) {
  // On the real (constraint-anchored) problem the paper's random init and
  // our warm start land in the same place.
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const auto mic = extract_mic(x0);
  const auto lrr = solve_lrr(mic.x_mic, x0);
  sim::Sampler sampler(run.testbed, "init-compare");
  const auto x_b = sim::measure_no_decrease_matrix(sampler, run.b_mask, 45);
  const auto x_r =
      sim::measure_reference_matrix(sampler, mic.reference_cells, 45);
  RsvdProblem p;
  p.x_b = x_b;
  p.b = run.b_mask;
  p.p = x_r * lrr.z;

  const auto err_with = [&](FactorInit init) {
    RsvdOptions opt;
    opt.init = init;
    opt.max_iters = 120;
    const SelfAugmentedRsvd solver(band_layout_of(x0), opt);
    const auto result = solver.solve(p);
    return eval::mean_of(eval::reconstruction_errors_db(
        result.x_hat, run.ground_truth.at_day(45), run.b_mask));
  };
  const double warm = err_with(FactorInit::kWarmStart);
  const double random = err_with(FactorInit::kRandom);
  EXPECT_NEAR(random, warm, 0.35 * warm + 0.15);
}

TEST(BasicRsvd, RankZeroDefaultsToRowCount) {
  const auto f = make_completion(5, 20, 2, 0.8, 64);
  const auto result = basic_rsvd(f.x_b, f.b);
  EXPECT_EQ(result.l.cols(), 5u);
}

TEST(BasicRsvd, FitsObservedEntries) {
  const auto f = make_completion(6, 24, 2, 0.65, 65);
  RsvdOptions opt;
  opt.rank = 2;
  opt.lambda = 1e-4;
  const auto result = basic_rsvd(f.x_b, f.b, opt);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 24; ++j) {
      if (f.b(i, j) != 0.0) {
        EXPECT_NEAR(result.x_hat(i, j), f.x_true(i, j), 0.4);
      }
    }
  }
}

TEST(SelfAugmented, ShapeMismatchesThrow) {
  const BandLayout layout{2, 3};
  RsvdOptions opt;
  const SelfAugmentedRsvd solver(layout, opt);
  RsvdProblem p;
  p.x_b = linalg::Matrix(2, 6);
  p.b = linalg::Matrix(2, 5);  // mismatch
  EXPECT_THROW((void)solver.solve(p), std::invalid_argument);
  p.b = linalg::Matrix(3, 6);  // layout mismatch
  p.x_b = linalg::Matrix(3, 6);
  EXPECT_THROW((void)solver.solve(p), std::invalid_argument);
}

TEST(SelfAugmented, Constraint2RequiresLayout) {
  RsvdOptions opt;
  opt.use_constraint2 = true;
  EXPECT_THROW(SelfAugmentedRsvd(BandLayout{0, 0}, opt),
               std::invalid_argument);
}

TEST(SelfAugmented, ThresholdStopsEarly) {
  const auto f = make_completion(6, 24, 2, 0.8, 66);
  RsvdOptions opt;
  opt.rank = 2;
  opt.max_iters = 200;
  // v_th is relative to ||X_B||_F^2; a generous value stops immediately.
  opt.v_threshold = 10.0;
  const auto result = basic_rsvd(f.x_b, f.b, opt);
  EXPECT_TRUE(result.reached_threshold);
  EXPECT_LT(result.iterations, 200u);
}

TEST(SelfAugmented, MaxItersZeroReturnsInitialFactors) {
  const auto f = make_completion(4, 8, 2, 0.9, 67);
  RsvdOptions opt;
  opt.rank = 2;
  opt.max_iters = 0;
  const auto result = basic_rsvd(f.x_b, f.b, opt);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.x_hat.rows(), 4u);
  EXPECT_EQ(result.x_hat.cols(), 8u);
}

// The pipeline-level fixture: reconstruct the office at day 45 with
// different constraint configurations and verify the paper's ordering
// (Fig. 16): basic RSVD > +C1 > +C1+C2 in reconstruction error.
struct AblationResult {
  double rsvd;
  double c1;
  double c1c2;
};

AblationResult run_ablation(Constraint2Mode mode, double w2, double w3) {
  // Averaged over three independent survey campaigns, the way the paper's
  // Fig. 16 bars average over its measurement set — a single draw leaves
  // the C1-vs-C1C2 margin inside the sampling noise.
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const std::size_t day = 45;

  const auto mic = extract_mic(x0);
  const auto lrr = solve_lrr(mic.x_mic, x0);
  const BandLayout layout = band_layout_of(x0);

  AblationResult acc{0.0, 0.0, 0.0};
  const int campaigns = 3;
  for (int c = 0; c < campaigns; ++c) {
    sim::Sampler sampler(run.testbed, "ablation-" + std::to_string(c));
    const auto x_b =
        sim::measure_no_decrease_matrix(sampler, run.b_mask, day);
    const auto x_r =
        sim::measure_reference_matrix(sampler, mic.reference_cells, day);

    const auto solve_with = [&](bool c1, bool c2) {
      RsvdOptions opt;
      opt.use_constraint1 = c1;
      opt.use_constraint2 = c2;
      opt.c2_mode = mode;
      opt.w_continuity = w2;
      opt.w_similarity = w3;
      const SelfAugmentedRsvd solver(layout, opt);
      RsvdProblem p;
      p.x_b = x_b;
      p.b = run.b_mask;
      if (c1) p.p = x_r * lrr.z;
      const auto result = solver.solve(p);
      const auto errs = eval::reconstruction_errors_db(
          result.x_hat, run.ground_truth.at_day(day), run.b_mask);
      return eval::mean_of(errs);
    };
    acc.rsvd += solve_with(false, false);
    acc.c1 += solve_with(true, false);
    acc.c1c2 += solve_with(true, true);
  }
  acc.rsvd /= campaigns;
  acc.c1 /= campaigns;
  acc.c1c2 /= campaigns;
  return acc;
}

TEST(SelfAugmented, ConstraintAblationOrderingGaussSeidel) {
  const auto r = run_ablation(Constraint2Mode::kGaussSeidel, 0.3, 0.05);
  EXPECT_GT(r.rsvd, r.c1) << "Constraint 1 must reduce the error";
  EXPECT_GT(r.c1, r.c1c2) << "Constraint 2 must reduce the error further";
}

TEST(SelfAugmented, PaperLiteralModeStillBeatsBasicRsvd) {
  // The published C4=C5=0 curvature acts as absolute shrinkage of the
  // largely-decrease entries, so it is only stable with weights far below
  // the Gauss-Seidel mode (DESIGN.md Sec. 5 discusses the repair).
  const auto r = run_ablation(Constraint2Mode::kPaperLiteral, 0.01, 0.01);
  EXPECT_GT(r.rsvd, r.c1);
  EXPECT_LT(r.c1c2, r.rsvd);
}

TEST(SelfAugmented, AutoScaleRunsAndStaysFinite) {
  const auto f = make_completion(4, 12, 2, 0.7, 68);
  RsvdOptions opt;
  opt.rank = 2;
  opt.auto_scale = true;
  opt.use_constraint2 = true;
  opt.c2_mode = Constraint2Mode::kGaussSeidel;
  const SelfAugmentedRsvd solver(BandLayout{4, 3}, opt);
  RsvdProblem p;
  p.x_b = f.x_b;
  p.b = f.b;
  const auto result = solver.solve(p);
  for (double v : result.x_hat.data()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace iup::core
