// Allocation-free linalg kernels: `_into` variants vs their allocating
// counterparts (bit-exact), tiled/packed vs naive products (bit-exact at
// every dispatch level, including non-multiple-of-tile shapes), and the
// SPD solve retry path.
//
// The naive references accumulate through the same kernel-layer
// primitives (kernels::axpy / kernels::dot) as the production paths: the
// per-element arithmetic (FMA at the AVX2 level, mul+add at the scalar
// level) is part of the dispatch-level contract, and a reference written
// with bare operators would round differently whenever the compiler's
// contraction choice diverges from the kernels'.  Cross-level
// scalar-vs-SIMD comparisons live in linalg_simd_kernels_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace iup::linalg {
namespace {

// Reference product: the naive i-k-j triple loop (ascending-k row
// accumulation, zero-pivot skip) the tiled and packed-GEMM paths must
// reproduce bit for bit at the active dispatch level.
Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      kernels::axpy(aik, b.row_span(k).data(), out.row_span(i).data(),
                    b.cols());
    }
  }
  return out;
}

TEST(TiledMultiply, BitIdenticalToNaiveIncludingOddShapes) {
  rng::Rng rng(11);
  // Shapes straddling the 64-wide tile boundary on every dimension.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {16, 16, 300},
                                   {64, 64, 64}, {65, 63, 67}, {130, 1, 129},
                                   {5, 200, 3}};
  for (const auto& s : shapes) {
    const Matrix a = test::random_matrix(s[0], s[1], rng);
    const Matrix b = test::random_matrix(s[1], s[2], rng);
    const Matrix expected = naive_multiply(a, b);
    EXPECT_EQ(a * b, expected) << s[0] << "x" << s[1] << " * " << s[1] << "x"
                               << s[2];
    Matrix out;
    multiply_into(a, b, out);
    EXPECT_EQ(out, expected);
  }
}

TEST(TiledMultiply, ReusesOutCapacityAndRejectsAliasing) {
  rng::Rng rng(12);
  const Matrix a = test::random_matrix(10, 20, rng);
  const Matrix b = test::random_matrix(20, 30, rng);
  Matrix out = test::random_matrix(40, 40, rng);  // larger: capacity reused
  multiply_into(a, b, out);
  EXPECT_EQ(out, a * b);
  EXPECT_THROW(multiply_into(out, b, out), std::invalid_argument);
}

TEST(MultiplyTransposed, MatchesExplicitTranspose) {
  rng::Rng rng(13);
  const Matrix l = test::random_matrix(16, 16, rng);
  const Matrix r = test::random_matrix(305, 16, rng);
  Matrix out;
  multiply_transposed_into(l, r, out);
  // Exact against the kernel-level dot reference; the allocating
  // transpose product accumulates through axpy rows instead of dots, so
  // it only agrees within reduction-reorder tolerance at SIMD levels.
  for (std::size_t i = 0; i < l.rows(); ++i) {
    for (std::size_t j = 0; j < r.rows(); ++j) {
      ASSERT_EQ(out(i, j), kernels::dot(l.row_span(i).data(),
                                        r.row_span(j).data(), l.cols()));
    }
  }
  test::expect_matrix_near(out, l * r.transpose(), 1e-12);
}

TEST(TransposeInto, MatchesTransposeAcrossTileBoundaries) {
  rng::Rng rng(14);
  for (const auto& s : {std::pair<std::size_t, std::size_t>{1, 77},
                        {77, 1},
                        {63, 65},
                        {128, 128}}) {
    const Matrix a = test::random_matrix(s.first, s.second, rng);
    Matrix out;
    transpose_into(a, out);
    ASSERT_EQ(out.rows(), a.cols());
    ASSERT_EQ(out.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        ASSERT_EQ(out(j, i), a(i, j));
      }
    }
  }
}

TEST(GramInto, MatchesGramAndTransposeProduct) {
  rng::Rng rng(15);
  const Matrix a = test::random_matrix(305, 16, rng);
  Matrix g;
  gram_into(a, g);
  EXPECT_EQ(g, a.gram());
  test::expect_matrix_near(g, a.transpose() * a, 1e-12);
}

TEST(AddScaled, MatchesOperatorExpression) {
  rng::Rng rng(16);
  const Matrix x = test::random_matrix(9, 9, rng);
  Matrix y = test::random_matrix(9, 9, rng);
  const Matrix expected = y + 0.37 * x;
  add_scaled(y, 0.37, x);
  if (kernels::active_level() == kernels::Level::kScalar) {
    // Scalar level: same two-rounding mul+add as the operator chain.
    EXPECT_EQ(y, expected);
  } else {
    // SIMD levels contract to FMA (one rounding per element).
    test::expect_matrix_near(y, expected, 1e-12);
  }
  Matrix wrong(3, 3);
  EXPECT_THROW(add_scaled(wrong, 1.0, x), std::invalid_argument);
}

TEST(CopyColRowInto, MatchCopyingAccessors) {
  rng::Rng rng(17);
  const Matrix a = test::random_matrix(6, 4, rng);
  std::vector<double> col(6), row(4);
  a.copy_col_into(2, col);
  EXPECT_EQ(col, a.col(2));
  a.copy_row_into(3, row);
  EXPECT_EQ(row, a.row(3));
  EXPECT_THROW(a.copy_col_into(0, row), std::invalid_argument);
}

TEST(MatrixResize, ReusesCapacityWithoutReallocation) {
  Matrix m(10, 10, 1.0);
  const double* before = m.data().data();
  m.resize(5, 20, 2.0);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 20u);
  EXPECT_EQ(m.data().data(), before) << "same element count must not realloc";
  for (const double v : m.data()) EXPECT_EQ(v, 2.0);
}

TEST(FusedNorms, MatchAllocatingExpressions) {
  rng::Rng rng(18);
  const Matrix x = test::random_matrix(8, 24, rng);
  const Matrix y = test::random_matrix(8, 24, rng);
  Matrix mask(8, 24);
  for (double& v : mask.data()) v = rng.uniform() < 0.5 ? 1.0 : 0.0;
  EXPECT_EQ(diff_norm_sq(x, y), frobenius_norm_sq(x - y));
  EXPECT_EQ(masked_diff_norm_sq(mask, x, y),
            frobenius_norm_sq(mask.hadamard(x) - y));
}

TEST(CholeskyInPlace, MatchesAllocatingFactorization) {
  rng::Rng rng(19);
  const Matrix f = test::random_matrix(12, 12, rng);
  Matrix spd = f.gram();
  for (std::size_t i = 0; i < 12; ++i) spd(i, i) += 0.5;

  const auto l = cholesky(spd);
  ASSERT_TRUE(l.has_value());
  Matrix in_place = spd;
  ASSERT_TRUE(cholesky_in_place(in_place));
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(in_place(i, j), (*l)(i, j)) << i << "," << j;
    }
    // The strict upper triangle must keep the original entries (the
    // restore-on-retry contract of solve_spd_into).
    for (std::size_t j = i + 1; j < 12; ++j) {
      EXPECT_EQ(in_place(i, j), spd(i, j));
    }
  }

  std::vector<double> b(12);
  for (double& v : b) v = rng.normal();
  std::vector<double> x_ref = cholesky_solve(*l, b);
  std::vector<double> x_in_place = b;
  cholesky_solve_in_place(*l, x_in_place);
  EXPECT_EQ(x_in_place, x_ref);
}

TEST(SolveSpdInto, MatchesSolveSpdOnWellConditionedSystems) {
  rng::Rng rng(20);
  const Matrix f = test::random_matrix(16, 16, rng);
  Matrix spd = f.gram();
  for (std::size_t i = 0; i < 16; ++i) spd(i, i) += 0.05;
  std::vector<double> b(16);
  for (double& v : b) v = rng.normal();

  const std::vector<double> expected = solve_spd(spd, b);
  Matrix work = spd;
  std::vector<double> bx = b;
  std::vector<double> diag(16);
  solve_spd_into(work, bx, diag);
  EXPECT_EQ(bx, expected);
}

TEST(SolveSpdInto, BumpRetryRescuesNearSingularSystems) {
  reset_spd_stats();
  // Rank-deficient Gram matrix with zero regularisation: plain Cholesky
  // must fail, the deterministic diagonal bump must rescue it.
  Matrix f(4, 2);
  f(0, 0) = 1.0;
  f(1, 1) = 1.0;
  f(2, 0) = 1.0;
  f(3, 1) = 1.0;
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 2; ++k) acc += f(i, k) * f(j, k);
      a(i, j) = acc;  // a = f f^T, rank 2
    }
  }
  std::vector<double> bx = {1.0, 2.0, 1.0, 2.0};  // in range(a)
  Matrix work = a;
  std::vector<double> diag(4);
  solve_spd_into(work, bx, diag);

  const SpdStats stats = spd_stats();
  EXPECT_EQ(stats.cholesky_failures, 1u);
  EXPECT_EQ(stats.bump_recoveries, 1u);
  EXPECT_EQ(stats.lu_fallbacks, 0u);

  // The bumped system is a ridge solve: residual must stay tiny.
  const std::vector<double> ax = a * std::span<const double>(bx);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ax[i], (i % 2 == 0) ? 1.0 : 2.0, 1e-4);
  }

  reset_spd_stats();
  const SpdStats cleared = spd_stats();
  EXPECT_EQ(cleared.cholesky_failures, 0u);
}

TEST(SolveSpdInto, IndefiniteFallsBackToLuAndCounts) {
  reset_spd_stats();
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};  // indefinite, non-singular
  std::vector<double> bx = {3.0, 5.0};
  Matrix work = a;
  std::vector<double> diag(2);
  solve_spd_into(work, bx, diag);
  EXPECT_NEAR(bx[0], 5.0, 1e-12);
  EXPECT_NEAR(bx[1], 3.0, 1e-12);
  const SpdStats stats = spd_stats();
  EXPECT_EQ(stats.cholesky_failures, 1u);
  EXPECT_EQ(stats.lu_fallbacks, 1u);
  reset_spd_stats();
}

TEST(BlockAndSelect, ContiguousCopiesPreserveSemantics) {
  rng::Rng rng(21);
  const Matrix a = test::random_matrix(10, 14, rng);
  const Matrix blk = a.block(2, 3, 4, 5);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      ASSERT_EQ(blk(i, j), a(2 + i, 3 + j));
    }
  }
  EXPECT_THROW(a.block(8, 0, 4, 1), std::out_of_range);
  const std::vector<std::size_t> rows = {7, 0, 3};
  const Matrix sel = a.select_rows(rows);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXPECT_EQ(sel.row(k), a.row(rows[k]));
  }
}

}  // namespace
}  // namespace iup::linalg
