// T / G / H construction against the paper's worked examples.
#include "core/constraints.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace iup::core {
namespace {

TEST(NeighborMatrix, TriDiagonalStructure) {
  const auto t = neighbor_matrix(4);
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t q = 0; q < 4; ++q) {
      const bool adjacent = (p + 1 == q) || (q + 1 == p);
      EXPECT_DOUBLE_EQ(t(p, q), adjacent ? 1.0 : 0.0);
    }
  }
}

TEST(NeighborMatrix, SymmetricAndZeroDiagonal) {
  const auto t = neighbor_matrix(7);
  for (std::size_t p = 0; p < 7; ++p) {
    EXPECT_DOUBLE_EQ(t(p, p), 0.0);
    for (std::size_t q = 0; q < 7; ++q) {
      EXPECT_DOUBLE_EQ(t(p, q), t(q, p));
    }
  }
  EXPECT_THROW((void)neighbor_matrix(0), std::invalid_argument);
}

TEST(ContinuityMatrix, MatchesPaper3x3ExampleBeforeMidpointFix) {
  // Eq. 14: for N/M = 3, the column-normalised matrix is
  //   [  1   -0.5   0 ]
  //   [ -1    1    -1 ]
  //   [  0   -0.5   1 ]
  const auto g = continuity_matrix_without_midpoint_fix(3);
  const linalg::Matrix expected{{1.0, -0.5, 0.0},
                                {-1.0, 1.0, -1.0},
                                {0.0, -0.5, 1.0}};
  iup::test::expect_matrix_near(g, expected, 1e-12);
}

TEST(ContinuityMatrix, MidpointFixOddSlots) {
  // S = 3: 1-based midpoint p = (3-1)/2 + 1 = 2 (integer), so column 2
  // (0-based 1) is redefined via Eq. 15: G(p,p)=0, G(p+1,p)=1, G(p-1,p)=-1.
  const auto g = continuity_matrix(3);
  EXPECT_DOUBLE_EQ(g(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(g(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(g(0, 1), -1.0);
  // Other columns keep the Eq. 14 values.
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(g(2, 2), 1.0);
}

TEST(ContinuityMatrix, MidpointFixEvenSlots) {
  // S = 4: p = (4-1)/2 + 1 = 2.5, so columns floor(p)=2 and ceil(p)=3
  // (0-based 1 and 2) are redefined via Eq. 16.
  const auto g = continuity_matrix(4);
  for (std::size_t c : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_DOUBLE_EQ(g(c, c), 0.0);
    EXPECT_DOUBLE_EQ(g(c + 1, c), 1.0);
    EXPECT_DOUBLE_EQ(g(c - 1, c), -1.0);
  }
}

TEST(ContinuityMatrix, ColumnsHaveZeroSumOutsideBoundary) {
  // Interior non-midpoint columns average two neighbours: 1 - 0.5 - 0.5 = 0.
  const auto g = continuity_matrix_without_midpoint_fix(8);
  for (std::size_t q = 1; q + 1 < 8; ++q) {
    double sum = 0.0;
    for (std::size_t p = 0; p < 8; ++p) sum += g(p, q);
    EXPECT_NEAR(sum, 0.0, 1e-12) << "column " << q;
  }
}

TEST(ContinuityMatrix, AnnihilatesLinearProfiles) {
  // A perfectly linear |RSS| profile has zero continuity penalty away from
  // the boundary and midpoint columns: X_D * G column q = x_q - avg of
  // neighbours = 0.
  const std::size_t s = 9;
  const auto g = continuity_matrix_without_midpoint_fix(s);
  linalg::Matrix xd(1, s);
  for (std::size_t u = 0; u < s; ++u) {
    xd(0, u) = -70.0 + 0.8 * static_cast<double>(u);
  }
  const auto penalty = xd * g;
  for (std::size_t q = 1; q + 1 < s; ++q) {
    EXPECT_NEAR(penalty(0, q), 0.0, 1e-10) << "column " << q;
  }
}

TEST(ContinuityMatrix, TinySlotCounts) {
  EXPECT_EQ(continuity_matrix(1).rows(), 1u);
  EXPECT_EQ(continuity_matrix(2).rows(), 2u);
}

TEST(SimilarityMatrix, MatchesEq17) {
  const auto h = similarity_matrix(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double expected = 0.0;
      if (i == j) expected = 1.0;
      if (i == j + 1) expected = -1.0;
      EXPECT_DOUBLE_EQ(h(i, j), expected);
    }
  }
  EXPECT_THROW((void)similarity_matrix(0), std::invalid_argument);
}

TEST(SimilarityMatrix, DifferencesAdjacentRows) {
  const auto h = similarity_matrix(3);
  const linalg::Matrix xd{{1.0, 2.0}, {1.5, 2.5}, {3.0, 4.0}};
  const auto d = h * xd;
  // Row 0 is the raw first row; rows i>0 are X_D(i,:) - X_D(i-1,:).
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(d(2, 1), 1.5);
}

}  // namespace
}  // namespace iup::core
