#include "linalg/rref.hpp"

#include <gtest/gtest.h>

#include "linalg/svd.hpp"
#include "test_util.hpp"

namespace iup::linalg {
namespace {

TEST(Rref, IdentityIsItsOwnRref) {
  const auto r = rref(Matrix::identity(3));
  EXPECT_EQ(r.r, Matrix::identity(3));
  EXPECT_EQ(r.pivot_cols, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Rref, KnownDependentColumns) {
  // Column 1 = 2 * column 0; column 2 independent.
  const Matrix a{{1.0, 2.0, 0.0}, {2.0, 4.0, 1.0}};
  const auto p = pivot_columns(a);
  EXPECT_EQ(p, (std::vector<std::size_t>{0, 2}));
}

TEST(Rref, ZeroMatrixHasNoPivots) {
  EXPECT_TRUE(pivot_columns(Matrix(3, 4)).empty());
}

TEST(Rref, PivotCountEqualsRank) {
  rng::Rng rng(21);
  for (std::size_t rank = 1; rank <= 4; ++rank) {
    const Matrix a = iup::test::random_low_rank(5, 9, rank, rng);
    EXPECT_EQ(pivot_columns(a, 1e-8).size(), rank) << "rank " << rank;
    EXPECT_EQ(pivot_columns(a, 1e-8).size(), numerical_rank(a, 1e-8));
  }
}

TEST(Rref, PivotColumnsAreIndependent) {
  rng::Rng rng(22);
  const Matrix a = iup::test::random_low_rank(6, 12, 3, rng);
  const auto p = pivot_columns(a, 1e-8);
  const Matrix sub = a.select_columns(p);
  EXPECT_EQ(numerical_rank(sub, 1e-8), p.size());
}

TEST(Rref, LeadingOnesAndZeroedPivotColumns) {
  rng::Rng rng(23);
  const Matrix a = iup::test::random_matrix(4, 6, rng);
  const auto result = rref(a);
  for (std::size_t k = 0; k < result.pivot_cols.size(); ++k) {
    const std::size_t c = result.pivot_cols[k];
    for (std::size_t i = 0; i < a.rows(); ++i) {
      EXPECT_DOUBLE_EQ(result.r(i, c), i == k ? 1.0 : 0.0);
    }
  }
}

TEST(Rref, ToleranceControlsNoiseRank) {
  // Rank-1 matrix plus tiny noise: strict tolerance sees full rank, loose
  // tolerance recovers the structural rank.
  rng::Rng rng(24);
  Matrix a = iup::test::random_low_rank(4, 8, 1, rng);
  for (double& v : a.data()) v += rng.normal(0.0, 1e-9);
  EXPECT_EQ(pivot_columns(a, 1e-13).size(), 4u);
  EXPECT_EQ(pivot_columns(a, 1e-6).size(), 1u);
}

}  // namespace
}  // namespace iup::linalg
