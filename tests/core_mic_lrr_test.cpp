// MIC extraction and the LRR correlation solver.
#include <gtest/gtest.h>

#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "test_util.hpp"

namespace iup::core {
namespace {

TEST(Mic, CountEqualsRankOnSyntheticLowRank) {
  rng::Rng rng(51);
  const auto x = iup::test::random_low_rank(6, 30, 4, rng);
  for (auto strategy : {MicStrategy::kQrcp, MicStrategy::kRref}) {
    const auto mic = extract_mic(x, strategy);
    EXPECT_EQ(mic.rank, 4u);
    EXPECT_EQ(mic.reference_cells.size(), 4u);
    EXPECT_EQ(mic.x_mic.cols(), 4u);
    // The selected columns must actually span the column space.
    EXPECT_EQ(linalg::numerical_rank(mic.x_mic, 1e-8), 4u);
  }
}

TEST(Mic, OfficeFingerprintNeedsExactlyMReferences) {
  // Sec. IV-B / Claim 1: the number of reference locations equals the
  // matrix rank, which equals the link count (8 for the office).
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const auto mic = extract_mic(x, MicStrategy::kQrcp, 1e-6);
  EXPECT_EQ(mic.reference_cells.size(), 8u);
}

TEST(Mic, QrcpCellsSortedAndValid) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const auto mic = extract_mic(x);
  for (std::size_t k = 1; k < mic.reference_cells.size(); ++k) {
    EXPECT_LT(mic.reference_cells[k - 1], mic.reference_cells[k]);
  }
  for (std::size_t c : mic.reference_cells) EXPECT_LT(c, x.cols());
}

TEST(Mic, FromExplicitCells) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const std::vector<std::size_t> cells = {1, 10, 50};
  const auto mic = mic_from_cells(x, cells);
  EXPECT_EQ(mic.x_mic.cols(), 3u);
  EXPECT_DOUBLE_EQ(mic.x_mic(3, 1), x(3, 10));
  EXPECT_THROW((void)mic_from_cells(x, {}), std::invalid_argument);
}

TEST(Mic, EmptyMatrixThrows) {
  EXPECT_THROW((void)extract_mic(linalg::Matrix{}), std::invalid_argument);
}

TEST(Lrr, ExactRepresentationOnCleanData) {
  // X built from its own dictionary: X = A Z_true, no corruption.
  rng::Rng rng(52);
  const auto a = iup::test::random_matrix(8, 4, rng);
  const auto z_true = iup::test::random_matrix(4, 20, rng);
  const auto x = a * z_true;
  const auto result = solve_lrr(a, x);
  EXPECT_TRUE(result.converged);
  // A Z reproduces X even if Z itself may differ in the null space.
  EXPECT_LT(linalg::relative_error(a * result.z, x), 1e-4);
  EXPECT_LT(linalg::frobenius_norm(result.e), 1e-3);
}

TEST(Lrr, ColumnCorruptionLandsInE) {
  rng::Rng rng(53);
  const auto a = iup::test::random_matrix(8, 4, rng);
  const auto z_true = iup::test::random_matrix(4, 30, rng);
  auto x = a * z_true;
  // Corrupt three columns heavily.
  for (std::size_t j : {std::size_t{5}, std::size_t{12}, std::size_t{20}}) {
    for (std::size_t i = 0; i < 8; ++i) x(i, j) += rng.normal(0.0, 5.0);
  }
  LrrOptions opt;
  opt.epsilon = 0.15;  // favour explaining corruption through E
  const auto result = solve_lrr(a, x, opt);
  // E's energy should concentrate on the corrupted columns.
  double corrupted = 0.0, clean = 0.0;
  for (std::size_t j = 0; j < 30; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < 8; ++i) col += result.e(i, j) * result.e(i, j);
    if (j == 5 || j == 12 || j == 20) {
      corrupted += col;
    } else {
      clean += col;
    }
  }
  EXPECT_GT(corrupted, 5.0 * clean);
}

TEST(Lrr, CorrelationPredictsHeldOutColumns) {
  // The iUpdater use case: Z learned at day 0 maps reference columns to
  // the full matrix.
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const auto mic = extract_mic(x0);
  const auto lrr = solve_lrr(mic.x_mic, x0);
  EXPECT_LT(linalg::relative_error(mic.x_mic * lrr.z, x0), 0.05);
}

TEST(Lrr, RowMismatchThrows) {
  EXPECT_THROW(
      (void)solve_lrr(linalg::Matrix(3, 2), linalg::Matrix(4, 5)),
      std::invalid_argument);
}

TEST(Lrr, IterationBudgetRespected) {
  rng::Rng rng(54);
  const auto a = iup::test::random_matrix(6, 3, rng);
  const auto x = iup::test::random_matrix(6, 10, rng);
  LrrOptions opt;
  opt.max_iters = 7;
  opt.tol = 0.0;  // never converges by tolerance
  const auto result = solve_lrr(a, x, opt);
  EXPECT_EQ(result.iterations, 7u);
  EXPECT_FALSE(result.converged);
}

TEST(LrrWarmStart, ConvergesToTheColdFixedPointInFarFewerIterations) {
  // The refresh scenario: solve on the day-0 database, drift to day 45,
  // then compare a cold re-solve with one warm-started from the day-0
  // state.  Warm must (a) converge, (b) land on the same Z within the
  // ADMM tolerance scale, (c) need well under half the cold iterations.
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const auto& x1 = run.ground_truth.at_day(45);
  const auto mic0 = extract_mic(x0);
  const LrrOptions opt;

  const auto cold0 = solve_lrr(mic0.x_mic, x0, opt);
  ASSERT_TRUE(cold0.converged);
  EXPECT_GT(cold0.mu_final, opt.mu);

  const auto mic1 = mic_from_cells(x1, mic0.reference_cells);
  const auto cold1 = solve_lrr(mic1.x_mic, x1, opt);
  ASSERT_TRUE(cold1.converged);

  LrrWarmStart warm;
  warm.z = cold0.z;
  warm.y1 = cold0.y1;
  warm.y2 = cold0.y2;
  warm.mu = cold0.mu_final;
  const auto warm1 = solve_lrr(mic1.x_mic, x1, opt, &warm);
  ASSERT_TRUE(warm1.converged);
  EXPECT_LE(warm1.iterations * 2, cold1.iterations)
      << "warm " << warm1.iterations << " vs cold " << cold1.iterations;
  EXPECT_LT(linalg::relative_error(warm1.z, cold1.z), 1e-5);
  // Same reconstruction quality as the cold fixed point.
  EXPECT_LT(linalg::relative_error(mic1.x_mic * warm1.z, x1), 0.05);
}

TEST(LrrWarmStart, ShapeMismatchResetsToCold) {
  // A reference-set change alters the dictionary width: the stale state
  // must be ignored, reproducing the cold solve bit for bit.
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const auto mic = extract_mic(x);
  const LrrOptions opt;
  const auto cold = solve_lrr(mic.x_mic, x, opt);

  LrrWarmStart stale;
  stale.z = linalg::Matrix(mic.x_mic.cols() + 1, x.cols(), 0.1);
  stale.mu = 7.0;
  const auto reset = solve_lrr(mic.x_mic, x, opt, &stale);
  EXPECT_EQ(reset.z, cold.z);
  EXPECT_EQ(reset.iterations, cold.iterations);
  EXPECT_EQ(reset.mu_final, cold.mu_final);
}

TEST(LrrAdaptiveRho, ColdSolveReachesTheSameFixedPointFaster) {
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  const auto mic = extract_mic(x);
  LrrOptions opt;
  const auto fixed = solve_lrr(mic.x_mic, x, opt);
  opt.adaptive_rho = true;
  const auto adaptive = solve_lrr(mic.x_mic, x, opt);
  ASSERT_TRUE(adaptive.converged);
  EXPECT_LT(adaptive.iterations, fixed.iterations);
  EXPECT_LT(linalg::relative_error(adaptive.z, fixed.z), 1e-5);
}

}  // namespace
}  // namespace iup::core
