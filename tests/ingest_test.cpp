// The continuous-update pipeline: observation validation/quarantine, EWMA
// drift detection, deterministic fault injection and the supervisor's
// retry/backoff/breaker state machine — including the core robustness
// guarantee that a failing site keeps serving its last-good bundle
// bit-identically and recovers once faults clear.
#include "ingest/supervisor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "eval/experiment.hpp"
#include "ingest/buffer.hpp"
#include "ingest/drift.hpp"
#include "ingest/faults.hpp"
#include "test_util.hpp"

namespace iup::ingest {
namespace {

using api::StatusCode;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ObservationBuffer, QuarantinesByReasonAndKeepsMeans) {
  serve::SiteHealthCounters health;
  ObservationBuffer buffer(8, 96, health);

  EXPECT_EQ(buffer.push({0, 0, kNan, 1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(buffer.push({0, 0, kInf, 1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(buffer.push({0, 0, -300.0, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(buffer.push({0, 0, 400.0, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(buffer.push({8, 0, -50.0, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(buffer.push({0, 96, -50.0, 1}).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(health.quarantine_non_finite.load(), 2u);
  EXPECT_EQ(health.quarantine_out_of_range.load(), 2u);
  EXPECT_EQ(health.quarantine_unknown_link.load(), 1u);
  EXPECT_EQ(health.quarantine_unknown_cell.load(), 1u);
  EXPECT_EQ(health.observations_accepted.load(), 0u);
  EXPECT_EQ(buffer.size(), 0u);

  // Accepted readings fold into per-entry means and stamp the day.
  ASSERT_TRUE(buffer.push({2, 40, -50.0, 5}).ok());
  ASSERT_TRUE(buffer.push({2, 40, -60.0, 7}).ok());
  ASSERT_TRUE(buffer.push({3, 41, -45.0, 6}).ok());
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.coverage(), 2u);
  EXPECT_DOUBLE_EQ(buffer.mean(2, 40).value(), -55.0);
  EXPECT_DOUBLE_EQ(buffer.mean(3, 41).value(), -45.0);
  EXPECT_FALSE(buffer.mean(0, 0).has_value());
  EXPECT_EQ(health.observations_accepted.load(), 3u);
  EXPECT_EQ(health.last_observed_day.load(), 7u);

  buffer.consume();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.mean(2, 40).has_value());
  // Tallies are cumulative across epochs.
  EXPECT_EQ(health.observations_accepted.load(), 3u);
}

TEST(ObservationBuffer, SourceTableQuarantinesMisattributedReadings) {
  serve::SiteHealthCounters health;
  std::vector<SourceInfo> sources;
  for (std::size_t i = 0; i < 8; ++i) {
    sources.push_back({SourceId(500 + i), Technology::kBle});
  }
  ObservationBuffer buffer(8, 96, sources, health);
  EXPECT_EQ(buffer.sources(), sources);

  // Correct attribution is accepted.
  Observation good{2, 40, -50.0, 5, SourceId(502)};
  ASSERT_TRUE(buffer.push(good).ok());

  // Another link's source, an unknown id, and an unattributed reading
  // are all quarantined as kUnknownSource.
  Observation wrong_link = good;
  wrong_link.source = SourceId(503);
  EXPECT_EQ(buffer.push(wrong_link).code(), StatusCode::kInvalidArgument);
  Observation unknown = good;
  unknown.source = SourceId(9999);
  EXPECT_EQ(buffer.push(unknown).code(), StatusCode::kInvalidArgument);
  Observation unattributed = good;
  unattributed.source = SourceId();
  const auto status = buffer.push(unattributed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("(unspecified)"), std::string::npos)
      << status.message();

  EXPECT_EQ(health.quarantine_unknown_source.load(), 3u);
  EXPECT_EQ(health.observations_accepted.load(), 1u);
  EXPECT_EQ(buffer.size(), 1u);

  // The legacy two-ctor path never source-checks.
  serve::SiteHealthCounters legacy_health;
  ObservationBuffer legacy(8, 96, legacy_health);
  EXPECT_TRUE(legacy.sources().empty());
  EXPECT_TRUE(legacy.push(unattributed).ok());
  EXPECT_TRUE(legacy.push(unknown).ok());
  EXPECT_EQ(legacy_health.quarantine_unknown_source.load(), 0u);
}

TEST(UpdateSupervisor, WatchWiresTheRegisteredSourceTableIntoTheBuffer) {
  const auto& run = iup::test::office_run();
  std::vector<SourceInfo> sources;
  for (std::size_t i = 0; i < 8; ++i) {
    sources.push_back({SourceId(100 + i), Technology::kWifi});
  }
  api::Engine engine;
  ASSERT_TRUE(engine
                  .register_site("office", run.ground_truth.at_day(0),
                                 run.b_mask, sources)
                  .ok());
  UpdateSupervisor supervisor(engine);
  ASSERT_TRUE(supervisor.watch("office").ok());
  // A misattributed reading is quarantined at the site's front door and
  // lands in the site's own health counters.
  EXPECT_EQ(supervisor.observe("office", {0, 0, -50.0, 1, SourceId(101)})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      supervisor.observe("office", {0, 0, -50.0, 1, SourceId(100)}).ok());
  const auto health = engine.site_health("office").value();
  EXPECT_EQ(health.quarantine_unknown_source, 1u);
  EXPECT_EQ(health.observations_accepted, 1u);
}

TEST(ObservationBuffer, CapacityBackPressureIsResourceExhausted) {
  serve::SiteHealthCounters health;
  ObservationBufferOptions options;
  options.capacity = 4;
  ObservationBuffer buffer(8, 96, health, options);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(buffer.push({0, i, -50.0, 1}).ok());
  }
  EXPECT_EQ(buffer.push({0, 5, -50.0, 1}).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(health.quarantine_overflow.load(), 1u);
  // consume() opens the next epoch.
  buffer.consume();
  EXPECT_TRUE(buffer.push({0, 5, -50.0, 1}).ok());
}

TEST(ObservationBuffer, AssembleUsesFreshMeansWithServedFallback) {
  const auto& run = iup::test::office_run();
  api::Engine engine;
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  const api::SnapshotPtr snapshot = engine.snapshot("office").value();
  const linalg::Matrix& x = snapshot->database();
  const linalg::Matrix& mask = snapshot->mask();

  serve::SiteHealthCounters health;
  ObservationBuffer buffer(x.rows(), x.cols(), health);
  // Shape mismatch is rejected.
  ObservationBuffer wrong(4, 12, health);
  EXPECT_EQ(wrong.assemble(*snapshot).status().code(),
            StatusCode::kInvalidArgument);

  const std::size_t ref0 = snapshot->reference_cells()[0];
  ASSERT_TRUE(buffer.push({1, ref0, -40.0, 5}).ok());
  // A masked entry, measured twice.
  std::size_t mi = 0, mj = 0;
  bool found = false;
  for (std::size_t i = 0; i < x.rows() && !found; ++i) {
    for (std::size_t j = 0; j < x.cols() && !found; ++j) {
      if (mask(i, j) != 0.0) {
        mi = i;
        mj = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  ASSERT_TRUE(buffer.push({mi, mj, -48.0, 5}).ok());
  ASSERT_TRUE(buffer.push({mi, mj, -52.0, 5}).ok());

  const auto inputs = buffer.assemble(*snapshot);
  ASSERT_TRUE(inputs.ok()) << inputs.status().to_string();
  const core::UpdateInputs& in = inputs.value();
  ASSERT_EQ(in.x_b.rows(), x.rows());
  ASSERT_EQ(in.x_b.cols(), x.cols());
  ASSERT_EQ(in.x_r.cols(), snapshot->reference_cells().size());

  EXPECT_DOUBLE_EQ(in.x_b(mi, mj), -50.0);  // fresh mean
  EXPECT_DOUBLE_EQ(in.x_r(1, 0), -40.0);    // fresh mean at the reference
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      // Skip the two measured entries: the reference reading at (1, ref0)
      // feeds X_B too when that entry is masked — fresh data is fresh data.
      if ((i == mi && j == mj) || (i == 1 && j == ref0)) continue;
      if (mask(i, j) != 0.0) {
        EXPECT_DOUBLE_EQ(in.x_b(i, j), x(i, j));  // served fallback
      } else {
        EXPECT_DOUBLE_EQ(in.x_b(i, j), 0.0);  // off-mask stays zero
      }
    }
  }
  for (std::size_t k = 1; k < snapshot->reference_cells().size(); ++k) {
    const std::size_t cell = snapshot->reference_cells()[k];
    for (std::size_t i = 0; i < x.rows(); ++i) {
      EXPECT_DOUBLE_EQ(in.x_r(i, k), x(i, cell));
    }
  }
}

TEST(EwmaDriftDetector, NeedsSupportAndThresholdThenLatchesUntilReset) {
  DriftDetectorOptions options;
  options.alpha = 0.5;
  options.threshold_db = 2.0;
  options.min_observations = 4;
  EwmaDriftDetector detector(options);
  EXPECT_FALSE(detector.drifted());

  for (int i = 0; i < 3; ++i) detector.observe(3.0);
  EXPECT_FALSE(detector.drifted());  // support too small
  detector.observe(-3.0);            // residuals are absolute
  EXPECT_TRUE(detector.drifted());
  EXPECT_DOUBLE_EQ(detector.ewma(), 3.0);

  detector.reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.count(), 0u);

  // A quiet stream never fires no matter how long it runs.
  for (int i = 0; i < 100; ++i) detector.observe(0.5);
  EXPECT_FALSE(detector.drifted());
}

TEST(FaultInjector, SchedulesAreDeterministicAndClearable) {
  FaultInjector fi(1234);
  // Disarmed kinds never fire and advance nothing.
  EXPECT_FALSE(fi.fire(FaultKind::kSolverFailure));
  EXPECT_EQ(fi.fired(FaultKind::kSolverFailure), 0u);

  // start=1, count=2, every=2 over attempts 0..5 -> fires at 1 and 3.
  fi.arm(FaultKind::kSolverFailure, {1, 2, 2});
  std::vector<bool> pattern;
  for (int i = 0; i < 6; ++i) pattern.push_back(fi.fire(FaultKind::kSolverFailure));
  EXPECT_EQ(pattern, (std::vector<bool>{false, true, false, true, false, false}));
  EXPECT_EQ(fi.fired(FaultKind::kSolverFailure), 2u);

  // count=0 means unlimited while armed; clear() freezes.
  fi.arm(FaultKind::kSlowSolve, {0, 0, 1});
  EXPECT_TRUE(fi.fire(FaultKind::kSlowSolve));
  EXPECT_TRUE(fi.fire(FaultKind::kSlowSolve));
  fi.clear();
  EXPECT_FALSE(fi.fire(FaultKind::kSlowSolve));
  EXPECT_EQ(fi.fired(FaultKind::kSlowSolve), 2u);

  // Same seed -> same corruption sequence; every corruption quarantines.
  FaultInjector a(77), b(77);
  serve::SiteHealthCounters health;
  ObservationBuffer buffer(8, 96, health);
  for (int i = 0; i < 16; ++i) {
    Observation oa{0, 0, -50.0, 1}, ob{0, 0, -50.0, 1};
    a.corrupt(oa);
    b.corrupt(ob);
    EXPECT_EQ(oa.link, ob.link);
    EXPECT_EQ(oa.rss_db == ob.rss_db ||
                  (oa.rss_db != oa.rss_db && ob.rss_db != ob.rss_db),
              true);
    EXPECT_FALSE(buffer.push(oa).ok());
  }
  EXPECT_EQ(health.observations_accepted.load(), 0u);
}

// --- supervisor end-to-end -------------------------------------------

/// Zero-wait options so every retry/probe is immediately due: tests drive
/// the state machine through pump() alone, no clocks involved.
SupervisorOptions immediate_options() {
  SupervisorOptions options;
  options.backoff_initial = std::chrono::milliseconds(0);
  options.backoff_max = std::chrono::milliseconds(0);
  options.breaker_threshold = 3;
  options.breaker_cooldown = std::chrono::milliseconds(0);
  return options;
}

TEST(UpdateSupervisor, WatchValidatesItsArguments) {
  const auto& run = iup::test::office_run();
  api::Engine engine;
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  UpdateSupervisor supervisor(engine);

  EXPECT_EQ(supervisor.watch("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(supervisor.watch("office").ok());
  EXPECT_EQ(supervisor.watch("office").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(supervisor.observe("nope", {0, 0, -50.0, 1}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(supervisor.trigger("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(supervisor.pump(), 0u);  // nothing pending
  ASSERT_TRUE(supervisor.unwatch("office").ok());
  EXPECT_EQ(supervisor.unwatch("office").code(), StatusCode::kNotFound);
}

TEST(UpdateSupervisor, DriftAgainstServedSnapshotTriggersAnUpdate) {
  const auto& run = iup::test::office_run();
  api::Engine engine;
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  UpdateSupervisor supervisor(engine, immediate_options());

  WatchOptions watch;
  watch.drift.alpha = 0.5;
  watch.drift.threshold_db = 2.0;
  watch.drift.min_observations = 8;
  ASSERT_TRUE(supervisor.watch("office", watch).ok());

  // Stream readings 3 dB off the SERVED values at day 45: exactly the
  // "fingerprints went stale" signal the detector watches for.
  const linalg::Matrix& served = engine.snapshot("office").value()->database();
  std::size_t fed = 0;
  for (std::size_t j = 0; j < 96 && fed < 8; j += 13, ++fed) {
    const double rss = served(2, j) + 3.0;
    ASSERT_TRUE(supervisor.observe("office", {2, j, rss, 45}).ok());
  }

  const auto before = engine.site_health("office").value();
  EXPECT_GE(before.drift_triggers, 1u);
  EXPECT_EQ(before.last_observed_day, 45u);
  EXPECT_EQ(before.staleness_days, 45u);  // serving day 0, stream at day 45

  ASSERT_EQ(supervisor.pump(), 1u);
  const auto after = engine.site_health("office").value();
  EXPECT_EQ(after.state, serve::SiteState::kHealthy);
  EXPECT_EQ(after.updates_ok, 1u);
  EXPECT_EQ(after.update_attempts, 1u);
  EXPECT_EQ(after.serving_version, 2u);
  EXPECT_EQ(after.serving_day, 45u);
  EXPECT_EQ(after.staleness_days, 0u);  // caught up
  EXPECT_EQ(supervisor.pump(), 0u);     // nothing pending any more
}

TEST(UpdateSupervisor, BackoffBreakerDegradedThenRecovery) {
  const auto& run = iup::test::office_run();
  FaultInjector faults(99);
  api::Engine engine(
      api::EngineConfig().update_hooks(faults.engine_hooks()));
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  UpdateSupervisor supervisor(engine, immediate_options());
  ASSERT_TRUE(supervisor.watch("office").ok());

  const serve::PublishedPtr last_good = engine.published("office").value();
  faults.arm(FaultKind::kSolverFailure);  // every solve fails
  ASSERT_TRUE(supervisor.trigger("office").ok());

  // Failures 1 and 2: retrying under backoff.
  ASSERT_EQ(supervisor.pump(), 1u);
  auto health = engine.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kBackoff);
  EXPECT_EQ(health.consecutive_failures, 1u);
  ASSERT_EQ(supervisor.pump(), 1u);
  health = engine.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kBackoff);
  EXPECT_EQ(health.consecutive_failures, 2u);
  EXPECT_EQ(health.breaker_trips, 0u);

  // Failure 3 opens the breaker: degraded, still serving last-good.
  ASSERT_EQ(supervisor.pump(), 1u);
  health = engine.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kDegraded);
  EXPECT_EQ(health.breaker_trips, 1u);
  EXPECT_EQ(health.updates_failed, 3u);

  // Probes while still faulty: stays degraded, no double-counted trips,
  // and the published bundle is THE SAME object as before the faults —
  // bit-identical serving, not a rebuilt copy.
  ASSERT_EQ(supervisor.pump(), 1u);
  health = engine.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kDegraded);
  EXPECT_EQ(health.breaker_trips, 1u);
  EXPECT_EQ(engine.published("office").value().get(), last_good.get());
  EXPECT_EQ(health.serving_version, 1u);

  // Faults clear -> the next probe commits and the site recovers.
  faults.clear();
  ASSERT_EQ(supervisor.pump(), 1u);
  health = engine.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kHealthy);
  EXPECT_EQ(health.recoveries, 1u);
  EXPECT_EQ(health.consecutive_failures, 0u);
  EXPECT_EQ(health.updates_ok, 1u);
  EXPECT_EQ(health.serving_version, 2u);
  EXPECT_EQ(supervisor.pump(), 0u);
}

TEST(UpdateSupervisor, DeadlineAbortsCommitAndLastGoodKeepsServing) {
  const auto& run = iup::test::office_run();
  FaultInjector faults;
  api::Engine engine(
      api::EngineConfig().update_hooks(faults.engine_hooks()));
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  UpdateSupervisor supervisor(engine, immediate_options());
  ASSERT_TRUE(supervisor.watch("office").ok());

  const serve::PublishedPtr last_good = engine.published("office").value();
  faults.set_deadline(std::chrono::nanoseconds(1));  // nothing can make it

  ASSERT_TRUE(supervisor.trigger("office").ok());
  ASSERT_EQ(supervisor.pump(), 1u);
  auto health = engine.site_health("office").value();
  EXPECT_EQ(health.deadline_trips, 1u);
  EXPECT_EQ(health.updates_failed, 1u);
  EXPECT_EQ(health.serving_version, 1u);
  EXPECT_EQ(health.latest_version, 1u);  // the commit truly aborted
  EXPECT_EQ(engine.published("office").value().get(), last_good.get());

  faults.set_deadline(std::chrono::nanoseconds(0));  // deadline clears
  ASSERT_EQ(supervisor.pump(), 1u);
  health = engine.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kHealthy);
  EXPECT_EQ(health.serving_version, 2u);
}

TEST(UpdateSupervisor, CorruptStreamIsQuarantinedNotSolved) {
  const auto& run = iup::test::office_run();
  api::Engine engine;
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  UpdateSupervisor supervisor(engine, immediate_options());
  ASSERT_TRUE(supervisor.watch("office").ok());

  FaultInjector faults(4242);
  faults.arm(FaultKind::kCorruptObservation, {0, 0, 2});  // every other
  const linalg::Matrix& served = engine.snapshot("office").value()->database();
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    Observation obs{i % 8, (i * 7) % 96, 0.0, 5};
    obs.rss_db = served(obs.link, obs.cell) + 1.0;
    if (faults.fire(FaultKind::kCorruptObservation)) faults.corrupt(obs);
    if (!supervisor.observe("office", obs).ok()) ++rejected;
  }
  EXPECT_EQ(rejected, 10u);
  const auto health = engine.site_health("office").value();
  EXPECT_EQ(health.quarantined_total(), 10u);
  EXPECT_EQ(health.observations_accepted, 10u);
  // The clean half was ~1 dB residual: no drift trigger, no update.
  EXPECT_EQ(health.drift_triggers, 0u);
  EXPECT_EQ(supervisor.pump(), 0u);
}

TEST(UpdateSupervisor, BackgroundThreadRunsTheSameLoop) {
  const auto& run = iup::test::office_run();
  api::Engine engine;
  ASSERT_TRUE(eval::register_run(engine, run, "office").ok());
  SupervisorOptions options = immediate_options();
  options.poll_period = std::chrono::milliseconds(1);
  UpdateSupervisor supervisor(engine, options);
  ASSERT_TRUE(supervisor.watch("office").ok());
  EXPECT_FALSE(supervisor.running());

  supervisor.start();
  EXPECT_TRUE(supervisor.running());
  ASSERT_TRUE(supervisor.trigger("office").ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.site_health("office").value().updates_ok == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  supervisor.stop();
  EXPECT_FALSE(supervisor.running());
  EXPECT_GE(engine.site_health("office").value().updates_ok, 1u);
  EXPECT_EQ(engine.site_health("office").value().serving_version, 2u);
}

}  // namespace
}  // namespace iup::ingest
