// The serving layer: RCU bundle publication, the zero-locks read-path
// contract, evict-while-read safety and the ServeFront batching front.
//
// The concurrency tests here are the machine check behind the claims in
// serve/shard.hpp: they run N reader threads against M background updates
// and require (a) zero state-mutex acquisitions inside ReadPathScope, and
// (b) every concurrent localize result to BIT-MATCH a serial localize
// against the exact published version the reader observed.  They are part
// of the TSan CI suite (scripts/ci.sh IUP_SANITIZE=thread).
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "serve/front.hpp"
#include "serve/shard.hpp"
#include "sim/sampler.hpp"
#include "test_util.hpp"

namespace iup::api {
namespace {

Engine office_engine(const eval::EnvironmentRun& run,
                     EngineConfig config = {}) {
  Engine engine(std::move(config));
  const auto registered = eval::register_run(engine, run, "office");
  EXPECT_TRUE(registered.ok()) << registered.status().to_string();
  return engine;
}

std::vector<std::vector<double>> office_queries(
    const eval::EnvironmentRun& run, std::size_t count,
    const std::string& tag) {
  sim::Sampler sampler(run.testbed, tag);
  std::vector<std::vector<double>> queries;
  queries.reserve(count);
  const std::size_t cells = run.testbed.num_cells();
  for (std::size_t k = 0; k < count; ++k) {
    queries.push_back(
        sampler.online_measurement((k * 7) % cells, (k % 2) * 15, 3));
  }
  return queries;
}

/// The serial reference: a fresh localizer over exactly `database`,
/// built the way every published bundle builds its own.
loc::LocalizationEstimate serial_localize(const linalg::Matrix& database,
                                          std::span<const double> query) {
  const auto localizer = make_localizer(LocalizerKind::kOmp, database);
  return localizer->localize(query);
}

TEST(ServePublication, BundleTracksCommitsAndPinsVersions) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);

  const auto v1 = engine.published("office");
  ASSERT_TRUE(v1.ok()) << v1.status().to_string();
  EXPECT_EQ(v1.value()->snapshot->version(), 1u);
  ASSERT_NE(v1.value()->localizer, nullptr);
  EXPECT_EQ(engine.published("nope").status().code(), StatusCode::kNotFound);

  const auto cells = engine.reference_cells("office").value();
  const auto r15 =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(r15.ok()) << r15.status().to_string();

  // The commit republished; the pinned bundle still serves version 1.
  const auto v2 = engine.published("office");
  EXPECT_EQ(v2.value()->snapshot->version(), 2u);
  EXPECT_EQ(v1.value()->snapshot->version(), 1u);
  EXPECT_TRUE(v1.value()->snapshot->database() == run.ground_truth.at_day(0));

  // set_reference_cells republishes the same localizer under the new
  // version (the database did not change).
  ASSERT_TRUE(engine
                  .set_reference_cells(
                      "office",
                      iup::to_cell_ids({0, 8, 16, 24, 32, 40, 48, 56}))
                  .ok());
  const auto v3 = engine.published("office");
  EXPECT_EQ(v3.value()->snapshot->version(), 3u);
  EXPECT_EQ(v3.value()->localizer, v2.value()->localizer);

  ASSERT_TRUE(engine.drop_site("office").ok());
  EXPECT_EQ(engine.published("office").status().code(), StatusCode::kNotFound);
  // The dropped site's pinned bundle keeps serving.
  const auto query = office_queries(run, 1, "serve-pin").front();
  const auto est = v1.value()->localizer->localize(query);
  const auto expected = serial_localize(run.ground_truth.at_day(0), query);
  EXPECT_EQ(est.cell, expected.cell);
  EXPECT_EQ(est.score, expected.score);
}

// Satellite regression for the history-limit eviction: a bundle pinned
// before the store evicted its version keeps serving bit-identical
// results (the store only ever drops ITS reference — snapshot.hpp).
TEST(ServePublication, EvictedVersionKeepsServingPinnedReaders) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run, EngineConfig().history_limit(2));
  const auto pinned = engine.published("office").value();
  const linalg::Matrix database_at_pin = pinned->snapshot->database();

  const auto cells = engine.reference_cells("office").value();
  for (std::size_t day : {std::size_t{5}, std::size_t{15}, std::size_t{45}}) {
    const auto res =
        engine.update(eval::collect_update_request(run, "office", cells, day));
    ASSERT_TRUE(res.ok()) << res.status().to_string();
  }
  // Version 1 is gone from the store...
  EXPECT_EQ(engine.snapshot("office", 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.store().version_count("office"), 2u);
  // ...but the pinned bundle is intact and bit-identical.
  EXPECT_EQ(pinned->snapshot->version(), 1u);
  EXPECT_TRUE(pinned->snapshot->database() == database_at_pin);
  const auto query = office_queries(run, 1, "serve-evict").front();
  const auto est = pinned->localizer->localize(query);
  const auto expected = serial_localize(database_at_pin, query);
  EXPECT_EQ(est.cell, expected.cell);
  EXPECT_EQ(est.score, expected.score);
}

// Satellite regression for the failure path of publication: an update
// that dies MID-BUILD — after the solve and correlation refresh, at the
// before_publish seam, i.e. with the next bundle's ingredients already
// computed — must leave the served bundle untouched: same object, same
// version, bit-identical localize results.  Readers can never observe a
// partially-published version because a failed build never reaches the
// publish store at all.
TEST(ServePublication, FailedMidBuildUpdateLeavesOldBundleServedBitIdentically) {
  const auto& run = iup::test::office_run();
  std::atomic<bool> fail_publish{false};
  std::atomic<std::uint64_t> consulted{0};
  UpdateHooks hooks;
  hooks.before_publish =
      [&](std::chrono::nanoseconds) -> Status {
    consulted.fetch_add(1);
    if (fail_publish.load()) {
      return Status::unavailable("injected mid-build failure");
    }
    return {};
  };
  Engine engine = office_engine(run, EngineConfig().update_hooks(hooks));

  const auto before = engine.published("office").value();
  const auto query = office_queries(run, 1, "serve-midbuild").front();
  const auto est_before = before->localizer->localize(query);

  fail_publish.store(true);
  const auto cells = engine.reference_cells("office").value();
  const auto failed =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(consulted.load(), 1u);  // the build really ran to the seam

  // Old bundle: same object, same version, nothing committed.
  const auto after = engine.published("office").value();
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(after->snapshot->version(), 1u);
  EXPECT_EQ(engine.store().version_count("office"), 1u);
  const auto est_after = after->localizer->localize(query);
  EXPECT_EQ(est_after.cell, est_before.cell);
  EXPECT_EQ(est_after.score, est_before.score);  // bitwise, not approx

  // The health surface saw the failure; the serve surface did not.
  const auto health = engine.site_health("office").value();
  EXPECT_EQ(health.updates_failed, 1u);
  EXPECT_EQ(health.serving_version, 1u);

  // Hook released: the very next update publishes normally.
  fail_publish.store(false);
  const auto ok =
      engine.update(eval::collect_update_request(run, "office", cells, 15));
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(engine.published("office").value()->snapshot->version(), 2u);
}

// N reader threads localize continuously while a writer commits M updates
// (with a tight history limit, so evictions happen underneath the
// readers).  Every result must bit-match a serial localize against the
// exact version the reader observed, and the read path must never touch a
// state mutex.
TEST(ServeConcurrency, ReadersDuringUpdatesBitMatchObservedVersion) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run, EngineConfig().history_limit(2));
  const auto queries = office_queries(run, 8, "serve-stress");
  const std::uint64_t violations_before = serve::read_path_lock_violations();

  // Record every committed database so readers can be checked against
  // whichever version they observed (index = version - 1).
  std::vector<linalg::Matrix> databases;
  databases.push_back(engine.snapshot("office").value()->database());
  constexpr std::size_t kUpdates = 3;
  constexpr std::size_t kReaders = 4;

  struct Observation {
    std::uint64_t version;
    std::size_t query;
    loc::LocalizationEstimate estimate;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ready.fetch_add(1);
      std::size_t k = t;  // stagger the query streams across readers
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t q = k++ % queries.size();
        // Pin the bundle FIRST so the (version, estimate) pairing is
        // exact even when an update publishes mid-call.
        const auto bundle = engine.published("office");
        ASSERT_TRUE(bundle.ok());
        const auto est = bundle.value()->localizer->localize(queries[q]);
        observed[t].push_back(
            {bundle.value()->snapshot->version(), q, est});
        // Also exercise the public entry point (checked below only when
        // no update landed mid-call).
        const auto before = engine.published("office").value();
        const auto via_engine = engine.localize("office", queries[q]);
        const auto after = engine.published("office").value();
        ASSERT_TRUE(via_engine.ok()) << via_engine.status().to_string();
        if (before->snapshot->version() == after->snapshot->version()) {
          observed[t].push_back(
              {before->snapshot->version(), q, via_engine.value()});
        }
      }
    });
  }
  while (ready.load() < kReaders) std::this_thread::yield();

  const auto cells = engine.reference_cells("office").value();
  for (std::size_t u = 0; u < kUpdates; ++u) {
    const auto res = engine.update(
        eval::collect_update_request(run, "office", cells, 5 + 10 * u));
    ASSERT_TRUE(res.ok()) << res.status().to_string();
    databases.push_back(res.value().x_hat());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(serve::read_path_lock_violations(), violations_before);

  std::size_t checked = 0;
  std::vector<std::uint64_t> versions_seen;
  for (const auto& per_reader : observed) {
    for (const Observation& ob : per_reader) {
      ASSERT_GE(ob.version, 1u);
      ASSERT_LE(ob.version, databases.size());
      const auto expected =
          serial_localize(databases[ob.version - 1], queries[ob.query]);
      EXPECT_EQ(ob.estimate.cell, expected.cell);
      EXPECT_EQ(ob.estimate.score, expected.score);  // bit-exact
      ++checked;
      versions_seen.push_back(ob.version);
    }
  }
  EXPECT_GT(checked, 0u);
}

// Registry churn under readers: site lookups stay safe while other sites
// register and drop (the copy-on-write map republish).
TEST(ServeConcurrency, RegistryChurnDoesNotDisturbReaders) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto queries = office_queries(run, 4, "serve-churn");
  const auto expected =
      serial_localize(run.ground_truth.at_day(0), queries[0]);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    for (int i = 0; i < 6 && !stop.load(); ++i) {
      const auto reg = engine.register_site(
          "churn", run.ground_truth.at_day(0), run.b_mask);
      ASSERT_TRUE(reg.ok()) << reg.status().to_string();
      ASSERT_TRUE(engine.drop_site("churn").ok());
    }
    stop.store(true);
  });
  std::size_t reads = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const auto est = engine.localize("office", queries[0]);
    ASSERT_TRUE(est.ok());
    EXPECT_EQ(est.value().cell, expected.cell);
    EXPECT_EQ(est.value().score, expected.score);
    ++reads;
  }
  churn.join();
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(engine.published("churn").status().code(), StatusCode::kNotFound);
}

TEST(ServeFrontTest, MatchesDirectLocalizeAndValidates) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  serve::ServeFrontOptions options;
  options.max_batch = 4;
  options.max_wait = std::chrono::microseconds(50);
  serve::ServeFront front(engine.shards(), options);

  const auto queries = office_queries(run, 6, "serve-front");
  for (const auto& query : queries) {
    const auto direct = engine.localize("office", query);
    const auto batched = front.localize("office", query);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(batched.ok()) << batched.status().to_string();
    EXPECT_EQ(batched.value().cell, direct.value().cell);
    EXPECT_EQ(batched.value().score, direct.value().score);
  }
  EXPECT_EQ(front.total_requests(), queries.size());
  EXPECT_GE(front.total_batches(), 1u);

  EXPECT_EQ(front.localize("nope", queries[0]).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(front.localize("office", std::vector<double>(3)).status().code(),
            StatusCode::kInvalidArgument);
}

// Concurrent callers through the front coalesce into shared batches, and
// every caller still gets exactly the result of a direct serial localize
// — batching changes scheduling, never bits, regardless of arrival order.
TEST(ServeFrontTest, ConcurrentCallersGetOrderIndependentResults) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  serve::ServeFrontOptions options;
  options.max_batch = 8;
  options.max_wait = std::chrono::microseconds(500);
  serve::ServeFront front(engine.shards(), options);

  const auto queries = office_queries(run, 8, "serve-front-mt");
  std::vector<loc::LocalizationEstimate> expected;
  for (const auto& query : queries) {
    expected.push_back(engine.localize("office", query).value());
  }

  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kCallsEach = 12;
  std::vector<std::thread> callers;
  std::vector<std::size_t> mismatches(kCallers, 0);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t k = 0; k < kCallsEach; ++k) {
        // Different interleaving per caller: arrival order inside each
        // coalesced batch varies run to run.
        const std::size_t q = (t * 5 + k * 3) % queries.size();
        const auto result = front.localize("office", queries[q]);
        if (!result.ok() || result.value().cell != expected[q].cell ||
            result.value().score != expected[q].score) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (std::size_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "caller " << t;
  }
  EXPECT_EQ(front.total_requests(), kCallers * kCallsEach);
  EXPECT_LE(front.total_batches(), front.total_requests());
  EXPECT_GE(front.largest_batch(), 1u);
}

TEST(ServeReadPath, ScopeNestsAndReportsState) {
  EXPECT_FALSE(serve::in_read_path());
  {
    serve::ReadPathScope outer;
    EXPECT_TRUE(serve::in_read_path());
    {
      serve::ReadPathScope inner;
      EXPECT_TRUE(serve::in_read_path());
    }
    EXPECT_TRUE(serve::in_read_path());
  }
  EXPECT_FALSE(serve::in_read_path());
}

}  // namespace
}  // namespace iup::api
