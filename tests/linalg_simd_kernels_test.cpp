// The SIMD micro-kernel layer (src/linalg/kernels/): scalar-vs-active
// level agreement over odd lengths, unaligned offsets and tail
// remainders, the packed-GEMM accumulation contract, and the exactness
// identities the dispatch header documents.
//
// In a scalar-level build (no IUP_ARCH) the active kernels ARE the scalar
// kernels and the comparisons are trivially exact; the AVX2 CI cell
// (-march=x86-64-v3) is where the cross-level tolerances do real work:
// element-wise kernels may differ from scalar by one FMA rounding per
// element, reductions by the two-lane accumulator reorder.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/kernels/gemm.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "test_util.hpp"

namespace iup::linalg::kernels {
namespace {

// Lengths straddling every vector-width boundary: sub-lane, one lane,
// lane+tail, the 8-wide unrolled body, and awkward primes.
const std::size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 9, 11, 13,
                                16, 17, 23, 31, 32, 37, 64, 67};

// Offsets 0..3 shift the operands off 32-byte alignment in every way a
// row_span suffix can.
constexpr std::size_t kMaxOffset = 4;

std::vector<double> random_vec(std::size_t n, rng::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

TEST(KernelDispatch, LevelNameIsConsistent) {
  if (active_level() == Level::kAvx512) {
    EXPECT_STREQ(active_level_name(), "avx512");
    // The packed GEMM runs its AVX2 block kernel at every SIMD level.
    EXPECT_TRUE(gemm_is_vectorized());
  } else if (active_level() == Level::kAvx2) {
    EXPECT_STREQ(active_level_name(), "avx2");
    EXPECT_TRUE(gemm_is_vectorized());
  } else {
    EXPECT_STREQ(active_level_name(), "scalar");
    EXPECT_FALSE(gemm_is_vectorized());
  }
}

TEST(KernelDot, MatchesScalarWithinReductionTolerance) {
  rng::Rng rng(101);
  for (const std::size_t n : kLengths) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const auto a = random_vec(n + off, rng);
      const auto b = random_vec(n + off, rng);
      const double got = dot(a.data() + off, b.data() + off, n);
      const double ref = scalar::dot(a.data() + off, b.data() + off, n);
      const double tol =
          1e-15 * static_cast<double>(n) * (std::abs(ref) + 1.0);
      EXPECT_NEAR(got, ref, tol) << "n=" << n << " off=" << off;
    }
  }
}

TEST(KernelDot, ValueIndependentOfAlignment) {
  // The reduction tree depends only on the length — the same data at a
  // different offset must produce the same bits.
  rng::Rng rng(102);
  const std::size_t n = 37;
  const auto a = random_vec(n, rng);
  const auto b = random_vec(n, rng);
  const double base = dot(a.data(), b.data(), n);
  for (std::size_t off = 1; off < kMaxOffset; ++off) {
    std::vector<double> as(n + off), bs(n + off);
    std::copy(a.begin(), a.end(), as.begin() + off);
    std::copy(b.begin(), b.end(), bs.begin() + off);
    EXPECT_EQ(dot(as.data() + off, bs.data() + off, n), base) << off;
  }
}

TEST(KernelAxpy, MatchesScalarWithinOneFmaRounding) {
  rng::Rng rng(103);
  for (const std::size_t n : kLengths) {
    for (std::size_t off = 0; off < kMaxOffset; ++off) {
      const auto x = random_vec(n + off, rng);
      auto got = random_vec(n + off, rng);
      auto ref = got;
      axpy(0.73, x.data() + off, got.data() + off, n);
      scalar::axpy(0.73, x.data() + off, ref.data() + off, n);
      for (std::size_t i = 0; i < n + off; ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-14 * (std::abs(ref[i]) + 1.0))
            << "n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(KernelAxpy, PositionIndependentPerElement) {
  // Splitting a row into tile segments must not change any element: the
  // same (alpha, x, y) triple produces the same bits in a lane or a tail.
  rng::Rng rng(104);
  const std::size_t n = 29;
  const auto x = random_vec(n, rng);
  const auto y0 = random_vec(n, rng);
  auto whole = y0;
  axpy(-1.37, x.data(), whole.data(), n);
  for (const std::size_t split : {1ul, 4ul, 5ul, 13ul, 28ul}) {
    auto parts = y0;
    axpy(-1.37, x.data(), parts.data(), split);
    axpy(-1.37, x.data() + split, parts.data() + split, n - split);
    EXPECT_EQ(parts, whole) << "split=" << split;
  }
}

TEST(KernelAxpy2, MatchesTwoAxpysWithinRounding) {
  rng::Rng rng(105);
  for (const std::size_t n : kLengths) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    auto got = random_vec(n, rng);
    auto ref = got;
    axpy2(0.31, x.data(), -1.7, y.data(), got.data(), n);
    scalar::axpy2(0.31, x.data(), -1.7, y.data(), ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], ref[i], 2e-14 * (std::abs(ref[i]) + 1.0))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelNorms, ReductionsMatchScalarAndShareTreeShape) {
  rng::Rng rng(106);
  for (const std::size_t n : kLengths) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    std::vector<double> mask(n);
    for (double& v : mask) v = rng.uniform() < 0.5 ? 1.0 : 0.0;

    const double tol = 1e-14 * static_cast<double>(n);
    EXPECT_NEAR(norm_sq(x.data(), n), scalar::norm_sq(x.data(), n),
                tol * (scalar::norm_sq(x.data(), n) + 1.0));
    EXPECT_NEAR(diff_norm_sq(x.data(), y.data(), n),
                scalar::diff_norm_sq(x.data(), y.data(), n),
                tol * (scalar::diff_norm_sq(x.data(), y.data(), n) + 1.0));
    EXPECT_NEAR(
        masked_diff_norm_sq(mask.data(), x.data(), y.data(), n),
        scalar::masked_diff_norm_sq(mask.data(), x.data(), y.data(), n),
        tol *
            (scalar::masked_diff_norm_sq(mask.data(), x.data(), y.data(), n) +
             1.0));

    // Shared-tree identity (exact at every level): diff_norm_sq(x, y)
    // == norm_sq of the materialised difference.
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = x[i] - y[i];
    EXPECT_EQ(diff_norm_sq(x.data(), y.data(), n), norm_sq(d.data(), n));
    // And the masked form == diff form on the pre-masked operand.
    std::vector<double> mx(n);
    for (std::size_t i = 0; i < n; ++i) mx[i] = mask[i] * x[i];
    EXPECT_EQ(masked_diff_norm_sq(mask.data(), x.data(), y.data(), n),
              diff_norm_sq(mx.data(), y.data(), n));
  }
}

TEST(KernelAddOuter, UpperTriangleMatchesScalar) {
  rng::Rng rng(107);
  for (const std::size_t n : {1ul, 2ul, 3ul, 5ul, 8ul, 11ul, 16ul}) {
    const auto v = random_vec(n, rng);
    const auto seed = random_vec(n * n, rng);
    auto got = seed;
    auto ref = seed;
    add_outer_upper(0.83, v.data(), n, got.data(), n);
    scalar::add_outer_upper(0.83, v.data(), n, ref.data(), n);
    // Contract: only the diagonal and upper triangle are specified; the
    // AVX2 level also touches the lower triangle (full-row streaming).
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        EXPECT_NEAR(got[a * n + b], ref[a * n + b],
                    1e-14 * (std::abs(ref[a * n + b]) + 1.0))
            << n << " @" << a << "," << b;
      }
    }
  }
}

TEST(KernelGemm, AccumulatesAscendingKAtTheActiveLevel) {
  // Contract: every output element is a single accumulator fed ascending
  // k with the active level's element arithmetic — FMA at kAvx2, mul+add
  // at kScalar.  Exact comparison against that reference, odd shapes
  // covering full tiles, row/column remainders and k tails.
  rng::Rng rng(108);
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},   {4, 16, 8},
                                   {5, 17, 9},  {8, 32, 24}, {13, 19, 23},
                                   {16, 16, 96}, {33, 7, 65}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_vec(m * k, rng);
    const auto b = random_vec(k * n, rng);
    auto got = random_vec(m * n, rng);
    auto ref = got;
    gemm_accumulate(a.data(), k, b.data(), n, got.data(), n, m, k, n);
    const bool fma = active_level() != Level::kScalar;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = ref[i * n + j];
        for (std::size_t kk = 0; kk < k; ++kk) {
          acc = fma ? std::fma(a[i * k + kk], b[kk * n + j], acc)
                    : acc + a[i * k + kk] * b[kk * n + j];
        }
        ref[i * n + j] = acc;
      }
    }
    EXPECT_EQ(got, ref) << m << "x" << k << "x" << n;
  }
}

TEST(KernelGemm, RespectsLeadingDimensions) {
  // Operate on an interior block of larger row-major buffers.
  rng::Rng rng(109);
  const std::size_t m = 6, k = 10, n = 9;
  const std::size_t lda = k + 3, ldb = n + 2, ldc = n + 5;
  const auto a = random_vec(m * lda, rng);
  const auto b = random_vec(k * ldb, rng);
  auto got = random_vec(m * ldc, rng);
  auto ref = got;
  gemm_accumulate(a.data(), lda, b.data(), ldb, got.data(), ldc, m, k, n);
  const bool fma = active_level() != Level::kScalar;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = ref[i * ldc + j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = fma ? std::fma(a[i * lda + kk], b[kk * ldb + j], acc)
                  : acc + a[i * lda + kk] * b[kk * ldb + j];
      }
      ref[i * ldc + j] = acc;
    }
  }
  EXPECT_EQ(got, ref);
  // Elements outside the written block are untouched.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = n; j < ldc; ++j) {
      SCOPED_TRACE(i);
      EXPECT_EQ(got[i * ldc + j], ref[i * ldc + j]);
    }
  }
}

TEST(KernelDotPanel, EveryColumnBitIdenticalToDot) {
  // The trsv_multi contract: out[c] must reproduce the active level's
  // dot() on a contiguous copy of panel column c, bit for bit — this is
  // what lets the multi-RHS SPD back substitution keep every RHS equal to
  // the historical single-column solve.  Cover sub-lane, lane-boundary
  // and tail lengths in BOTH dimensions plus padded leading dimensions.
  rng::Rng rng(111);
  for (const std::size_t n : {0ul, 1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul,
                              12ul, 15ul, 16ul, 17ul, 31ul, 37ul}) {
    for (const std::size_t k : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul,
                                11ul, 16ul, 19ul}) {
      for (const std::size_t pad : {0ul, 3ul}) {
        const std::size_t ld = k + pad;
        const auto a = random_vec(n, rng);
        const auto panel = random_vec(n * ld + 1, rng);
        std::vector<double> out(k, -1.0);
        dot_panel(a.data(), panel.data(), ld, n, k, out.data());
        for (std::size_t c = 0; c < k; ++c) {
          std::vector<double> col(n);
          for (std::size_t p = 0; p < n; ++p) col[p] = panel[p * ld + c];
          EXPECT_EQ(out[c], dot(a.data(), col.data(), n))
              << "n=" << n << " k=" << k << " ld=" << ld << " c=" << c;
        }
      }
    }
  }
}

TEST(KernelDotPanel, ScalarLevelMatchesScalarDot) {
  // The always-available reference level obeys the same contract.
  rng::Rng rng(112);
  const std::size_t n = 13, k = 6;
  const auto a = random_vec(n, rng);
  const auto panel = random_vec(n * k, rng);
  std::vector<double> out(k);
  scalar::dot_panel(a.data(), panel.data(), k, n, k, out.data());
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> col(n);
    for (std::size_t p = 0; p < n; ++p) col[p] = panel[p * k + c];
    EXPECT_EQ(out[c], scalar::dot(a.data(), col.data(), n)) << c;
  }
}

TEST(KernelContract, ZeroSkipIsExactOnFiniteData) {
  // The documented claim behind every pivot zero-skip: adding 0.0 * v
  // contributions cannot change a finite accumulation.
  rng::Rng rng(110);
  const std::size_t n = 24;
  const auto x = random_vec(n, rng);
  auto with = random_vec(n, rng);
  const auto without = with;
  axpy(0.0, x.data(), with.data(), n);
  EXPECT_EQ(with, without);
}

}  // namespace
}  // namespace iup::linalg::kernels
