// Durability: checkpoint/WAL round trips, corruption paths and recovery
// semantics.  The round-trip identity tests run in the CI SIMD cells too
// (scalar / AVX2 / AVX-512): the format stores raw IEEE-754 bytes, so a
// restore must be bit-identical at every kernel dispatch level.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "ingest/faults.hpp"
#include "ingest/supervisor.hpp"
#include "persist/checkpoint.hpp"
#include "persist/durability.hpp"
#include "persist/io.hpp"
#include "persist/wal.hpp"
#include "test_util.hpp"

namespace iup::persist {
namespace {

using api::Engine;
using api::EngineConfig;
using api::StatusCode;

/// Fresh unique directory under the gtest temp root, removed on scope
/// exit.
struct TempDir {
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "iup-persist-XXXXXX";
    path = ::mkdtemp(tmpl.data()) != nullptr ? tmpl : std::string();
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  std::string path;
};

Engine office_engine(const eval::EnvironmentRun& run,
                     EngineConfig config = {}) {
  Engine engine(std::move(config));
  const auto registered = eval::register_run(engine, run, "office");
  EXPECT_TRUE(registered.ok()) << registered.status().to_string();
  return engine;
}

/// Commit `days` office updates (the standard drifting-survey workload).
void run_updates(Engine& engine, const eval::EnvironmentRun& run,
                 std::initializer_list<std::size_t> days) {
  const auto cells = engine.snapshot("office").value()->reference_cells();
  for (const std::size_t day : days) {
    const auto result =
        engine.update(eval::collect_update_request(run, "office", cells, day));
    ASSERT_TRUE(result.ok()) << result.status().to_string();
  }
}

std::vector<double> probe_measurement(const Engine& engine,
                                      std::size_t column) {
  const linalg::Matrix& db =
      engine.published("office").value()->snapshot->database();
  std::vector<double> m(db.rows());
  for (std::size_t i = 0; i < db.rows(); ++i) m[i] = db(i, column) + 1.5;
  return m;
}

/// EXACT equality across everything recovery must reproduce: retained
/// chains (all matrices compared bit-for-bit), warm-cache versions, and
/// the localize answers for a panel of probes.
void expect_engines_identical(const Engine& a, const Engine& b) {
  ASSERT_EQ(a.store().sites(), b.store().sites());
  for (const std::string& site : a.store().sites()) {
    ASSERT_EQ(a.store().version_count(site), b.store().version_count(site));
    const std::uint64_t latest = a.store().latest(site).value()->version();
    ASSERT_EQ(latest, b.store().latest(site).value()->version());
    const std::uint64_t first =
        latest - a.store().version_count(site) + 1;
    for (std::uint64_t v = first; v <= latest; ++v) {
      const auto sa = a.store().at_version(site, v).value();
      const auto sb = b.store().at_version(site, v).value();
      EXPECT_TRUE(sa->database() == sb->database()) << site << " v" << v;
      EXPECT_TRUE(sa->mask() == sb->mask());
      EXPECT_TRUE(sa->correlation() == sb->correlation());
      EXPECT_EQ(sa->reference_cells(), sb->reference_cells());
      EXPECT_EQ(sa->day(), sb->day());
      EXPECT_EQ(sa->sources().size(), sb->sources().size());
    }
    EXPECT_EQ(a.published(site).value()->snapshot->version(),
              b.published(site).value()->snapshot->version());
    EXPECT_EQ(a.warm_start_version(site), b.warm_start_version(site));
    EXPECT_EQ(a.lrr_warm_version(site), b.lrr_warm_version(site));
  }
  for (std::size_t column = 0; column < 96; column += 17) {
    const std::vector<double> m = probe_measurement(a, column);
    const auto ea = a.localize("office", m);
    const auto eb = b.localize("office", m);
    ASSERT_TRUE(ea.ok() && eb.ok());
    EXPECT_EQ(ea.value().cell, eb.value().cell) << "probe " << column;
    EXPECT_EQ(ea.value().score, eb.value().score) << "probe " << column;
  }
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(path, bytes).ok());
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0x40;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- byte plumbing ----------------------------------------------------

TEST(PersistIo, Crc32MatchesTheIeeeReferenceVector) {
  // The canonical check value for the 0xEDB88320 polynomial.
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("")), 0u);
}

TEST(PersistIo, ScalarsAndMatricesRoundTripBitExactly) {
  ByteWriter writer;
  writer.put_u8(0xAB);
  writer.put_u32(0xDEADBEEF);
  writer.put_u64(0x0123456789ABCDEFull);
  writer.put_f64(-0.1);  // not exactly representable: bytes must survive
  writer.put_f64(5e-324);  // smallest denormal
  writer.put_string("office");
  linalg::Matrix m(3, 2);
  double fill = 0.1;
  for (double& v : m.data()) v = (fill += 0.7);
  writer.put_matrix(m);

  ByteReader reader(writer.span());
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double d1 = 0;
  double d2 = 0;
  std::string s;
  linalg::Matrix out;
  ASSERT_TRUE(reader.get_u8(u8) && reader.get_u32(u32) &&
              reader.get_u64(u64) && reader.get_f64(d1) &&
              reader.get_f64(d2) && reader.get_string(s) &&
              reader.get_matrix(out) && reader.exhausted());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(d1, -0.1);
  EXPECT_EQ(d2, 5e-324);
  EXPECT_EQ(s, "office");
  EXPECT_TRUE(out == m);
}

TEST(PersistIo, ReaderRejectsTruncationAndImplausibleLengths) {
  ByteWriter writer;
  writer.put_u64(1u << 20);  // rows
  writer.put_u64(1u << 20);  // cols: would be an 8 TB allocation
  ByteReader reader(writer.span());
  linalg::Matrix m;
  EXPECT_FALSE(reader.get_matrix(m));  // length exceeds the stream

  ByteReader empty(std::span<const std::uint8_t>{});
  std::uint32_t v = 0;
  EXPECT_FALSE(empty.get_u32(v));
  EXPECT_TRUE(empty.exhausted());
}

TEST(PersistIo, SnapshotCodecRoundTripsTheMultiRadioTable) {
  linalg::Matrix db(2, 6);
  linalg::Matrix mask(2, 6);
  double fill = -60.0;
  for (double& v : db.data()) v = (fill += 0.3);
  for (double& v : mask.data()) v = 1.0;
  const api::FingerprintSnapshot snapshot(
      "lab", 7, db, mask, core::BandLayout{2, 3}, {0, 2},
      linalg::Matrix(2, 6, 0.5), /*day=*/42,
      {SourceInfo{SourceId(11), Technology::kWifi},
       SourceInfo{SourceId(22), Technology::kBle}});

  ByteWriter writer;
  put_snapshot(writer, snapshot);
  ByteReader reader(writer.span());
  api::SnapshotPtr out;
  ASSERT_TRUE(get_snapshot(reader, out) && reader.exhausted());
  EXPECT_EQ(out->site(), "lab");
  EXPECT_EQ(out->version(), 7u);
  EXPECT_EQ(out->day(), 42u);
  EXPECT_TRUE(out->database() == snapshot.database());
  EXPECT_TRUE(out->mask() == snapshot.mask());
  EXPECT_TRUE(out->correlation() == snapshot.correlation());
  EXPECT_EQ(out->layout().links, 2u);
  EXPECT_EQ(out->layout().slots, 3u);
  EXPECT_EQ(out->reference_cells(), snapshot.reference_cells());
  ASSERT_EQ(out->sources().size(), 2u);
  EXPECT_EQ(out->sources()[1].id, SourceId(22));
  EXPECT_EQ(out->sources()[1].technology, Technology::kBle);
}

// --- checkpoint round trip and corruption -----------------------------

TEST(PersistCheckpoint, RoundTripRestoresBitIdenticalServing) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run);
  run_updates(engine, run, {15, 45, 75});
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());

  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  expect_engines_identical(engine, restored);

  // Health counters travel with the checkpoint.
  const auto h = engine.site_health("office").value();
  const auto hr = restored.site_health("office").value();
  EXPECT_EQ(h.updates_ok, hr.updates_ok);
  EXPECT_EQ(h.serving_version, hr.serving_version);
  EXPECT_EQ(h.last_observed_day, hr.last_observed_day);
}

TEST(PersistCheckpoint, RecoveredEngineKeepsCommittingBitIdentically) {
  // The warm caches are checkpoint payload precisely so POST-recovery
  // solves match: commit the same day-90 update on both engines and
  // require byte-equal databases.
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run);
  run_updates(engine, run, {15, 45});
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());
  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());

  run_updates(engine, run, {75});
  run_updates(restored, run, {75});
  const auto a = engine.snapshot("office").value();
  const auto b = restored.snapshot("office").value();
  ASSERT_EQ(a->version(), b->version());
  EXPECT_TRUE(a->database() == b->database());
  EXPECT_TRUE(a->correlation() == b->correlation());
}

TEST(PersistCheckpoint, RespectsHistoryLimitChains) {
  // A chain that starts above version 1 (history-limit eviction) must
  // restore with the same window and keep committing.
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run, EngineConfig().history_limit(2));
  run_updates(engine, run, {15, 45, 75});  // retained window: v3, v4
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());

  Engine restored(EngineConfig().history_limit(2));
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  EXPECT_EQ(restored.store().version_count("office"), 2u);
  EXPECT_EQ(restored.store().latest("office").value()->version(), 4u);
  EXPECT_EQ(restored.store().at_version("office", 1).status().code(),
            StatusCode::kNotFound);
  run_updates(restored, run, {90});
  EXPECT_EQ(restored.store().latest("office").value()->version(), 5u);
}

TEST(PersistCheckpoint, RestoreIntoNonEmptyEngineIsFailedPrecondition) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run);
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());
  EXPECT_EQ(engine.restore_from(dir.path).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PersistCheckpoint, MissingOrEmptyDirectoryIsNotFound) {
  TempDir dir;
  Engine fresh;
  EXPECT_EQ(fresh.restore_from(dir.path).code(), StatusCode::kNotFound);
  EXPECT_EQ(fresh.restore_from(dir.path + "/does-not-exist").code(),
            StatusCode::kNotFound);
}

TEST(PersistCheckpoint, FlippedBitInASectionIsDataLoss) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run);
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());
  // Offset 64 sits inside the first site section's payload (header is 16
  // bytes + 12 bytes of section framing).
  flip_byte(dir.path + "/" + kCheckpointFile, 64);
  Engine fresh;
  EXPECT_EQ(fresh.restore_from(dir.path).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(fresh.store().sites().empty());  // nothing partially applied
}

TEST(PersistCheckpoint, FlippedBitInTheMagicIsDataLoss) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run);
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());
  flip_byte(dir.path + "/" + kCheckpointFile, 0);
  Engine fresh;
  EXPECT_EQ(fresh.restore_from(dir.path).code(), StatusCode::kDataLoss);
}

TEST(PersistCheckpoint, DifferentFormatVersionIsFailedPrecondition) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  Engine engine = office_engine(run);
  ASSERT_TRUE(engine.save_checkpoint(dir.path).ok());
  // The format u32 lives right after the 8-byte magic; bump it.
  flip_byte(dir.path + "/" + kCheckpointFile, 8);
  Engine fresh;
  EXPECT_EQ(fresh.restore_from(dir.path).code(),
            StatusCode::kFailedPrecondition);
}

// --- WAL semantics ----------------------------------------------------

/// Durability manager over a fresh engine: hooks composed BEFORE the
/// engine exists, bound after.
struct DurableOffice {
  explicit DurableOffice(const std::string& dir, std::size_t every,
                         api::UpdateHooks inner = {})
      : manager({dir, every, /*fsync=*/false}),
        engine(EngineConfig().update_hooks(manager.engine_hooks(
            std::move(inner)))) {}
  DurabilityManager manager;
  Engine engine;
};

TEST(PersistWal, WalOnlyRecoveryReplaysFromRegistration) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  DurableOffice durable(dir.path, /*every=*/0);  // never roll: WAL only
  ASSERT_TRUE(durable.manager.bind(&durable.engine).ok());
  ASSERT_TRUE(eval::register_run(durable.engine, run, "office").ok());
  run_updates(durable.engine, run, {15, 45});
  EXPECT_EQ(durable.manager.wal_appends(), 3u);  // registration + 2
  EXPECT_EQ(durable.manager.checkpoints_written(), 0u);
  ASSERT_TRUE(durable.manager.last_error().ok());

  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  expect_engines_identical(durable.engine, restored);
}

TEST(PersistWal, TruncatedTailIsDroppedNotFatal) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  DurableOffice durable(dir.path, 0);
  ASSERT_TRUE(durable.manager.bind(&durable.engine).ok());
  ASSERT_TRUE(eval::register_run(durable.engine, run, "office").ok());
  run_updates(durable.engine, run, {15, 45});

  // Chop bytes off the last record: the torn-tail signature.  Recovery
  // drops exactly that record and serves version 2.
  const std::string wal = dir.path + "/" + kWalFile;
  const auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 33);
  std::vector<WalRecord> records;
  bool dropped = false;
  ASSERT_TRUE(read_wal(wal, records, &dropped).ok());
  EXPECT_TRUE(dropped);
  ASSERT_EQ(records.size(), 2u);

  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  EXPECT_EQ(restored.store().latest("office").value()->version(), 2u);
  EXPECT_TRUE(restored.store().latest("office").value()->database() ==
              durable.engine.store().at_version("office", 2).value()
                  ->database());
}

TEST(PersistWal, FlippedBitMidStreamIsDataLoss) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  DurableOffice durable(dir.path, 0);
  ASSERT_TRUE(durable.manager.bind(&durable.engine).ok());
  ASSERT_TRUE(eval::register_run(durable.engine, run, "office").ok());
  run_updates(durable.engine, run, {15});
  // Offset 20 is inside the FIRST record's payload and more records
  // follow it: not a tail, so truncation must NOT be attempted.
  flip_byte(dir.path + "/" + kWalFile, 20);
  Engine restored;
  EXPECT_EQ(restored.restore_from(dir.path).code(), StatusCode::kDataLoss);
}

TEST(PersistWal, FlippedBitInTheFinalRecordIsATornTail) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  DurableOffice durable(dir.path, 0);
  ASSERT_TRUE(durable.manager.bind(&durable.engine).ok());
  ASSERT_TRUE(eval::register_run(durable.engine, run, "office").ok());
  run_updates(durable.engine, run, {15});
  const auto size =
      std::filesystem::file_size(dir.path + "/" + kWalFile);
  flip_byte(dir.path + "/" + kWalFile, static_cast<std::size_t>(size) - 9);
  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  EXPECT_EQ(restored.store().latest("office").value()->version(), 1u);
}

// --- DurabilityManager lifecycle --------------------------------------

TEST(PersistDurability, CheckpointRollTruncatesTheWal) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  DurableOffice durable(dir.path, /*every=*/2);
  ASSERT_TRUE(durable.manager.bind(&durable.engine).ok());
  ASSERT_TRUE(eval::register_run(durable.engine, run, "office").ok());
  run_updates(durable.engine, run, {15, 45, 75});  // 4 commits total
  EXPECT_EQ(durable.manager.wal_appends(), 4u);
  EXPECT_EQ(durable.manager.checkpoints_written(), 2u);
  ASSERT_TRUE(durable.manager.last_error().ok());
  // 4 commits, roll every 2: the WAL holds no full records right now.
  std::vector<WalRecord> records;
  ASSERT_TRUE(read_wal(dir.path + "/" + kWalFile, records).ok());
  EXPECT_TRUE(records.empty());

  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  expect_engines_identical(durable.engine, restored);
}

TEST(PersistDurability, RecoverBindsAndCompactsAndFreshDirIsOk) {
  const auto& run = iup::test::office_run();
  TempDir dir;
  {
    DurableOffice writer(dir.path, 0);  // WAL-only state on disk
    ASSERT_TRUE(writer.manager.bind(&writer.engine).ok());
    ASSERT_TRUE(eval::register_run(writer.engine, run, "office").ok());
    run_updates(writer.engine, run, {15});
  }
  DurableOffice reader(dir.path, 16);
  ASSERT_TRUE(reader.manager.recover(&reader.engine).ok());
  EXPECT_EQ(reader.engine.store().latest("office").value()->version(), 2u);
  // recover() compacts: checkpoint written, WAL reset.
  EXPECT_EQ(reader.manager.checkpoints_written(), 1u);
  std::vector<WalRecord> records;
  ASSERT_TRUE(read_wal(dir.path + "/" + kWalFile, records).ok());
  EXPECT_TRUE(records.empty());

  // A brand-new directory is a normal first boot, not an error.
  TempDir empty;
  DurableOffice boot(empty.path, 16);
  ASSERT_TRUE(boot.manager.recover(&boot.engine).ok());
  EXPECT_TRUE(boot.engine.store().sites().empty());
}

TEST(PersistDurability, SupervisorRearmsADegradedSiteAfterRestore) {
  const auto& run = iup::test::office_run();
  TempDir dir;

  // Drive the writer's site into kDegraded with a fault injector, then
  // checkpoint it.
  ingest::FaultInjector faults(7);
  Engine writer(EngineConfig().update_hooks(faults.engine_hooks()));
  ASSERT_TRUE(eval::register_run(writer, run, "office").ok());
  ingest::SupervisorOptions immediate;
  immediate.backoff_initial = std::chrono::milliseconds(0);
  immediate.backoff_max = std::chrono::milliseconds(0);
  immediate.breaker_cooldown = std::chrono::milliseconds(0);
  {
    ingest::UpdateSupervisor supervisor(writer, immediate);
    ASSERT_TRUE(supervisor.watch("office").ok());
    faults.arm(ingest::FaultKind::kSolverFailure);
    ASSERT_TRUE(supervisor.trigger("office").ok());
    for (int k = 0; k < 3; ++k) ASSERT_EQ(supervisor.pump(), 1u);
  }
  ASSERT_EQ(writer.site_health("office").value().state,
            serve::SiteState::kDegraded);
  ASSERT_TRUE(writer.save_checkpoint(dir.path).ok());

  // Restore: the site comes back degraded (still serving last-good) and
  // watch() re-arms the probe protocol instead of resetting to healthy —
  // the first pump runs a half-open probe, which commits and recovers.
  Engine restored;
  ASSERT_TRUE(restored.restore_from(dir.path).ok());
  EXPECT_EQ(restored.site_health("office").value().state,
            serve::SiteState::kDegraded);
  ingest::UpdateSupervisor supervisor(restored, immediate);
  ASSERT_TRUE(supervisor.watch("office").ok());
  ASSERT_EQ(supervisor.pump(), 1u);  // probe ran with no new trigger
  const auto health = restored.site_health("office").value();
  EXPECT_EQ(health.state, serve::SiteState::kHealthy);
  EXPECT_GE(health.recoveries, 1u);
  EXPECT_EQ(health.serving_version, 2u);
}

}  // namespace
}  // namespace iup::persist
