#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rng/processes.hpp"

namespace iup::rng {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng r(8);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalMeanStddev) {
  Rng r(10);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.normal(5.0, 2.0);
  EXPECT_NEAR(acc / n, 5.0, 0.1);
}

TEST(Rng, UniformIndexBoundsAndThrow) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform_index(7), 7u);
  EXPECT_THROW((void)r.uniform_index(0), std::invalid_argument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(12);
  auto p = r.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(13);
  auto s = r.sample_without_replacement(20, 10);
  EXPECT_EQ(s.size(), 10u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
  EXPECT_THROW((void)r.sample_without_replacement(3, 4),
               std::invalid_argument);
}

TEST(Rng, ForkIsDeterministicAndDecorrelated) {
  const Rng base(99);
  Rng a1 = base.fork("alpha");
  Rng a2 = base.fork("alpha");
  Rng b = base.fork("beta");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  Rng a3 = base.fork("alpha");
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(Rng, ForkByKeyIndependentStreams) {
  const Rng base(100);
  Rng k0 = base.fork(std::uint64_t{0});
  Rng k1 = base.fork(std::uint64_t{1});
  // Correlation check: the streams should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (k0.next_u64() == k1.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Ar1, StationaryMoments) {
  Ar1Process p(0.9, 2.0, Rng(14));
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = p.step();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.15);
}

TEST(Ar1, LagOneCorrelationMatchesPhi) {
  const double phi = 0.8;
  Ar1Process p(phi, 1.0, Rng(15));
  double prev = p.step();
  double num = 0.0, den = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = p.step();
    num += prev * x;
    den += prev * prev;
    prev = x;
  }
  EXPECT_NEAR(num / den, phi, 0.02);
}

TEST(Ar1, InvalidPhiThrows) {
  EXPECT_THROW(Ar1Process(1.0, 1.0, Rng(0)), std::invalid_argument);
  EXPECT_THROW(Ar1Process(-0.1, 1.0, Rng(0)), std::invalid_argument);
}

TEST(Ar1, TraceLength) {
  Ar1Process p(0.5, 1.0, Rng(16));
  EXPECT_EQ(p.trace(37).size(), 37u);
}

TEST(OutlierMixture, ZeroCoreGivesOnlyOutliers) {
  OutlierMixture m(0.0, 1.0, 3.0, Rng(17));
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = m.sample();
    sum_sq += x * x;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / n), 3.0, 0.1);
}

TEST(OutlierMixture, RareOutliersInflateTails) {
  OutlierMixture m(1.0, 0.05, 8.0, Rng(18));
  int big = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(m.sample()) > 4.0) ++big;
  }
  // Pure N(0,1) would give ~0.006% beyond 4; the mixture gives ~3%.
  EXPECT_GT(big, n / 200);
  EXPECT_THROW(OutlierMixture(1.0, 1.5, 1.0, Rng(0)), std::invalid_argument);
}

TEST(RandomWalkDrift, StaysWithinBounds) {
  RandomWalkDrift w(1.0, 4.0, Rng(19));
  for (int i = 0; i < 2000; ++i) {
    const double v = w.advance(1);
    EXPECT_LE(std::abs(v), 4.0 + 1e-9);
  }
  EXPECT_THROW(RandomWalkDrift(1.0, 0.0, Rng(0)), std::invalid_argument);
}

TEST(RandomWalkDrift, SpreadGrowsWithSteps) {
  double short_acc = 0.0, long_acc = 0.0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    RandomWalkDrift w1(0.5, 50.0, Rng(1000 + s));
    short_acc += std::abs(w1.advance(4));
    RandomWalkDrift w2(0.5, 50.0, Rng(1000 + s));
    long_acc += std::abs(w2.advance(64));
  }
  EXPECT_GT(long_acc, 2.0 * short_acc);  // ~sqrt(16) = 4x in expectation
}

}  // namespace
}  // namespace iup::rng
