// The batched multi-RHS SPD pipeline: solve_factored_spd_multi must be
// bit-identical, column for column, to the single-RHS solve_factored_spd
// loop it replaces (the contract in linalg/cholesky.hpp), and the
// mask-grouped Algorithm-1 sweep built on it must be bit-identical to the
// ungrouped sweep at every thread count.  All comparisons here are exact
// (operator==), never tolerances — the CI matrix runs this suite at every
// kernel dispatch level (scalar, AVX2, AVX-512).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "api/engine.hpp"
#include "core/self_augmented.hpp"
#include "eval/experiment.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "test_util.hpp"

namespace iup {
namespace {

/// Well-conditioned SPD matrix: Gram of a random tall factor + lambda*I.
linalg::Matrix random_spd(std::size_t n, rng::Rng& rng) {
  linalg::Matrix a = test::random_matrix(n + 4, n, rng).gram();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.05;
  return a;
}

/// Per-column reference: factor once, solve_factored_spd per column.
linalg::Matrix solve_columns_one_by_one(const linalg::Matrix& factor,
                                        const linalg::Matrix& rhs_panel) {
  linalg::Matrix out = rhs_panel;
  std::vector<double> col(rhs_panel.rows());
  for (std::size_t c = 0; c < rhs_panel.cols(); ++c) {
    rhs_panel.copy_col_into(c, col);
    linalg::solve_factored_spd(factor, col);
    out.set_col(c, col);
  }
  return out;
}

TEST(SpdSolveMulti, EveryColumnBitIdenticalToSingleRhsSolve) {
  rng::Rng rng(301);
  for (const std::size_t n : {1ul, 2ul, 3ul, 5ul, 8ul, 11ul, 13ul, 16ul}) {
    for (const std::size_t k : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul,
                                12ul, 17ul}) {
      linalg::Matrix factor = random_spd(n, rng);
      std::vector<double> diag(n);
      ASSERT_TRUE(linalg::factor_spd(factor, diag)) << n;

      const linalg::Matrix rhs = test::random_matrix(n, k, rng);
      linalg::Matrix panel = rhs;
      std::vector<double> dots(k);
      linalg::solve_factored_spd_multi(factor, panel, dots);

      EXPECT_EQ(panel, solve_columns_one_by_one(factor, rhs))
          << "n=" << n << " k=" << k << " level="
          << linalg::kernels::active_level_name();
    }
  }
}

TEST(SpdSolveMulti, DuplicatedRhsColumnsProduceIdenticalSolutions) {
  // The mask-group aliasing case: several grid columns can carry the same
  // right-hand side; their panel columns must come out bit-equal.
  rng::Rng rng(302);
  const std::size_t n = 8, k = 6;
  linalg::Matrix factor = random_spd(n, rng);
  std::vector<double> diag(n);
  ASSERT_TRUE(linalg::factor_spd(factor, diag));

  const std::vector<double> b = test::random_matrix(n, 1, rng).col(0);
  linalg::Matrix panel(n, k);
  for (std::size_t c = 0; c < k; ++c) panel.set_col(c, b);
  std::vector<double> dots(k);
  linalg::solve_factored_spd_multi(factor, panel, dots);
  for (std::size_t c = 1; c < k; ++c) {
    EXPECT_EQ(panel.col(c), panel.col(0)) << c;
  }
}

TEST(SpdSolveMulti, RetryBumpFactorMatchesSingleRhsSolve) {
  // Rank-deficient Gram: the plain factorisation fails and factor_spd
  // recovers via the deterministic diagonal bump.  The bumped factor must
  // feed the multi solve exactly like the single-RHS path.
  rng::Rng rng(303);
  const std::size_t n = 6, k = 5;
  const linalg::Matrix low = test::random_low_rank(n, n, 2, rng);
  linalg::Matrix a = low.gram();  // rank 2, PSD, not PD

  linalg::reset_spd_stats();
  linalg::Matrix factor = a;
  std::vector<double> diag(n);
  ASSERT_TRUE(linalg::factor_spd(factor, diag));
  const linalg::SpdStats stats = linalg::spd_stats();
  EXPECT_EQ(stats.cholesky_failures, 1u);
  EXPECT_EQ(stats.bump_recoveries, 1u);

  const linalg::Matrix rhs = test::random_matrix(n, k, rng);
  linalg::Matrix panel = rhs;
  std::vector<double> dots(k);
  linalg::solve_factored_spd_multi(factor, panel, dots);
  EXPECT_EQ(panel, solve_columns_one_by_one(factor, rhs));
}

TEST(SpdSolveMulti, RejectsShapeAndScratchMismatch) {
  rng::Rng rng(304);
  linalg::Matrix factor = random_spd(4, rng);
  std::vector<double> diag(4);
  ASSERT_TRUE(linalg::factor_spd(factor, diag));
  linalg::Matrix bad_rows(3, 2);
  std::vector<double> dots(2);
  EXPECT_THROW(linalg::solve_factored_spd_multi(factor, bad_rows, dots),
               std::invalid_argument);
  linalg::Matrix panel(4, 3);
  EXPECT_THROW(linalg::solve_factored_spd_multi(factor, panel, dots),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mask-grouped sweep identities.
// ---------------------------------------------------------------------------

core::RsvdProblem structured_problem(const core::BandLayout& layout,
                                     rng::Rng& rng) {
  // A mask with realistic sharing: whole bands blank out a common row
  // pattern, plus some per-column noise — so the sweep sees a mix of
  // multi-column groups and unique masks (both paths exercised).
  const std::size_t m = layout.links;
  const std::size_t n = layout.num_cells();
  const linalg::Matrix x_full = test::random_low_rank(m, n, 3, rng);
  core::RsvdProblem problem;
  problem.b = linalg::Matrix(m, n, 1.0);
  for (std::size_t j = 0; j < n; ++j) {
    problem.b(layout.band_of(j), j) = 0.0;  // shared in-band pattern
    if (rng.uniform() < 0.15) {
      problem.b(rng.uniform_index(m), j) = 0.0;  // occasional unique mask
    }
  }
  problem.x_b = problem.b.hadamard(x_full);
  problem.p = x_full;
  for (double& v : problem.p.data()) v += rng.normal(0.0, 0.01);
  return problem;
}

core::RsvdResult solve_grouped(const core::RsvdProblem& problem,
                               const core::BandLayout& layout, bool grouped,
                               std::size_t threads,
                               bool constraint2 = true) {
  core::RsvdOptions options;
  options.max_iters = 6;
  options.group_masks = grouped;
  options.threads = threads;
  options.use_constraint2 = constraint2;
  return core::SelfAugmentedRsvd(layout, options).solve(problem);
}

TEST(MaskGroupedSweep, GroupedBitIdenticalToUngrouped) {
  rng::Rng rng(305);
  const core::BandLayout layout{8, 12};
  const core::RsvdProblem problem = structured_problem(layout, rng);

  const core::RsvdResult plain = solve_grouped(problem, layout, false, 1);
  const core::RsvdResult grouped = solve_grouped(problem, layout, true, 1);
  ASSERT_GT(grouped.mask_groups, 0u);
  ASSERT_GT(grouped.grouped_columns, grouped.mask_groups);
  EXPECT_EQ(plain.mask_groups, 0u);  // knob off => no grouping ran
  EXPECT_EQ(grouped.l, plain.l);
  EXPECT_EQ(grouped.r, plain.r);
  EXPECT_EQ(grouped.x_hat, plain.x_hat);
  EXPECT_EQ(grouped.objective_history, plain.objective_history);
}

TEST(MaskGroupedSweep, GroupedBitIdenticalAcrossThreadCounts) {
  rng::Rng rng(306);
  const core::BandLayout layout{8, 12};
  const core::RsvdProblem problem = structured_problem(layout, rng);

  const core::RsvdResult base = solve_grouped(problem, layout, true, 1);
  for (const std::size_t threads : {2u, 3u, 8u, 0u /* auto */}) {
    const core::RsvdResult other =
        solve_grouped(problem, layout, true, threads);
    EXPECT_EQ(other.l, base.l) << threads << " threads";
    EXPECT_EQ(other.r, base.r) << threads << " threads";
    EXPECT_EQ(other.x_hat, base.x_hat) << threads << " threads";
    EXPECT_EQ(other.objective_history, base.objective_history);
    EXPECT_EQ(other.mask_groups, base.mask_groups);
  }
}

TEST(MaskGroupedSweep, RowGroupingWithoutConstraint2MatchesUngrouped) {
  // With Constraint 2 off, the L-update rows group by unobserved-column
  // set too; results must still match the ungrouped sweep exactly.
  rng::Rng rng(307);
  const core::BandLayout layout{8, 12};
  const core::RsvdProblem problem = structured_problem(layout, rng);

  const core::RsvdResult plain =
      solve_grouped(problem, layout, false, 1, /*constraint2=*/false);
  const core::RsvdResult grouped =
      solve_grouped(problem, layout, true, 4, /*constraint2=*/false);
  EXPECT_EQ(grouped.l, plain.l);
  EXPECT_EQ(grouped.r, plain.r);
  EXPECT_EQ(grouped.x_hat, plain.x_hat);
  EXPECT_EQ(grouped.objective_history, plain.objective_history);
}

TEST(MaskGroupedSweep, PaperLiteralModeGroupedMatchesUngrouped) {
  // kPaperLiteral takes the other similarity-curvature branch of
  // c2_curvature (||H(:, ii)||^2 instead of the Gauss-Seidel neighbour
  // count); grouping must stay exact there too.
  rng::Rng rng(308);
  const core::BandLayout layout{8, 12};
  const core::RsvdProblem problem = structured_problem(layout, rng);
  core::RsvdOptions options;
  options.max_iters = 6;
  options.c2_mode = core::Constraint2Mode::kPaperLiteral;
  options.group_masks = false;
  const auto plain = core::SelfAugmentedRsvd(layout, options).solve(problem);
  options.group_masks = true;
  options.threads = 4;
  const auto grouped =
      core::SelfAugmentedRsvd(layout, options).solve(problem);
  ASSERT_GT(grouped.mask_groups, 0u);
  EXPECT_EQ(grouped.l, plain.l);
  EXPECT_EQ(grouped.r, plain.r);
  EXPECT_EQ(grouped.x_hat, plain.x_hat);
  EXPECT_EQ(grouped.objective_history, plain.objective_history);
}

TEST(MaskGroupedSweep, FusedRhsSharedWalkExtremes) {
  // The fused RHS builder walks the group's shared observed-index list
  // once for all members.  Exercise its extremes against the ungrouped
  // per-column walk: a fully-observed mask (one group spanning every
  // column, empty unobserved list) and a near-empty mask (tiny shared
  // observed list), both with Constraint 1 driving the dense fused walk
  // and with it disabled.
  rng::Rng rng(309);
  const core::BandLayout layout{8, 12};
  const std::size_t m = layout.links;
  const std::size_t n = layout.num_cells();
  const linalg::Matrix x_full = test::random_low_rank(m, n, 3, rng);

  for (const double observed_fraction : {1.0, 0.2}) {
    for (const bool with_c1 : {true, false}) {
      core::RsvdProblem problem;
      problem.b = linalg::Matrix(m, n, 1.0);
      if (observed_fraction < 1.0) {
        // Shared sparse pattern: the same few rows observed in every
        // column, so ALL columns land in one group with a long unobserved
        // list and a short shared walk.
        for (std::size_t i = 0; i < m; ++i) {
          if (static_cast<double>(i) >= observed_fraction * m) {
            for (std::size_t j = 0; j < n; ++j) problem.b(i, j) = 0.0;
          }
        }
      }
      problem.x_b = problem.b.hadamard(x_full);
      if (with_c1) {
        problem.p = x_full;
        for (double& v : problem.p.data()) v += rng.normal(0.0, 0.01);
      }

      const core::RsvdResult plain =
          solve_grouped(problem, layout, false, 1, /*constraint2=*/false);
      const core::RsvdResult grouped =
          solve_grouped(problem, layout, true, 3, /*constraint2=*/false);
      ASSERT_GT(grouped.mask_groups, 0u)
          << "obs=" << observed_fraction << " c1=" << with_c1;
      EXPECT_EQ(grouped.grouped_columns, n);  // one signature, all columns
      EXPECT_EQ(grouped.l, plain.l)
          << "obs=" << observed_fraction << " c1=" << with_c1;
      EXPECT_EQ(grouped.r, plain.r);
      EXPECT_EQ(grouped.x_hat, plain.x_hat);
      EXPECT_EQ(grouped.objective_history, plain.objective_history);
    }
  }
}

TEST(MaskGroupedSweep, OfficeTestbedReconstructionIsGroupedAndIdentical) {
  // The real pipeline: the office testbed's physically-structured mask
  // concentrates the grid columns on a handful of signatures; the grouped
  // default must reproduce the ungrouped reconstruction bit for bit.
  const auto& run = test::office_run();
  core::RsvdOptions plain_rsvd;
  plain_rsvd.group_masks = false;
  api::Engine grouped;
  api::Engine plain(api::EngineConfig().rsvd(plain_rsvd));
  ASSERT_TRUE(eval::register_run(grouped, run, "office").ok());
  ASSERT_TRUE(eval::register_run(plain, run, "office").ok());
  const auto cells = grouped.reference_cells("office").value();
  const auto request = eval::collect_update_request(run, "office", cells, 45);
  const auto a = grouped.reconstruct(request);
  const auto b = plain.reconstruct(request);
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  EXPECT_GT(a.value().solver.mask_groups, 0u);
  EXPECT_GE(a.value().solver.grouped_columns, run.b_mask.cols() / 2);
  EXPECT_EQ(a.value().x_hat(), b.value().x_hat());
  EXPECT_EQ(a.value().solver.objective_history,
            b.value().solver.objective_history);
}

}  // namespace
}  // namespace iup
