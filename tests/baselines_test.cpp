// SVR substrate, the RASS comparator and the labor-cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/rass.hpp"
#include "baselines/svr.hpp"
#include "baselines/traditional.hpp"
#include "eval/experiment.hpp"
#include "test_util.hpp"

namespace iup::baselines {
namespace {

TEST(Svr, FitsLinearFunction) {
  rng::Rng rng(81);
  const std::size_t n = 60;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = 3.0 * x(i, 0) - 1.5 * x(i, 1) + 0.5;
  }
  SvrOptions opt;
  opt.epsilon = 0.1;
  opt.c = 50.0;
  Svr svr(opt);
  svr.fit(x, y);
  double rmse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = svr.predict(x.row(i));
    rmse += (p - y[i]) * (p - y[i]);
  }
  rmse = std::sqrt(rmse / static_cast<double>(n));
  EXPECT_LT(rmse, 0.5);
}

TEST(Svr, FitsSineCurve) {
  rng::Rng rng(82);
  const std::size_t n = 80;
  linalg::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-3.0, 3.0);
    y[i] = std::sin(x(i, 0));
  }
  SvrOptions opt;
  opt.epsilon = 0.05;
  opt.c = 50.0;
  opt.gamma = 2.0;
  Svr svr(opt);
  svr.fit(x, y);
  double worst = 0.0;
  for (double t = -2.5; t <= 2.5; t += 0.25) {
    const std::vector<double> q = {t};
    worst = std::max(worst, std::abs(svr.predict(q) - std::sin(t)));
  }
  EXPECT_LT(worst, 0.35);
}

TEST(Svr, EpsilonTubeSparsifiesSupport) {
  // With a huge insensitive tube nothing is a support vector.
  rng::Rng rng(83);
  const std::size_t n = 40;
  linalg::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = 0.1 * x(i, 0);
  }
  SvrOptions wide;
  wide.epsilon = 10.0;
  Svr svr(wide);
  svr.fit(x, y);
  EXPECT_EQ(svr.support_vector_count(), 0u);
}

TEST(Svr, InvalidOptionsAndUsageThrow) {
  SvrOptions bad;
  bad.c = 0.0;
  EXPECT_THROW(Svr{bad}, std::invalid_argument);
  Svr untrained;
  EXPECT_THROW((void)untrained.predict(std::vector<double>{1.0}),
               std::logic_error);
  Svr svr;
  linalg::Matrix x(1, 1);
  EXPECT_THROW(svr.fit(x, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Svr, PredictFeatureLengthMismatchThrows) {
  rng::Rng rng(84);
  linalg::Matrix x(10, 3);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t k = 0; k < 3; ++k) x(i, k) = rng.normal();
    y[i] = rng.normal();
  }
  Svr svr;
  svr.fit(x, y);
  EXPECT_THROW((void)svr.predict(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Rass, LocalizesOnFreshDatabase) {
  const auto& run = iup::test::office_run();
  const Rass rass(run.ground_truth.at_day(0), run.testbed.deployment());
  sim::Sampler sampler(run.testbed, "rass-test");
  double total = 0.0;
  const std::size_t step = 5;
  std::size_t count = 0;
  for (std::size_t j = 0; j < run.testbed.num_cells(); j += step) {
    const auto y = sampler.online_measurement(j, 0, 5);
    const auto p = rass.localize_position(y);
    total += geom::distance(p, run.testbed.deployment().cell_center(j));
    ++count;
  }
  EXPECT_LT(total / static_cast<double>(count), 3.0);
}

TEST(Rass, SnapsToGridForLocalizerInterface) {
  const auto& run = iup::test::office_run();
  const Rass rass(run.ground_truth.at_day(0), run.testbed.deployment());
  const auto& x = run.ground_truth.at_day(0);
  const auto est = rass.localize(x.col(30));
  EXPECT_LT(est.cell, run.testbed.num_cells());
}

TEST(Rass, GridSearchSelectsDeterministicallyAcrossThreadCounts) {
  // The batched (C candidate x axis) grid fan-out: any thread count must
  // train identical models and pick the same winner (first-lowest MSE on
  // the deterministic holdout rows, then a full-grid refit).
  const auto& run = iup::test::office_run();
  const auto& x = run.ground_truth.at_day(0);
  RassOptions grid;
  grid.c_grid = {1.0, 10.0, 100.0};

  grid.threads = 1;
  const Rass serial(x, run.testbed.deployment(), grid);
  grid.threads = 8;
  const Rass parallel(x, run.testbed.deployment(), grid);
  double max_gap = 0.0;
  for (std::size_t j = 0; j < run.testbed.num_cells(); j += 7) {
    const auto col = x.col(j);
    const auto ps = serial.localize_position(col);
    const auto pp = parallel.localize_position(col);
    max_gap = std::max(max_gap, geom::distance(ps, pp));
    EXPECT_EQ(serial.localize(col).cell, parallel.localize(col).cell);
  }
  EXPECT_EQ(max_gap, 0.0) << "grid selection must be thread-invariant";

  // Sanity: the selected models localize the training grid reasonably.
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < run.testbed.num_cells(); j += 5) {
    const auto p = serial.localize_position(x.col(j));
    total += geom::distance(p, run.testbed.deployment().cell_center(j));
    ++count;
  }
  EXPECT_LT(total / static_cast<double>(count), 3.0);
}

TEST(Rass, ReconstructedBeatsStaleAt45Days) {
  // Fig. 23: RASS w/ rec. outperforms RASS w/o rec.
  const auto& run = iup::test::office_run();
  const std::size_t day = 45;
  const auto stale_err = eval::localization_errors(
      run, run.ground_truth.at_day(0), eval::LocalizerKind::kRass, day, 5);
  const auto fresh_err = eval::localization_errors(
      run, run.ground_truth.at_day(day), eval::LocalizerKind::kRass, day, 5);
  EXPECT_LT(eval::mean_of(fresh_err), eval::mean_of(stale_err));
}

TEST(Labor, PaperHeadlineNumbers) {
  // Sec. VI-C, office: traditional 50-sample survey = 46.9 min; iUpdater
  // = 55 s; savings 97.9% (and 92.1% against a 5-sample traditional).
  const double t_trad = traditional_update_time_s(94, 50);
  EXPECT_NEAR(t_trad / 60.0, 46.9, 0.05);
  const double t_iup = iupdater_update_time_s(8, 5);
  EXPECT_NEAR(t_iup, 55.0, 1e-9);
  EXPECT_NEAR(labor_saving_fraction(94, 50, 8, 5), 0.979, 0.0105);
  EXPECT_NEAR(labor_saving_fraction(94, 5, 8, 5), 0.921, 0.0105);
}

TEST(Labor, SurveyTimeEdgeCases) {
  EXPECT_DOUBLE_EQ(survey_time_s(0, 50), 0.0);
  EXPECT_DOUBLE_EQ(survey_time_s(1, 10), 5.0);  // no move, 10 * 0.5 s
  EXPECT_DOUBLE_EQ(labor_saving_fraction(0, 50, 8, 5), 0.0);
}

TEST(Labor, CustomParams) {
  LaborParams p;
  p.move_time_s = 10.0;
  p.collect_interval_s = 1.0;
  EXPECT_DOUBLE_EQ(survey_time_s(3, 2, p), 20.0 + 6.0);
}

TEST(Traditional, FullResurveyApproximatesTruth) {
  const auto& run = iup::test::office_run();
  sim::Sampler sampler(run.testbed, "trad");
  const auto x = traditional_full_resurvey(sampler, 45, 50);
  const auto err = eval::reconstruction_errors_all_db(
      x, run.ground_truth.at_day(45));
  EXPECT_LT(eval::mean_of(err), 1.5);
}

}  // namespace
}  // namespace iup::baselines
