// The update pipeline end to end through api::Engine (the pre-Engine
// IUpdater shim these tests used to exercise is retired; the Engine is
// the one write path).
#include "api/engine.hpp"

#include <gtest/gtest.h>

#include "core/updater.hpp"
#include "eval/experiment.hpp"
#include "test_util.hpp"

namespace iup::core {
namespace {

using api::Engine;
using api::StatusCode;

Engine office_engine(const eval::EnvironmentRun& run) {
  Engine engine;
  const auto registered = eval::register_run(engine, run, "office");
  EXPECT_TRUE(registered.ok()) << registered.status().to_string();
  return engine;
}

TEST(UpdatePipeline, ReferenceCountEqualsLinkCount) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  EXPECT_EQ(engine.reference_cells("office").value().size(), 8u);
  const auto snapshot = engine.snapshot("office").value();
  EXPECT_EQ(snapshot->correlation().rows(), 8u);
  EXPECT_EQ(snapshot->correlation().cols(), 96u);
}

TEST(UpdatePipeline, ShapeMismatchIsInvalidArgument) {
  const auto& run = iup::test::office_run();
  Engine engine;
  const auto mismatched = engine.register_site(
      "office", run.ground_truth.at_day(0), linalg::Matrix(8, 90));
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(UpdatePipeline, ReconstructionBeatsStaleDatabase) {
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  Engine engine = office_engine(run);
  const auto cells = engine.reference_cells("office").value();
  for (std::size_t day : {std::size_t{15}, std::size_t{45}}) {
    const auto result = engine.reconstruct(
        eval::collect_update_request(run, "office", cells, day));
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const auto fresh = eval::score_reconstruction(run, result.value().x_hat(),
                                                  day);
    const auto stale = eval::score_reconstruction(run, x0, day);
    EXPECT_LT(fresh.mean_db, 0.7 * stale.mean_db) << "day " << day;
  }
}

TEST(UpdatePipeline, ReconstructDoesNotCommit) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto cells = engine.reference_cells("office").value();
  const auto result = engine.reconstruct(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().committed_version, 0u);
  // Served database unchanged.
  const auto snapshot = engine.snapshot("office").value();
  EXPECT_EQ(snapshot->version(), 1u);
  EXPECT_TRUE(
      snapshot->database().approx_equal(run.ground_truth.at_day(0), 0.0));
}

TEST(UpdatePipeline, UpdateCommitsDatabase) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const auto cells = engine.reference_cells("office").value();
  const auto result = engine.update(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto snapshot = engine.snapshot("office").value();
  EXPECT_EQ(snapshot->version(), result.value().committed_version);
  EXPECT_TRUE(snapshot->database().approx_equal(result.value().x_hat(), 0.0));
}

TEST(UpdatePipeline, SequentialUpdatesStayAccurate) {
  // Update at 15 then 45 days (the correlation refreshes after each
  // commit): errors must stay in the same band as a one-shot update (the
  // "latest updated" database remains a valid correlation source).
  const auto& run = iup::test::office_run();
  Engine sequential = office_engine(run);
  const auto cells = sequential.reference_cells("office").value();
  (void)sequential.update(
      eval::collect_update_request(run, "office", cells, 15));
  const auto rep45 = sequential.update(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(rep45.ok()) << rep45.status().to_string();
  const auto seq_score =
      eval::score_reconstruction(run, rep45.value().x_hat(), 45);

  Engine oneshot = office_engine(run);
  const auto one_rep = oneshot.reconstruct(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(one_rep.ok()) << one_rep.status().to_string();
  const auto one_score =
      eval::score_reconstruction(run, one_rep.value().x_hat(), 45);

  EXPECT_LT(seq_score.mean_db, 2.0 * one_score.mean_db + 0.5);
}

TEST(UpdatePipeline, SetReferenceCellsOverrides) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  const std::vector<std::size_t> raw = {0, 13, 26, 39, 52, 65, 78, 91, 95};
  const std::vector<CellId> cells = to_cell_ids(raw);
  ASSERT_TRUE(engine.set_reference_cells("office", cells).ok());
  EXPECT_EQ(engine.reference_cells("office").value(), cells);
  const auto snapshot = engine.snapshot("office").value();
  EXPECT_EQ(snapshot->correlation().rows(), 9u);
  const auto result = engine.reconstruct(
      eval::collect_update_request(run, "office", cells, 45));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().reference_count, 9u);
}

TEST(UpdatePipeline, WrongReferenceMatrixWidthIsInvalidArgument) {
  const auto& run = iup::test::office_run();
  Engine engine = office_engine(run);
  api::UpdateRequest request;
  request.site = "office";
  request.inputs.x_b = linalg::Matrix(8, 96);
  request.inputs.x_r = linalg::Matrix(8, 3);  // needs 8 columns
  const auto result = engine.reconstruct(request);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(UpdatePipeline, FewerReferencesDegradeReconstruction) {
  // Fig. 14: dropping one of the selected reference locations hurts.
  const auto& run = iup::test::office_run();
  Engine full = office_engine(run);
  const auto full_cells = full.reference_cells("office").value();
  const auto full_rep = full.reconstruct(
      eval::collect_update_request(run, "office", full_cells, 45));
  ASSERT_TRUE(full_rep.ok()) << full_rep.status().to_string();
  const double full_err =
      eval::score_reconstruction(run, full_rep.value().x_hat(), 45).mean_db;

  Engine fewer = office_engine(run);
  const std::vector<CellId> seven(full_cells.begin(), full_cells.end() - 1);
  ASSERT_TRUE(fewer.set_reference_cells("office", seven).ok());
  const auto fewer_rep = fewer.reconstruct(
      eval::collect_update_request(run, "office", seven, 45));
  ASSERT_TRUE(fewer_rep.ok()) << fewer_rep.status().to_string();
  const double fewer_err =
      eval::score_reconstruction(run, fewer_rep.value().x_hat(), 45).mean_db;

  EXPECT_GT(fewer_err, full_err);
}

}  // namespace
}  // namespace iup::core
