// The IUpdater pipeline class.
#include "core/updater.hpp"

#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "test_util.hpp"

namespace iup::core {
namespace {

TEST(Updater, ReferenceCountEqualsLinkCount) {
  const auto& run = iup::test::office_run();
  const IUpdater updater(run.ground_truth.at_day(0), run.b_mask);
  EXPECT_EQ(updater.reference_cells().size(), 8u);
  EXPECT_EQ(updater.correlation().rows(), 8u);
  EXPECT_EQ(updater.correlation().cols(), 96u);
}

TEST(Updater, ShapeMismatchThrows) {
  const auto& run = iup::test::office_run();
  EXPECT_THROW(IUpdater(run.ground_truth.at_day(0), linalg::Matrix(8, 90)),
               std::invalid_argument);
}

TEST(Updater, ReconstructionBeatsStaleDatabase) {
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const IUpdater updater(x0, run.b_mask);
  for (std::size_t day : {std::size_t{15}, std::size_t{45}}) {
    const auto inputs =
        eval::collect_update_inputs(run, updater.reference_cells(), day);
    const auto report = updater.reconstruct(inputs);
    const auto fresh = eval::score_reconstruction(run, report.x_hat, day);
    const auto stale = eval::score_reconstruction(run, x0, day);
    EXPECT_LT(fresh.mean_db, 0.7 * stale.mean_db) << "day " << day;
  }
}

TEST(Updater, ReconstructIsConst) {
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  IUpdater updater(x0, run.b_mask);
  const auto inputs =
      eval::collect_update_inputs(run, updater.reference_cells(), 45);
  (void)updater.reconstruct(inputs);
  // Database unchanged.
  EXPECT_TRUE(updater.database().approx_equal(x0, 0.0));
}

TEST(Updater, UpdateCommitsDatabase) {
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  IUpdater updater(x0, run.b_mask);
  const auto inputs =
      eval::collect_update_inputs(run, updater.reference_cells(), 45);
  const auto report = updater.update(inputs);
  EXPECT_TRUE(updater.database().approx_equal(report.x_hat, 0.0));
}

TEST(Updater, SequentialUpdatesStayAccurate) {
  // Update at 15 then 45 days with refresh_correlation: errors must stay
  // in the same band as a one-shot update (the "latest updated" database
  // remains a valid correlation source).
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  IUpdater sequential(x0, run.b_mask);
  (void)sequential.update(
      eval::collect_update_inputs(run, sequential.reference_cells(), 15));
  const auto rep45 = sequential.update(
      eval::collect_update_inputs(run, sequential.reference_cells(), 45));
  const auto seq_score = eval::score_reconstruction(run, rep45.x_hat, 45);

  const IUpdater oneshot(x0, run.b_mask);
  const auto one_rep = oneshot.reconstruct(
      eval::collect_update_inputs(run, oneshot.reference_cells(), 45));
  const auto one_score = eval::score_reconstruction(run, one_rep.x_hat, 45);

  EXPECT_LT(seq_score.mean_db, 2.0 * one_score.mean_db + 0.5);
}

TEST(Updater, SetReferenceCellsOverrides) {
  const auto& run = iup::test::office_run();
  IUpdater updater(run.ground_truth.at_day(0), run.b_mask);
  std::vector<std::size_t> cells = {0, 13, 26, 39, 52, 65, 78, 91, 95};
  updater.set_reference_cells(cells);
  EXPECT_EQ(updater.reference_cells(), cells);
  EXPECT_EQ(updater.correlation().rows(), 9u);
  const auto inputs = eval::collect_update_inputs(run, cells, 45);
  const auto report = updater.reconstruct(inputs);
  EXPECT_EQ(report.reference_count, 9u);
}

TEST(Updater, WrongReferenceMatrixWidthThrows) {
  const auto& run = iup::test::office_run();
  const IUpdater updater(run.ground_truth.at_day(0), run.b_mask);
  core::UpdateInputs inputs;
  inputs.x_b = linalg::Matrix(8, 96);
  inputs.x_r = linalg::Matrix(8, 3);  // needs 8 columns
  EXPECT_THROW((void)updater.reconstruct(inputs), std::invalid_argument);
}

TEST(Updater, FewerReferencesDegradeReconstruction) {
  // Fig. 14: dropping one of the selected reference locations hurts.
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  IUpdater full(x0, run.b_mask);
  const auto full_cells = full.reference_cells();
  const auto full_rep = full.reconstruct(
      eval::collect_update_inputs(run, full_cells, 45));
  const double full_err =
      eval::score_reconstruction(run, full_rep.x_hat, 45).mean_db;

  IUpdater fewer(x0, run.b_mask);
  std::vector<std::size_t> seven(full_cells.begin(), full_cells.end() - 1);
  fewer.set_reference_cells(seven);
  const auto fewer_rep = fewer.reconstruct(
      eval::collect_update_inputs(run, seven, 45));
  const double fewer_err =
      eval::score_reconstruction(run, fewer_rep.x_hat, 45).mean_db;

  EXPECT_GT(fewer_err, full_err);
}

}  // namespace
}  // namespace iup::core
