// End-to-end pipeline and failure-injection tests across all three rooms,
// driven through the api::Engine facade.
#include <gtest/gtest.h>

#include <cmath>

#include "api/engine.hpp"
#include "baselines/traditional.hpp"
#include "core/updater.hpp"
#include "eval/experiment.hpp"
#include "test_util.hpp"

namespace iup {
namespace {

api::Engine room_engine(const eval::EnvironmentRun& run,
                        const std::string& site,
                        api::EngineConfig config = {}) {
  api::Engine engine(std::move(config));
  const auto registered = eval::register_run(engine, run, site);
  EXPECT_TRUE(registered.ok()) << registered.status().to_string();
  return engine;
}

class RoomSweep : public ::testing::TestWithParam<const char*> {
 protected:
  const eval::EnvironmentRun& run() const {
    const std::string name = GetParam();
    if (name == "office") return test::office_run();
    if (name == "library") return test::library_run();
    return test::hall_run();
  }
};

TEST_P(RoomSweep, UpdateBeatsStaleReconstruction) {
  const auto& r = run();
  const auto& x0 = r.ground_truth.at_day(0);
  api::Engine engine = room_engine(r, GetParam());
  const auto cells = engine.reference_cells(GetParam()).value();
  const std::size_t day = 45;
  const auto rep = engine.reconstruct(
      eval::collect_update_request(r, GetParam(), cells, day));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  const auto fresh = eval::score_reconstruction(r, rep.value().x_hat(), day);
  const auto stale = eval::score_reconstruction(r, x0, day);
  EXPECT_LT(fresh.mean_db, stale.mean_db);
}

TEST_P(RoomSweep, UpdateBeatsStaleLocalization) {
  const auto& r = run();
  const auto& x0 = r.ground_truth.at_day(0);
  api::Engine engine = room_engine(r, GetParam());
  const auto cells = engine.reference_cells(GetParam()).value();
  const std::size_t day = 45;
  const auto rep = engine.reconstruct(
      eval::collect_update_request(r, GetParam(), cells, day));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  const auto fresh = eval::localization_errors(
      r, rep.value().x_hat(), eval::LocalizerKind::kOmp, day, 5);
  const auto stale = eval::localization_errors(
      r, x0, eval::LocalizerKind::kOmp, day, 5);
  EXPECT_LT(eval::mean_of(fresh), eval::mean_of(stale));
}

TEST_P(RoomSweep, ReferenceCountEqualsLinkCount) {
  const auto& r = run();
  api::Engine engine = room_engine(r, GetParam());
  EXPECT_EQ(engine.reference_cells(GetParam()).value().size(),
            r.testbed.num_links());
}

TEST_P(RoomSweep, ErrorGrowsWithUpdateInterval) {
  const auto& r = run();
  api::Engine engine = room_engine(r, GetParam());
  const auto cells = engine.reference_cells(GetParam()).value();
  const auto err_at = [&](std::size_t day) {
    const auto rep = engine.reconstruct(
        eval::collect_update_request(r, GetParam(), cells, day));
    EXPECT_TRUE(rep.ok()) << rep.status().to_string();
    return eval::score_reconstruction(r, rep.value().x_hat(), day).mean_db;
  };
  // Fig. 18 trend: 3 months is harder than 3 days (allow generous slack
  // for per-stamp noise but insist on the long-horizon ordering).
  EXPECT_LT(err_at(3), err_at(90) + 0.3);
}

INSTANTIATE_TEST_SUITE_P(Rooms, RoomSweep,
                         ::testing::Values("office", "library", "hall"));

TEST(FailureInjection, DeadLinkInReferenceSurvey) {
  // A reference survey where one link died (sensitivity floor readings)
  // must not crash the solver nor destroy the other rows' reconstruction.
  const auto& r = test::office_run();
  api::Engine engine = room_engine(r, "office");
  const auto cells = engine.reference_cells("office").value();
  api::UpdateRequest request =
      eval::collect_update_request(r, "office", cells, 45);
  for (std::size_t k = 0; k < request.inputs.x_r.cols(); ++k) {
    request.inputs.x_r(3, k) = -95.0;  // link 3 dead during the survey
  }
  const auto rep = engine.reconstruct(request);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  const auto& x_hat = rep.value().x_hat();
  for (double v : x_hat.data()) EXPECT_TRUE(std::isfinite(v));
  // Rows other than 3 stay reasonable.
  double err = 0.0;
  std::size_t cnt = 0;
  const auto& truth = r.ground_truth.at_day(45);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) continue;
    for (std::size_t j = 0; j < 96; ++j) {
      if (r.b_mask(i, j) == 0.0) {
        err += std::abs(x_hat(i, j) - truth(i, j));
        ++cnt;
      }
    }
  }
  EXPECT_LT(err / static_cast<double>(cnt), 6.0);
}

TEST(FailureInjection, OutlierBurstInNoDecreaseMatrix) {
  const auto& r = test::office_run();
  const auto& x0 = r.ground_truth.at_day(0);
  api::Engine engine = room_engine(r, "office");
  const auto cells = engine.reference_cells("office").value();
  api::UpdateRequest request =
      eval::collect_update_request(r, "office", cells, 45);
  // Inject a 10 dB interference burst into a handful of observed entries.
  rng::Rng rng(4242);
  for (int k = 0; k < 20; ++k) {
    const std::size_t i = rng.uniform_index(8);
    const std::size_t j = rng.uniform_index(96);
    if (r.b_mask(i, j) != 0.0) request.inputs.x_b(i, j) -= 10.0;
  }
  const auto rep = engine.reconstruct(request);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  const auto score = eval::score_reconstruction(r, rep.value().x_hat(), 45);
  const auto stale = eval::score_reconstruction(r, x0, 45);
  EXPECT_LT(score.mean_db, stale.mean_db);  // still better than no update
}

TEST(FailureInjection, RankDeficientFingerprintStillWorks) {
  // Duplicate-link pathologies: two identical rows make the matrix rank
  // deficient; MIC must shrink and the solver must stay finite.
  const auto& r = test::office_run();
  linalg::Matrix x0 = r.ground_truth.at_day(0);
  x0.set_row(7, x0.row_span(6));  // clone link 6 into link 7
  linalg::Matrix mask = r.b_mask;
  mask.set_row(7, mask.row_span(6));
  core::RsvdOptions rsvd;
  rsvd.rank = 7;
  api::Engine engine(api::EngineConfig().rsvd(rsvd));
  const auto registered = engine.register_site("office", x0, mask);
  ASSERT_TRUE(registered.ok()) << registered.status().to_string();
  const auto cells = engine.reference_cells("office").value();
  EXPECT_LE(cells.size(), 8u);
  const auto rep = engine.reconstruct(
      eval::collect_update_request(r, "office", cells, 15));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  for (double v : rep.value().x_hat().data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Integration, FiftyPercentWithConstraintMatchesFullResurvey) {
  // Claim 3 / Fig. 17 flavour: reconstructing with a large observed subset
  // plus Constraint 2 localises about as well as a fully measured survey.
  const auto& r = test::office_run();
  const std::size_t day = 45;
  sim::Sampler sampler(r.testbed, "claim3");
  const auto full = baselines::traditional_full_resurvey(sampler, day, 5);

  // Observed set: the no-decrease mask plus 50% of the band entries.
  linalg::Matrix b = r.b_mask;
  linalg::Matrix xb = full.hadamard(b);
  rng::Rng rng(31337);
  const auto layout = core::band_layout_of(full);
  for (std::size_t i = 0; i < layout.links; ++i) {
    for (std::size_t u = 0; u < layout.slots; ++u) {
      if (rng.uniform() < 0.5) {
        const std::size_t j = layout.cell(i, u);
        b(i, j) = 1.0;
        xb(i, j) = full(i, j);
      }
    }
  }
  core::RsvdOptions opt;
  opt.use_constraint1 = false;
  opt.use_constraint2 = true;
  const core::SelfAugmentedRsvd solver(layout, opt);
  core::RsvdProblem p;
  p.x_b = xb;
  p.b = b;
  const auto rec = solver.solve(p);

  const auto half_err = eval::localization_errors(
      r, rec.x_hat, eval::LocalizerKind::kOmp, day, 5);
  const auto full_err = eval::localization_errors(
      r, full, eval::LocalizerKind::kOmp, day, 5);
  EXPECT_LT(eval::mean_of(half_err), 1.35 * eval::mean_of(full_err) + 0.12);
}

}  // namespace
}  // namespace iup
