#include <gtest/gtest.h>

#include <cmath>

#include "geom/fresnel.hpp"
#include "geom/geometry.hpp"

namespace iup::geom {
namespace {

TEST(Geometry, DotNormDistance) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {4, 5}), 5.0);
}

TEST(Geometry, PointArithmetic) {
  const Point2 p = Point2{1, 2} + Point2{3, 4};
  EXPECT_EQ(p, (Point2{4, 6}));
  EXPECT_EQ((Point2{4, 6} - Point2{1, 2}), (Point2{3, 4}));
  EXPECT_EQ((2.0 * Point2{1, 2}), (Point2{2, 4}));
}

TEST(Geometry, SegmentLengthAndAt) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(s.length(), 10.0);
  EXPECT_EQ(s.at(0.3), (Point2{3, 0}));
}

TEST(Geometry, ProjectionParameterClamped) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(projection_parameter(s, {5, 3}), 0.5);
  EXPECT_DOUBLE_EQ(projection_parameter(s, {-5, 0}), 0.0);
  EXPECT_DOUBLE_EQ(projection_parameter(s, {15, 0}), 1.0);
}

TEST(Geometry, DegenerateSegment) {
  const Segment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(projection_parameter(s, {5, 2}), 0.0);
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {5, 2}), 3.0);
  EXPECT_DOUBLE_EQ(point_line_distance(s, {5, 2}), 3.0);
}

TEST(Geometry, PointSegmentDistance) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {5, 2}), 2.0);   // interior
  EXPECT_DOUBLE_EQ(point_segment_distance(s, {-3, 4}), 5.0);  // beyond end
}

TEST(Geometry, PointLineVsSegmentDistance) {
  const Segment s{{0, 0}, {10, 0}};
  // Beyond the end point the line distance is smaller than the segment
  // distance.
  EXPECT_DOUBLE_EQ(point_line_distance(s, {15, 2}), 2.0);
  EXPECT_GT(point_segment_distance(s, {15, 2}), 2.0);
}

TEST(Fresnel, RadiusLargestAtMidpoint) {
  const double lambda = 0.125;
  const double mid = fresnel_radius(lambda, 6.0, 6.0);
  const double off = fresnel_radius(lambda, 2.0, 10.0);
  EXPECT_GT(mid, off);
  EXPECT_NEAR(mid, std::sqrt(lambda * 36.0 / 12.0), 1e-12);
}

TEST(Fresnel, RadiusZeroAtEnds) {
  EXPECT_DOUBLE_EQ(fresnel_radius(0.125, 0.0, 12.0), 0.0);
  EXPECT_DOUBLE_EQ(fresnel_radius(0.125, 0.0, 0.0), 0.0);
}

TEST(Fresnel, VSignFollowsClearance) {
  EXPECT_GT(fresnel_v(0.2, 0.125, 6.0, 6.0), 0.0);
  EXPECT_LT(fresnel_v(-0.2, 0.125, 6.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(fresnel_v(0.0, 0.125, 6.0, 6.0), 0.0);
}

TEST(Fresnel, VDegenerateDistances) {
  EXPECT_GT(fresnel_v(0.1, 0.125, 0.0, 6.0), 5.0);
  EXPECT_LT(fresnel_v(-0.1, 0.125, 0.0, 6.0), -5.0);
}

TEST(Fresnel, KnifeEdgeLossRegimes) {
  EXPECT_DOUBLE_EQ(knife_edge_loss_db(-2.0), 0.0);      // clear path
  EXPECT_NEAR(knife_edge_loss_db(0.0), 6.0, 0.1);       // grazing: ~6 dB
  EXPECT_GT(knife_edge_loss_db(3.0), 15.0);             // deep shadow
}

TEST(Fresnel, KnifeEdgeLossMonotoneInV) {
  double prev = -1.0;
  for (double v = -1.5; v <= 5.0; v += 0.05) {
    const double loss = knife_edge_loss_db(v);
    EXPECT_GE(loss, prev - 1e-12) << "v = " << v;
    prev = loss;
  }
}

TEST(Fresnel, LossContinuousEverywhere) {
  // ITU-R P.526 is smooth; in particular the clear-path cutoff at
  // v = -0.78 must join continuously.
  for (double v : {-0.78, 0.0, 1.0, 2.4}) {
    const double lo = knife_edge_loss_db(v - 1e-9);
    const double hi = knife_edge_loss_db(v + 1e-9);
    EXPECT_NEAR(lo, hi, 0.01) << "v = " << v;
  }
  EXPECT_GE(knife_edge_loss_db(-0.5), 0.0);
}

TEST(Fresnel, ClearanceGeometry) {
  const Segment link{{0, 0}, {12, 0}};
  const auto fc = fresnel_clearance(link, {6.0, 0.5}, 0.125);
  EXPECT_TRUE(fc.inside_segment);
  EXPECT_DOUBLE_EQ(fc.clearance, 0.5);
  EXPECT_DOUBLE_EQ(fc.d1, 6.0);
  EXPECT_DOUBLE_EQ(fc.d2, 6.0);
  EXPECT_NEAR(fc.zone_radius, std::sqrt(0.125 * 36.0 / 12.0), 1e-12);
}

TEST(Fresnel, ClearanceOutsideSegment) {
  const Segment link{{0, 0}, {12, 0}};
  const auto fc = fresnel_clearance(link, {-2.0, 0.0}, 0.125);
  EXPECT_FALSE(fc.inside_segment);
}

}  // namespace
}  // namespace iup::geom
