// The trace replay driver and the multi-radio source model end to end:
// the machine-checked guarantee that single-technology inputs through the
// multi-radio model reproduce the committed office update -> localize
// trajectory bit-identically, and the mixed-radio missing-source testbed
// driving the full ingest -> update -> localize -> CDF pipeline clean.
#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "trace/capture.hpp"
#include "trace/csv.hpp"
#include "test_util.hpp"

namespace iup::trace {
namespace {

using api::StatusCode;

TEST(SourceModelIdentity, SingleTechnologyReproducesOfficeTrajectory) {
  // Two engines in one process: the legacy source-less registration vs
  // the same site registered with the degenerate all-WiFi source table
  // and source-carrying update inputs.  Every committed snapshot and
  // every localization must be bit-identical — the multi-radio model is
  // pure metadata on the single-technology path.
  const auto& run = iup::test::office_run();
  const auto& x0 = run.ground_truth.at_day(0);
  const auto sources = single_technology_sources(x0.rows());

  api::Engine legacy;
  ASSERT_TRUE(eval::register_run(legacy, run, "office").ok());
  api::Engine sourced;
  ASSERT_TRUE(sourced.register_site("office", x0, run.b_mask, sources).ok());
  ASSERT_TRUE(
      sourced.attach_deployment("office", &run.testbed.deployment()).ok());

  ASSERT_EQ(legacy.reference_cells("office").value(),
            sourced.reference_cells("office").value());
  const auto cells = legacy.reference_cells("office").value();

  for (const std::size_t day : {std::size_t{15}, std::size_t{45}}) {
    const auto request =
        eval::collect_update_request(run, "office", cells, day);
    auto tagged = request;
    tagged.inputs.sources = sources;  // the multi-radio provenance path
    const auto a = legacy.update(request);
    const auto b = sourced.update(tagged);
    ASSERT_TRUE(a.ok()) << a.status().to_string();
    ASSERT_TRUE(b.ok()) << b.status().to_string();
    // Bit-identical committed state, version for version.
    EXPECT_EQ(a.value().committed_version, b.value().committed_version);
    EXPECT_EQ(a.value().snapshot->database(), b.value().snapshot->database());
    EXPECT_EQ(a.value().snapshot->correlation(),
              b.value().snapshot->correlation());
    EXPECT_EQ(a.value().solver.objective_history,
              b.value().solver.objective_history);
  }

  // Bit-identical serving: same estimates on the same online queries.
  sim::Sampler online(run.testbed, "identity-queries");
  for (std::size_t k = 0; k < 12; ++k) {
    const auto y = online.online_measurement((k * 96) / 12, 45, 3);
    const auto ea = legacy.localize("office", y);
    const auto eb = sourced.localize("office", y);
    ASSERT_TRUE(ea.ok() && eb.ok());
    EXPECT_EQ(ea.value().cell, eb.value().cell);
    EXPECT_EQ(ea.value().score, eb.value().score);
  }
}

TEST(TraceReplay, MixedRadioMissingSourceRunsCleanEndToEnd) {
  // The acceptance scenario: a mixed WiFi/BLE/LoRa deployment where one
  // BLE beacon died after the initial survey, replayed through the full
  // trace-driven pipeline.
  sim::MixedRadioOptions options;
  options.missing_sources = {SourceId(200 + options.num_links / 3)};
  const sim::Testbed testbed = sim::make_mixed_radio_testbed(options);

  const auto captured = capture_trace(testbed);
  ASSERT_TRUE(captured.ok()) << captured.status().to_string();
  const CapturedTrace& trace = captured.value();
  EXPECT_EQ(trace.fingerprint.sources,
            sim::mixed_radio_sources(options.num_links));

  api::Engine engine;
  const auto report = run_replay(engine, trace.fingerprint,
                                 trace.observations, trace.queries);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  // Both observation days committed an update; everything was accepted
  // (the capture attributes readings to the registered sources).
  EXPECT_EQ(report.value().updates_committed, 2u);
  EXPECT_EQ(report.value().observations_accepted,
            trace.observations.size());
  EXPECT_EQ(report.value().observations_quarantined, 0u);
  EXPECT_GE(report.value().final_version, 3u);

  // Scored CDF over every query, all finite.
  ASSERT_EQ(report.value().localization_errors_m.size(),
            trace.queries.size());
  const auto cdf = report.value().error_cdf();
  EXPECT_TRUE(std::isfinite(cdf.median()));
  EXPECT_TRUE(std::isfinite(cdf.percentile(0.9)));

  // The engine-side health block agrees: no quarantine, stream observed.
  const auto health = engine.site_health("replay").value();
  EXPECT_EQ(health.quarantined_total(), 0u);
  EXPECT_EQ(health.observations_accepted, trace.observations.size());
  EXPECT_EQ(health.last_observed_day, 45u);
}

TEST(TraceReplay, WrongSourceAttributionIsQuarantinedNotFatal) {
  sim::Testbed testbed = sim::make_mixed_radio_testbed();
  auto captured = capture_trace(testbed);
  ASSERT_TRUE(captured.ok()) << captured.status().to_string();
  CapturedTrace& trace = captured.value();

  // Relabel a few readings to a transmitter that is not behind the link,
  // plus one to an entirely unknown id.
  trace.observations[0].source = trace.fingerprint.sources[1].id;
  trace.observations[1].source = SourceId(777777);
  trace.observations[2].source = SourceId();  // unattributed

  api::Engine engine;
  const auto report = run_replay(engine, trace.fingerprint,
                                 trace.observations, trace.queries);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().observations_quarantined, 3u);
  EXPECT_EQ(report.value().observations_accepted,
            trace.observations.size() - 3);
  const auto health = engine.site_health("replay").value();
  EXPECT_EQ(health.quarantine_unknown_source, 3u);
}

TEST(TraceReplay, UnsortedStreamIsRejected) {
  const sim::Testbed testbed = sim::make_mixed_radio_testbed();
  auto captured = capture_trace(testbed);
  ASSERT_TRUE(captured.ok());
  CapturedTrace& trace = captured.value();
  std::swap(trace.observations.front(), trace.observations.back());
  api::Engine engine;
  const auto report = run_replay(engine, trace.fingerprint,
                                 trace.observations, trace.queries);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceReplay, CsvFilesRoundTripThroughRunReplayFiles) {
  // Capture -> CSV -> import -> replay equals capture -> replay: the file
  // layer is bit-transparent to the pipeline.
  const sim::Testbed testbed = sim::make_mixed_radio_testbed();
  const auto captured = capture_trace(testbed);
  ASSERT_TRUE(captured.ok());
  const CapturedTrace& trace = captured.value();

  const std::string dir = ::testing::TempDir();
  const std::string fp = dir + "/fingerprint.csv";
  const std::string obs = dir + "/observations.csv";
  const std::string qry = dir + "/queries.csv";
  ASSERT_TRUE(write_fingerprint_csv(trace.fingerprint, fp).ok());
  ASSERT_TRUE(write_observation_csv(trace.observations, obs).ok());
  ASSERT_TRUE(write_query_csv(trace.queries, qry).ok());

  api::Engine direct;
  const auto a = run_replay(direct, trace.fingerprint, trace.observations,
                            trace.queries);
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  api::Engine via_files;
  const auto b = run_replay_files(via_files, fp, obs, qry);
  ASSERT_TRUE(b.ok()) << b.status().to_string();

  EXPECT_EQ(a.value().updates_committed, b.value().updates_committed);
  EXPECT_EQ(a.value().observations_accepted, b.value().observations_accepted);
  EXPECT_EQ(a.value().localization_errors_m, b.value().localization_errors_m);

  std::remove(fp.c_str());
  std::remove(obs.c_str());
  std::remove(qry.c_str());
}

}  // namespace
}  // namespace iup::trace
