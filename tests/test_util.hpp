// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "sim/testbeds.hpp"

namespace iup::test {

/// Random matrix with iid standard-normal entries.
inline linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                                    rng::Rng& rng, double sigma = 1.0) {
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, sigma);
  return m;
}

/// Random exactly-rank-r matrix (product of two random factors).
inline linalg::Matrix random_low_rank(std::size_t rows, std::size_t cols,
                                      std::size_t rank, rng::Rng& rng) {
  return random_matrix(rows, rank, rng) * random_matrix(rank, cols, rng);
}

/// The office environment run is expensive enough to share across tests
/// (construction surveys 6 ground-truth matrices).
inline const eval::EnvironmentRun& office_run() {
  static const eval::EnvironmentRun run(sim::make_office_testbed());
  return run;
}

inline const eval::EnvironmentRun& hall_run() {
  static const eval::EnvironmentRun run(sim::make_hall_testbed());
  return run;
}

inline const eval::EnvironmentRun& library_run() {
  static const eval::EnvironmentRun run(sim::make_library_testbed());
  return run;
}

/// EXPECT that two matrices agree elementwise within tol.
inline void expect_matrix_near(const linalg::Matrix& a,
                               const linalg::Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), tol)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

}  // namespace iup::test
