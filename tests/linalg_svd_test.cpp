#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace iup::linalg {
namespace {

using iup::test::expect_matrix_near;
using iup::test::random_low_rank;
using iup::test::random_matrix;

TEST(Svd, DiagonalMatrix) {
  const Matrix a = Matrix::diag({3.0, 1.0, 2.0});
  const auto d = svd(a);
  ASSERT_EQ(d.sigma.size(), 3u);
  EXPECT_NEAR(d.sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(d.sigma[1], 2.0, 1e-12);
  EXPECT_NEAR(d.sigma[2], 1.0, 1e-12);
}

TEST(Svd, KnownSingularValues) {
  // A = [[3, 0], [4, 5]] has singular values sqrt(45) and sqrt(5).
  const Matrix a{{3.0, 0.0}, {4.0, 5.0}};
  const auto s = singular_values(a);
  EXPECT_NEAR(s[0], std::sqrt(45.0), 1e-10);
  EXPECT_NEAR(s[1], std::sqrt(5.0), 1e-10);
}

TEST(Svd, ReconstructionTall) {
  rng::Rng rng(42);
  const Matrix a = random_matrix(8, 5, rng);
  const auto d = svd(a);
  expect_matrix_near(d.reconstruct(), a, 1e-10);
}

TEST(Svd, ReconstructionWide) {
  rng::Rng rng(43);
  const Matrix a = random_matrix(4, 9, rng);
  const auto d = svd(a);
  expect_matrix_near(d.reconstruct(), a, 1e-10);
}

TEST(Svd, OrthonormalFactors) {
  rng::Rng rng(44);
  const Matrix a = random_matrix(6, 4, rng);
  const auto d = svd(a);
  expect_matrix_near(d.u.gram(), Matrix::identity(4), 1e-10);
  expect_matrix_near(d.v.gram(), Matrix::identity(4), 1e-10);
}

TEST(Svd, SigmaDescendingNonNegative) {
  rng::Rng rng(45);
  const Matrix a = random_matrix(7, 7, rng);
  const auto s = singular_values(a);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    EXPECT_GE(s[i], s[i + 1]);
  }
  EXPECT_GE(s.back(), 0.0);
}

TEST(Svd, RankTruncationIsBestApproximation) {
  rng::Rng rng(46);
  const Matrix a = random_low_rank(8, 12, 3, rng);
  const auto d = svd(a);
  // Rank-3 truncation reconstructs a rank-3 matrix exactly.
  expect_matrix_near(d.reconstruct_rank(3), a, 1e-9);
  // Rank-2 truncation misses exactly sigma_3 in Frobenius norm.
  Matrix diff = d.reconstruct_rank(2);
  diff -= a;
  EXPECT_NEAR(frobenius_norm(diff), d.sigma[2], 1e-8);
}

TEST(Svd, NumericalRankExact) {
  rng::Rng rng(47);
  const Matrix a = random_low_rank(6, 20, 4, rng);
  EXPECT_EQ(numerical_rank(a), 4u);
}

TEST(Svd, NumericalRankZeroMatrix) {
  EXPECT_EQ(numerical_rank(Matrix(3, 3)), 0u);
}

TEST(Svd, EmptyThrows) { EXPECT_THROW((void)svd(Matrix{}), std::invalid_argument); }

TEST(Svd, SingularValueThresholdShrinks) {
  const Matrix a = Matrix::diag({5.0, 2.0, 0.5});
  const Matrix t = singular_value_threshold(a, 1.0);
  const auto s = singular_values(t);
  EXPECT_NEAR(s[0], 4.0, 1e-10);
  EXPECT_NEAR(s[1], 1.0, 1e-10);
  EXPECT_NEAR(s[2], 0.0, 1e-10);
}

TEST(Svd, ThresholdAboveSpectrumGivesZero) {
  rng::Rng rng(48);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix t = singular_value_threshold(a, 1e6);
  EXPECT_LT(frobenius_norm(t), 1e-9);
}

TEST(Svd, PaperObservation1OfficeRankEqualsLinkCount) {
  // Fig. 5 / Observation 1: the office fingerprint matrix is full row rank
  // (r = M = 8) but the leading singular value carries most of the energy.
  const auto& x = iup::test::office_run().ground_truth.at_day(0);
  EXPECT_EQ(numerical_rank(x, 1e-6), x.rows());
  const auto s = singular_values(x);
  double total = 0.0;
  for (double v : s) total += v;
  EXPECT_GT(s[0] / total, 0.8);  // dominant first singular value
  EXPECT_GT(s[1], 0.0);          // ...but residual energy remains (approx.
                                 // low rank, not exactly low rank)
}

class SvdShapeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapeSweep, ReconstructsAndIsOrdered) {
  const auto [m, n] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(1000 + m * 31 + n));
  const Matrix a = random_matrix(m, n, rng);
  const auto d = svd(a);
  expect_matrix_near(d.reconstruct(), a, 1e-9);
  for (std::size_t i = 0; i + 1 < d.sigma.size(); ++i) {
    EXPECT_GE(d.sigma[i], d.sigma[i + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 8},
                                           std::pair{8, 1}, std::pair{2, 2},
                                           std::pair{5, 10}, std::pair{10, 5},
                                           std::pair{8, 96}, std::pair{16, 16}));

TEST(EighSym, ReconstructsARandomSymmetricMatrix) {
  rng::Rng rng(61);
  const Matrix b = random_matrix(6, 6, rng);
  const Matrix a = b + b.transpose();
  Matrix work = a;
  Matrix v;
  eigh_sym_in_place(work, v);
  // V diag(d) V^T == A, with d read off the diagonal of the rotated input.
  Matrix recon(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 6; ++k) {
        acc += v(i, k) * work(k, k) * v(j, k);
      }
      recon(i, j) = acc;
    }
  }
  expect_matrix_near(recon, a, 1e-9);
  // Eigenvectors are orthonormal.
  expect_matrix_near(v.gram(), Matrix::identity(6), 1e-10);
}

TEST(EighSym, GramEigenvaluesMatchSingularValuesSquared) {
  // The LRR SVT contract: the eigenvalues of A^T A are the squared
  // singular values of A (here a tall iterate like the LRR's N x n state).
  rng::Rng rng(62);
  const Matrix a = random_low_rank(40, 5, 3, rng);
  Matrix g = a.gram();
  Matrix v;
  eigh_sym_in_place(g, v);
  std::vector<double> eig(5);
  for (std::size_t k = 0; k < 5; ++k) eig[k] = std::max(0.0, g(k, k));
  std::sort(eig.begin(), eig.end(), std::greater<>());
  const auto s = singular_values(a);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(std::sqrt(eig[k]), s[k], 1e-8 * (1.0 + s[0]));
  }
}

TEST(EighSym, DiagonalAndNonSquareEdgeCases) {
  Matrix d = Matrix::diag({4.0, -2.0, 7.0});
  Matrix v;
  eigh_sym_in_place(d, v);
  // Already diagonal: no rotations, eigenvalues in place, V = I.
  EXPECT_DOUBLE_EQ(d(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 1), -2.0);
  EXPECT_DOUBLE_EQ(d(2, 2), 7.0);
  expect_matrix_near(v, Matrix::identity(3), 0.0);

  Matrix bad(2, 3);
  EXPECT_THROW(eigh_sym_in_place(bad, v), std::invalid_argument);
}

}  // namespace
}  // namespace iup::linalg
