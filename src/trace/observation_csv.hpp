// Observation-stream and localization-query import/export.
//
// Observation schema (one streamed reading per row, the firmware-style
// RssiSample{id, rssi} with its attribution columns):
//
//   day,link,cell,source_id,rss_db
//
// Query schema (ESPosition-style: ground-truth target position carried
// per row, one row per (query, link) pair, M rows per query):
//
//   query_id,day,true_x_m,true_y_m,link,rss_db
//
// Queries with the same query_id must be contiguous, cover every link of
// the deployment exactly once and agree on day/position — the importer
// rejects anything else with a line-numbered kInvalidArgument.  RSS
// values round-trip bit-exactly (trace::format_double).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "base/ids.hpp"
#include "geom/geometry.hpp"
#include "ingest/observation.hpp"

namespace iup::trace {

/// One recorded localization attempt: an online measurement vector (one
/// entry per link) plus the surveyed ground-truth position it was taken
/// at — what the replay driver scores the CDF against.
struct LocalizationQuery {
  std::uint64_t id = 0;
  std::uint64_t day = 0;
  geom::Point2 true_position;
  std::vector<double> rss_db;  ///< by link, size M
};

api::Status export_observation_csv(
    std::span<const ingest::Observation> observations, std::ostream& out);
api::Result<std::vector<ingest::Observation>> import_observation_csv(
    std::istream& in, std::string label);

/// `links` is the deployment's link count every query must cover.
api::Status export_query_csv(std::span<const LocalizationQuery> queries,
                             std::ostream& out);
api::Result<std::vector<LocalizationQuery>> import_query_csv(
    std::istream& in, std::string label, std::size_t links);

/// File-path convenience wrappers.
api::Status write_observation_csv(
    std::span<const ingest::Observation> observations,
    const std::string& path);
api::Result<std::vector<ingest::Observation>> read_observation_csv(
    const std::string& path);
api::Status write_query_csv(std::span<const LocalizationQuery> queries,
                            const std::string& path);
api::Result<std::vector<LocalizationQuery>> read_query_csv(
    const std::string& path, std::size_t links);

}  // namespace iup::trace
