// Trace replay: drive the full ingest -> update -> localize pipeline from
// recorded CSV data instead of a live simulator.
//
// run_replay() registers the imported fingerprint table as a site (with
// its multi-radio source table, so streamed observations are provenance-
// checked), pushes the observation stream through a validated
// ObservationBuffer wired to the site's shard health counters, commits an
// engine update at every day boundary with enough coverage, then scores
// every recorded localization query in metres against the ground-truth
// positions carried in the trace.  Every failure surfaces as Status —
// the driver never throws and never commits a partial site.
//
// The observation stream must be sorted by day (a trace is a recording;
// time does not run backwards).  Quarantined readings are counted, not
// fatal: replaying a dirty trace exercises the same quarantine path a
// live stream would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/status.hpp"
#include "eval/cdf.hpp"
#include "ingest/buffer.hpp"
#include "trace/fingerprint_csv.hpp"
#include "trace/observation_csv.hpp"

namespace iup::trace {

struct ReplayConfig {
  std::string site = "replay";
  /// Minimum distinct (link, cell) entries buffered before a day boundary
  /// commits an update; boundaries below this roll their readings into
  /// the next day (counted as updates_skipped).
  std::size_t min_coverage = 1;
  ingest::ObservationBufferOptions buffer;
};

struct ReplayReport {
  std::size_t observations_accepted = 0;
  std::size_t observations_quarantined = 0;
  std::size_t updates_committed = 0;
  std::size_t updates_skipped = 0;  ///< day boundaries below min_coverage
  std::uint64_t final_version = 0;  ///< site's snapshot version after replay
  std::vector<double> localization_errors_m;  ///< one per query, in order

  /// CDF over localization_errors_m (the paper's reporting form).
  eval::EmpiricalCdf error_cdf() const {
    return eval::EmpiricalCdf(localization_errors_m);
  }
};

/// Replay `observations` and `queries` against `table` on `engine`.
/// The site named by `config.site` must not already exist on the engine.
api::Result<ReplayReport> run_replay(
    api::Engine& engine, const FingerprintTable& table,
    std::span<const ingest::Observation> observations,
    std::span<const LocalizationQuery> queries, ReplayConfig config = {});

/// Convenience: import the three CSV files and replay them.
api::Result<ReplayReport> run_replay_files(api::Engine& engine,
                                           const std::string& fingerprint_csv,
                                           const std::string& observation_csv,
                                           const std::string& query_csv,
                                           ReplayConfig config = {});

}  // namespace iup::trace
