// Trace capture: record a testbed campaign as the three CSV-ready pieces
// the replay driver consumes (fingerprint table, observation stream,
// localization queries).
//
// This is the bridge between the simulator and the trace subsystem: the
// day-0 survey becomes the fingerprint table (with the testbed's
// multi-radio source table and cell geometry denormalized in), later days
// become a stream of per-(link, cell) readings over the no-decrease mask
// — links whose source is missing emit nothing, exactly like a dead
// beacon — and the final day contributes ground-truth-labelled online
// measurements for CDF scoring.  Everything is deterministic in the
// testbed's seed and the sampler stream tags.
#pragma once

#include <cstddef>
#include <vector>

#include "api/status.hpp"
#include "ingest/observation.hpp"
#include "sim/testbeds.hpp"
#include "trace/fingerprint_csv.hpp"
#include "trace/observation_csv.hpp"

namespace iup::trace {

struct CaptureOptions {
  /// Days the observation stream covers (one update epoch each).
  std::vector<std::size_t> observation_days = {15, 45};
  /// Individual readings streamed per covered (link, cell) entry.
  std::size_t samples_per_entry = 3;
  /// Localization queries recorded at the last observation day.
  std::size_t queries = 12;
  /// Readings averaged per query measurement vector.
  std::size_t query_samples = 3;
};

struct CapturedTrace {
  FingerprintTable fingerprint;
  std::vector<ingest::Observation> observations;
  std::vector<LocalizationQuery> queries;
};

/// Record one campaign on `testbed`.  kInvalidArgument when options are
/// degenerate (no observation days, zero queries).
api::Result<CapturedTrace> capture_trace(const sim::Testbed& testbed,
                                         CaptureOptions options = {});

}  // namespace iup::trace
