#include "trace/observation_csv.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <utility>

#include "trace/csv.hpp"

namespace iup::trace {

namespace {

const std::vector<std::string>& observation_columns() {
  static const std::vector<std::string> columns = {"day", "link", "cell",
                                                   "source_id", "rss_db"};
  return columns;
}

const std::vector<std::string>& query_columns() {
  static const std::vector<std::string> columns = {
      "query_id", "day", "true_x_m", "true_y_m", "link", "rss_db"};
  return columns;
}

}  // namespace

api::Status export_observation_csv(
    std::span<const ingest::Observation> observations, std::ostream& out) {
  out << "day,link,cell,source_id,rss_db\n";
  for (const ingest::Observation& obs : observations) {
    if (!obs.source.specified()) {
      return api::Status::invalid_argument(
          "observation export: unattributed observation (link " +
          std::to_string(obs.link) + ", cell " + std::to_string(obs.cell) +
          ") — trace files always carry source ids");
    }
    out << obs.day << ',' << obs.link << ',' << obs.cell << ','
        << obs.source.value() << ',' << format_double(obs.rss_db) << '\n';
  }
  if (!out) return api::Status::internal("observation export: write failed");
  return {};
}

api::Result<std::vector<ingest::Observation>> import_observation_csv(
    std::istream& in, std::string label) {
  CsvReader reader(in, std::move(label), observation_columns());
  if (!reader.status().ok()) return reader.status();
  std::vector<ingest::Observation> out;
  while (reader.next_row()) {
    const auto day = reader.field_u64(0);
    if (!day.ok()) return day.status();
    const auto link = reader.field_u64(1);
    if (!link.ok()) return link.status();
    const auto cell = reader.field_u64(2);
    if (!cell.ok()) return cell.status();
    const auto source = reader.field_u64(3);
    if (!source.ok()) return source.status();
    const auto rss = reader.field_double(4);
    if (!rss.ok()) return rss.status();
    // Range/finiteness are deliberately NOT enforced here: the ingest
    // buffer is the quarantine authority, and a replayed trace must
    // exercise it exactly like a live stream would.
    ingest::Observation obs;
    obs.day = day.value();
    obs.link = static_cast<std::size_t>(link.value());
    obs.cell = static_cast<std::size_t>(cell.value());
    obs.source = SourceId(source.value());
    obs.rss_db = rss.value();
    out.push_back(obs);
  }
  if (!reader.status().ok()) return reader.status();
  return out;
}

api::Status export_query_csv(std::span<const LocalizationQuery> queries,
                             std::ostream& out) {
  out << "query_id,day,true_x_m,true_y_m,link,rss_db\n";
  for (const LocalizationQuery& query : queries) {
    if (query.rss_db.empty()) {
      return api::Status::invalid_argument(
          "query export: query " + std::to_string(query.id) +
          " has an empty measurement vector");
    }
    for (std::size_t link = 0; link < query.rss_db.size(); ++link) {
      out << query.id << ',' << query.day << ','
          << format_double(query.true_position.x) << ','
          << format_double(query.true_position.y) << ',' << link << ','
          << format_double(query.rss_db[link]) << '\n';
    }
  }
  if (!out) return api::Status::internal("query export: write failed");
  return {};
}

api::Result<std::vector<LocalizationQuery>> import_query_csv(
    std::istream& in, std::string label, std::size_t links) {
  CsvReader reader(in, std::move(label), query_columns());
  if (!reader.status().ok()) return reader.status();
  std::vector<LocalizationQuery> out;
  std::vector<bool> link_seen;
  const auto finish_query = [&]() -> api::Status {
    if (out.empty()) return {};
    for (std::size_t i = 0; i < links; ++i) {
      if (!link_seen[i]) {
        return api::Status::invalid_argument(
            reader.where() + "query " + std::to_string(out.back().id) +
            " is missing link " + std::to_string(i) + " (each query needs "
            "one row per link)");
      }
    }
    return {};
  };
  while (reader.next_row()) {
    const auto id = reader.field_u64(0);
    if (!id.ok()) return id.status();
    const auto day = reader.field_u64(1);
    if (!day.ok()) return day.status();
    const auto x = reader.field_double(2);
    if (!x.ok()) return x.status();
    const auto y = reader.field_double(3);
    if (!y.ok()) return y.status();
    const auto link = reader.field_u64(4);
    if (!link.ok()) return link.status();
    const auto rss = reader.field_double(5);
    if (!rss.ok()) return rss.status();
    if (link.value() >= links) {
      return api::Status::invalid_argument(
          reader.where() + "column 'link' is " +
          std::to_string(link.value()) + " but the deployment has " +
          std::to_string(links) + " links");
    }
    if (!std::isfinite(x.value()) || !std::isfinite(y.value())) {
      return api::Status::invalid_argument(
          reader.where() + "ground-truth position is non-finite");
    }

    if (out.empty() || out.back().id != id.value()) {
      // New query begins; the previous one must be complete.
      if (api::Status done = finish_query(); !done.ok()) return done;
      for (const LocalizationQuery& prior : out) {
        if (prior.id == id.value()) {
          return api::Status::invalid_argument(
              reader.where() + "query " + std::to_string(id.value()) +
              " rows are not contiguous");
        }
      }
      LocalizationQuery query;
      query.id = id.value();
      query.day = day.value();
      query.true_position = geom::Point2{x.value(), y.value()};
      query.rss_db.assign(links, 0.0);
      out.push_back(std::move(query));
      link_seen.assign(links, false);
    }
    LocalizationQuery& query = out.back();
    if (query.day != day.value() || query.true_position.x != x.value() ||
        query.true_position.y != y.value()) {
      return api::Status::invalid_argument(
          reader.where() + "query " + std::to_string(query.id) +
          " changes its day or ground-truth position mid-query");
    }
    const std::size_t l = static_cast<std::size_t>(link.value());
    if (link_seen[l]) {
      return api::Status::invalid_argument(
          reader.where() + "query " + std::to_string(query.id) +
          " repeats link " + std::to_string(l));
    }
    link_seen[l] = true;
    query.rss_db[l] = rss.value();
  }
  if (!reader.status().ok()) return reader.status();
  if (api::Status done = finish_query(); !done.ok()) return done;
  return out;
}

api::Status write_observation_csv(
    std::span<const ingest::Observation> observations,
    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return api::Status::not_found("cannot open '" + path + "' for writing");
  }
  return export_observation_csv(observations, out);
}

api::Result<std::vector<ingest::Observation>> read_observation_csv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return api::Status::not_found("cannot open '" + path + "'");
  return import_observation_csv(in, path);
}

api::Status write_query_csv(std::span<const LocalizationQuery> queries,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return api::Status::not_found("cannot open '" + path + "' for writing");
  }
  return export_query_csv(queries, out);
}

api::Result<std::vector<LocalizationQuery>> read_query_csv(
    const std::string& path, std::size_t links) {
  std::ifstream in(path);
  if (!in) return api::Status::not_found("cannot open '" + path + "'");
  return import_query_csv(in, path, links);
}

}  // namespace iup::trace
