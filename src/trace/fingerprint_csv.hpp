// Fingerprint import/export: the at-rest CSV form of a site's radio map.
//
// Schema (ESPosition-style flat table, one row per (link, cell) pair):
//
//   link,cell,source_id,technology,rss_db,mask,cell_x_m,cell_y_m
//
// Positions and per-link source identity ride along on every row exactly
// like ESPosition's denormalized anchor columns, so one file is a
// complete, self-describing dataset: an external consumer needs no side
// channel to know where cell 17 is or which BLE beacon feeds link 4.
// Import validates the table is rectangular (every pair exactly once),
// that the denormalized columns are consistent (a link's source never
// changes between rows, a cell never moves) and that values parse clean
// — every violation is a kInvalidArgument naming file, line and column.
//
// RSS and coordinates round-trip bit-exactly (trace::format_double), so
// export -> import -> export is byte-stable and an imported database is
// safe to compare EXPECT_EQ against the matrix it was exported from.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "api/snapshot.hpp"
#include "api/status.hpp"
#include "base/ids.hpp"
#include "geom/geometry.hpp"
#include "linalg/matrix.hpp"

namespace iup::trace {

/// One imported radio map: everything needed to register the site and
/// score localization in metres.
struct FingerprintTable {
  linalg::Matrix database;              ///< M x N mean RSS [dB]
  linalg::Matrix mask;                  ///< M x N 0/1 no-decrease mask
  std::vector<SourceInfo> sources;      ///< per link (M entries)
  std::vector<geom::Point2> cell_centers;  ///< per cell (N entries)
};

/// Write `table` as CSV.  Fails (kInvalidArgument) on shape mismatches
/// or non-finite values; kInternal on stream write failure.
api::Status export_fingerprint_csv(const FingerprintTable& table,
                                   std::ostream& out);

/// Export the live engine-side form: snapshot database/mask/sources plus
/// cell centres supplied by the caller (snapshots carry no geometry).
api::Status export_fingerprint_csv(const api::FingerprintSnapshot& snapshot,
                                   const std::vector<geom::Point2>& centers,
                                   std::ostream& out);

/// Parse a fingerprint CSV (see schema above).  `label` names the stream
/// in error messages.
api::Result<FingerprintTable> import_fingerprint_csv(std::istream& in,
                                                     std::string label);

/// File-path convenience wrappers (kNotFound when the file cannot be
/// opened, kInternal when the write fails).
api::Status write_fingerprint_csv(const FingerprintTable& table,
                                  const std::string& path);
api::Result<FingerprintTable> read_fingerprint_csv(const std::string& path);

}  // namespace iup::trace
