// Minimal CSV plumbing for the trace I/O subsystem.
//
// Deliberately tiny: our schemas (ESPosition-style flat tables) never
// contain quoted fields or embedded separators, so this is a line/comma
// splitter with strict, line-numbered error reporting — every parse
// failure names the file position, the column and the offending text, so
// a malformed external dataset is diagnosable from the Status message
// alone.  Doubles round-trip bit-exactly: format_double prints with
// enough digits (%.17g) that strtod returns the identical bits on import,
// which is what makes export->import fingerprint equality a meaningful
// regression check.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.hpp"

namespace iup::trace {

/// Shortest decimal form that parses back to exactly `value` (finite
/// doubles; non-finite values print as "nan"/"inf" and are rejected by
/// the importers' finiteness checks).
std::string format_double(double value);

/// Split one CSV line on ','; fields are trimmed of surrounding spaces
/// and a trailing '\r' (CRLF tolerance).  Empty line -> empty vector.
std::vector<std::string_view> split_fields(std::string_view line);

/// Line-oriented CSV reader with a mandatory header row.
///
/// Usage: construct, check status(), then next_row() until it returns
/// false; fields() exposes the current row.  Any structural error
/// (missing header, wrong column set, short row) parks a kInvalidArgument
/// in status() and stops iteration.
class CsvReader {
 public:
  /// `label` names the stream in error messages (a path or "inline").
  /// `columns` is the exact expected header, in order.
  CsvReader(std::istream& in, std::string label,
            std::vector<std::string> columns);

  const api::Status& status() const { return status_; }
  /// 1-based line number of the current row (header is line 1).
  std::size_t line() const { return line_; }

  /// Advance to the next non-empty row.  False at end of stream or after
  /// an error (check status() to tell them apart).
  bool next_row();
  const std::vector<std::string_view>& fields() const { return fields_; }

  /// Parse the current row's column `index` as a double / uint64; a
  /// failure reports label, line, column name and the offending text.
  api::Result<double> field_double(std::size_t index);
  api::Result<std::uint64_t> field_u64(std::size_t index);
  std::string_view field(std::size_t index) const { return fields_[index]; }

  /// "label:line: " prefix for importer-level (cross-column) complaints.
  std::string where() const;

 private:
  api::Status fail(std::string message);

  std::istream& in_;
  std::string label_;
  std::vector<std::string> columns_;
  api::Status status_;
  std::size_t line_ = 0;
  std::string row_;
  std::vector<std::string_view> fields_;
};

}  // namespace iup::trace
