#include "trace/replay.hpp"

#include <cmath>
#include <utility>

#include "geom/geometry.hpp"

namespace iup::trace {

api::Result<ReplayReport> run_replay(
    api::Engine& engine, const FingerprintTable& table,
    std::span<const ingest::Observation> observations,
    std::span<const LocalizationQuery> queries, ReplayConfig config) {
  ReplayReport report;

  auto registered = engine.register_site(config.site, table.database,
                                         table.mask, table.sources);
  if (!registered.ok()) return registered.status();
  report.final_version = registered.value()->version();

  serve::ShardRegistry::ShardPtr shard = engine.shards().find(config.site);
  if (!shard) {
    return api::Status::internal("replay: site '" + config.site +
                                 "' registered but has no shard");
  }
  ingest::ObservationBuffer buffer(table.database.rows(),
                                   table.database.cols(), table.sources,
                                   shard->health(), config.buffer);

  // Commit one update from the buffered epoch, labelled `day`.
  const auto commit = [&](std::uint64_t day) -> api::Status {
    auto snapshot = engine.snapshot(config.site);
    if (!snapshot.ok()) return snapshot.status();
    auto inputs = buffer.assemble(*snapshot.value());
    if (!inputs.ok()) return inputs.status();
    api::UpdateRequest request;
    request.site = config.site;
    request.inputs = std::move(inputs).value();
    request.day = static_cast<std::size_t>(day);
    auto result = engine.update(request);
    if (!result.ok()) return result.status();
    buffer.consume();
    ++report.updates_committed;
    report.final_version = result.value().committed_version;
    return {};
  };

  bool have_day = false;
  std::uint64_t current_day = 0;
  for (const ingest::Observation& obs : observations) {
    if (have_day && obs.day < current_day) {
      return api::Status::invalid_argument(
          "replay: observation stream is not sorted by day (day " +
          std::to_string(obs.day) + " after day " +
          std::to_string(current_day) + ")");
    }
    if (have_day && obs.day > current_day) {
      // Day boundary: commit the finished day's epoch if it covered
      // enough entries, otherwise let it roll into the new day.
      if (buffer.coverage() >= config.min_coverage && buffer.size() > 0) {
        if (api::Status done = commit(current_day); !done.ok()) return done;
      } else {
        ++report.updates_skipped;
      }
    }
    current_day = obs.day;
    have_day = true;

    api::Status pushed = buffer.push(obs);
    if (pushed.ok()) {
      ++report.observations_accepted;
      continue;
    }
    if (pushed.code() == api::StatusCode::kResourceExhausted) {
      // Buffer full mid-day: commit what we have and retry once.
      if (buffer.coverage() < config.min_coverage) return pushed;
      if (api::Status done = commit(current_day); !done.ok()) return done;
      pushed = buffer.push(obs);
      if (!pushed.ok()) return pushed;
      ++report.observations_accepted;
      continue;
    }
    // Quarantined (counted in the shard's health block); keep streaming.
    ++report.observations_quarantined;
  }
  if (have_day && buffer.size() > 0 &&
      buffer.coverage() >= config.min_coverage) {
    if (api::Status done = commit(current_day); !done.ok()) return done;
  }

  report.localization_errors_m.reserve(queries.size());
  for (const LocalizationQuery& query : queries) {
    auto estimate = engine.localize(config.site, query.rss_db);
    if (!estimate.ok()) return estimate.status();
    const std::size_t cell = estimate.value().cell;
    if (cell >= table.cell_centers.size()) {
      return api::Status::internal(
          "replay: localizer returned cell " + std::to_string(cell) +
          " outside the imported grid");
    }
    const double error_m =
        geom::distance(table.cell_centers[cell], query.true_position);
    if (!std::isfinite(error_m)) {
      return api::Status::internal(
          "replay: non-finite localization error for query " +
          std::to_string(query.id));
    }
    report.localization_errors_m.push_back(error_m);
  }
  return report;
}

api::Result<ReplayReport> run_replay_files(api::Engine& engine,
                                           const std::string& fingerprint_csv,
                                           const std::string& observation_csv,
                                           const std::string& query_csv,
                                           ReplayConfig config) {
  auto table = read_fingerprint_csv(fingerprint_csv);
  if (!table.ok()) return table.status();
  auto observations = read_observation_csv(observation_csv);
  if (!observations.ok()) return observations.status();
  auto queries =
      read_query_csv(query_csv, table.value().database.rows());
  if (!queries.ok()) return queries.status();
  return run_replay(engine, table.value(), observations.value(),
                    queries.value(), std::move(config));
}

}  // namespace iup::trace
