#include "trace/capture.hpp"

#include <string>
#include <utility>

#include "sim/fingerprint_builder.hpp"
#include "sim/sampler.hpp"

namespace iup::trace {

api::Result<CapturedTrace> capture_trace(const sim::Testbed& testbed,
                                         CaptureOptions options) {
  if (options.observation_days.empty()) {
    return api::Status::invalid_argument(
        "capture: at least one observation day is required");
  }
  if (options.queries == 0) {
    return api::Status::invalid_argument(
        "capture: at least one localization query is required");
  }
  for (std::size_t k = 1; k < options.observation_days.size(); ++k) {
    if (options.observation_days[k] <= options.observation_days[k - 1]) {
      return api::Status::invalid_argument(
          "capture: observation days must be strictly increasing");
    }
  }

  CapturedTrace trace;

  // Day-0 survey -> the at-rest fingerprint table.
  const sim::GroundTruthSet survey =
      sim::collect_ground_truth(testbed, {0});
  trace.fingerprint.database = survey.x[0];
  trace.fingerprint.mask = sim::no_decrease_mask(testbed);
  trace.fingerprint.sources = testbed.sources();
  const sim::Deployment& dep = testbed.deployment();
  trace.fingerprint.cell_centers.reserve(testbed.num_cells());
  for (std::size_t j = 0; j < testbed.num_cells(); ++j) {
    trace.fingerprint.cell_centers.push_back(dep.cell_center(j));
  }

  // Observation stream: per day, individual readings over the covered
  // (link, cell) entries of the mask.  A link whose source is missing
  // emits nothing — its fresh coverage comes back as served-value
  // fallback at assemble time, the degraded path a dead beacon causes.
  for (const std::size_t day : options.observation_days) {
    sim::Sampler sampler(testbed, "trace-obs-day" + std::to_string(day));
    for (std::size_t i = 0; i < testbed.num_links(); ++i) {
      if (testbed.source_missing(i)) continue;
      for (std::size_t j = 0; j < testbed.num_cells(); ++j) {
        if (trace.fingerprint.mask(i, j) == 0.0) continue;
        for (std::size_t s = 0; s < options.samples_per_entry; ++s) {
          ingest::Observation obs;
          obs.link = i;
          obs.cell = j;
          obs.rss_db = sampler.sample(i, j, day);
          obs.day = day;
          obs.source = trace.fingerprint.sources[i].id;
          trace.observations.push_back(obs);
        }
      }
    }
  }

  // Queries: online measurements at the final day, ground-truth labelled,
  // target positions spread across the grid.
  const std::size_t query_day = options.observation_days.back();
  sim::Sampler online(testbed, "trace-query");
  for (std::size_t k = 0; k < options.queries; ++k) {
    const std::size_t cell = (k * testbed.num_cells()) / options.queries;
    LocalizationQuery query;
    query.id = k;
    query.day = query_day;
    query.true_position = dep.cell_center(cell);
    query.rss_db =
        online.online_measurement(cell, query_day, options.query_samples);
    trace.queries.push_back(std::move(query));
  }
  return trace;
}

}  // namespace iup::trace
