#include "trace/fingerprint_csv.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <utility>

#include "trace/csv.hpp"

namespace iup::trace {

namespace {

const std::vector<std::string>& fingerprint_columns() {
  static const std::vector<std::string> columns = {
      "link", "cell", "source_id", "technology",
      "rss_db", "mask", "cell_x_m", "cell_y_m"};
  return columns;
}

api::Status validate_table(const FingerprintTable& table) {
  const std::size_t m = table.database.rows();
  const std::size_t n = table.database.cols();
  if (m == 0 || n == 0) {
    return api::Status::invalid_argument(
        "fingerprint export: empty database");
  }
  if (table.mask.rows() != m || table.mask.cols() != n) {
    return api::Status::invalid_argument(
        "fingerprint export: mask is " + std::to_string(table.mask.rows()) +
        "x" + std::to_string(table.mask.cols()) + " but the database is " +
        std::to_string(m) + "x" + std::to_string(n));
  }
  if (table.sources.size() != m) {
    return api::Status::invalid_argument(
        "fingerprint export: " + std::to_string(table.sources.size()) +
        " sources for " + std::to_string(m) + " links");
  }
  if (table.cell_centers.size() != n) {
    return api::Status::invalid_argument(
        "fingerprint export: " + std::to_string(table.cell_centers.size()) +
        " cell centers for " + std::to_string(n) + " cells");
  }
  for (const double v : table.database.data()) {
    if (!std::isfinite(v)) {
      return api::Status::invalid_argument(
          "fingerprint export: database contains non-finite RSS");
    }
  }
  return {};
}

}  // namespace

api::Status export_fingerprint_csv(const FingerprintTable& table,
                                   std::ostream& out) {
  if (api::Status valid = validate_table(table); !valid.ok()) return valid;
  out << "link,cell,source_id,technology,rss_db,mask,cell_x_m,cell_y_m\n";
  for (std::size_t i = 0; i < table.database.rows(); ++i) {
    const SourceInfo& source = table.sources[i];
    for (std::size_t j = 0; j < table.database.cols(); ++j) {
      out << i << ',' << j << ',' << source.id.value() << ','
          << to_string(source.technology) << ','
          << format_double(table.database(i, j)) << ','
          << (table.mask(i, j) != 0.0 ? 1 : 0) << ','
          << format_double(table.cell_centers[j].x) << ','
          << format_double(table.cell_centers[j].y) << '\n';
    }
  }
  if (!out) return api::Status::internal("fingerprint export: write failed");
  return {};
}

api::Status export_fingerprint_csv(const api::FingerprintSnapshot& snapshot,
                                   const std::vector<geom::Point2>& centers,
                                   std::ostream& out) {
  FingerprintTable table;
  table.database = snapshot.database();
  table.mask = snapshot.mask();
  table.sources = snapshot.sources();
  if (table.sources.empty()) {
    // Legacy source-less snapshot: the degenerate table keeps the file
    // self-describing (and re-importable as a multi-radio site).
    table.sources = single_technology_sources(table.database.rows());
  }
  table.cell_centers = centers;
  return export_fingerprint_csv(table, out);
}

api::Result<FingerprintTable> import_fingerprint_csv(std::istream& in,
                                                     std::string label) {
  CsvReader reader(in, std::move(label), fingerprint_columns());
  if (!reader.status().ok()) return reader.status();

  // First pass collects rows; dimensions are max(id)+1 once the row set
  // is proven rectangular.
  struct Row {
    std::size_t link, cell;
    SourceInfo source;
    double rss, mask;
    geom::Point2 center;
    std::size_t line;
  };
  std::vector<Row> rows;
  std::size_t max_link = 0, max_cell = 0;
  while (reader.next_row()) {
    Row row;
    const auto link = reader.field_u64(0);
    if (!link.ok()) return link.status();
    const auto cell = reader.field_u64(1);
    if (!cell.ok()) return cell.status();
    const auto source_id = reader.field_u64(2);
    if (!source_id.ok()) return source_id.status();
    Technology technology;
    if (!technology_from_string(reader.field(3), technology)) {
      return api::Status::invalid_argument(
          reader.where() + "column 'technology' has unknown value '" +
          std::string(reader.field(3)) + "' (expected wifi/ble/lora)");
    }
    const auto rss = reader.field_double(4);
    if (!rss.ok()) return rss.status();
    if (!std::isfinite(rss.value())) {
      return api::Status::invalid_argument(
          reader.where() + "column 'rss_db' is non-finite");
    }
    const auto mask = reader.field_double(5);
    if (!mask.ok()) return mask.status();
    if (mask.value() != 0.0 && mask.value() != 1.0) {
      return api::Status::invalid_argument(
          reader.where() + "column 'mask' must be 0 or 1, got '" +
          std::string(reader.field(5)) + "'");
    }
    const auto x = reader.field_double(6);
    if (!x.ok()) return x.status();
    const auto y = reader.field_double(7);
    if (!y.ok()) return y.status();
    if (!std::isfinite(x.value()) || !std::isfinite(y.value())) {
      return api::Status::invalid_argument(
          reader.where() + "cell center coordinates are non-finite");
    }
    row.link = static_cast<std::size_t>(link.value());
    row.cell = static_cast<std::size_t>(cell.value());
    row.source = SourceInfo{SourceId(source_id.value()), technology};
    row.rss = rss.value();
    row.mask = mask.value();
    row.center = geom::Point2{x.value(), y.value()};
    row.line = reader.line();
    if (row.link > max_link) max_link = row.link;
    if (row.cell > max_cell) max_cell = row.cell;
    rows.push_back(row);
  }
  if (!reader.status().ok()) return reader.status();
  if (rows.empty()) {
    return api::Status::invalid_argument(reader.where() +
                                         "no fingerprint rows");
  }

  const std::size_t m = max_link + 1;
  const std::size_t n = max_cell + 1;
  FingerprintTable table;
  table.database = linalg::Matrix(m, n);
  table.mask = linalg::Matrix(m, n);
  table.sources.assign(m, SourceInfo{});
  table.cell_centers.assign(n, geom::Point2{});
  std::vector<bool> seen(m * n, false);
  std::vector<bool> link_seen(m, false), cell_seen(n, false);
  for (const Row& row : rows) {
    const auto at = [&](std::size_t line) {
      return "fingerprint row at line " + std::to_string(line);
    };
    if (seen[row.link * n + row.cell]) {
      return api::Status::invalid_argument(
          at(row.line) + ": duplicate (link " + std::to_string(row.link) +
          ", cell " + std::to_string(row.cell) + ") entry");
    }
    seen[row.link * n + row.cell] = true;
    if (link_seen[row.link] && table.sources[row.link] != row.source) {
      return api::Status::invalid_argument(
          at(row.line) + ": link " + std::to_string(row.link) +
          " changes its source mid-file");
    }
    link_seen[row.link] = true;
    table.sources[row.link] = row.source;
    if (cell_seen[row.cell] &&
        (table.cell_centers[row.cell].x != row.center.x ||
         table.cell_centers[row.cell].y != row.center.y)) {
      return api::Status::invalid_argument(
          at(row.line) + ": cell " + std::to_string(row.cell) +
          " changes its center mid-file");
    }
    cell_seen[row.cell] = true;
    table.cell_centers[row.cell] = row.center;
    table.database(row.link, row.cell) = row.rss;
    table.mask(row.link, row.cell) = row.mask;
  }
  if (rows.size() != m * n) {
    return api::Status::invalid_argument(
        "fingerprint table is not rectangular: " +
        std::to_string(rows.size()) + " rows for a " + std::to_string(m) +
        "x" + std::to_string(n) + " grid (every (link, cell) pair must "
        "appear exactly once)");
  }
  return table;
}

api::Status write_fingerprint_csv(const FingerprintTable& table,
                                  const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return api::Status::not_found("cannot open '" + path + "' for writing");
  }
  return export_fingerprint_csv(table, out);
}

api::Result<FingerprintTable> read_fingerprint_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return api::Status::not_found("cannot open '" + path + "'");
  }
  return import_fingerprint_csv(in, path);
}

}  // namespace iup::trace
