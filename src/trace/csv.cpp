#include "trace/csv.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace iup::trace {

std::string format_double(double value) {
  // Try the shortest precision that round-trips; fall back to 17
  // significant digits (always exact for IEEE double).
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> out;
  if (line.empty()) return out;
  std::size_t start = 0;
  while (true) {
    std::size_t comma = line.find(',', start);
    std::string_view field = comma == std::string_view::npos
                                 ? line.substr(start)
                                 : line.substr(start, comma - start);
    while (!field.empty() && (field.front() == ' ' || field.front() == '\t')) {
      field.remove_prefix(1);
    }
    while (!field.empty() && (field.back() == ' ' || field.back() == '\t' ||
                              field.back() == '\r')) {
      field.remove_suffix(1);
    }
    out.push_back(field);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

CsvReader::CsvReader(std::istream& in, std::string label,
                     std::vector<std::string> columns)
    : in_(in), label_(std::move(label)), columns_(std::move(columns)) {
  if (!std::getline(in_, row_)) {
    status_ = fail("missing header row");
    return;
  }
  ++line_;
  const std::vector<std::string_view> header = split_fields(row_);
  if (header.size() != columns_.size()) {
    status_ = fail("header has " + std::to_string(header.size()) +
                   " columns, expected " + std::to_string(columns_.size()));
    return;
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (header[i] != columns_[i]) {
      status_ = fail("header column " + std::to_string(i) + " is '" +
                     std::string(header[i]) + "', expected '" + columns_[i] +
                     "'");
      return;
    }
  }
}

bool CsvReader::next_row() {
  if (!status_.ok()) return false;
  while (std::getline(in_, row_)) {
    ++line_;
    if (row_.empty() || row_ == "\r") continue;  // blank lines are fine
    fields_ = split_fields(row_);
    if (fields_.size() != columns_.size()) {
      status_ = fail("row has " + std::to_string(fields_.size()) +
                     " fields, expected " + std::to_string(columns_.size()));
      return false;
    }
    return true;
  }
  return false;
}

api::Result<double> CsvReader::field_double(std::size_t index) {
  const std::string text(fields_[index]);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    return fail("column '" + columns_[index] + "' has non-numeric value '" +
                text + "'");
  }
  if (errno == ERANGE) {
    return fail("column '" + columns_[index] + "' value '" + text +
                "' overflows double");
  }
  return value;
}

api::Result<std::uint64_t> CsvReader::field_u64(std::size_t index) {
  const std::string text(fields_[index]);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || text[0] == '-') {
    return fail("column '" + columns_[index] +
                "' has non-integer value '" + text + "'");
  }
  if (errno == ERANGE) {
    return fail("column '" + columns_[index] + "' value '" + text +
                "' overflows uint64");
  }
  return static_cast<std::uint64_t>(value);
}

std::string CsvReader::where() const {
  return label_ + ":" + std::to_string(line_) + ": ";
}

api::Status CsvReader::fail(std::string message) {
  status_ = api::Status::invalid_argument(where() + std::move(message));
  return status_;
}

}  // namespace iup::trace
