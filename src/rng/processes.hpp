// Stochastic processes used by the RSS simulator.
//
//  * Ar1Process — first-order autoregressive fading: short-term RSS traces
//    are strongly time-correlated (Fig. 1 shows multi-second excursions),
//    which plain iid noise cannot produce.
//  * OutlierMixture — iid Gaussian noise with occasional large outliers
//    (people walking by, interference bursts); the heavy tail is exactly
//    what Constraint 2 is designed to reject (Fig. 17).
//  * RandomWalkDrift — bounded slow random walk for day-scale drift.
#pragma once

#include <vector>

#include "rng/rng.hpp"

namespace iup::rng {

/// x_{t+1} = phi * x_t + sqrt(1 - phi^2) * sigma * n_t, stationary
/// marginal N(0, sigma^2).
class Ar1Process {
 public:
  /// phi in [0, 1): correlation between consecutive samples.
  Ar1Process(double phi, double sigma, Rng rng);

  /// Advance one step and return the new value.
  double step();

  /// Current value without advancing.
  double value() const { return state_; }

  /// Generate a trace of `n` consecutive samples.
  std::vector<double> trace(std::size_t n);

 private:
  double phi_;
  double innovation_sigma_;
  double state_ = 0.0;
  Rng rng_;
};

/// Gaussian core with probability (1 - outlier_prob); an outlier drawn from
/// N(0, outlier_sigma^2) otherwise.
class OutlierMixture {
 public:
  OutlierMixture(double core_sigma, double outlier_prob, double outlier_sigma,
                 Rng rng);

  double sample();

  std::vector<double> samples(std::size_t n);

 private:
  double core_sigma_;
  double outlier_prob_;
  double outlier_sigma_;
  Rng rng_;
};

/// Slow bounded random walk: value(t) interpolates day-scale drift; the
/// reflection at +/- bound keeps drift physically plausible (RSS offsets do
/// not grow without limit).
class RandomWalkDrift {
 public:
  RandomWalkDrift(double step_sigma, double bound, Rng rng);

  /// Value after `steps` increments from the initial state 0.
  double advance(std::size_t steps);

  double value() const { return state_; }

 private:
  double step_sigma_;
  double bound_;
  double state_ = 0.0;
  Rng rng_;
};

}  // namespace iup::rng
