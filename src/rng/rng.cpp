#include "rng/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace iup::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, used to key forked streams.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias (negligible here, cheap anyway).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return static_cast<std::size_t>(draw % n);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is bounded away from 0 to keep log() finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<double> Rng::normal_vector(std::size_t count, double mean,
                                       double stddev) {
  std::vector<double> out(count);
  for (double& v : out) v = normal(mean, stddev);
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[uniform_index(i)]);
  }
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  auto p = permutation(n);
  p.resize(k);
  return p;
}

Rng Rng::fork(std::string_view label) const {
  return fork(hash_label(label));
}

Rng Rng::fork(std::uint64_t key) const {
  // Mix the current state with the key through splitmix64; the parent
  // stream is left untouched (fork is const).
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ s_[3];
  mix ^= 0x9e3779b97f4a7c15ULL + key;
  std::uint64_t sm = mix;
  (void)splitmix64(sm);
  return Rng(splitmix64(sm));
}

}  // namespace iup::rng
