#include "rng/processes.hpp"

#include <cmath>
#include <stdexcept>

namespace iup::rng {

Ar1Process::Ar1Process(double phi, double sigma, Rng rng)
    : phi_(phi),
      innovation_sigma_(sigma * std::sqrt(std::max(0.0, 1.0 - phi * phi))),
      rng_(rng) {
  if (phi < 0.0 || phi >= 1.0) {
    throw std::invalid_argument("Ar1Process: phi must be in [0, 1)");
  }
  // Start from the stationary distribution so traces have no burn-in bias.
  state_ = rng_.normal(0.0, sigma);
}

double Ar1Process::step() {
  state_ = phi_ * state_ + rng_.normal(0.0, innovation_sigma_);
  return state_;
}

std::vector<double> Ar1Process::trace(std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = step();
  return out;
}

OutlierMixture::OutlierMixture(double core_sigma, double outlier_prob,
                               double outlier_sigma, Rng rng)
    : core_sigma_(core_sigma),
      outlier_prob_(outlier_prob),
      outlier_sigma_(outlier_sigma),
      rng_(rng) {
  if (outlier_prob < 0.0 || outlier_prob > 1.0) {
    throw std::invalid_argument("OutlierMixture: bad probability");
  }
}

double OutlierMixture::sample() {
  if (rng_.uniform() < outlier_prob_) return rng_.normal(0.0, outlier_sigma_);
  return rng_.normal(0.0, core_sigma_);
}

std::vector<double> OutlierMixture::samples(std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = sample();
  return out;
}

RandomWalkDrift::RandomWalkDrift(double step_sigma, double bound, Rng rng)
    : step_sigma_(step_sigma), bound_(bound), rng_(rng) {
  if (bound <= 0.0) {
    throw std::invalid_argument("RandomWalkDrift: bound must be positive");
  }
}

double RandomWalkDrift::advance(std::size_t steps) {
  for (std::size_t k = 0; k < steps; ++k) {
    state_ += rng_.normal(0.0, step_sigma_);
    // Reflect at the bounds.
    if (state_ > bound_) state_ = 2.0 * bound_ - state_;
    if (state_ < -bound_) state_ = -2.0 * bound_ - state_;
  }
  return state_;
}

}  // namespace iup::rng
