// Deterministic pseudo-random number generation.
//
// Every stochastic piece of the simulator (multipath fields, drift
// trajectories, short-term fading, survey sampling) draws from an explicit
// Rng instance so that experiments are bit-for-bit reproducible and every
// module can be tested in isolation.  The generator is xoshiro256++ —
// small, fast and high quality — seeded through splitmix64 so that a single
// 64-bit experiment seed expands into well-decorrelated streams.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace iup::rng {

/// splitmix64 step; used for seeding and for hashing stream labels.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  /// Seeds the four-word xoshiro state from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x1dea11ceULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) (n > 0).
  std::size_t uniform_index(std::size_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// `count` iid normal draws.
  std::vector<double> normal_vector(std::size_t count, double mean,
                                    double stddev);

  /// Fisher-Yates shuffle of indices [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  /// `k` distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child stream for a named sub-component.
  /// fork("office").fork("drift") and fork("office").fork("fading") are
  /// decorrelated; identical paths give identical streams.
  Rng fork(std::string_view label) const;

  /// Derive a child stream keyed by an integer (link index, grid index...).
  Rng fork(std::uint64_t key) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace iup::rng
