#include "sim/drift.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/processes.hpp"

namespace iup::sim {

DriftModel::DriftModel(const Environment& env, std::size_t num_links,
                       std::size_t max_day, rng::Rng rng)
    : max_day_(max_day),
      aging_sigma_db_(env.aging_sigma_db),
      morph_rate_(env.morph_rate_rad_per_sqrt_day),
      aging_seed_(rng.fork("aging")) {
  rng::RandomWalkDrift global_walk(env.drift_global_step_db,
                                   env.drift_bound_db, rng.fork("global"));
  global_.resize(max_day + 1);
  global_[0] = 0.0;
  for (std::size_t d = 1; d <= max_day; ++d) {
    global_[d] = global_walk.advance(1);
  }

  per_link_.resize(num_links);
  for (std::size_t i = 0; i < num_links; ++i) {
    rng::RandomWalkDrift link_walk(env.drift_link_step_db, env.drift_bound_db,
                                   rng.fork("link").fork(i));
    auto& traj = per_link_[i];
    traj.resize(max_day + 1);
    traj[0] = 0.0;
    for (std::size_t d = 1; d <= max_day; ++d) {
      traj[d] = link_walk.advance(1);
    }
  }
}

void DriftModel::check_day(std::size_t day) const {
  if (day > max_day_) {
    throw std::out_of_range("DriftModel: day beyond precomputed horizon");
  }
}

double DriftModel::global_offset(std::size_t day) const {
  check_day(day);
  return global_[day];
}

double DriftModel::link_offset(std::size_t link, std::size_t day) const {
  check_day(day);
  return global_[day] + per_link_.at(link)[day];
}

double DriftModel::morph_angle(std::size_t day) const {
  check_day(day);
  return morph_rate_ * std::sqrt(static_cast<double>(day));
}

double DriftModel::aging_noise(std::size_t link, std::size_t cell,
                               std::size_t day) const {
  check_day(day);
  if (day == 0) return 0.0;
  // Deterministic draw keyed by (link, cell, day): fork a child stream and
  // take its first normal deviate, scaled by sqrt(day).
  rng::Rng child = aging_seed_.fork(link).fork(cell).fork(day);
  return aging_sigma_db_ * std::sqrt(static_cast<double>(day)) *
         child.normal();
}

}  // namespace iup::sim
