// Long-term RSS drift over days and months.
//
// The paper's Fig. 2 shows the mean RSS at a fixed location shifting by
// ~2.5 dB after 5 days and ~6 dB after 45 days even with no activity in the
// room (temperature/humidity, Rappaport [23]).  Crucially for iUpdater,
// that drift is *spatially coherent*: differences between neighbouring
// locations and adjacent links stay stable (Observations 2/3) while the
// absolute level wanders.  Our model therefore decomposes the drift into
//
//   delta(i, j, t) = g(t)               common random walk (all links)
//                  + l_i(t)             per-link random walk (RF chain aging)
//                  + morph(i, j, t)     slow rotation of the multipath field
//                  + a(i, j, t)         tiny iid aging noise
//
// The first two terms are constant along a row of the fingerprint matrix,
// so they leave Observation-2/3 differences untouched; the morph term is
// what makes old fingerprints genuinely stale (reconstruction error grows
// with the update interval, paper Fig. 18).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "sim/environment.hpp"

namespace iup::sim {

class DriftModel {
 public:
  /// Precomputes day-resolution drift trajectories for `num_links` links up
  /// to `max_day` (inclusive), so queries at any supported day are O(1) and
  /// mutually consistent.
  DriftModel(const Environment& env, std::size_t num_links,
             std::size_t max_day, rng::Rng rng);

  std::size_t max_day() const { return max_day_; }

  /// Common (all-link) drift offset at integer day t [dB].
  double global_offset(std::size_t day) const;

  /// Per-link drift offset (includes the global term) at day t [dB].
  double link_offset(std::size_t link, std::size_t day) const;

  /// Multipath/shadowing morph angle at day t [rad]; grows diffusively
  /// (~sqrt(t)), and sim::Testbed blends static field pairs with it.
  double morph_angle(std::size_t day) const;

  /// Deterministic per-entry aging noise at day t [dB]; grows ~sqrt(day).
  /// Keyed by (link, cell) so repeated queries agree.
  double aging_noise(std::size_t link, std::size_t cell,
                     std::size_t day) const;

 private:
  void check_day(std::size_t day) const;

  std::size_t max_day_;
  double aging_sigma_db_;
  double morph_rate_;
  std::vector<double> global_;                 ///< [day]
  std::vector<std::vector<double>> per_link_;  ///< [link][day]
  rng::Rng aging_seed_;
};

}  // namespace iup::sim
