// Short-term RSS sampling on top of a Testbed.
//
// Reproduces the measurement process of the paper's deployment: each AP
// probes its client every 0.5 s; a reading is the testbed's mean RSS plus
// AR(1) fading plus occasional interference outliers (Fig. 1 shows ~5 dB
// swings within 100 s).  Surveys average k consecutive readings per
// location — the paper's traditional systems use k = 50, iUpdater k = 5.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/processes.hpp"
#include "sim/testbeds.hpp"

namespace iup::sim {

class Sampler {
 public:
  /// `stream` distinguishes independent measurement campaigns on the same
  /// testbed (e.g. the original survey vs. an update survey vs. online
  /// localization traffic).
  Sampler(const Testbed& testbed, std::string_view stream);

  const Testbed& testbed() const { return *testbed_; }

  /// Advance one probing interval: the common-mode fading (interference,
  /// ambient activity — shared by all links, which is why RSS *differences*
  /// are stable, Fig. 6) and every per-link fading process step once.
  void tick();

  /// Read link i at the current instant; `cell` empty means no target.
  /// Concurrent reads of different links share the same fading state.
  double read(std::size_t link, std::optional<std::size_t> cell,
              std::size_t day);

  /// tick() + read(): one RSS reading of link i at day t.
  double sample(std::size_t link, std::optional<std::size_t> cell,
                std::size_t day);

  /// `count` consecutive readings of one link (a Fig. 1-style trace).
  std::vector<double> trace(std::size_t link, std::optional<std::size_t> cell,
                            std::size_t day, std::size_t count);

  /// Average of `count` readings (a survey measurement at one location).
  double averaged(std::size_t link, std::optional<std::size_t> cell,
                  std::size_t day, std::size_t count);

  /// Survey a whole column: M-vector of averaged readings with the target
  /// at `cell`.
  std::vector<double> survey_column(std::size_t cell, std::size_t day,
                                    std::size_t samples_per_location);

  /// Survey the full fingerprint matrix (the "traditional" whole-database
  /// update): every cell, k samples per (link, cell).
  linalg::Matrix survey_full(std::size_t day, std::size_t samples_per_location);

  /// Measure the no-target baselines (M-vector, averaged).
  std::vector<double> survey_baselines(std::size_t day, std::size_t samples);

  /// One online measurement vector y (Eq. 25): all links read once (or
  /// averaged over `samples`) with the target at `cell`.
  std::vector<double> online_measurement(std::size_t cell, std::size_t day,
                                         std::size_t samples = 1);

 private:
  const Testbed* testbed_;
  rng::Ar1Process common_fading_;            ///< shared by all links
  std::vector<rng::Ar1Process> fading_;      ///< per-link residual fading
  std::vector<rng::OutlierMixture> outliers_;///< one per link
};

}  // namespace iup::sim
