// Fingerprint database construction on top of a Testbed.
//
// Produces the artefacts the paper's evaluation needs at every time stamp:
//  * ground-truth matrices (heavily averaged surveys, the paper's six
//    manually collected matrices);
//  * the B index mask of "no-decrease" entries (measurable without a
//    target, Eq. 8) derived from the day-0 physics;
//  * survey-based matrices with realistic noise for a given per-location
//    sample budget.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/sampler.hpp"
#include "sim/testbeds.hpp"

namespace iup::sim {

/// A ground-truth campaign: one matrix per requested time stamp.
struct GroundTruthSet {
  std::vector<std::size_t> days;       ///< stamp -> day index
  std::vector<linalg::Matrix> x;       ///< stamp -> M x N fingerprint matrix
  std::vector<std::vector<double>> baselines;  ///< stamp -> per-link baseline

  const linalg::Matrix& at_day(std::size_t day) const;
  const std::vector<double>& baselines_at_day(std::size_t day) const;
};

/// Collect ground-truth matrices by exhaustive surveys with
/// `samples_per_location` averaging (default 50, the paper's traditional
/// budget, which pushes sampling noise well below the drift signal).
GroundTruthSet collect_ground_truth(const Testbed& testbed,
                                    const std::vector<std::size_t>& days,
                                    std::size_t samples_per_location = 50);

/// The B index matrix (Eq. 8): b_ij = 1 when a target at cell j changes
/// link i's RSS by less than `threshold_db` (so the entry can be refreshed
/// without a person present).  Derived from day-0 noiseless physics, as the
/// affected set is a property of the geometry.
linalg::Matrix no_decrease_mask(const Testbed& testbed,
                                double threshold_db = 1.0);

/// X_B = B o X measured at `day`: no-decrease entries are refreshed from
/// the *baseline* readings of each link (no target in the room), which is
/// what "non-labor-cost measurements" means operationally; masked entries
/// are zero.
///
/// When `original` / `original_baselines` are supplied (the stored
/// database from the initial survey), the small static within-row offsets
/// of the no-decrease entries are carried over on top of the fresh
/// baseline level: those sub-threshold signatures change little over time
/// (that is what makes them "no-decrease"), and discarding them would
/// leave the updated database with *less* cross-link structure than even a
/// stale one.  Still zero extra labor — the original database is already
/// on disk and the fresh baselines need no target.
linalg::Matrix measure_no_decrease_matrix(
    Sampler& sampler, const linalg::Matrix& mask, std::size_t day,
    std::size_t samples = 5, const linalg::Matrix* original = nullptr,
    const std::vector<double>* original_baselines = nullptr);

/// Reference matrix X_R (Eq. 13): fresh survey columns at the given cells.
linalg::Matrix measure_reference_matrix(Sampler& sampler,
                                        const std::vector<std::size_t>& cells,
                                        std::size_t day,
                                        std::size_t samples = 5);

}  // namespace iup::sim
