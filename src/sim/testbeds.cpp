#include "sim/testbeds.hpp"

#include <cmath>
#include <stdexcept>

namespace iup::sim {

namespace {
constexpr std::size_t kMaxDay = 95;  // covers "3 months later" (90 days)
}

Testbed::Testbed(Environment env, DeploymentConfig deployment,
                 RadioParams radio, std::size_t max_day, std::uint64_t seed)
    : env_(std::move(env)),
      deployment_(deployment),
      radio_(radio),
      drift_(env_, deployment.num_links, max_day,
             rng::Rng(seed).fork("drift")),
      seed_(seed),
      root_(seed) {
  const std::size_t m = deployment_.num_links();
  const std::size_t n = deployment_.num_cells();

  // Per-link hardware gain: RF chains are not calibrated against each other
  // (paper footnote 3), so adjacent-link similarity is good but not perfect.
  rng::Rng gain_rng = root_.fork("gain");
  link_gain_db_ = gain_rng.normal_vector(m, 0.0, 0.6);

  // Two independent static multipath texture fields; the drift morph angle
  // blends them, modelling slow reconfiguration of reflectors over weeks.
  // The texture is the target-induced NLoS perturbation, so it is weighted
  // by the cell-to-link proximity 1/(1+d^2): full strength on the blocked
  // link, a fraction one band over ("small decrease" cells), ~0 far away.
  rng::Rng mp_rng = root_.fork("multipath");
  multipath_a_ = linalg::Matrix(m, n);
  multipath_b_ = linalg::Matrix(m, n);
  proximity_ = linalg::Matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      multipath_a_(i, j) = mp_rng.normal(0.0, env_.multipath_sigma_db);
      multipath_b_(i, j) = mp_rng.normal(0.0, env_.multipath_sigma_db);
      const double d = geom::point_segment_distance(
          deployment_.link(i), deployment_.cell_center(j));
      // A standing body scatters measurable energy onto links several
      // metres away (this is what makes fingerprints informative across
      // links); 1/(1+d) decays slower than free-space because the room
      // keeps reflecting.
      proximity_(i, j) = 1.0 / (1.0 + d);
    }
  }
  baseline_mp_a_ = mp_rng.normal_vector(m, 0.0, env_.multipath_sigma_db);
  baseline_mp_b_ = mp_rng.normal_vector(m, 0.0, env_.multipath_sigma_db);
  // Adjacent links share the room's reflectors, so their baseline
  // multipath is correlated too (this keeps adjacent-link similarity
  // intact as the fields morph — Observation 3).
  for (auto* base_mp : {&baseline_mp_a_, &baseline_mp_b_}) {
    for (std::size_t i = 1; i < m; ++i) {
      (*base_mp)[i] = std::sqrt(1.0 - env_.texture_link_corr) * (*base_mp)[i] +
                      std::sqrt(env_.texture_link_corr) * (*base_mp)[i - 1];
    }
  }

  // Own-band texture: the dominant multipath component a blocking target
  // induces on its own link.  Unlike the cross-link scatter above it is
  // spatially structured — smoothed along the link (Observation 2) and
  // correlated across adjacent links (Observation 3) — which is what makes
  // Constraint 2 informative on real fingerprints.
  const std::size_t s = deployment_.slots_per_link();
  const auto structured_band_field = [&](rng::Rng field_rng) {
    linalg::Matrix white(m, s);
    for (double& v : white.data()) v = field_rng.normal();
    // Blend white with a slot-smoothed copy.
    linalg::Matrix smooth = white;
    for (int pass = 0; pass < 2; ++pass) {
      linalg::Matrix next = smooth;
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t u = 0; u < s; ++u) {
          const double left = smooth(i, u > 0 ? u - 1 : u);
          const double right = smooth(i, u + 1 < s ? u + 1 : u);
          next(i, u) = 0.25 * left + 0.5 * smooth(i, u) + 0.25 * right;
        }
      }
      smooth = std::move(next);
    }
    const double alpha = env_.texture_smoothness;
    linalg::Matrix band(m, s);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t u = 0; u < s; ++u) {
        band(i, u) = std::sqrt(1.0 - alpha) * white(i, u) +
                     std::sqrt(alpha) * 1.8 * smooth(i, u);
        // 1.8 ~ 1/std of the double-smoothed field, keeping variance ~1.
      }
    }
    // Mix across adjacent links.
    const double beta = env_.texture_link_corr;
    linalg::Matrix mixed = band;
    for (std::size_t i = 1; i < m; ++i) {
      for (std::size_t u = 0; u < s; ++u) {
        mixed(i, u) = std::sqrt(1.0 - beta) * band(i, u) +
                      std::sqrt(beta) * mixed(i - 1, u);
      }
    }
    mixed *= env_.multipath_sigma_db;
    return mixed;
  };
  const linalg::Matrix band_a = structured_band_field(mp_rng.fork("band-a"));
  const linalg::Matrix band_b = structured_band_field(mp_rng.fork("band-b"));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t u = 0; u < s; ++u) {
      multipath_a_(i, deployment_.cell_index(i, u)) = band_a(i, u);
      multipath_b_(i, deployment_.cell_index(i, u)) = band_b(i, u);
    }
  }

  // Smooth per-band shadowing morph fields: low-order Fourier modes along
  // the slot axis, so the attenuation profile deforms coherently (this is
  // what Constraint 2's continuity prior can exploit).
  // Default source table: the degenerate single-technology deployment
  // (WiFi, id == link index).  Assigned WITHOUT touching any RNG stream —
  // the fork order above is part of the byte-identity contract.
  sources_ = single_technology_sources(m);

  rng::Rng sh_rng = root_.fork("shadow");
  shadow_a_ = linalg::Matrix(m, s);
  shadow_b_ = linalg::Matrix(m, s);
  for (auto* field : {&shadow_a_, &shadow_b_}) {
    for (std::size_t i = 0; i < m; ++i) {
      const double a0 = sh_rng.normal(0.0, 0.6);
      const double a1 = sh_rng.normal(0.0, 0.8);
      const double a2 = sh_rng.normal(0.0, 0.5);
      const double p1 = sh_rng.uniform(0.0, 6.283185307179586);
      const double p2 = sh_rng.uniform(0.0, 6.283185307179586);
      for (std::size_t u = 0; u < s; ++u) {
        const double t = static_cast<double>(u) / static_cast<double>(s);
        (*field)(i, u) = a0 + a1 * std::sin(6.283185307179586 * t + p1) +
                         a2 * std::sin(12.566370614359172 * t + p2);
      }
    }
    // Environmental change is shared by nearby links (the same moved
    // cabinet shadows both), so mix the fields across adjacent links the
    // way the static texture is mixed; this keeps the adjacent-link
    // similarity (Observation 3 / Fig. 9) intact as the room ages.
    const double beta = env_.texture_link_corr;
    for (std::size_t i = 1; i < m; ++i) {
      for (std::size_t u = 0; u < s; ++u) {
        (*field)(i, u) = std::sqrt(1.0 - beta) * (*field)(i, u) +
                         std::sqrt(beta) * (*field)(i - 1, u);
      }
    }
  }
}

double Testbed::target_multipath_db(std::size_t link, std::size_t cell,
                                    std::size_t day) const {
  const double a = drift_.morph_angle(day);
  const double texture = std::cos(a) * multipath_a_(link, cell) +
                         std::sin(a) * multipath_b_(link, cell);
  return proximity_(link, cell) * texture;
}

double Testbed::baseline_multipath_db(std::size_t link,
                                      std::size_t day) const {
  const double a = drift_.morph_angle(day);
  return std::cos(a) * baseline_mp_a_[link] + std::sin(a) * baseline_mp_b_[link];
}

double Testbed::shadow_blend(std::size_t link, std::size_t slot,
                             std::size_t day) const {
  // Zero at day 0 by construction, so the original survey is exact.
  const double a = drift_.morph_angle(day);
  const double blend = std::sin(a) * shadow_a_(link, slot) +
                       (1.0 - std::cos(a)) * shadow_b_(link, slot);
  return env_.shadow_morph_frac * blend;
}

double Testbed::direct_loss_db(std::size_t link, std::size_t cell) const {
  return radio_.target_loss_db(deployment_.link(link),
                               deployment_.cell_center(cell));
}

double Testbed::mean_baseline_rss(std::size_t link, std::size_t day) const {
  const double rss = radio_.baseline_rss_dbm(deployment_.link(link).length()) +
                     link_gain_db_[link] + baseline_multipath_db(link, day) +
                     drift_.link_offset(link, day) + source_gain_db(link);
  return radio_.clamp_rss(rss);
}

double Testbed::device_rss(std::size_t link, std::size_t cell,
                           std::size_t day) const {
  // Device-based: the target-carried transmitter at cell j, anchor row i
  // receiving.  Distance-dominated path loss (floored so a target on top
  // of an anchor stays in the model's near field) plus the same morphing
  // multipath texture and drift terms — but NO blocking loss: nothing
  // crosses a link when the target IS the transmitter.
  const double d = geom::point_segment_distance(deployment_.link(link),
                                                deployment_.cell_center(cell));
  const double rss = radio_.baseline_rss_dbm(d < 0.5 ? 0.5 : d) +
                     link_gain_db_[link] + baseline_multipath_db(link, day) +
                     drift_.link_offset(link, day) +
                     drift_.aging_noise(link, cell, day) +
                     target_multipath_db(link, cell, day) +
                     source_gain_db(link);
  return radio_.clamp_rss(rss);
}

double Testbed::mean_rss(std::size_t link, std::size_t cell,
                         std::size_t day) const {
  if (mode_ == SensingMode::kDeviceBased) return device_rss(link, cell, day);
  const double loss = direct_loss_db(link, cell) *
                      (1.0 + shadow_blend(link, deployment_.slot_of(cell), day));
  double aging = drift_.aging_noise(link, cell, day);
  if (deployment_.band_of(cell) == link && day > 0) {
    // Largely-decrease entries age faster: deep shadowing is sensitive to
    // small geometry changes.  Deterministic draw keyed by (link,cell,day).
    rng::Rng child =
        root_.fork("band-aging").fork(link).fork(cell).fork(day);
    aging += env_.band_aging_sigma_db *
             std::sqrt(static_cast<double>(day)) * child.normal();
  }
  const double rss = radio_.baseline_rss_dbm(deployment_.link(link).length()) +
                     link_gain_db_[link] + baseline_multipath_db(link, day) +
                     drift_.link_offset(link, day) + aging - loss +
                     target_multipath_db(link, cell, day) +
                     source_gain_db(link);
  return radio_.clamp_rss(rss);
}

double Testbed::mean_rss_at(std::size_t link, geom::Point2 target,
                            std::size_t day) const {
  // Continuous positions reuse the nearest cell's static fields so a
  // trajectory through a cell agrees with the fingerprint of that cell.
  const std::size_t cell = deployment_.nearest_cell(target);
  if (mode_ == SensingMode::kDeviceBased) return device_rss(link, cell, day);
  const double loss =
      radio_.target_loss_db(deployment_.link(link), target) *
      (1.0 + shadow_blend(link, deployment_.slot_of(cell), day));
  const double rss = radio_.baseline_rss_dbm(deployment_.link(link).length()) +
                     link_gain_db_[link] + baseline_multipath_db(link, day) +
                     drift_.link_offset(link, day) - loss +
                     target_multipath_db(link, cell, day) +
                     source_gain_db(link);
  return radio_.clamp_rss(rss);
}

void Testbed::set_sources(std::vector<SourceInfo> sources,
                          std::vector<double> source_gain_db) {
  if (sources.size() != num_links()) {
    throw std::invalid_argument(
        "Testbed::set_sources: one SourceInfo per link required");
  }
  if (!source_gain_db.empty() && source_gain_db.size() != num_links()) {
    throw std::invalid_argument(
        "Testbed::set_sources: gain table must be empty or one per link");
  }
  sources_ = std::move(sources);
  source_gain_db_ = std::move(source_gain_db);
}

bool Testbed::source_missing(std::size_t link) const {
  if (link >= sources_.size()) return false;
  const SourceId id = sources_[link].id;
  for (const SourceId missing : missing_sources_) {
    if (missing == id) return true;
  }
  return false;
}

linalg::Matrix Testbed::mean_fingerprint(std::size_t day) const {
  const std::size_t m = num_links();
  const std::size_t n = num_cells();
  linalg::Matrix x(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) x(i, j) = mean_rss(i, j, day);
  }
  return x;
}

std::vector<double> Testbed::mean_baselines(std::size_t day) const {
  std::vector<double> out(num_links());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = mean_baseline_rss(i, day);
  }
  return out;
}

rng::Rng Testbed::fork_rng(std::string_view label) const {
  return root_.fork(label);
}

Testbed make_office_testbed(std::uint64_t seed) {
  Environment env;
  env.name = "office";
  env.width_m = 12.0;
  env.height_m = 9.0;
  env.multipath = MultipathLevel::kMedium;
  env.path_loss_exponent = 3.0;
  env.multipath_sigma_db = 2.0;
  env.shadow_morph_frac = 0.30;
  env.band_aging_sigma_db = 0.12;

  DeploymentConfig dep;
  dep.num_links = 8;         // paper: 8 links
  dep.slots_per_link = 12;   // 96 cells ~ paper's 94 effective grids
  dep.cell_spacing_m = 0.6;
  dep.area_width_m = 12.0;
  dep.area_height_m = 9.0;

  RadioParams radio;
  radio.path_loss_exponent = env.path_loss_exponent;
  return Testbed(env, dep, radio, kMaxDay, seed);
}

Testbed make_library_testbed(std::uint64_t seed) {
  Environment env;
  env.name = "library";
  env.width_m = 11.0;
  env.height_m = 8.0;
  env.multipath = MultipathLevel::kHigh;
  env.path_loss_exponent = 3.4;
  env.multipath_sigma_db = 2.6;     // metal shelves: rich NLoS
  env.shadow_morph_frac = 0.30;
  env.band_aging_sigma_db = 0.18;
  env.fading_sigma_db = 1.4;
  env.outlier_prob = 0.06;

  DeploymentConfig dep;
  dep.num_links = 6;         // paper: 6 links
  dep.slots_per_link = 12;   // 72 cells, exactly the paper's count
  dep.cell_spacing_m = 0.6;
  dep.area_width_m = 11.0;
  dep.area_height_m = 8.0;

  RadioParams radio;
  radio.path_loss_exponent = env.path_loss_exponent;
  return Testbed(env, dep, radio, kMaxDay, seed);
}

Testbed make_hall_testbed(std::uint64_t seed) {
  Environment env;
  env.name = "hall";
  env.width_m = 10.0;
  env.height_m = 10.0;
  env.multipath = MultipathLevel::kLow;
  env.path_loss_exponent = 2.2;     // open LoS space
  env.multipath_sigma_db = 1.3;
  env.shadow_morph_frac = 0.18;
  env.band_aging_sigma_db = 0.08;
  env.fading_sigma_db = 0.9;
  env.outlier_prob = 0.03;

  DeploymentConfig dep;
  dep.num_links = 8;         // paper: 8 links
  dep.slots_per_link = 15;   // 120 cells, exactly the paper's count
  dep.cell_spacing_m = 0.6;
  dep.area_width_m = 10.0;
  dep.area_height_m = 10.0;

  RadioParams radio;
  radio.path_loss_exponent = env.path_loss_exponent;
  return Testbed(env, dep, radio, kMaxDay, seed);
}

std::vector<SourceInfo> mixed_radio_sources(std::size_t num_links) {
  // First third WiFi, middle third BLE, rest LoRa (at least one of each
  // for num_links >= 3).  Ids are deployment-style, offset per
  // technology, so a source id is never a valid link index by accident.
  std::vector<SourceInfo> sources(num_links);
  const std::size_t third = num_links / 3;
  for (std::size_t i = 0; i < num_links; ++i) {
    if (i < third) {
      sources[i] = SourceInfo{SourceId(100 + i), Technology::kWifi};
    } else if (i < 2 * third) {
      sources[i] = SourceInfo{SourceId(200 + i), Technology::kBle};
    } else {
      sources[i] = SourceInfo{SourceId(300 + i), Technology::kLora};
    }
  }
  return sources;
}

Testbed make_mixed_radio_testbed(MixedRadioOptions options) {
  Environment env;
  env.name = "mixed";
  env.width_m = 12.0;
  env.height_m = 9.0;
  env.multipath = MultipathLevel::kMedium;
  env.path_loss_exponent = 3.0;
  env.multipath_sigma_db = 2.1;
  env.shadow_morph_frac = 0.28;
  env.band_aging_sigma_db = 0.12;

  DeploymentConfig dep;
  dep.num_links = options.num_links;
  dep.slots_per_link = options.slots_per_link;
  dep.cell_spacing_m = 0.6;
  dep.area_width_m = 12.0;
  dep.area_height_m = 9.0;

  RadioParams radio;
  radio.path_loss_exponent = env.path_loss_exponent;
  Testbed testbed(env, dep, radio, kMaxDay, options.seed);

  // Technology gain offsets: BLE beacons run low TX power (quieter on
  // every cell), LoRa's sub-GHz band penetrates better (hotter).  WiFi is
  // the reference technology at 0 dB, so an all-WiFi assignment would
  // leave the room byte-identical to its source-less twin.
  std::vector<SourceInfo> sources = mixed_radio_sources(dep.num_links);
  std::vector<double> gains(dep.num_links, 0.0);
  for (std::size_t i = 0; i < dep.num_links; ++i) {
    switch (sources[i].technology) {
      case Technology::kWifi: gains[i] = 0.0; break;
      case Technology::kBle: gains[i] = -4.0; break;
      case Technology::kLora: gains[i] = 2.5; break;
    }
  }
  testbed.set_sources(std::move(sources), std::move(gains));
  testbed.set_sensing_mode(options.mode);
  testbed.set_missing_sources(std::move(options.missing_sources));
  return testbed;
}

std::vector<Testbed> make_paper_testbeds() {
  std::vector<Testbed> out;
  out.push_back(make_office_testbed());
  out.push_back(make_library_testbed());
  out.push_back(make_hall_testbed());
  return out;
}

const std::vector<std::size_t>& paper_time_stamps() {
  static const std::vector<std::size_t> stamps = {0, 3, 5, 15, 45, 90};
  return stamps;
}

const std::vector<std::size_t>& paper_update_stamps() {
  static const std::vector<std::size_t> stamps = {3, 5, 15, 45, 90};
  return stamps;
}

}  // namespace iup::sim
