#include "sim/sampler.hpp"

#include <cmath>

namespace iup::sim {

namespace {
// Split of the fading variance between the common-mode component (RF
// interference, ambient activity — hits every link at once) and the
// per-link residual.  The common share is what makes RSS *differences*
// between links and nearby locations stable (Fig. 6 / Observations 2-3).
constexpr double kCommonFadingShare = 0.75;
}  // namespace

Sampler::Sampler(const Testbed& testbed, std::string_view stream)
    : testbed_(&testbed),
      common_fading_(testbed.environment().fading_phi,
                     std::sqrt(kCommonFadingShare) *
                         testbed.environment().fading_sigma_db,
                     testbed.fork_rng("sampler-common").fork(stream)) {
  const Environment& env = testbed.environment();
  rng::Rng base = testbed.fork_rng("sampler").fork(stream);
  const double link_sigma =
      std::sqrt(1.0 - kCommonFadingShare) * env.fading_sigma_db;
  fading_.reserve(testbed.num_links());
  outliers_.reserve(testbed.num_links());
  for (std::size_t i = 0; i < testbed.num_links(); ++i) {
    fading_.emplace_back(env.fading_phi, link_sigma,
                         base.fork("fading").fork(i));
    outliers_.emplace_back(0.0, env.outlier_prob, env.outlier_sigma_db,
                           base.fork("outlier").fork(i));
  }
}

void Sampler::tick() {
  common_fading_.step();
  for (auto& f : fading_) f.step();
}

double Sampler::read(std::size_t link, std::optional<std::size_t> cell,
                     std::size_t day) {
  const double mean = cell ? testbed_->mean_rss(link, *cell, day)
                           : testbed_->mean_baseline_rss(link, day);
  const double reading = mean + common_fading_.value() +
                         fading_[link].value() + outliers_[link].sample();
  return testbed_->radio().clamp_rss(reading);
}

double Sampler::sample(std::size_t link, std::optional<std::size_t> cell,
                       std::size_t day) {
  tick();
  return read(link, cell, day);
}

std::vector<double> Sampler::trace(std::size_t link,
                                   std::optional<std::size_t> cell,
                                   std::size_t day, std::size_t count) {
  std::vector<double> out(count);
  for (double& v : out) v = sample(link, cell, day);
  return out;
}

double Sampler::averaged(std::size_t link, std::optional<std::size_t> cell,
                         std::size_t day, std::size_t count) {
  double acc = 0.0;
  for (std::size_t k = 0; k < count; ++k) acc += sample(link, cell, day);
  return acc / static_cast<double>(count);
}

std::vector<double> Sampler::survey_column(std::size_t cell, std::size_t day,
                                           std::size_t samples_per_location) {
  // All links are probed each beacon interval (the real deployment reads
  // every AP-client pair concurrently), so one tick serves all links.
  std::vector<double> out(testbed_->num_links(), 0.0);
  for (std::size_t k = 0; k < samples_per_location; ++k) {
    tick();
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += read(i, cell, day);
    }
  }
  for (double& v : out) v /= static_cast<double>(samples_per_location);
  return out;
}

linalg::Matrix Sampler::survey_full(std::size_t day,
                                    std::size_t samples_per_location) {
  linalg::Matrix x(testbed_->num_links(), testbed_->num_cells());
  for (std::size_t j = 0; j < testbed_->num_cells(); ++j) {
    const auto col = survey_column(j, day, samples_per_location);
    x.set_col(j, col);
  }
  return x;
}

std::vector<double> Sampler::survey_baselines(std::size_t day,
                                              std::size_t samples) {
  std::vector<double> out(testbed_->num_links());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = averaged(i, std::nullopt, day, samples);
  }
  return out;
}

std::vector<double> Sampler::online_measurement(std::size_t cell,
                                                std::size_t day,
                                                std::size_t samples) {
  return survey_column(cell, day, samples);
}

}  // namespace iup::sim
