// Testbed: one fully-instantiated simulated room.
//
// Combines Deployment geometry, RadioModel physics, a static multipath
// field pair (blended by the DriftModel's morph angle), per-link hardware
// gain offsets (the paper's footnote 3: uncalibrated RF chains) and the
// long-term DriftModel.  Exposes the *mean* (noiseless) RSS for any
// (link, target-cell, day) triple; short-term randomness is added by
// sim::Sampler on top.
//
// Factory functions reproduce the paper's three rooms:
//   office  9 x 12 m, M = 8, S = 12 (96 cells ~ paper's 94 effective)
//   library 8 x 11 m, M = 6, S = 12 (72 cells, matches the paper exactly)
//   hall   10 x 10 m, M = 8, S = 15 (120 cells, matches the paper exactly)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/ids.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "sim/deployment.hpp"
#include "sim/drift.hpp"
#include "sim/environment.hpp"
#include "sim/radio_model.hpp"

namespace iup::sim {

/// How the deployment senses the target (the Aly/Youssef comparison axis,
/// arXiv:1508.00040).  Device-free: the target carries nothing and the
/// fingerprint is the shadowing/multipath perturbation of fixed TX->RX
/// links (the paper's model).  Device-based: the target carries the
/// transmitter and each "link" row is an anchor receiving it, so the
/// fingerprint is distance-dominated path loss with multipath texture and
/// no target-induced blocking term.
enum class SensingMode : std::uint8_t {
  kDeviceFree = 0,
  kDeviceBased = 1,
};

constexpr std::string_view to_string(SensingMode mode) {
  switch (mode) {
    case SensingMode::kDeviceFree: return "device-free";
    case SensingMode::kDeviceBased: return "device-based";
  }
  return "unknown";
}

class Testbed {
 public:
  Testbed(Environment env, DeploymentConfig deployment, RadioParams radio,
          std::size_t max_day, std::uint64_t seed);

  const Environment& environment() const { return env_; }
  const Deployment& deployment() const { return deployment_; }
  const RadioModel& radio() const { return radio_; }
  const DriftModel& drift() const { return drift_; }
  std::uint64_t seed() const { return seed_; }

  std::size_t num_links() const { return deployment_.num_links(); }
  std::size_t num_cells() const { return deployment_.num_cells(); }

  /// Mean RSS of link i at day t with no target present [dBm].
  double mean_baseline_rss(std::size_t link, std::size_t day) const;

  /// Mean RSS of link i at day t with the target at cell j [dBm].
  double mean_rss(std::size_t link, std::size_t cell, std::size_t day) const;

  /// Mean RSS of link i at day t with the target at an arbitrary position
  /// (used by the tracking example, where the target moves continuously).
  double mean_rss_at(std::size_t link, geom::Point2 target,
                     std::size_t day) const;

  /// The full M x N mean fingerprint matrix at day t (the simulator's
  /// ground truth for reconstruction-error metrics).
  linalg::Matrix mean_fingerprint(std::size_t day) const;

  /// Per-link no-target baselines at day t (M values).
  std::vector<double> mean_baselines(std::size_t day) const;

  /// Noiseless target-induced loss of link i for a target at cell j [dB].
  /// (Physics only: no multipath/scatter, time invariant.)
  double direct_loss_db(std::size_t link, std::size_t cell) const;

  /// RNG stream for a named consumer tied to this testbed's seed.
  rng::Rng fork_rng(std::string_view label) const;

  // --- multi-radio scenario layer -------------------------------------
  // All of these are plain post-construction configuration: none of them
  // draws from the testbed's RNG streams, so attaching sources to an
  // existing room leaves every mean-RSS value byte-identical (the
  // per-source gain defaults to zero).

  /// Attach the per-link source table (one entry per link) and optional
  /// per-link source gain offsets [dB] modelling the technology's TX
  /// power / sensitivity difference.  Empty gains = all zero.  Throws
  /// std::invalid_argument on size mismatches.
  void set_sources(std::vector<SourceInfo> sources,
                   std::vector<double> source_gain_db = {});
  void set_sensing_mode(SensingMode mode) { mode_ = mode; }
  /// Sources absent from the deployment during update campaigns (dead
  /// battery, unplugged AP): trace generation emits no observations for
  /// their links, so the pipeline must fall back to served values there.
  void set_missing_sources(std::vector<SourceId> missing) {
    missing_sources_ = std::move(missing);
  }

  /// Per-link source table; defaults to the degenerate single-technology
  /// table (WiFi, id == link index) so every room is source-addressable.
  const std::vector<SourceInfo>& sources() const { return sources_; }
  SensingMode sensing_mode() const { return mode_; }
  const std::vector<SourceId>& missing_sources() const {
    return missing_sources_;
  }
  /// True when `link`'s source is in the missing set.
  bool source_missing(std::size_t link) const;
  /// Technology-dependent gain of link i's source [dB] (0 when unset).
  double source_gain_db(std::size_t link) const {
    return source_gain_db_.empty() ? 0.0 : source_gain_db_[link];
  }

 private:
  /// Target-induced multipath perturbation of link i for a target at cell
  /// j at day t [dB]: a static per-(link,cell) texture that decays with the
  /// cell-to-link distance as 1/(1+d^2) and morphs slowly over weeks.  At
  /// zero distance (own band) this is the NLoS texture riding on the
  /// knife-edge profile; one band over it is the paper's "small RSS
  /// decrease" regime; far away it vanishes (the no-decrease cells).
  double target_multipath_db(std::size_t link, std::size_t cell,
                             std::size_t day) const;

  /// Morphing multipath offset on the *baseline* (no target) of link i.
  double baseline_multipath_db(std::size_t link, std::size_t day) const;

  /// Relative perturbation of the attenuation profile at day t (zero at
  /// day 0, spatially smooth along each band, amplitude ~shadow_morph_frac).
  double shadow_blend(std::size_t link, std::size_t slot,
                      std::size_t day) const;

  /// Device-based variant of mean_rss: anchor `link` receiving the
  /// target-carried device at cell `cell` (distance path loss + texture,
  /// no blocking loss).
  double device_rss(std::size_t link, std::size_t cell,
                    std::size_t day) const;

  Environment env_;
  Deployment deployment_;
  RadioModel radio_;
  DriftModel drift_;
  std::uint64_t seed_;
  rng::Rng root_;
  SensingMode mode_ = SensingMode::kDeviceFree;
  std::vector<SourceInfo> sources_;
  std::vector<double> source_gain_db_;  ///< empty = all zero
  std::vector<SourceId> missing_sources_;

  std::vector<double> link_gain_db_;   ///< hardware RF-chain offsets
  linalg::Matrix multipath_a_;         ///< target multipath, morph comp. A
  linalg::Matrix multipath_b_;         ///< target multipath, morph comp. B
  linalg::Matrix proximity_;           ///< 1/(1+d^2) cell-to-link weights
  std::vector<double> baseline_mp_a_;  ///< baseline multipath, component A
  std::vector<double> baseline_mp_b_;  ///< baseline multipath, component B
  linalg::Matrix shadow_a_;            ///< smooth band shadow field, comp. A
  linalg::Matrix shadow_b_;            ///< smooth band shadow field, comp. B
};

/// Paper testbeds.  `seed` defaults differ per room so that cross-room
/// results are decorrelated even with default arguments.
Testbed make_office_testbed(std::uint64_t seed = 11);
Testbed make_library_testbed(std::uint64_t seed = 22);
Testbed make_hall_testbed(std::uint64_t seed = 33);

/// All three, in the order the paper reports them (hall/office/library is
/// Fig. 19's order; we keep office first since it is the primary room).
std::vector<Testbed> make_paper_testbeds();

/// A heterogeneous deployment: links split between WiFi APs, BLE beacons
/// and LoRa nodes (first/second/last third of the link list), each
/// technology with its own gain offset — BLE runs hot-and-close (low TX
/// power), LoRa penetrates (sub-GHz).  Source ids are deployment-style
/// (100+link WiFi, 200+link BLE, 300+link LoRa), NOT link indices, so
/// id!=index bugs surface in tests.
struct MixedRadioOptions {
  SensingMode mode = SensingMode::kDeviceFree;
  std::size_t num_links = 9;
  std::size_t slots_per_link = 12;
  /// Source ids absent during update campaigns (see
  /// Testbed::set_missing_sources); empty = full coverage.
  std::vector<SourceId> missing_sources;
  std::uint64_t seed = 77;
};
Testbed make_mixed_radio_testbed(MixedRadioOptions options = {});

/// The mixed deployment's source table for a given link count (exposed so
/// trace generators and tests can build matching observation streams).
std::vector<SourceInfo> mixed_radio_sources(std::size_t num_links);

/// The six ground-truth time stamps (days) used throughout the evaluation:
/// original, +3, +5, +15, +45 days and +3 months.
const std::vector<std::size_t>& paper_time_stamps();

/// The five *update* stamps (excludes day 0, which is the original survey).
const std::vector<std::size_t>& paper_update_stamps();

}  // namespace iup::sim
