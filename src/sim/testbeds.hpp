// Testbed: one fully-instantiated simulated room.
//
// Combines Deployment geometry, RadioModel physics, a static multipath
// field pair (blended by the DriftModel's morph angle), per-link hardware
// gain offsets (the paper's footnote 3: uncalibrated RF chains) and the
// long-term DriftModel.  Exposes the *mean* (noiseless) RSS for any
// (link, target-cell, day) triple; short-term randomness is added by
// sim::Sampler on top.
//
// Factory functions reproduce the paper's three rooms:
//   office  9 x 12 m, M = 8, S = 12 (96 cells ~ paper's 94 effective)
//   library 8 x 11 m, M = 6, S = 12 (72 cells, matches the paper exactly)
//   hall   10 x 10 m, M = 8, S = 15 (120 cells, matches the paper exactly)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "sim/deployment.hpp"
#include "sim/drift.hpp"
#include "sim/environment.hpp"
#include "sim/radio_model.hpp"

namespace iup::sim {

class Testbed {
 public:
  Testbed(Environment env, DeploymentConfig deployment, RadioParams radio,
          std::size_t max_day, std::uint64_t seed);

  const Environment& environment() const { return env_; }
  const Deployment& deployment() const { return deployment_; }
  const RadioModel& radio() const { return radio_; }
  const DriftModel& drift() const { return drift_; }
  std::uint64_t seed() const { return seed_; }

  std::size_t num_links() const { return deployment_.num_links(); }
  std::size_t num_cells() const { return deployment_.num_cells(); }

  /// Mean RSS of link i at day t with no target present [dBm].
  double mean_baseline_rss(std::size_t link, std::size_t day) const;

  /// Mean RSS of link i at day t with the target at cell j [dBm].
  double mean_rss(std::size_t link, std::size_t cell, std::size_t day) const;

  /// Mean RSS of link i at day t with the target at an arbitrary position
  /// (used by the tracking example, where the target moves continuously).
  double mean_rss_at(std::size_t link, geom::Point2 target,
                     std::size_t day) const;

  /// The full M x N mean fingerprint matrix at day t (the simulator's
  /// ground truth for reconstruction-error metrics).
  linalg::Matrix mean_fingerprint(std::size_t day) const;

  /// Per-link no-target baselines at day t (M values).
  std::vector<double> mean_baselines(std::size_t day) const;

  /// Noiseless target-induced loss of link i for a target at cell j [dB].
  /// (Physics only: no multipath/scatter, time invariant.)
  double direct_loss_db(std::size_t link, std::size_t cell) const;

  /// RNG stream for a named consumer tied to this testbed's seed.
  rng::Rng fork_rng(std::string_view label) const;

 private:
  /// Target-induced multipath perturbation of link i for a target at cell
  /// j at day t [dB]: a static per-(link,cell) texture that decays with the
  /// cell-to-link distance as 1/(1+d^2) and morphs slowly over weeks.  At
  /// zero distance (own band) this is the NLoS texture riding on the
  /// knife-edge profile; one band over it is the paper's "small RSS
  /// decrease" regime; far away it vanishes (the no-decrease cells).
  double target_multipath_db(std::size_t link, std::size_t cell,
                             std::size_t day) const;

  /// Morphing multipath offset on the *baseline* (no target) of link i.
  double baseline_multipath_db(std::size_t link, std::size_t day) const;

  /// Relative perturbation of the attenuation profile at day t (zero at
  /// day 0, spatially smooth along each band, amplitude ~shadow_morph_frac).
  double shadow_blend(std::size_t link, std::size_t slot,
                      std::size_t day) const;

  Environment env_;
  Deployment deployment_;
  RadioModel radio_;
  DriftModel drift_;
  std::uint64_t seed_;
  rng::Rng root_;

  std::vector<double> link_gain_db_;   ///< hardware RF-chain offsets
  linalg::Matrix multipath_a_;         ///< target multipath, morph comp. A
  linalg::Matrix multipath_b_;         ///< target multipath, morph comp. B
  linalg::Matrix proximity_;           ///< 1/(1+d^2) cell-to-link weights
  std::vector<double> baseline_mp_a_;  ///< baseline multipath, component A
  std::vector<double> baseline_mp_b_;  ///< baseline multipath, component B
  linalg::Matrix shadow_a_;            ///< smooth band shadow field, comp. A
  linalg::Matrix shadow_b_;            ///< smooth band shadow field, comp. B
};

/// Paper testbeds.  `seed` defaults differ per room so that cross-room
/// results are decorrelated even with default arguments.
Testbed make_office_testbed(std::uint64_t seed = 11);
Testbed make_library_testbed(std::uint64_t seed = 22);
Testbed make_hall_testbed(std::uint64_t seed = 33);

/// All three, in the order the paper reports them (hall/office/library is
/// Fig. 19's order; we keep office first since it is the primary room).
std::vector<Testbed> make_paper_testbeds();

/// The six ground-truth time stamps (days) used throughout the evaluation:
/// original, +3, +5, +15, +45 days and +3 months.
const std::vector<std::size_t>& paper_time_stamps();

/// The five *update* stamps (excludes day 0, which is the original survey).
const std::vector<std::size_t>& paper_update_stamps();

}  // namespace iup::sim
