#include "sim/deployment.hpp"

#include <limits>
#include <stdexcept>

namespace iup::sim {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  if (config.num_links == 0 || config.slots_per_link == 0) {
    throw std::invalid_argument("Deployment: need at least one link and slot");
  }
  if (config.cell_spacing_m <= 0.0) {
    throw std::invalid_argument("Deployment: cell spacing must be positive");
  }

  const std::size_t m = config.num_links;
  const std::size_t s = config.slots_per_link;

  // Links run along x, evenly spread across the height with half-spacing
  // margins at the walls (matches the paper's layouts, Figs. 11-13).
  link_spacing_ = config.area_height_m / static_cast<double>(m + 1);
  links_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double y = link_spacing_ * static_cast<double>(i + 1);
    links_.push_back(
        geom::Segment{{0.0, y}, {config.area_width_m, y}});
  }

  // Band cells sit on their link's line, centred within the room so the
  // effective (grid-covered) area keeps a margin to the transceivers.
  const double band_extent =
      config.cell_spacing_m * static_cast<double>(s - 1);
  const double free_width = config.area_width_m - band_extent;
  if (free_width < 0.0) {
    throw std::invalid_argument(
        "Deployment: slots do not fit the area width");
  }
  if (config.band_offset_frac < 0.0 || config.band_offset_frac > 1.0) {
    throw std::invalid_argument(
        "Deployment: band_offset_frac must be in [0, 1]");
  }
  const double x0 = free_width * config.band_offset_frac;
  cells_.reserve(m * s);
  for (std::size_t i = 0; i < m; ++i) {
    const double y = links_[i].a.y;
    for (std::size_t u = 0; u < s; ++u) {
      cells_.push_back({x0 + config.cell_spacing_m * static_cast<double>(u), y});
    }
  }
}

std::size_t Deployment::nearest_cell(geom::Point2 p) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < cells_.size(); ++j) {
    const double d = geom::distance(p, cells_[j]);
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

}  // namespace iup::sim
