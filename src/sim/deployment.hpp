// Deployment geometry: parallel links and the grid of test locations.
//
// Mirrors the paper's Fig. 3: M parallel transmitter-receiver links cross
// the monitoring area; the effective area is divided into N grid cells
// organised as M "bands" of S = N/M cells, band i lying along link i.  Grid
// numbering follows the paper: cell j (0-based here) belongs to band
// i = j / S and slot u = j % S, i.e. 1-based j = (i-1)*N/M + u as in
// Definition 2.
//
// The paper's office floor has 94 effective cells for 8 links (N/M not an
// integer because furniture eats two cells); the formalism of Definition 2
// silently assumes exact bands, so we keep full bands (96 cells for the
// office) and note the substitution in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/geometry.hpp"

namespace iup::sim {

struct DeploymentConfig {
  std::size_t num_links = 8;       ///< M
  std::size_t slots_per_link = 12; ///< S = N/M
  double cell_spacing_m = 0.6;     ///< paper: 0.6 m between adjacent cells
  double area_width_m = 12.0;      ///< extent along the links
  double area_height_m = 9.0;      ///< extent across the links
  double transceiver_height_m = 1.0;  ///< kept for documentation (2-D model)
  /// Fraction of the free width placed before the first cell.  0.5 centres
  /// the band; real deployments (paper Figs. 11-13) are off-centre, which
  /// breaks the mirror symmetry of the Fresnel attenuation profile around
  /// the link midpoint.
  double band_offset_frac = 0.32;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config);

  std::size_t num_links() const { return config_.num_links; }
  std::size_t slots_per_link() const { return config_.slots_per_link; }
  std::size_t num_cells() const {
    return config_.num_links * config_.slots_per_link;
  }
  const DeploymentConfig& config() const { return config_; }

  /// Link i as a TX->RX segment.
  const geom::Segment& link(std::size_t i) const { return links_[i]; }

  /// Centre of grid cell j.
  geom::Point2 cell_center(std::size_t j) const { return cells_[j]; }

  /// Band (link index) that cell j lies along.
  std::size_t band_of(std::size_t j) const {
    return j / config_.slots_per_link;
  }

  /// Slot of cell j within its band (the paper's u, 0-based).
  std::size_t slot_of(std::size_t j) const {
    return j % config_.slots_per_link;
  }

  /// Cell index of (band, slot).
  std::size_t cell_index(std::size_t band, std::size_t slot) const {
    return band * config_.slots_per_link + slot;
  }

  /// Spacing between adjacent links [m].
  double link_spacing() const { return link_spacing_; }

  /// Index of the grid cell whose centre is closest to p.
  std::size_t nearest_cell(geom::Point2 p) const;

 private:
  DeploymentConfig config_;
  std::vector<geom::Segment> links_;
  std::vector<geom::Point2> cells_;
  double link_spacing_ = 0.0;
};

}  // namespace iup::sim
