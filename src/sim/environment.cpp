#include "sim/environment.hpp"

namespace iup::sim {

std::string to_string(MultipathLevel level) {
  switch (level) {
    case MultipathLevel::kLow:
      return "low multipath";
    case MultipathLevel::kMedium:
      return "medium multipath";
    case MultipathLevel::kHigh:
      return "high multipath";
  }
  return "unknown";
}

}  // namespace iup::sim
