// Deterministic radio physics: path loss and target-induced attenuation.
//
// This is the noiseless core of the substitute testbed.  Everything
// stochastic (multipath fields, drift, fading) is layered on top by
// sim::Testbed / sim::Sampler; keeping the physics pure makes it unit
// testable against hand-computed values.
#pragma once

#include "geom/fresnel.hpp"
#include "geom/geometry.hpp"

namespace iup::sim {

struct RadioParams {
  double tx_power_dbm = 15.0;   ///< typical COTS AP transmit power
  double pl0_db = 40.0;         ///< path loss at the reference distance
  double reference_dist_m = 1.0;
  double path_loss_exponent = 3.0;
  double lambda_m = 0.125;      ///< 2.4 GHz Wi-Fi wavelength
  double target_radius_m = 0.22;  ///< effective RF cross-section of a person
  double min_rss_dbm = -95.0;   ///< receiver sensitivity floor
  double max_rss_dbm = -20.0;
};

class RadioModel {
 public:
  explicit RadioModel(const RadioParams& params) : params_(params) {}

  const RadioParams& params() const { return params_; }

  /// Log-distance path loss [dB] at distance d.
  double path_loss_db(double distance_m) const;

  /// RSS of an unobstructed link of the given length [dBm].
  double baseline_rss_dbm(double link_length_m) const;

  /// Extra loss [dB, >= 0] a target standing at `target` inflicts on `link`.
  /// Knife-edge diffraction keyed to the first Fresnel zone:
  ///  - target on the direct path      -> large loss, larger near the
  ///    transceivers than at the midpoint (paper Sec. IV-C-1);
  ///  - target inside the FFZ, off path -> small loss;
  ///  - target outside the FFZ          -> ~0.
  double target_loss_db(const geom::Segment& link, geom::Point2 target) const;

  /// True when the target position obstructs any part of the FFZ
  /// (i.e. the affected regimes of Fig. 4; outside -> a "no-decrease" cell).
  bool inside_ffz(const geom::Segment& link, geom::Point2 target) const;

  /// Clamp an RSS value into the receiver's representable range.
  double clamp_rss(double rss_dbm) const;

 private:
  RadioParams params_;
};

}  // namespace iup::sim
