#include "sim/fingerprint_builder.hpp"

#include <cmath>
#include <stdexcept>

namespace iup::sim {

const linalg::Matrix& GroundTruthSet::at_day(std::size_t day) const {
  for (std::size_t k = 0; k < days.size(); ++k) {
    if (days[k] == day) return x[k];
  }
  throw std::out_of_range("GroundTruthSet: no matrix for requested day");
}

const std::vector<double>& GroundTruthSet::baselines_at_day(
    std::size_t day) const {
  for (std::size_t k = 0; k < days.size(); ++k) {
    if (days[k] == day) return baselines[k];
  }
  throw std::out_of_range("GroundTruthSet: no baselines for requested day");
}

GroundTruthSet collect_ground_truth(const Testbed& testbed,
                                    const std::vector<std::size_t>& days,
                                    std::size_t samples_per_location) {
  GroundTruthSet out;
  out.days = days;
  Sampler sampler(testbed, "ground-truth");
  for (std::size_t day : days) {
    out.x.push_back(sampler.survey_full(day, samples_per_location));
    out.baselines.push_back(
        sampler.survey_baselines(day, samples_per_location));
  }
  return out;
}

linalg::Matrix no_decrease_mask(const Testbed& testbed, double threshold_db) {
  const std::size_t m = testbed.num_links();
  const std::size_t n = testbed.num_cells();
  linalg::Matrix mask(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Expected day-0 change induced by a target at cell j on link i:
      // knife-edge loss on the blocked link plus static body scatter.
      const double change = std::abs(testbed.mean_rss(i, j, 0) -
                                     testbed.mean_baseline_rss(i, 0));
      mask(i, j) = change < threshold_db ? 1.0 : 0.0;
    }
  }
  return mask;
}

linalg::Matrix measure_no_decrease_matrix(
    Sampler& sampler, const linalg::Matrix& mask, std::size_t day,
    std::size_t samples, const linalg::Matrix* original,
    const std::vector<double>* original_baselines) {
  const Testbed& tb = sampler.testbed();
  if (mask.rows() != tb.num_links() || mask.cols() != tb.num_cells()) {
    throw std::invalid_argument("measure_no_decrease_matrix: mask shape");
  }
  if ((original == nullptr) != (original_baselines == nullptr)) {
    throw std::invalid_argument(
        "measure_no_decrease_matrix: original matrix and baselines must be "
        "supplied together");
  }
  // A no-decrease entry equals the link's no-target RSS (within the
  // threshold), so one baseline survey per link refreshes every unmasked
  // entry of that row — the "no labor cost" observation of Sec. II-A.
  // The stored original database optionally contributes the sub-threshold
  // within-row structure on top of the fresh level.
  linalg::Matrix xb(mask.rows(), mask.cols());
  for (std::size_t i = 0; i < mask.rows(); ++i) {
    const double base = sampler.averaged(i, std::nullopt, day, samples);
    for (std::size_t j = 0; j < mask.cols(); ++j) {
      if (mask(i, j) == 0.0) continue;
      double offset = 0.0;
      if (original != nullptr) {
        offset = (*original)(i, j) - (*original_baselines)[i];
      }
      xb(i, j) = base + offset;
    }
  }
  return xb;
}

linalg::Matrix measure_reference_matrix(Sampler& sampler,
                                        const std::vector<std::size_t>& cells,
                                        std::size_t day, std::size_t samples) {
  const Testbed& tb = sampler.testbed();
  linalg::Matrix xr(tb.num_links(), cells.size());
  for (std::size_t k = 0; k < cells.size(); ++k) {
    xr.set_col(k, sampler.survey_column(cells[k], day, samples));
  }
  return xr;
}

}  // namespace iup::sim
