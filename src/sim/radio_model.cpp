#include "sim/radio_model.hpp"

#include <algorithm>
#include <cmath>

namespace iup::sim {

double RadioModel::path_loss_db(double distance_m) const {
  const double d = std::max(distance_m, params_.reference_dist_m);
  return params_.pl0_db + 10.0 * params_.path_loss_exponent *
                              std::log10(d / params_.reference_dist_m);
}

double RadioModel::baseline_rss_dbm(double link_length_m) const {
  return params_.tx_power_dbm - path_loss_db(link_length_m);
}

double RadioModel::target_loss_db(const geom::Segment& link,
                                  geom::Point2 target) const {
  const geom::FresnelClearance fc =
      geom::fresnel_clearance(link, target, params_.lambda_m);
  if (!fc.inside_segment) return 0.0;
  // Signed obstruction height: how far the body edge intrudes past the
  // line of sight.  Positive -> LoS blocked, negative -> clearance.
  const double h = params_.target_radius_m - fc.clearance;
  const double v = geom::fresnel_v(h, params_.lambda_m, fc.d1, fc.d2);
  return geom::knife_edge_loss_db(v);
}

bool RadioModel::inside_ffz(const geom::Segment& link,
                            geom::Point2 target) const {
  const geom::FresnelClearance fc =
      geom::fresnel_clearance(link, target, params_.lambda_m);
  if (!fc.inside_segment) return false;
  return fc.clearance <= fc.zone_radius + params_.target_radius_m;
}

double RadioModel::clamp_rss(double rss_dbm) const {
  return std::clamp(rss_dbm, params_.min_rss_dbm, params_.max_rss_dbm);
}

}  // namespace iup::sim
