// Environment descriptor: the physical room a testbed lives in.
//
// The paper evaluates in three rooms that differ chiefly in multipath
// richness (Sec. VI-A): an empty hall (low, mostly LoS), an office with
// desks and cubicles (medium, mixed LoS/NLoS) and a library with metal
// shelves (high, rich NLoS).  We encode a room as a handful of radio
// parameters; the geometric layout lives in sim::Deployment.
#pragma once

#include <string>

namespace iup::sim {

/// Qualitative multipath class, used for reporting (Figs. 19/22 group
/// results by it).
enum class MultipathLevel { kLow, kMedium, kHigh };

struct Environment {
  std::string name;                ///< "office", "library", "hall", ...
  double width_m = 9.0;            ///< room extent along the link direction
  double height_m = 12.0;          ///< room extent across links
  MultipathLevel multipath = MultipathLevel::kMedium;

  // --- radio propagation ---------------------------------------------
  double path_loss_exponent = 3.0;  ///< log-distance exponent n
  double multipath_sigma_db = 1.2;  ///< stddev of the target-induced
                                    ///< multipath texture at zero distance
                                    ///< from the link [dB]; decays with the
                                    ///< cell-to-link distance
  /// Spatial smoothness of the own-band texture along a link, in [0, 1]:
  /// 0 = white, 1 = fully smoothed.  Neighbouring cells (0.6 m apart) see
  /// similar multipath, which is exactly the paper's Observation 2.
  double texture_smoothness = 0.75;
  /// Correlation of the own-band texture across adjacent links, in [0, 1]
  /// (Observation 3: adjacent links share reflectors).
  double texture_link_corr = 0.7;

  // --- temporal dynamics ----------------------------------------------
  double drift_global_step_db = 0.55;   ///< day-scale common random walk step
  double drift_link_step_db = 0.45;     ///< per-link random-walk step [dB/day]
  double drift_bound_db = 8.0;          ///< reflection bound for drift walks
  double morph_rate_rad_per_sqrt_day = 0.12;  ///< multipath/shadow morphing,
                                              ///< diffusive (angle ~ sqrt(t))
  double shadow_morph_frac = 0.20;   ///< relative attenuation-profile morph
                                     ///< amplitude at full blend
  double aging_sigma_db = 0.05;      ///< per-entry aging noise per sqrt(day)
  double band_aging_sigma_db = 0.25; ///< extra aging on largely-decrease
                                     ///< entries per sqrt(day) [dB]

  // --- short-term channel ----------------------------------------------
  double fading_sigma_db = 1.1;   ///< stationary stddev of AR(1) fading
  double fading_phi = 0.92;       ///< AR(1) coefficient at the 0.5 s probe rate
  double outlier_prob = 0.04;     ///< probability of an interference outlier
  double outlier_sigma_db = 3.5;  ///< stddev of outlier excursions
};

/// Human-readable multipath label ("low multipath", ...).
std::string to_string(MultipathLevel level);

}  // namespace iup::sim
