// Byte-level plumbing for the durability layer: CRC32, a little-endian
// binary writer/reader pair, and the atomic-publication file helpers
// (write-to-temp + fsync + rename + directory fsync) every durable
// artifact in src/persist/ is built from.
//
// Encoding rules (shared by checkpoint sections and WAL records):
//   * integers are fixed-width little-endian (u8/u32/u64),
//   * doubles are raw IEEE-754 bits (memcpy through u64), which is what
//     makes a round trip bit-exact — the same discipline as the CSV
//     layer's byte-stable doubles, without the text detour,
//   * strings and matrices are length-prefixed (u32 chars / u64 rows +
//     u64 cols, then rows*cols doubles row-major).
// The reader never throws and never reads past its span: every getter
// returns false once the stream is short or a length prefix is
// implausible, and the caller turns that into a precise Status.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.hpp"
#include "linalg/matrix.hpp"

namespace iup::persist {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) over `bytes`.
/// Software table implementation — runs at a few GB/s, far above the
/// fsync cost that actually bounds the durability hot path.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);
inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

/// Append-only little-endian encoder over an owned byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  /// u32 length prefix + raw chars.
  void put_string(std::string_view v);
  /// u64 rows + u64 cols + rows*cols raw doubles (row-major).
  void put_matrix(const linalg::Matrix& m);

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::span<const std::uint8_t> span() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Cursor over an immutable byte span; the span must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get_u8(std::uint8_t& v);
  bool get_u32(std::uint32_t& v);
  bool get_u64(std::uint64_t& v);
  bool get_f64(double& v);
  bool get_string(std::string& v);
  bool get_matrix(linalg::Matrix& m);

  /// Advance past `n` bytes (framing: a validated payload is re-read
  /// through its own ByteReader); false when fewer than `n` remain.
  bool skip(std::size_t n);

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// Read a whole file into `out`.  kNotFound when the path does not
/// exist; kInternal for any other I/O failure.
api::Status read_file(const std::string& path, std::vector<std::uint8_t>& out);

/// Atomic publication: write `bytes` to `<path>.tmp`, fsync the file,
/// rename over `path`, then fsync the parent directory so the rename
/// itself is durable.  A crash at any point leaves either the complete
/// old file or the complete new one — never a torn mix (the checkpoint
/// crash-injection tests SIGKILL inside this function to prove it).
/// `do_fsync` false skips both fsyncs (benchmarks on throwaway dirs).
api::Status write_file_atomic(const std::string& path,
                              std::span<const std::uint8_t> bytes,
                              bool do_fsync = true);

/// Create `dir` (and parents) if missing.
api::Status ensure_directory(const std::string& dir);

}  // namespace iup::persist
