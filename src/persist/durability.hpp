// persist::DurabilityManager — wires an Engine to a durability directory.
//
// The manager owns the directory's WAL writer and checkpoint cadence:
//
//   * engine_hooks() builds an UpdateHooks whose after_commit tap encodes
//     each committed snapshot (outside any lock) and appends it to the
//     WAL under the manager's mutex,
//   * every `checkpoint_every` commits it rolls a checkpoint — asks the
//     engine for a fresh atomic checkpoint, then truncates the WAL.  The
//     roll is safe because the manager mutex serialises appends against
//     rolls, and every record appended before the roll belongs to a
//     commit that is visible to save_checkpoint (publication happens
//     under the engine's commit lock before after_commit fires, and
//     save_checkpoint reads under that same lock) — truncating after a
//     durable checkpoint therefore never discards state the checkpoint
//     missed,
//   * recover() restores a fresh engine from the directory (checkpoint +
//     WAL suffix, torn tail tolerated) and immediately compacts: a fresh
//     checkpoint is written and the WAL reset, so a crash loop cannot
//     grow the log without bound.
//
// All I/O runs on the committing thread AFTER publication, outside the
// commit lock and every shard lock, and never on the serve read path —
// localize throughput is unaffected by durability (the soak harness
// asserts the read-path violation counter stays zero with hooks
// installed).  Durability failures (disk full, permission lost) are
// recorded in last_error() and NEVER fail or veto an update: the engine
// keeps serving, the operator alarms on last_error.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "api/engine.hpp"
#include "api/engine_config.hpp"
#include "api/status.hpp"
#include "persist/wal.hpp"

namespace iup::persist {

struct DurabilityOptions {
  std::string dir;
  /// Commits between checkpoint rolls.  Smaller = faster recovery,
  /// larger = cheaper steady state; 0 disables rolling (WAL grows until
  /// checkpoint_now()).
  std::size_t checkpoint_every = 16;
  /// fsync WAL appends and checkpoint publications.  False trades crash
  /// durability for speed (benchmarks, throwaway soak dirs).
  bool fsync = true;
};

class DurabilityManager {
 public:
  explicit DurabilityManager(DurabilityOptions options)
      : options_(std::move(options)) {}
  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Attach to `engine` (kept as a raw pointer — it must outlive the
  /// manager) and open the WAL for appending, preserving any existing
  /// log.  Use on a fresh directory or after an external recover.
  api::Status bind(api::Engine* engine);

  /// Restore `engine` (which must be fresh) from the directory, then
  /// bind.  "Nothing durable yet" (kNotFound from restore) is a normal
  /// first boot, reported as OK with no sites; any other restore failure
  /// is returned as-is and the manager stays unbound.  On a successful
  /// non-empty restore the state is immediately compacted (checkpoint +
  /// WAL reset).
  api::Status recover(api::Engine* engine);

  /// Hooks to install via EngineConfig::update_hooks() BEFORE constructing
  /// the engine; `inner` hooks (e.g. a FaultInjector's) are composed and
  /// run first.  The returned after_commit is a no-op until bind()/
  /// recover() attaches an engine, so construction order is safe.
  api::UpdateHooks engine_hooks(api::UpdateHooks inner = {});

  /// Force a checkpoint + WAL reset now, regardless of cadence.
  api::Status checkpoint_now();

  /// First durability failure since the last successful roll (OK when
  /// healthy).  Appends after a failure keep trying — a transient disk
  /// error self-heals at the next checkpoint roll.
  api::Status last_error() const;

  std::uint64_t wal_appends() const;
  std::uint64_t checkpoints_written() const;

  const DurabilityOptions& options() const { return options_; }

 private:
  void on_commit(const api::CommitEvent& event);
  /// Roll a checkpoint; callers hold mutex_.
  api::Status checkpoint_locked();

  DurabilityOptions options_;
  mutable std::mutex mutex_;
  api::Engine* engine_ = nullptr;    // guarded by mutex_
  WalWriter wal_;                    // guarded by mutex_
  std::size_t commits_since_checkpoint_ = 0;
  std::uint64_t wal_appends_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  api::Status last_error_;
};

}  // namespace iup::persist
