#include "persist/crash.hpp"

#include <csignal>

#include <atomic>

namespace iup::persist {

namespace {
std::atomic<bool> g_armed{false};
std::atomic<std::uint32_t> g_point{0};
std::atomic<std::uint64_t> g_skip{0};
}  // namespace

void arm_crash_point(CrashPoint point, std::uint64_t skip_hits) {
  g_point.store(static_cast<std::uint32_t>(point), std::memory_order_relaxed);
  g_skip.store(skip_hits, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm_crash_points() {
  g_armed.store(false, std::memory_order_release);
}

void maybe_crash(CrashPoint point) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  if (g_point.load(std::memory_order_relaxed) !=
      static_cast<std::uint32_t>(point)) {
    return;
  }
  // fetch_sub settles ties if the workload ever hits an armed point from
  // two threads; the harness arms in a single-threaded child, where this
  // is simply "skip n, die on hit n+1".
  std::uint64_t skip = g_skip.load(std::memory_order_relaxed);
  while (skip > 0) {
    if (g_skip.compare_exchange_weak(skip, skip - 1,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
  std::raise(SIGKILL);
}

}  // namespace iup::persist
