#include "persist/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "persist/crash.hpp"

namespace iup::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

std::string errno_message(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

/// RAII fd so every early return closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

api::Status write_all(int fd, std::span<const std::uint8_t> bytes,
                      const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return api::Status::internal(errno_message("write", path));
    }
    written += static_cast<std::size_t>(n);
  }
  return {};
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int k = 0; k < 4; ++k) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
  }
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int k = 0; k < 8; ++k) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
  }
}

void ByteWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ByteWriter::put_string(std::string_view v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void ByteWriter::put_matrix(const linalg::Matrix& m) {
  put_u64(m.rows());
  put_u64(m.cols());
  for (const double v : m.data()) put_f64(v);
}

bool ByteReader::get_u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = bytes_[cursor_++];
  return true;
}

bool ByteReader::get_u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (int k = 0; k < 4; ++k) {
    v |= static_cast<std::uint32_t>(bytes_[cursor_ + k]) << (8 * k);
  }
  cursor_ += 4;
  return true;
}

bool ByteReader::get_u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int k = 0; k < 8; ++k) {
    v |= static_cast<std::uint64_t>(bytes_[cursor_ + k]) << (8 * k);
  }
  cursor_ += 8;
  return true;
}

bool ByteReader::get_f64(double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool ByteReader::skip(std::size_t n) {
  if (remaining() < n) return false;
  cursor_ += n;
  return true;
}

bool ByteReader::get_string(std::string& v) {
  std::uint32_t length = 0;
  if (!get_u32(length) || remaining() < length) return false;
  v.assign(reinterpret_cast<const char*>(bytes_.data() + cursor_), length);
  cursor_ += length;
  return true;
}

bool ByteReader::get_matrix(linalg::Matrix& m) {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  if (!get_u64(rows) || !get_u64(cols)) return false;
  // A corrupt length prefix must not drive a multi-GB allocation: the
  // payload has 8 bytes per element, so rows*cols can never exceed what
  // is actually left in the stream.
  if (cols != 0 && rows > remaining() / 8 / cols) return false;
  if (rows * cols * 8 > remaining()) return false;
  m = linalg::Matrix(rows, cols);
  for (double& v : m.data()) {
    if (!get_f64(v)) return false;
  }
  return true;
}

api::Status read_file(const std::string& path,
                      std::vector<std::uint8_t>& out) {
  Fd file{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (file.fd < 0) {
    if (errno == ENOENT) {
      return api::Status::not_found("no such file '" + path + "'");
    }
    return api::Status::internal(errno_message("open", path));
  }
  out.clear();
  std::array<std::uint8_t, 1 << 16> chunk;
  while (true) {
    const ssize_t n = ::read(file.fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return api::Status::internal(errno_message("read", path));
    }
    if (n == 0) break;
    out.insert(out.end(), chunk.begin(), chunk.begin() + n);
  }
  return {};
}

api::Status write_file_atomic(const std::string& path,
                              std::span<const std::uint8_t> bytes,
                              bool do_fsync) {
  const std::string tmp = path + ".tmp";
  {
    Fd file{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644)};
    if (file.fd < 0) {
      return api::Status::internal(errno_message("open", tmp));
    }
    // Crash-injection seam: kill between the two halves and the rename
    // below never runs, so readers only ever see the previous complete
    // file (the .tmp leftover is ignored and overwritten next time).
    const std::size_t half = bytes.size() / 2;
    if (api::Status s = write_all(file.fd, bytes.first(half), tmp); !s.ok()) {
      return s;
    }
    maybe_crash(CrashPoint::kMidCheckpointWrite);
    if (api::Status s = write_all(file.fd, bytes.subspan(half), tmp);
        !s.ok()) {
      return s;
    }
    if (do_fsync && ::fsync(file.fd) != 0) {
      return api::Status::internal(errno_message("fsync", tmp));
    }
  }
  maybe_crash(CrashPoint::kBeforeCheckpointRename);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return api::Status::internal(errno_message("rename", tmp));
  }
  // The rename is in the page cache until the DIRECTORY entry is synced;
  // without this a crash could resurrect the old file after the caller
  // was told the new one is durable (and then truncate a WAL it must
  // not).
  if (do_fsync) {
    const std::string dir =
        std::filesystem::path(path).parent_path().string();
    Fd dirfd{::open(dir.empty() ? "." : dir.c_str(),
                    O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
    if (dirfd.fd < 0) {
      return api::Status::internal(errno_message("open dir", dir));
    }
    if (::fsync(dirfd.fd) != 0) {
      return api::Status::internal(errno_message("fsync dir", dir));
    }
  }
  maybe_crash(CrashPoint::kAfterCheckpointRename);
  return {};
}

api::Status ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return api::Status::internal("create_directories '" + dir +
                                 "': " + ec.message());
  }
  return {};
}

}  // namespace iup::persist
