#include "persist/durability.hpp"

#include <utility>

#include "persist/checkpoint.hpp"
#include "persist/io.hpp"

namespace iup::persist {

api::Status DurabilityManager::bind(api::Engine* engine) {
  if (engine == nullptr) {
    return api::Status::invalid_argument("DurabilityManager: null engine");
  }
  if (api::Status s = ensure_directory(options_.dir); !s.ok()) return s;
  const std::unique_lock<std::mutex> lock(mutex_);
  if (api::Status s = wal_.open(options_.dir + "/" + kWalFile,
                                /*truncate=*/false);
      !s.ok()) {
    return s;
  }
  engine_ = engine;
  commits_since_checkpoint_ = 0;
  last_error_ = {};
  return {};
}

api::Status DurabilityManager::recover(api::Engine* engine) {
  if (engine == nullptr) {
    return api::Status::invalid_argument("DurabilityManager: null engine");
  }
  const api::Status restored = engine->restore_from(options_.dir);
  if (!restored.ok() && restored.code() != api::StatusCode::kNotFound) {
    return restored;
  }
  if (api::Status s = bind(engine); !s.ok()) return s;
  if (restored.ok()) {
    // Compact immediately: the restored state becomes the new checkpoint
    // and the replayed WAL (torn tail included) is reset, so repeated
    // crash/recover cycles cannot grow the log without bound.
    const std::unique_lock<std::mutex> lock(mutex_);
    return checkpoint_locked();
  }
  return {};
}

api::UpdateHooks DurabilityManager::engine_hooks(api::UpdateHooks inner) {
  api::UpdateHooks hooks = std::move(inner);
  auto inner_commit = std::move(hooks.after_commit);
  hooks.after_commit = [this, inner_commit =
                                  std::move(inner_commit)](
                           const api::CommitEvent& event) {
    if (inner_commit) inner_commit(event);
    this->on_commit(event);
  };
  return hooks;
}

void DurabilityManager::on_commit(const api::CommitEvent& event) {
  // Encode outside the mutex: only the actual append (ordering) needs to
  // serialise against other commits and checkpoint rolls.
  WalRecord record;
  record.snapshot = event.snapshot;
  record.warm.factor = event.warm_factor;
  record.warm.lrr = event.lrr_state;
  if (event.warm_factor != nullptr || event.lrr_state != nullptr) {
    const std::uint64_t version = event.snapshot->version();
    record.warm.factor_version = version;
    record.warm.lrr_version = version;
  }

  const std::unique_lock<std::mutex> lock(mutex_);
  if (engine_ == nullptr || !wal_.is_open()) return;  // not bound yet
  if (api::Status s = wal_.append(record, options_.fsync); !s.ok()) {
    if (last_error_.ok()) last_error_ = s;
    return;  // the commit already happened; durability degrades, serving
             // does not
  }
  ++wal_appends_;
  ++commits_since_checkpoint_;
  if (options_.checkpoint_every != 0 &&
      commits_since_checkpoint_ >= options_.checkpoint_every) {
    if (api::Status s = checkpoint_locked(); !s.ok() && last_error_.ok()) {
      last_error_ = s;
    }
  }
}

api::Status DurabilityManager::checkpoint_locked() {
  if (engine_ == nullptr) {
    return api::Status::failed_precondition(
        "DurabilityManager: not bound to an engine");
  }
  // save_checkpoint collects its commit-consistent image under the
  // engine's commit lock; every record already appended belongs to a
  // commit published before its after_commit ran, so the image covers the
  // whole log and the truncation below cannot lose state.
  if (api::Status s = engine_->save_checkpoint(options_.dir); !s.ok()) {
    return s;
  }
  if (api::Status s = wal_.open(options_.dir + "/" + kWalFile,
                                /*truncate=*/true);
      !s.ok()) {
    return s;
  }
  ++checkpoints_written_;
  commits_since_checkpoint_ = 0;
  last_error_ = {};  // a durable checkpoint supersedes earlier failures
  return {};
}

api::Status DurabilityManager::checkpoint_now() {
  const std::unique_lock<std::mutex> lock(mutex_);
  return checkpoint_locked();
}

api::Status DurabilityManager::last_error() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return last_error_;
}

std::uint64_t DurabilityManager::wal_appends() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return wal_appends_;
}

std::uint64_t DurabilityManager::checkpoints_written() const {
  const std::unique_lock<std::mutex> lock(mutex_);
  return checkpoints_written_;
}

}  // namespace iup::persist
