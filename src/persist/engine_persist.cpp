// Engine durability entry points (declared in api/engine.hpp): checkpoint
// image collection, restore, and WAL replay.  Lives in src/persist/ so the
// api layer keeps zero knowledge of file formats; this file is the only
// place where Engine internals and the persist codecs meet.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace iup::api {

namespace {

persist::HealthImage sample_health(const serve::SiteHealthCounters& h) {
  persist::HealthImage out;
  const auto relaxed = std::memory_order_relaxed;
  out.state = h.state.load(relaxed);
  out.updates_ok = h.updates_ok.load(relaxed);
  out.updates_failed = h.updates_failed.load(relaxed);
  out.update_attempts = h.update_attempts.load(relaxed);
  out.consecutive_failures = h.consecutive_failures.load(relaxed);
  out.drift_triggers = h.drift_triggers.load(relaxed);
  out.deadline_trips = h.deadline_trips.load(relaxed);
  out.breaker_trips = h.breaker_trips.load(relaxed);
  out.recoveries = h.recoveries.load(relaxed);
  out.observations_accepted = h.observations_accepted.load(relaxed);
  out.quarantine_non_finite = h.quarantine_non_finite.load(relaxed);
  out.quarantine_out_of_range = h.quarantine_out_of_range.load(relaxed);
  out.quarantine_unknown_link = h.quarantine_unknown_link.load(relaxed);
  out.quarantine_unknown_cell = h.quarantine_unknown_cell.load(relaxed);
  out.quarantine_unknown_source = h.quarantine_unknown_source.load(relaxed);
  out.quarantine_overflow = h.quarantine_overflow.load(relaxed);
  out.last_observed_day = h.last_observed_day.load(relaxed);
  out.spd_cholesky_failures = h.spd_cholesky_failures.load(relaxed);
  out.spd_bump_recoveries = h.spd_bump_recoveries.load(relaxed);
  out.spd_lu_fallbacks = h.spd_lu_fallbacks.load(relaxed);
  return out;
}

void restore_health(const persist::HealthImage& image,
                    serve::SiteHealthCounters& h) {
  const auto relaxed = std::memory_order_relaxed;
  h.state.store(image.state, relaxed);
  h.updates_ok.store(image.updates_ok, relaxed);
  h.updates_failed.store(image.updates_failed, relaxed);
  h.update_attempts.store(image.update_attempts, relaxed);
  h.consecutive_failures.store(image.consecutive_failures, relaxed);
  h.drift_triggers.store(image.drift_triggers, relaxed);
  h.deadline_trips.store(image.deadline_trips, relaxed);
  h.breaker_trips.store(image.breaker_trips, relaxed);
  h.recoveries.store(image.recoveries, relaxed);
  h.observations_accepted.store(image.observations_accepted, relaxed);
  h.quarantine_non_finite.store(image.quarantine_non_finite, relaxed);
  h.quarantine_out_of_range.store(image.quarantine_out_of_range, relaxed);
  h.quarantine_unknown_link.store(image.quarantine_unknown_link, relaxed);
  h.quarantine_unknown_cell.store(image.quarantine_unknown_cell, relaxed);
  h.quarantine_unknown_source.store(image.quarantine_unknown_source, relaxed);
  h.quarantine_overflow.store(image.quarantine_overflow, relaxed);
  h.last_observed_day.store(image.last_observed_day, relaxed);
  h.spd_cholesky_failures.store(image.spd_cholesky_failures, relaxed);
  h.spd_bump_recoveries.store(image.spd_bump_recoveries, relaxed);
  h.spd_lu_fallbacks.store(image.spd_lu_fallbacks, relaxed);
}

}  // namespace

persist::EngineImage Engine::collect_persist_image() const {
  persist::EngineImage image;
  // Chains + serving versions under ONE state-lock hold: the image is
  // commit-consistent (no site can advance mid-collection), and the
  // SnapshotPtr copies are refcount bumps, not matrix copies, so the lock
  // hold is short.  Serialization happens after release.
  {
    const auto lock = state_lock();
    std::vector<std::string> names = store_.sites();
    std::sort(names.begin(), names.end());  // deterministic bytes
    image.sites.reserve(names.size());
    for (std::string& name : names) {
      persist::SiteImage site;
      const std::uint64_t latest = store_.next_version(name) - 1;
      const std::size_t count = store_.version_count(name);
      const std::uint64_t first = latest - count + 1;
      site.chain.reserve(count);
      for (std::uint64_t v = first; v <= latest; ++v) {
        site.chain.push_back(store_.at_version(name, v).value());
      }
      site.serving_version = latest;
      if (const auto shard = shards_->find(name); shard != nullptr) {
        if (const serve::PublishedPtr bundle = shard->published();
            bundle != nullptr && bundle->snapshot != nullptr) {
          site.serving_version = bundle->snapshot->version();
        }
      }
      site.site = std::move(name);
      image.sites.push_back(std::move(site));
    }
  }
  // Warm caches + health per shard, outside the commit lock (shard locks
  // never nest with it).  A commit racing in here can only install a
  // NEWER cache than the chain we captured — harmless, because cache
  // consultation is exact-version-match after restore.
  for (persist::SiteImage& site : image.sites) {
    const auto shard = shards_->find(site.site);
    if (shard == nullptr) continue;
    {
      const auto lock = shard->lock_for_update();
      const serve::WarmCaches& caches = shard->caches(lock);
      site.warm.factor_version = caches.factor_version;
      site.warm.factor = caches.factor;
      site.warm.lrr_version = caches.lrr_version;
      site.warm.lrr = caches.lrr;
    }
    site.health = sample_health(shard->health());
  }
  return image;
}

Status Engine::save_checkpoint(const std::string& dir) const {
  return persist::save_checkpoint_file(dir, collect_persist_image());
}

Status Engine::install_restored_site(persist::SiteImage image) {
  if (image.chain.empty()) {
    return Status::data_loss("restore: checkpointed site '" + image.site +
                             "' has an empty snapshot chain");
  }
  // Serve the checkpointed serving version when it is still in the chain
  // (it always is in practice — publication and commit are one critical
  // section — but a trimmed chain after a history-limit change falls back
  // to the latest retained version).
  SnapshotPtr serving = image.chain.back();
  for (const SnapshotPtr& snapshot : image.chain) {
    if (snapshot->version() == image.serving_version) {
      serving = snapshot;
      break;
    }
  }
  Result<std::shared_ptr<const loc::Localizer>> localizer =
      build_localizer(serving->database(), nullptr);
  if (!localizer.ok()) return localizer.status();

  std::shared_ptr<serve::SiteShard> shard;
  {
    const auto lock = state_lock();
    if (Status s = store_.restore_history(std::move(image.chain)); !s.ok()) {
      return s;
    }
    shard = shards_->emplace(image.site);
    shard->publish(std::make_shared<const serve::PublishedSite>(
        serve::PublishedSite{std::move(serving),
                             std::move(localizer).value()}));
  }
  {
    const auto lock = shard->lock_for_update();
    serve::WarmCaches& caches = shard->caches(lock);
    caches.factor_version = image.warm.factor_version;
    caches.factor = image.warm.factor;
    caches.lrr_version = image.warm.lrr_version;
    caches.lrr = image.warm.lrr;
  }
  restore_health(image.health, shard->health());
  return {};
}

Status Engine::apply_wal_record(const persist::WalRecord& record) {
  if (record.snapshot == nullptr) {
    return Status::data_loss("WAL replay: record without a snapshot");
  }
  const std::string& site = record.snapshot->site();
  const std::uint64_t version = record.snapshot->version();
  Result<std::shared_ptr<const loc::Localizer>> localizer =
      build_localizer(record.snapshot->database(), nullptr);
  if (!localizer.ok()) return localizer.status();

  std::shared_ptr<serve::SiteShard> shard;
  {
    const auto lock = state_lock();
    if (store_.contains(site)) {
      const std::uint64_t next = store_.next_version(site);
      if (version < next) return {};  // checkpoint already covers it
      if (version > next) {
        return Status::data_loss(
            "WAL replay: version gap for site '" + site + "' (have " +
            std::to_string(next - 1) + ", log continues at " +
            std::to_string(version) + ") — a log record is missing");
      }
    } else if (version != 1) {
      return Status::data_loss(
          "WAL replay: site '" + site + "' starts at version " +
          std::to_string(version) +
          " with no checkpoint behind it — the checkpoint is missing");
    }
    if (Status s = store_.put(record.snapshot); !s.ok()) return s;
    shard = shards_->emplace(site);
    shard->publish(std::make_shared<const serve::PublishedSite>(
        serve::PublishedSite{record.snapshot, std::move(localizer).value()}));
  }
  const auto lock = shard->lock_for_update();
  serve::WarmCaches& caches = shard->caches(lock);
  if (record.warm.factor != nullptr &&
      record.warm.factor_version >= caches.factor_version) {
    caches.factor_version = record.warm.factor_version;
    caches.factor = record.warm.factor;
  }
  if (record.warm.lrr != nullptr &&
      record.warm.lrr_version >= caches.lrr_version) {
    caches.lrr_version = record.warm.lrr_version;
    caches.lrr = record.warm.lrr;
  }
  return {};
}

Status Engine::restore_from(const std::string& dir) {
  {
    const auto lock = state_lock();
    if (!store_.sites().empty()) {
      return Status::failed_precondition(
          "restore_from: engine already has registered sites — recovery "
          "targets a fresh engine");
    }
  }
  persist::EngineImage image;
  bool have_checkpoint = true;
  if (Status s = persist::load_checkpoint_file(dir, image); !s.ok()) {
    if (s.code() != StatusCode::kNotFound) return s;
    have_checkpoint = false;
  }
  std::vector<persist::WalRecord> records;
  if (Status s = persist::read_wal(dir + "/" + persist::kWalFile, records);
      !s.ok()) {
    return s;
  }
  if (!have_checkpoint && records.empty()) {
    return Status::not_found("restore_from: no durable state in '" + dir +
                             "'");
  }
  for (persist::SiteImage& site : image.sites) {
    if (Status s = install_restored_site(std::move(site)); !s.ok()) return s;
  }
  for (const persist::WalRecord& record : records) {
    if (Status s = apply_wal_record(record); !s.ok()) return s;
  }
  return {};
}

}  // namespace iup::api
