// Seeded SIGKILL crash points for the durability layer.
//
// The crash-injection harness (tests/persist_crash_test.cpp, soak RECOVER
// mode) must be able to die at the worst possible instants — mid WAL
// record, between a checkpoint's rename and the WAL truncate — with the
// same determinism the ingest::FaultInjector gives the chaos soak.  A
// forked child arms exactly one point (optionally skipping the first n
// hits), runs the workload, and raise(SIGKILL)s itself the moment the
// armed point is reached; the parent then proves recovery from whatever
// bytes hit the disk.  Disarmed (the default, and always in production)
// every maybe_crash() is one relaxed atomic load — the same
// leave-it-on-in-release discipline as serve's read-path violation
// counter.
#pragma once

#include <cstdint>

namespace iup::persist {

enum class CrashPoint : std::uint32_t {
  // --- the WAL append of one committed update -------------------------
  kBeforeWalAppend = 0,  ///< commit published, nothing appended yet
  kMidWalRecord = 1,     ///< frame header written, payload not (torn tail)
  kAfterWalAppend = 2,   ///< record durable, caller not yet told
  // --- the checkpoint roll --------------------------------------------
  kMidCheckpointWrite = 3,      ///< half the temp file written
  kBeforeCheckpointRename = 4,  ///< temp durable, not yet published
  kAfterCheckpointRename = 5,   ///< checkpoint live, WAL not yet truncated
};

/// Arm `point`: the (skip_hits + 1)-th time execution reaches it, the
/// process raises SIGKILL.  One point armed at a time (re-arming
/// replaces).
void arm_crash_point(CrashPoint point, std::uint64_t skip_hits = 0);

/// Disarm everything (the default state).
void disarm_crash_points();

/// Consulted at every seam; free (one relaxed load) while disarmed.
void maybe_crash(CrashPoint point);

}  // namespace iup::persist
