#include "persist/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/fingerprint.hpp"

namespace iup::persist {

namespace {

void put_health(ByteWriter& writer, const HealthImage& h) {
  writer.put_u32(h.state);
  for (const std::uint64_t v :
       {h.updates_ok, h.updates_failed, h.update_attempts,
        h.consecutive_failures, h.drift_triggers, h.deadline_trips,
        h.breaker_trips, h.recoveries, h.observations_accepted,
        h.quarantine_non_finite, h.quarantine_out_of_range,
        h.quarantine_unknown_link, h.quarantine_unknown_cell,
        h.quarantine_unknown_source, h.quarantine_overflow,
        h.last_observed_day, h.spd_cholesky_failures, h.spd_bump_recoveries,
        h.spd_lu_fallbacks}) {
    writer.put_u64(v);
  }
}

bool get_health(ByteReader& reader, HealthImage& h) {
  if (!reader.get_u32(h.state)) return false;
  for (std::uint64_t* v :
       {&h.updates_ok, &h.updates_failed, &h.update_attempts,
        &h.consecutive_failures, &h.drift_triggers, &h.deadline_trips,
        &h.breaker_trips, &h.recoveries, &h.observations_accepted,
        &h.quarantine_non_finite, &h.quarantine_out_of_range,
        &h.quarantine_unknown_link, &h.quarantine_unknown_cell,
        &h.quarantine_unknown_source, &h.quarantine_overflow,
        &h.last_observed_day, &h.spd_cholesky_failures,
        &h.spd_bump_recoveries, &h.spd_lu_fallbacks}) {
    if (!reader.get_u64(*v)) return false;
  }
  return true;
}

void put_site(ByteWriter& writer, const SiteImage& site) {
  writer.put_string(site.site);
  writer.put_u64(site.serving_version);
  writer.put_u32(static_cast<std::uint32_t>(site.chain.size()));
  for (const api::SnapshotPtr& snapshot : site.chain) {
    put_snapshot(writer, *snapshot);
  }
  put_warm(writer, site.warm);
  put_health(writer, site.health);
}

bool get_site(ByteReader& reader, SiteImage& site) {
  std::uint32_t chain_size = 0;
  if (!reader.get_string(site.site) ||
      !reader.get_u64(site.serving_version) || !reader.get_u32(chain_size)) {
    return false;
  }
  site.chain.clear();
  site.chain.reserve(chain_size);
  for (std::uint32_t k = 0; k < chain_size; ++k) {
    api::SnapshotPtr snapshot;
    if (!get_snapshot(reader, snapshot)) return false;
    site.chain.push_back(std::move(snapshot));
  }
  return get_warm(reader, site.warm) && get_health(reader, site.health) &&
         reader.exhausted();
}

}  // namespace

void put_snapshot(ByteWriter& writer, const api::FingerprintSnapshot& s) {
  writer.put_string(s.site());
  writer.put_u64(s.version());
  writer.put_u64(s.day());
  writer.put_matrix(s.database());
  writer.put_matrix(s.mask());
  writer.put_u64(s.layout().links);
  writer.put_u64(s.layout().slots);
  writer.put_u32(static_cast<std::uint32_t>(s.reference_cells().size()));
  for (const std::size_t cell : s.reference_cells()) writer.put_u64(cell);
  writer.put_matrix(s.correlation());
  writer.put_u32(static_cast<std::uint32_t>(s.sources().size()));
  for (const SourceInfo& source : s.sources()) {
    writer.put_u64(source.id.value());
    writer.put_u8(static_cast<std::uint8_t>(source.technology));
  }
}

bool get_snapshot(ByteReader& reader, api::SnapshotPtr& out) {
  std::string site;
  std::uint64_t version = 0;
  std::uint64_t day = 0;
  linalg::Matrix database;
  linalg::Matrix mask;
  core::BandLayout layout;
  std::uint64_t links = 0;
  std::uint64_t slots = 0;
  if (!reader.get_string(site) || !reader.get_u64(version) ||
      !reader.get_u64(day) || !reader.get_matrix(database) ||
      !reader.get_matrix(mask) || !reader.get_u64(links) ||
      !reader.get_u64(slots)) {
    return false;
  }
  layout.links = links;
  layout.slots = slots;
  std::uint32_t cell_count = 0;
  if (!reader.get_u32(cell_count)) return false;
  std::vector<std::size_t> cells(cell_count);
  for (std::size_t& cell : cells) {
    std::uint64_t v = 0;
    if (!reader.get_u64(v)) return false;
    cell = v;
  }
  linalg::Matrix correlation;
  if (!reader.get_matrix(correlation)) return false;
  std::uint32_t source_count = 0;
  if (!reader.get_u32(source_count)) return false;
  std::vector<SourceInfo> sources(source_count);
  for (SourceInfo& source : sources) {
    std::uint64_t id = 0;
    std::uint8_t technology = 0;
    if (!reader.get_u64(id) || !reader.get_u8(technology)) return false;
    source.id = SourceId(id);
    source.technology = static_cast<Technology>(technology);
  }
  out = std::make_shared<api::FingerprintSnapshot>(
      std::move(site), version, std::move(database), std::move(mask), layout,
      std::move(cells), std::move(correlation), day, std::move(sources));
  return true;
}

void put_warm(ByteWriter& writer, const WarmImage& warm) {
  writer.put_u8(warm.factor != nullptr ? 1 : 0);
  if (warm.factor != nullptr) {
    writer.put_u64(warm.factor_version);
    writer.put_matrix(*warm.factor);
  }
  writer.put_u8(warm.lrr != nullptr ? 1 : 0);
  if (warm.lrr != nullptr) {
    writer.put_u64(warm.lrr_version);
    writer.put_matrix(warm.lrr->z);
    writer.put_matrix(warm.lrr->y1);
    writer.put_matrix(warm.lrr->y2);
    writer.put_f64(warm.lrr->mu);
  }
}

bool get_warm(ByteReader& reader, WarmImage& out) {
  std::uint8_t has = 0;
  if (!reader.get_u8(has)) return false;
  if (has != 0) {
    auto factor = std::make_shared<linalg::Matrix>();
    if (!reader.get_u64(out.factor_version) || !reader.get_matrix(*factor)) {
      return false;
    }
    out.factor = std::move(factor);
  }
  if (!reader.get_u8(has)) return false;
  if (has != 0) {
    auto lrr = std::make_shared<core::LrrWarmStart>();
    if (!reader.get_u64(out.lrr_version) || !reader.get_matrix(lrr->z) ||
        !reader.get_matrix(lrr->y1) || !reader.get_matrix(lrr->y2) ||
        !reader.get_f64(lrr->mu)) {
      return false;
    }
    out.lrr = std::move(lrr);
  }
  return true;
}

std::vector<std::uint8_t> encode_checkpoint(const EngineImage& image) {
  ByteWriter header;
  for (const char c : kCheckpointMagic) {
    header.put_u8(static_cast<std::uint8_t>(c));
  }
  header.put_u32(kFormatVersion);
  header.put_u32(static_cast<std::uint32_t>(image.sites.size()));

  std::vector<std::uint8_t> out = header.bytes();
  for (const SiteImage& site : image.sites) {
    ByteWriter payload;
    put_site(payload, site);
    ByteWriter frame;
    frame.put_u64(payload.bytes().size());
    frame.put_u32(crc32(payload.span()));
    out.insert(out.end(), frame.bytes().begin(), frame.bytes().end());
    out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
  }
  return out;
}

api::Status decode_checkpoint(std::span<const std::uint8_t> bytes,
                              EngineImage& out) {
  ByteReader reader(bytes);
  std::uint8_t magic[8] = {};
  for (std::uint8_t& b : magic) {
    if (!reader.get_u8(b)) {
      return api::Status::data_loss("checkpoint: truncated header");
    }
  }
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return api::Status::data_loss(
        "checkpoint: bad magic (not a checkpoint file, or header damaged)");
  }
  std::uint32_t format = 0;
  std::uint32_t site_count = 0;
  if (!reader.get_u32(format) || !reader.get_u32(site_count)) {
    return api::Status::data_loss("checkpoint: truncated header");
  }
  if (format != kFormatVersion) {
    return api::Status::failed_precondition(
        "checkpoint: format version " + std::to_string(format) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        "); refusing to guess at an incompatible layout");
  }
  EngineImage image;
  image.sites.reserve(site_count);
  for (std::uint32_t k = 0; k < site_count; ++k) {
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
    if (!reader.get_u64(length) || !reader.get_u32(crc) ||
        reader.remaining() < length) {
      return api::Status::data_loss(
          "checkpoint: truncated site section " + std::to_string(k) +
          " (atomic publication should make this impossible; the file was "
          "damaged after the fact)");
    }
    const std::span<const std::uint8_t> payload =
        bytes.subspan(bytes.size() - reader.remaining(), length);
    if (crc32(payload) != crc) {
      return api::Status::data_loss(
          "checkpoint: CRC mismatch in site section " + std::to_string(k) +
          " — refusing to serve from a damaged checkpoint");
    }
    ByteReader section(payload);
    SiteImage site;
    if (!get_site(section, site)) {
      return api::Status::data_loss(
          "checkpoint: site section " + std::to_string(k) +
          " passed its CRC but failed to decode (format bug)");
    }
    image.sites.push_back(std::move(site));
    reader.skip(length);  // the payload was decoded through its own reader
  }
  if (!reader.exhausted()) {
    return api::Status::data_loss("checkpoint: trailing bytes after the last "
                                  "site section");
  }
  out = std::move(image);
  return {};
}

api::Status save_checkpoint_file(const std::string& dir,
                                 const EngineImage& image, bool do_fsync) {
  if (api::Status s = ensure_directory(dir); !s.ok()) return s;
  const std::vector<std::uint8_t> bytes = encode_checkpoint(image);
  return write_file_atomic(dir + "/" + kCheckpointFile, bytes, do_fsync);
}

api::Status load_checkpoint_file(const std::string& dir, EngineImage& out) {
  std::vector<std::uint8_t> bytes;
  if (api::Status s = read_file(dir + "/" + kCheckpointFile, bytes); !s.ok()) {
    return s;
  }
  return decode_checkpoint(bytes, out);
}

}  // namespace iup::persist
