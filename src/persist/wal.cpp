#include "persist/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "persist/crash.hpp"

namespace iup::persist {

namespace {

std::string errno_message(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

api::Status write_all(int fd, std::span<const std::uint8_t> bytes,
                      const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return api::Status::internal(errno_message("write", path));
    }
    written += static_cast<std::size_t>(n);
  }
  return {};
}

}  // namespace

std::vector<std::uint8_t> encode_wal_record(const WalRecord& record) {
  ByteWriter payload;
  put_snapshot(payload, *record.snapshot);
  put_warm(payload, record.warm);
  return payload.bytes();
}

bool decode_wal_record(std::span<const std::uint8_t> bytes, WalRecord& out) {
  ByteReader reader(bytes);
  WalRecord record;
  if (!get_snapshot(reader, record.snapshot) ||
      !get_warm(reader, record.warm) || !reader.exhausted()) {
    return false;
  }
  out = std::move(record);
  return true;
}

WalWriter::~WalWriter() { close(); }

api::Status WalWriter::open(const std::string& path, bool truncate) {
  close();
  const int flags =
      O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return api::Status::internal(errno_message("open", path));
  }
  path_ = path;
  return {};
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

api::Status WalWriter::append(const WalRecord& record, bool do_fsync) {
  if (fd_ < 0) {
    return api::Status::failed_precondition("WAL writer is not open");
  }
  const std::vector<std::uint8_t> payload = encode_wal_record(record);
  ByteWriter header;
  header.put_u32(kWalRecordMagic);
  header.put_u64(payload.size());
  header.put_u32(crc32(payload));
  maybe_crash(CrashPoint::kBeforeWalAppend);
  if (api::Status s = write_all(fd_, header.span(), path_); !s.ok()) return s;
  // Crash-injection seam between the two writes: a SIGKILL here leaves a
  // frame header with no (or partial) payload — exactly the torn tail
  // read_wal must tolerate.
  maybe_crash(CrashPoint::kMidWalRecord);
  if (api::Status s = write_all(fd_, payload, path_); !s.ok()) return s;
  if (do_fsync && ::fsync(fd_) != 0) {
    return api::Status::internal(errno_message("fsync", path_));
  }
  maybe_crash(CrashPoint::kAfterWalAppend);
  return {};
}

api::Status read_wal(const std::string& path, std::vector<WalRecord>& out,
                     bool* dropped_tail) {
  if (dropped_tail != nullptr) *dropped_tail = false;
  std::vector<std::uint8_t> bytes;
  if (api::Status s = read_file(path, bytes); !s.ok()) {
    if (s.code() == api::StatusCode::kNotFound) {
      out.clear();
      return {};
    }
    return s;
  }
  std::vector<WalRecord> records;
  ByteReader reader(bytes);
  while (!reader.exhausted()) {
    // Incomplete header → torn tail (a crash landed inside the very
    // first write of an append).
    if (reader.remaining() < 16) {
      if (dropped_tail != nullptr) *dropped_tail = true;
      break;
    }
    std::uint32_t magic = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
    reader.get_u32(magic);
    reader.get_u64(length);
    reader.get_u32(crc);
    if (magic != kWalRecordMagic) {
      // A torn append never rewrites earlier bytes, so a bad magic is
      // damage inside the committed prefix — not recoverable by
      // truncation.
      return api::Status::data_loss(
          "WAL: bad record magic at offset " +
          std::to_string(bytes.size() - reader.remaining() - 16) +
          " — log is corrupt beyond its tail");
    }
    if (reader.remaining() < length) {
      // Header landed, payload didn't finish: torn tail.
      if (dropped_tail != nullptr) *dropped_tail = true;
      break;
    }
    const std::span<const std::uint8_t> payload =
        std::span<const std::uint8_t>(bytes).subspan(
            bytes.size() - reader.remaining(), length);
    reader.skip(length);
    WalRecord record;
    if (crc32(payload) != crc || !decode_wal_record(payload, record)) {
      if (reader.exhausted()) {
        // Final record damaged → indistinguishable from a torn append
        // whose payload bytes half-landed; drop it.
        if (dropped_tail != nullptr) *dropped_tail = true;
        break;
      }
      return api::Status::data_loss(
          "WAL: CRC/decode failure on a non-final record — log is corrupt "
          "beyond its tail");
    }
    records.push_back(std::move(record));
  }
  out = std::move(records);
  return {};
}

}  // namespace iup::persist
