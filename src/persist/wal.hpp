// Write-ahead log of committed updates.
//
// One CRC-framed record is appended per committed snapshot (registration,
// set_reference_cells and every update() commit), so recovery is "load
// the last checkpoint, replay the WAL suffix".  Each record carries the
// committed snapshot's full bytes PLUS the warm-cache state that commit
// installed — a redo log of results, not of inputs.  Replaying inputs
// (re-running the solver) would NOT reproduce the uninterrupted process
// bit for bit, because the warm caches seed later solves; storing the
// exact bytes makes recovery trivially bit-exact and much faster than a
// re-solve.
//
// Record frame:
//
//   | magic u32 "IWAL" | payload length u64 | payload crc32 u32 | payload |
//
// Torn-tail tolerance on replay (the append is not atomic — a crash can
// land mid-record): an incomplete frame header, a payload shorter than
// its declared length, or a CRC mismatch on the FINAL record are all the
// signature of a torn append and are dropped (the in-flight commit is
// lost, never a published prefix).  A bad magic or CRC mismatch with
// MORE records after it cannot be a torn tail — that is real corruption,
// reported as kDataLoss and never served.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "persist/checkpoint.hpp"

namespace iup::persist {

inline constexpr std::uint32_t kWalRecordMagic = 0x4C415749;  // "IWAL" LE

/// One committed update: the snapshot and the warm caches it installed.
struct WalRecord {
  api::SnapshotPtr snapshot;
  WarmImage warm;
};

/// Encode/decode one record payload (the bytes inside the frame).
std::vector<std::uint8_t> encode_wal_record(const WalRecord& record);
bool decode_wal_record(std::span<const std::uint8_t> bytes, WalRecord& out);

/// Append-only WAL writer over one file.  Not internally synchronised —
/// the DurabilityManager serialises appends under its own mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Open `path` for appending (`truncate` starts a fresh log — the
  /// post-checkpoint roll).  Reopening closes the previous fd.
  api::Status open(const std::string& path, bool truncate);
  bool is_open() const { return fd_ >= 0; }
  void close();

  /// Frame + append + (optionally) fsync one record.  The frame header
  /// and payload are written separately with a crash point between them,
  /// so the SIGKILL harness can manufacture genuine torn tails.
  api::Status append(const WalRecord& record, bool do_fsync = true);

 private:
  int fd_ = -1;
  std::string path_;
};

/// Read every complete record of `path`, applying the torn-tail rules
/// above.  A missing file yields an empty log (fresh start) — recovery
/// treats "no WAL" and "empty WAL" identically.  `dropped_tail` (optional)
/// reports whether a torn tail was discarded.
api::Status read_wal(const std::string& path, std::vector<WalRecord>& out,
                     bool* dropped_tail = nullptr);

}  // namespace iup::persist
