// The binary checkpoint format for durable engine state.
//
// One checkpoint file captures every site's retained snapshot chain
// (X, B, masks, reference cells, correlation Z, source tables, day/version
// labels), the warm-start caches and the health counters — everything a
// fresh engine needs to serve and to keep SOLVING bit-identically to the
// uninterrupted process (the warm caches change later solver iterates,
// which is why they are first-class checkpoint payload, not an
// optimization detail).
//
// File layout (all integers little-endian, doubles raw IEEE-754 — see
// persist/io.hpp):
//
//   +--------------------------------------------------------------+
//   | magic "IUPCKPT1" (8 bytes)                                   |
//   | format version u32                                           |
//   | site count u32                                               |
//   +-- per site -------------------------------------------------+
//   | payload length u64 | payload crc32 u32 | payload bytes ...   |
//   +--------------------------------------------------------------+
//
// The header is validated by its magic (a flipped bit there is
// kDataLoss, a different format version is kFailedPrecondition); each
// site section carries its own CRC32 so a flipped bit anywhere in the
// payload is pinpointed to a site and reported as kDataLoss — a damaged
// checkpoint is never partially applied.
//
// Publication is atomic (persist::write_file_atomic: temp + fsync +
// rename + dir fsync), so the file named kCheckpointFile is always a
// complete checkpoint from SOME moment; the WAL (persist/wal.hpp) covers
// the suffix since then.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/snapshot.hpp"
#include "api/status.hpp"
#include "core/lrr.hpp"
#include "linalg/matrix.hpp"
#include "persist/io.hpp"

namespace iup::persist {

inline constexpr char kCheckpointMagic[8] = {'I', 'U', 'P', 'C',
                                             'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// File names inside a durability directory.
inline constexpr const char* kCheckpointFile = "CHECKPOINT";
inline constexpr const char* kWalFile = "WAL";

/// Value image of one site's warm-start caches (shared_ptrs: collecting
/// an image never copies a matrix, and restoring installs these exact
/// objects into the shard).  Null pointers mean "cache empty/disabled".
struct WarmImage {
  std::uint64_t factor_version = 0;
  std::shared_ptr<const linalg::Matrix> factor;
  std::uint64_t lrr_version = 0;
  std::shared_ptr<const core::LrrWarmStart> lrr;
};

/// Plain-value copy of serve::SiteHealthCounters (the atomics sampled
/// relaxed, restored with relaxed stores).  Field order is the wire
/// order.
struct HealthImage {
  std::uint32_t state = 0;
  std::uint64_t updates_ok = 0;
  std::uint64_t updates_failed = 0;
  std::uint64_t update_attempts = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t drift_triggers = 0;
  std::uint64_t deadline_trips = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t observations_accepted = 0;
  std::uint64_t quarantine_non_finite = 0;
  std::uint64_t quarantine_out_of_range = 0;
  std::uint64_t quarantine_unknown_link = 0;
  std::uint64_t quarantine_unknown_cell = 0;
  std::uint64_t quarantine_unknown_source = 0;
  std::uint64_t quarantine_overflow = 0;
  std::uint64_t last_observed_day = 0;
  std::uint64_t spd_cholesky_failures = 0;
  std::uint64_t spd_bump_recoveries = 0;
  std::uint64_t spd_lu_fallbacks = 0;
};

/// One checkpointed site: the retained chain (oldest first, contiguous
/// versions — may start above 1 after history-limit eviction), the
/// version its serving bundle published, and the cache/health state.
struct SiteImage {
  std::string site;
  std::uint64_t serving_version = 0;
  std::vector<api::SnapshotPtr> chain;
  WarmImage warm;
  HealthImage health;
};

/// Everything a checkpoint holds, sites sorted by name (deterministic
/// bytes for identical state).
struct EngineImage {
  std::vector<SiteImage> sites;
};

// --- encoding building blocks (shared with the WAL's record payloads) --

/// Serialize one snapshot / warm image into `writer` (WAL records reuse
/// these exact encoders, so checkpoint and log bytes can never drift
/// apart).
void put_snapshot(ByteWriter& writer, const api::FingerprintSnapshot& s);
void put_warm(ByteWriter& writer, const WarmImage& warm);
/// Decode counterparts; false on truncated/implausible bytes.
bool get_snapshot(ByteReader& reader, api::SnapshotPtr& out);
bool get_warm(ByteReader& reader, WarmImage& out);

/// Encode/decode a whole checkpoint.  decode validates magic, format
/// version and every section CRC; on any failure `out` is left untouched.
std::vector<std::uint8_t> encode_checkpoint(const EngineImage& image);
api::Status decode_checkpoint(std::span<const std::uint8_t> bytes,
                              EngineImage& out);

/// Write `image` as `dir`/CHECKPOINT with atomic publication.
api::Status save_checkpoint_file(const std::string& dir,
                                 const EngineImage& image,
                                 bool do_fsync = true);
/// Load `dir`/CHECKPOINT; kNotFound when the file does not exist.
api::Status load_checkpoint_file(const std::string& dir, EngineImage& out);

}  // namespace iup::persist
