// Cholesky factorisation for symmetric positive-definite systems.
//
// The normal-equation solves inside Algorithm 1 (Eq. 24) and the LRR
// Z-update are SPD by construction (Gram matrices plus lambda*I), so the
// solver pipeline prefers Cholesky.  When the factorisation fails (e.g.
// lambda == 0 with a rank-deficient factor) the solve does NOT silently
// fall back to a fresh LU factorisation any more: it first retries with a
// deterministic diagonal bump (the usual "jitter" fix for near-singular
// normal equations, scaled to the matrix), and only then pays for LU.
// Every failure/recovery/fallback is counted in SpdStats so a sweep that
// quietly degrades to the 4x-slower path is visible in diagnostics.
//
// The `_in_place` / `_into` variants are the allocation-free hot-path
// kernels: they factor and solve entirely inside caller-owned storage.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace iup::linalg {

/// Lower-triangular factor L with a = L L^T, or nullopt when the input is
/// not positive definite (within roundoff).
std::optional<Matrix> cholesky(const Matrix& a);

/// In-place variant: overwrites the lower triangle of `a` with L (the
/// strict upper triangle is left untouched).  Returns false when `a` is
/// not positive definite; the lower triangle is then partially destroyed,
/// but since the strict upper triangle still holds the original symmetric
/// entries a caller that saved the diagonal can restore `a` exactly.
bool cholesky_in_place(Matrix& a);

/// Solve a x = b where a is SPD, using a precomputed lower factor.
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// Allocation-free solve: on entry `bx` holds b, on exit the solution
/// (forward substitution runs in place, then back substitution).
void cholesky_solve_in_place(const Matrix& l, std::span<double> bx);

/// Factor an SPD matrix in place with the same deterministic diagonal-bump
/// retry policy as solve_spd_into (failures/recoveries counted in the
/// process-wide SpdStats).  `diag_scratch` must have length a.rows(); it
/// receives the original diagonal.  On true, `a` holds an opaque SPD
/// factor usable with solve_factored_spd (an UPPER-triangular R with
/// a = R^T R — on row-major storage every elimination and substitution
/// loop then runs over contiguous row suffixes, which is what lets the
/// SIMD kernel layer vectorise the whole solve path); on false, `a` is
/// restored to the symmetrised unbumped input so the caller can fall back
/// to LU.  This is the factor-once entry point for solvers whose normal
/// matrix is fixed across iterations (the LRR Z-update): factor here,
/// back-substitute per iteration.
bool factor_spd(Matrix& a, std::span<double> diag_scratch);

/// Allocation-free solve against a factor_spd / solve_spd_into factor: on
/// entry `bx` holds b, on exit the solution.  (Pairs ONLY with factor_spd;
/// factors from cholesky() / cholesky_in_place are lower-triangular and
/// solve through cholesky_solve_in_place instead.)
void solve_factored_spd(const Matrix& r, std::span<double> bx);

/// Multi-RHS variant of solve_factored_spd: `panel` is a row-major n x k
/// block whose COLUMNS are the k right-hand sides (panel(i, c) = b_c[i] on
/// entry, x_c[i] on exit), `dot_scratch` caller-owned scratch of length >=
/// k.  Guarantee: every column of the result is bit-identical to running
/// solve_factored_spd(r, that column) on its own — the forward elimination
/// streams the same per-element fused ops across the panel rows (IEEE
/// multiplication/FMA commute bitwise in their factor operands), and the
/// back substitution reduces each column through kernels::dot_panel, which
/// replays the active level's dot() reduction tree per column.  This is
/// the factor-once solve-many hot path of the mask-grouped sweep
/// (core/self_augmented.cpp): columns sharing an observation mask share Q,
/// so one factor_spd feeds one panel solve for the whole group.
void solve_factored_spd_multi(const Matrix& r, Matrix& panel,
                              std::span<double> dot_scratch);

/// Solve a x = b for SPD a.  Retries with a diagonal bump, then falls back
/// to LU, so callers never have to branch on definiteness themselves.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Solve a X = B for SPD a, column by column, reusing one factorisation.
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Allocation-free SPD solve for the sweep hot loop.  `a` is destroyed
/// (it ends up holding a Cholesky factor or retry scratch); on entry `bx`
/// holds b and on exit the solution.  `diag_scratch` must have length
/// a.rows() — it preserves the original diagonal across retries.
///
/// Failure policy (all deterministic, no RNG):
///   1. plain Cholesky;
///   2. two retries with the diagonal bumped by 1e-10 resp. 1e-6 times
///      the mean diagonal magnitude — the "jittered" lambda bump that
///      rescues nearly-PSD normal equations for a fraction of the cost of
///      a full LU solve;
///   3. LU with partial pivoting on the (symmetrised) original.
/// Every stage is counted in the process-wide SpdStats.
void solve_spd_into(Matrix& a, std::span<double> bx,
                    std::span<double> diag_scratch);

/// Diagnostic counters for the SPD solve path (process-wide, updated with
/// relaxed atomics — cheap enough to leave on in release builds).
struct SpdStats {
  std::uint64_t cholesky_failures = 0;  ///< initial factorisations failed
  std::uint64_t bump_recoveries = 0;    ///< rescued by the diagonal bump
  std::uint64_t lu_fallbacks = 0;       ///< paid for the full LU solve
};

/// Snapshot of the counters since process start / the last reset.
SpdStats spd_stats();
void reset_spd_stats();

}  // namespace iup::linalg
