// Cholesky factorisation for symmetric positive-definite systems.
//
// The normal-equation solves inside Algorithm 1 (Eq. 24) and the LRR
// Z-update are SPD by construction (Gram matrices plus lambda*I), so the
// solver pipeline prefers Cholesky and falls back to LU only when the
// factorisation fails (e.g. lambda == 0 with a rank-deficient factor).
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace iup::linalg {

/// Lower-triangular factor L with a = L L^T, or nullopt when the input is
/// not positive definite (within roundoff).
std::optional<Matrix> cholesky(const Matrix& a);

/// Solve a x = b where a is SPD, using a precomputed lower factor.
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// Solve a x = b for SPD a.  Falls back to LU on factorisation failure so
/// callers never have to branch on definiteness themselves.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Solve a X = B for SPD a, column by column, reusing one factorisation.
Matrix solve_spd(const Matrix& a, const Matrix& b);

}  // namespace iup::linalg
