// Householder QR factorisations.
//
// Two flavours are provided:
//  * plain QR, used by the OMP localizer's least-squares refits;
//  * column-pivoted (rank-revealing) QR, used as a cross-check for the
//    RREF-based MIC extraction — the pivot order of QRCP is an independent
//    way of picking a maximal independent column set.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace iup::linalg {

struct QrResult {
  Matrix q;  ///< m x k with orthonormal columns (k = min(m, n))
  Matrix r;  ///< k x n upper triangular
};

/// Thin Householder QR: a = q * r.
QrResult qr(const Matrix& a);

struct QrcpResult {
  Matrix q;                       ///< m x k orthonormal
  Matrix r;                       ///< k x n upper triangular
  std::vector<std::size_t> perm;  ///< column permutation: a(:,perm) = q*r
  std::size_t rank = 0;           ///< numerical rank at the given tolerance
};

/// Column-pivoted QR; `rel_tol` is relative to the largest initial column
/// norm and controls the reported numerical rank.  `threads` fans the
/// per-step column scoring (reflector application + residual-norm refresh,
/// the O(mn) bulk of every pivot step) out over iup::parallel; every
/// trailing column is updated by exactly one chunk and scored by a serial
/// per-column accumulation, so the factorisation — pivots, rank and all —
/// is bit-identical for any thread count.  0 means all hardware threads.
QrcpResult qr_column_pivoted(const Matrix& a, double rel_tol = 1e-9,
                             std::size_t threads = 1);

/// Least squares: minimise ||a x - b||_2 for a tall full-column-rank a.
std::vector<double> least_squares(const Matrix& a, std::span<const double> b);

}  // namespace iup::linalg
