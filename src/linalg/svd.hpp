// Singular value decomposition by one-sided Jacobi rotations.
//
// The paper leans on the SVD in three places:
//  * Observation 1 / Fig. 5 — the normalized singular-value spectrum of the
//    fingerprint matrix shows it is *approximately* low rank;
//  * numerical rank estimation, which fixes r (the factorisation width of
//    Algorithm 1) and the number of reference locations;
//  * the LRR solver (Eq. 12), whose J-update is singular-value thresholding.
//
// One-sided Jacobi is chosen because it is compact, numerically robust and
// computes small singular values to high relative accuracy; our matrices are
// at most a few thousand entries so its O(mn^2) sweeps are irrelevant.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace iup::linalg {

struct SvdResult {
  Matrix u;                   ///< m x k, orthonormal columns (k = min(m, n))
  std::vector<double> sigma;  ///< k singular values, descending, >= 0
  Matrix v;                   ///< n x k, orthonormal columns

  /// Reconstruct U * diag(sigma) * V^T.
  Matrix reconstruct() const;

  /// Reconstruct keeping only the leading `r` singular triplets
  /// (the best rank-r approximation, Eq. 7 of the paper).
  Matrix reconstruct_rank(std::size_t r) const;
};

/// Thin SVD of an arbitrary (possibly wide) matrix.
SvdResult svd(const Matrix& a);

/// Singular values only (cheaper bookkeeping, same sweeps).
std::vector<double> singular_values(const Matrix& a);

/// Numerical rank: number of singular values > rel_tol * sigma_max.
std::size_t numerical_rank(const Matrix& a, double rel_tol = 1e-9);

/// Soft-threshold the singular values: U * max(Sigma - tau, 0) * V^T —
/// the proximal operator of the nuclear norm.  Allocating REFERENCE
/// implementation: the LRR solver's production path computes the same
/// operator through the small-side Gram eigenproblem (eigh_sym_in_place
/// below) without an SVD of the tall iterate; this one stays as the
/// ground truth the tests compare against.
Matrix singular_value_threshold(const Matrix& a, double tau);

/// Symmetric eigendecomposition by cyclic Jacobi rotations, in caller-owned
/// storage: on entry `a` holds a symmetric matrix, on exit its diagonal
/// holds the eigenvalues (unsorted) and `v` (resized, capacity-reusing) the
/// matching orthonormal eigenvectors as columns, so a_in = V diag(d) V^T.
/// The off-diagonals of `a` are reduced to numerical dust.
///
/// This is the allocation-free small-side kernel behind the LRR solver's
/// singular-value thresholding: instead of an SVD of the tall N x n iterate
/// per ADMM step, the n x n Gram matrix (n = MIC rank, 8 on the paper's
/// testbeds) is eigendecomposed here.  The rotation schedule is a fixed
/// cyclic (p, q) order, so results are deterministic.
void eigh_sym_in_place(Matrix& a, Matrix& v);

}  // namespace iup::linalg
