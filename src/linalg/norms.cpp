#include "linalg/norms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/svd.hpp"

namespace iup::linalg {

double frobenius_norm_sq(const Matrix& a) {
  double acc = 0.0;
  for (double v : a.data()) acc += v * v;
  return acc;
}

double frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_norm_sq(a)); }

double nuclear_norm(const Matrix& a) {
  double acc = 0.0;
  for (double s : singular_values(a)) acc += s;
  return acc;
}

double spectral_norm(const Matrix& a) {
  const auto s = singular_values(a);
  return s.empty() ? 0.0 : s.front();
}

double l21_norm(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) col += a(i, j) * a(i, j);
    acc += std::sqrt(col);
  }
  return acc;
}

double relative_error(const Matrix& a, const Matrix& b) {
  Matrix diff = a;
  diff -= b;
  const double denom = std::max(frobenius_norm(b), 1e-300);
  return frobenius_norm(diff) / denom;
}

double diff_norm_sq(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("diff_norm_sq: shape mismatch");
  }
  const auto ad = a.data();
  const auto bd = b.data();
  double acc = 0.0;
  for (std::size_t k = 0; k < ad.size(); ++k) {
    const double d = ad[k] - bd[k];
    acc += d * d;
  }
  return acc;
}

double masked_diff_norm_sq(const Matrix& mask, const Matrix& x,
                           const Matrix& y) {
  if (mask.rows() != x.rows() || mask.cols() != x.cols() ||
      mask.rows() != y.rows() || mask.cols() != y.cols()) {
    throw std::invalid_argument("masked_diff_norm_sq: shape mismatch");
  }
  const auto md = mask.data();
  const auto xd = x.data();
  const auto yd = y.data();
  double acc = 0.0;
  for (std::size_t k = 0; k < md.size(); ++k) {
    const double d = md[k] * xd[k] - yd[k];
    acc += d * d;
  }
  return acc;
}

}  // namespace iup::linalg
