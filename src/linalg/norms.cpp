#include "linalg/norms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "linalg/svd.hpp"

namespace iup::linalg {

double frobenius_norm_sq(const Matrix& a) {
  return kernels::norm_sq(a.data().data(), a.size());
}

double frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_norm_sq(a)); }

double nuclear_norm(const Matrix& a) {
  double acc = 0.0;
  for (double s : singular_values(a)) acc += s;
  return acc;
}

double spectral_norm(const Matrix& a) {
  const auto s = singular_values(a);
  return s.empty() ? 0.0 : s.front();
}

double l21_norm(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) col += a(i, j) * a(i, j);
    acc += std::sqrt(col);
  }
  return acc;
}

double relative_error(const Matrix& a, const Matrix& b) {
  Matrix diff = a;
  diff -= b;
  const double denom = std::max(frobenius_norm(b), 1e-300);
  return frobenius_norm(diff) / denom;
}

double diff_norm_sq(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("diff_norm_sq: shape mismatch");
  }
  return kernels::diff_norm_sq(a.data().data(), b.data().data(), a.size());
}

double masked_diff_norm_sq(const Matrix& mask, const Matrix& x,
                           const Matrix& y) {
  if (mask.rows() != x.rows() || mask.cols() != x.cols() ||
      mask.rows() != y.rows() || mask.cols() != y.cols()) {
    throw std::invalid_argument("masked_diff_norm_sq: shape mismatch");
  }
  return kernels::masked_diff_norm_sq(mask.data().data(), x.data().data(),
                                      y.data().data(), mask.size());
}

}  // namespace iup::linalg
