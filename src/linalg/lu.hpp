// LU factorisation with partial pivoting, linear solves and inverses.
//
// Algorithm 1's per-column update (Eq. 24) inverts an r x r SPD-ish system
// for every grid column; the LRR Z-update inverts (I + A^T A).  Both go
// through `solve` / `inverse` here (Cholesky is used where SPD structure is
// guaranteed; LU is the general-purpose fallback).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace iup::linalg {

struct LuResult {
  Matrix lu;                      ///< packed L (unit lower) and U factors
  std::vector<std::size_t> perm;  ///< row permutation applied to the input
  int sign = 1;                   ///< permutation parity (for determinants)
  bool singular = false;          ///< true when a zero pivot was hit
};

/// Factor a square matrix: P a = L U.
LuResult lu_decompose(const Matrix& a);

/// Solve a x = b using a precomputed factorisation.
std::vector<double> lu_solve(const LuResult& f, std::span<const double> b);

/// Solve a x = b (square, non-singular; throws on singular input).
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Solve a X = B column-by-column.
Matrix solve(const Matrix& a, const Matrix& b);

/// Matrix inverse (throws on singular input).
Matrix inverse(const Matrix& a);

/// Determinant via LU.
double determinant(const Matrix& a);

}  // namespace iup::linalg
