#include "linalg/vec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"

namespace iup::linalg {

namespace {
void check_same_length(std::span<const double> a, std::span<const double> b,
                       const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("vec ") + op +
                                ": length mismatch");
  }
}
}  // namespace

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double norm_inf(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

std::vector<double> add(std::span<const double> a, std::span<const double> b) {
  check_same_length(a, b, "add");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> sub(std::span<const double> a, std::span<const double> b) {
  check_same_length(a, b, "sub");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> scale(double alpha, std::span<const double> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i];
  return out;
}

std::vector<double> normalized(std::span<const double> x) {
  const double n = norm2(x);
  if (n == 0.0) return {x.begin(), x.end()};
  return scale(1.0 / n, x);
}

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double stdev(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(x.size() - 1));
}

std::size_t argmax_abs(std::span<const double> x) {
  std::size_t best = 0;
  double best_val = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) > best_val) {
      best_val = std::abs(x[i]);
      best = i;
    }
  }
  return best;
}

std::size_t argmax(std::span<const double> x) {
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

std::size_t argmin(std::span<const double> x) {
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::min_element(x.begin(), x.end())));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: need n >= 2");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

}  // namespace iup::linalg
