#include "linalg/rref.hpp"

#include <cmath>

namespace iup::linalg {

RrefResult rref(const Matrix& a, double rel_tol) {
  RrefResult out;
  out.r = a;
  Matrix& r = out.r;
  const std::size_t m = r.rows();
  const std::size_t n = r.cols();
  const double scale = r.empty() ? 1.0 : std::max(r.max_abs(), 1e-300);
  const double tol = rel_tol * scale;

  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < m; ++col) {
    // Partial pivoting within the column.
    std::size_t pivot = row;
    double best = std::abs(r(row, col));
    for (std::size_t i = row + 1; i < m; ++i) {
      const double v = std::abs(r(i, col));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best <= tol) {
      // Numerically zero column below `row`: not a pivot column.
      for (std::size_t i = row; i < m; ++i) r(i, col) = 0.0;
      continue;
    }
    if (pivot != row) {
      for (std::size_t j = 0; j < n; ++j) std::swap(r(row, j), r(pivot, j));
    }
    const double p = r(row, col);
    for (std::size_t j = 0; j < n; ++j) r(row, j) /= p;
    r(row, col) = 1.0;  // exact

    for (std::size_t i = 0; i < m; ++i) {
      if (i == row) continue;
      const double f = r(i, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) r(i, j) -= f * r(row, j);
      r(i, col) = 0.0;  // exact
    }
    out.pivot_cols.push_back(col);
    ++row;
  }
  return out;
}

std::vector<std::size_t> pivot_columns(const Matrix& a, double rel_tol) {
  return rref(a, rel_tol).pivot_cols;
}

}  // namespace iup::linalg
