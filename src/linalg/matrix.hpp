// Dense row-major matrix of doubles.
//
// This is the numerical workhorse of the whole repository: the fingerprint
// matrix X, its factors L/R, the correlation matrix Z, and every constraint
// matrix (T, G, H) are instances of this class.  The interface follows the
// paper's MATLAB-flavoured pseudo code (Algorithm 1) closely enough that the
// solver reads like the published algorithm: `col`, `set_col`, `hadamard`,
// `transpose`, `Matrix::diag`, `Matrix::toeplitz`, ...
//
// Sizes in this project are small-to-medium (the largest matrices are
// M x N with M <= 16 links and N <= a few thousand grid cells).  The
// allocating operators keep the MATLAB-flavoured call sites readable; the
// solver hot loops instead use the allocation-free `_into` kernels at the
// bottom of this header, which write into caller-owned buffers, tile the
// products for cache locality and run their inner loops through the SIMD
// micro-kernel layer (linalg/kernels/).  The allocating operators are
// thin wrappers over the same `_into` kernels (operator* IS
// multiply_into, gram() IS gram_into), so those pairs are bit-identical
// by construction at every dispatch level.  Exception: at SIMD levels
// multiply_transposed_into (dot-based reduction per element) is NOT
// bit-identical to a * b.transpose() (axpy-based ascending-k
// accumulation) — they agree to reduction-reorder tolerance only.
// Within one build every kernel is deterministic and independent of
// tiling, alignment and thread count — the solver's
// thread-count-invariance prerequisite (see linalg/kernels/kernels.hpp
// for the cross-level contract).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace iup::linalg {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  /// All rows must have the same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Square matrix with `d` on the main diagonal, zero elsewhere.
  static Matrix diag(std::span<const double> d);

  /// Diagonal matrix from an explicit list (convenience for tests).
  static Matrix diag(std::initializer_list<double> d);

  /// n x n Toeplitz matrix described by a band around the main diagonal:
  /// value `lower` on the first sub-diagonal, `center` on the diagonal and
  /// `upper` on the first super-diagonal.  The paper's similarity matrix is
  /// H = Toeplitz(-1, 1, 0)_{MxM}  (Eq. 17).
  static Matrix toeplitz(double lower, double center, double upper,
                         std::size_t n);

  /// Matrix whose columns are the given vectors (all of equal length).
  static Matrix from_columns(const std::vector<std::vector<double>>& cols);

  /// Matrix whose rows are the given vectors (all of equal length).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access and row views are defined inline: the solver sweep
  // reads/writes through them millions of times per reconstruct, and
  // without LTO an out-of-line one-line accessor costs a function call
  // per element — measurably more than the arithmetic around it.
  double& operator()(std::size_t i, std::size_t j) {
    return data_[index(i, j)];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[index(i, j)];
  }

  /// Bounds-checked element access (throws std::out_of_range).
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Contiguous view of row i.
  std::span<double> row_span(std::size_t i) {
    return std::span<double>(data_).subspan(i * cols_, cols_);
  }
  std::span<const double> row_span(std::size_t i) const {
    return std::span<const double>(data_).subspan(i * cols_, cols_);
  }

  /// Copies of a row / column as std::vector.
  std::vector<double> row(std::size_t i) const;
  std::vector<double> col(std::size_t j) const;

  /// Copy column j into a caller-owned buffer of length rows() — the
  /// allocation-free counterpart of col().
  void copy_col_into(std::size_t j, std::span<double> out) const;

  /// Copy row i into a caller-owned buffer of length cols().
  void copy_row_into(std::size_t i, std::span<double> out) const;

  void set_row(std::size_t i, std::span<const double> values);
  void set_col(std::size_t j, std::span<const double> values);

  /// Copy of the rectangular block [r0, r0+nr) x [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// Matrix consisting of the selected columns, in the given order.
  Matrix select_columns(std::span<const std::size_t> indices) const;

  /// Matrix consisting of the selected rows, in the given order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  Matrix transpose() const;

  // Element-wise arithmetic (dimensions must match; throws otherwise).
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  Matrix& operator/=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
  friend Matrix operator/(Matrix lhs, double s) { return lhs /= s; }
  Matrix operator-() const;

  /// Matrix product (inner dimensions must agree).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix * vector.
  friend std::vector<double> operator*(const Matrix& a,
                                       std::span<const double> x);

  /// Hadamard (element-wise) product, the paper's `B o (L R^T)` operator.
  Matrix hadamard(const Matrix& rhs) const;

  /// Sum of all elements.
  double sum() const;
  /// Largest / smallest element value.
  double max() const;
  double min() const;
  /// Largest absolute element value.
  double max_abs() const;

  /// Exact element-wise equality (useful for move/copy tests).
  bool operator==(const Matrix& rhs) const = default;

  /// True when every |a_ij - b_ij| <= tol.
  bool approx_equal(const Matrix& rhs, double tol) const;

  /// this^T * this  (r x r Gram matrix), a hot path in Algorithm 1.
  Matrix gram() const;

  /// Fill every element with `value`.
  void fill(double value);

  /// Reshape to rows x cols with every element set to `fill`.  Reuses the
  /// existing allocation whenever capacity suffices, so workspace matrices
  /// resized to the same shape every sweep never touch the heap.
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

 private:
  std::size_t index(std::size_t i, std::size_t j) const {
    return i * cols_ + j;
  }
  void check_same_shape(const Matrix& rhs, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---------------------------------------------------------------------------
// Allocation-free kernels.  All of them resize `out` (capacity-reusing, see
// Matrix::resize) and overwrite it completely; `out` must not alias an
// input (throws std::invalid_argument).  multiply_into(a, b, out) is
// bit-identical to out = a * b (the operator calls it); see the header
// comment above for the one SIMD-level caveat (multiply_transposed_into
// vs an explicit transpose product).
// ---------------------------------------------------------------------------

/// out = a * b, tiled over all three loop dimensions for cache locality.
void multiply_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T without materialising the transpose: out(i,j) =
/// dot(a.row(i), b.row(j)), both contiguous.  This is the `X_hat = L R^T`
/// kernel of the solver's objective evaluation.
void multiply_transposed_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T.
void transpose_into(const Matrix& a, Matrix& out);

/// out = a^T * a (the Gram matrix of a's columns).
void gram_into(const Matrix& a, Matrix& out);

/// y += alpha * x (same shape), without the temporary of y += alpha * x.
void add_scaled(Matrix& y, double alpha, const Matrix& x);

}  // namespace iup::linalg
