// Free functions on std::vector<double> / std::span<const double>.
//
// We deliberately keep vectors as plain std::vector<double>: the paper's
// column vectors (theta_j, online measurement y, ...) never need more
// structure, and plain vectors interoperate with the Matrix row/col copies.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/kernels/kernels.hpp"

namespace iup::linalg {

// dot and axpy are defined inline: the Algorithm-1 sweep calls them on
// rank-width (8-16 element) rows ~10^5 times per reconstruct, where an
// out-of-line call (no LTO) costs as much as the kernel it wraps.  Both
// forward straight to the active dispatch level, so inlining changes no
// arithmetic.

/// Dot product; lengths must match.
inline double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vec dot: length mismatch");
  }
  return kernels::dot(a.data(), b.data(), a.size());
}

/// Euclidean norm ||x||_2.
double norm2(std::span<const double> x);

/// ||x||_1.
double norm1(std::span<const double> x);

/// Largest |x_i|.
double norm_inf(std::span<const double> x);

/// y += alpha * x  (lengths must match).
inline void axpy(double alpha, std::span<const double> x,
                 std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: length mismatch");
  }
  kernels::axpy(alpha, x.data(), y.data(), x.size());
}

/// Element-wise a + b and a - b.
std::vector<double> add(std::span<const double> a, std::span<const double> b);
std::vector<double> sub(std::span<const double> a, std::span<const double> b);

/// alpha * x.
std::vector<double> scale(double alpha, std::span<const double> x);

/// Return x normalised to unit Euclidean norm.  A zero vector is returned
/// unchanged (caller decides how to treat degenerate atoms).
std::vector<double> normalized(std::span<const double> x);

/// Mean of the entries; 0 for an empty vector.
double mean(std::span<const double> x);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 entries.
double stdev(std::span<const double> x);

/// Index of the largest |x_i|; 0 for an empty vector.
std::size_t argmax_abs(std::span<const double> x);

/// Index of the largest x_i.
std::size_t argmax(std::span<const double> x);

/// Index of the smallest x_i.
std::size_t argmin(std::span<const double> x);

/// Evenly spaced values: n points from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace iup::linalg
