// Reduced row-echelon form and pivot-column extraction.
//
// Section IV-B of the paper selects reference locations as the grids whose
// columns form a maximum independent column (MIC) set, found by "elementary
// column transformation ... the first nonzero element in each row".  That
// procedure is exactly Gauss-Jordan elimination: the pivot columns of the
// RREF are a maximal independent column set of the original matrix.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace iup::linalg {

struct RrefResult {
  Matrix r;                             ///< the reduced row-echelon form
  std::vector<std::size_t> pivot_cols;  ///< columns holding a leading 1
};

/// Gauss-Jordan elimination with partial pivoting.  `rel_tol` is relative to
/// the largest absolute entry of the input and decides when a candidate
/// pivot counts as zero (RSS matrices are noisy, so exact-zero tests would
/// report full rank for numerically dependent columns).
RrefResult rref(const Matrix& a, double rel_tol = 1e-10);

/// Convenience: just the pivot columns (the MIC indices).
std::vector<std::size_t> pivot_columns(const Matrix& a, double rel_tol = 1e-10);

}  // namespace iup::linalg
