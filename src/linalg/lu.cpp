#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iup::linalg {

LuResult lu_decompose(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("lu_decompose: matrix must be square");
  }
  const std::size_t n = a.rows();
  LuResult f;
  f.lu = a;
  f.perm.resize(n);
  std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(f.lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(f.lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      f.singular = true;
      continue;
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(f.lu(k, j), f.lu(pivot, j));
      std::swap(f.perm[k], f.perm[pivot]);
      f.sign = -f.sign;
    }
    const double pivot_val = f.lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = f.lu(i, k) / pivot_val;
      f.lu(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        f.lu(i, j) -= m * f.lu(k, j);
      }
    }
  }
  return f;
}

std::vector<double> lu_solve(const LuResult& f, std::span<const double> b) {
  const std::size_t n = f.lu.rows();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  if (f.singular) throw std::runtime_error("lu_solve: singular matrix");

  // Forward substitution with the permuted right-hand side.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[f.perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= f.lu(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= f.lu(i, j) * x[j];
    x[i] = acc / f.lu(i, i);
  }
  return x;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return lu_solve(lu_decompose(a), b);
}

Matrix solve(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("solve: row count mismatch");
  }
  const LuResult f = lu_decompose(a);
  Matrix x(a.cols(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const auto xj = lu_solve(f, b.col(j));
    x.set_col(j, xj);
  }
  return x;
}

Matrix inverse(const Matrix& a) { return solve(a, Matrix::identity(a.rows())); }

double determinant(const Matrix& a) {
  const LuResult f = lu_decompose(a);
  if (f.singular) return 0.0;
  double det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

}  // namespace iup::linalg
