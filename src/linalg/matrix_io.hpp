// Human-readable printing and CSV round-tripping for matrices.
// Used by the benchmark harness to emit the figure series and by tests to
// produce readable failure messages.
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"

namespace iup::linalg {

/// Fixed-width, fixed-precision rendering of a matrix ("  -71.25  -68.00 ...").
std::string to_string(const Matrix& a, int precision = 3);

/// Stream operator using the default precision.
std::ostream& operator<<(std::ostream& os, const Matrix& a);

/// Serialise as CSV (one row per line, comma separated).
std::string to_csv(const Matrix& a, int precision = 9);

/// Parse a CSV produced by `to_csv` (throws std::invalid_argument on
/// ragged/garbled input).
Matrix from_csv(const std::string& csv);

}  // namespace iup::linalg
