#include "linalg/matrix_io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace iup::linalg {

std::string to_string(const Matrix& a, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      os << std::setw(precision + 8) << a(i, j);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Matrix& a) {
  return os << to_string(a);
}

std::string to_csv(const Matrix& a, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j) os << ',';
      os << a(i, j);
    }
    os << '\n';
  }
  return os.str();
}

Matrix from_csv(const std::string& csv) {
  std::vector<std::vector<double>> rows;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw std::invalid_argument("from_csv: bad cell '" + cell + "'");
      }
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      throw std::invalid_argument("from_csv: ragged rows");
    }
    rows.push_back(std::move(row));
  }
  return Matrix::from_rows(rows);
}

}  // namespace iup::linalg
