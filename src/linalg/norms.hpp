// Matrix norms used throughout the paper's objective functions:
//   Frobenius (Eq. 7, 11, 18), nuclear norm ||.||_* and the column-wise
//   l2,1 norm (Eq. 12, the LRR corruption term).
#pragma once

#include "linalg/matrix.hpp"

namespace iup::linalg {

/// Frobenius norm sqrt(sum a_ij^2).
double frobenius_norm(const Matrix& a);

/// Squared Frobenius norm (avoids the sqrt in hot loops).
double frobenius_norm_sq(const Matrix& a);

/// Nuclear norm: sum of singular values.
double nuclear_norm(const Matrix& a);

/// Spectral norm: largest singular value.
double spectral_norm(const Matrix& a);

/// l2,1 norm: sum over columns of the column Euclidean norms
/// (||E||_{2,1} in Eq. 12).
double l21_norm(const Matrix& a);

/// Relative Frobenius distance ||a - b||_F / max(||b||_F, eps).
double relative_error(const Matrix& a, const Matrix& b);

/// ||a - b||_F^2 without materialising the difference — the fused form of
/// frobenius_norm_sq(a - b) used by the solver's objective evaluation.
double diff_norm_sq(const Matrix& a, const Matrix& b);

/// ||mask o x - y||_F^2 without the hadamard/difference temporaries: the
/// paper's data term ||B o (L R^T) - X_B||_F^2 in one pass.  Elementwise
/// and in the same order as the allocating expression, so bit-identical.
double masked_diff_norm_sq(const Matrix& mask, const Matrix& x,
                           const Matrix& y);

}  // namespace iup::linalg
