// Register-blocked GEMM micro-kernel with packed panels.
//
// gemm_accumulate computes C += A * B on row-major operands.  At the AVX2
// dispatch level the inner kernel is a 4x8 register block (eight 256-bit
// accumulators) fed from contiguous packed panels of A (4 rows, k-major)
// and B (8 columns, k-major); edge tiles fall back to a scalar loop with
// the same per-element arithmetic.
//
// Accumulation contract: every output element is accumulated over k in
// ascending order into a single accumulator (loaded from C first), so the
// result is bit-identical to the naive i-k-j triple loop evaluated with
// the active level's per-element arithmetic (FMA at the AVX2 level,
// mul+add at the scalar level).  There is NO k-panel split — the whole k
// extent streams through the register block — which is what makes the
// packed path interchangeable with the axpy-tiled multiply_into path at a
// fixed dispatch level.
//
// Packing buffers are thread_local and grow-only, so steady-state calls
// perform zero heap allocations and concurrent callers never share
// scratch.
#pragma once

#include <cstddef>

namespace iup::linalg::kernels {

/// C(m x n, ldc) += A(m x k, lda) * B(k x n, ldb), all row-major.
void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n);

/// True when gemm_accumulate runs the packed AVX2 block kernel (used by
/// multiply_into to decide when routing through GEMM pays off).
bool gemm_is_vectorized();

}  // namespace iup::linalg::kernels
