// AVX2 + FMA implementations of the micro-kernels.
//
// Only compiled when the translation unit is built with AVX2 and FMA
// enabled (-march=x86-64-v3 / native via the IUP_ARCH CMake knob); the
// dispatch header includes this file conditionally, so a baseline build
// contains no AVX2 code at all.
//
// Rounding contract relative to kernels::scalar (see kernels.hpp):
//  * element-wise kernels (axpy, axpy2, add_outer_upper) evaluate each
//    element with FMA — one rounding instead of the scalar mul+add two —
//    and are position-independent: an element produces the same bits
//    whether it lands in a vector lane or in the std::fma tail, so
//    splitting a row into tile segments cannot change results;
//  * reductions (dot, norm_sq, diff_norm_sq, masked_diff_norm_sq) use two
//    4-lane accumulators combined in a fixed tree, so their value depends
//    only on the input length, never on alignment or call site.  All the
//    *_norm_sq reductions share one tree shape, which keeps identities
//    like diff_norm_sq(x, y) == norm_sq(x - y) exact.
#pragma once

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace iup::linalg::kernels::avx2 {

namespace detail {

/// Fixed-order horizontal sum: ((v0 + v1) + (v2 + v3)).
inline double hsum(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace detail

inline double dot(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  // Explicit fma pins the tail arithmetic the optimiser was already
  // emitting under default FP contraction — dot_panel must be able to
  // replay it exactly (lane or scalar), so it cannot be left to flags.
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], b[i], tail);
  return detail::hsum(_mm256_add_pd(acc0, acc1)) + tail;
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i,
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

/// Per-element: out += round(a * x) with b * y fused in:
/// out[i] += fma(b, y[i], a * x[i]), evaluated identically in lanes and
/// tail.
inline void axpy2(double a, const double* x, double b, const double* y,
                  double* out, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_fmadd_pd(vb, _mm256_loadu_pd(y + i),
                                      _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i), t));
  }
  for (; i < n; ++i) out[i] += std::fma(b, y[i], a * x[i]);
}

// Streams FULL rows instead of upper-triangle suffixes: for the rank-r
// normal matrices of the sweep (r = 16) the uniform, tail-free row axpys
// are ~25% faster than the half-flop triangular update despite doing
// twice the arithmetic.  The strict lower triangle therefore accumulates
// the mirrored contributions (va * v[b] for b < a) — callers re-mirror
// from the upper triangle before consuming, as the kernels.hpp contract
// requires.
inline void add_outer_upper(double weight, const double* v, std::size_t n,
                            double* q, std::size_t ld) {
  for (std::size_t a = 0; a < n; ++a) {
    const double va = weight * v[a];
    if (va == 0.0) continue;
    axpy(va, v, q + a * ld, n);
  }
}

inline double norm_sq(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc0 = _mm256_fmadd_pd(v, v, acc0);
    i += 4;
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i] * x[i];
  return detail::hsum(_mm256_add_pd(acc0, acc1)) + tail;
}

inline double diff_norm_sq(const double* x, const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
    i += 4;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    tail += d * d;
  }
  return detail::hsum(_mm256_add_pd(acc0, acc1)) + tail;
}

inline double masked_diff_norm_sq(const double* mask, const double* x,
                                  const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(mask + i),
                                    _mm256_loadu_pd(x + i)),
                      _mm256_loadu_pd(y + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(mask + i + 4),
                                    _mm256_loadu_pd(x + i + 4)),
                      _mm256_loadu_pd(y + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d d =
        _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(mask + i),
                                    _mm256_loadu_pd(x + i)),
                      _mm256_loadu_pd(y + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
    i += 4;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = mask[i] * x[i] - y[i];
    tail += d * d;
  }
  return detail::hsum(_mm256_add_pd(acc0, acc1)) + tail;
}

/// Panel dot (the trsv_multi back-substitution kernel): out[c] =
/// avx2::dot(a, column c of the row-major n x k panel b) bit for bit,
/// vectorised ACROSS the k RHS columns.  Per column the chunk/lane role
/// structure of this level's dot() is replayed exactly: eight
/// accumulators (one per mod-8 position class — acc0's four lanes are
/// classes 0..3, acc1's are 4..7), the optional 4-chunk feeding classes
/// 0..3, an fma tail chain, and the combine hsum(acc0 + acc1) + tail
/// — lane sums acc[l] + acc[l+4] first, then the fixed
/// (l0+l1)+(l2+l3) tree, then + tail.  Column blocks of 4 run in ymm
/// registers; leftover columns replay the identical op sequence in
/// scalar std::fma arithmetic.
inline void dot_panel(const double* a, const double* b, std::size_t ldb,
                      std::size_t n, std::size_t k, double* out) {
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    __m256d acc[8];
    for (int l = 0; l < 8; ++l) acc[l] = _mm256_setzero_pd();
    std::size_t p = 0;
    for (; p + 8 <= n; p += 8) {
      for (int l = 0; l < 8; ++l) {
        acc[l] = _mm256_fmadd_pd(_mm256_set1_pd(a[p + l]),
                                 _mm256_loadu_pd(b + (p + l) * ldb + c),
                                 acc[l]);
      }
    }
    if (p + 4 <= n) {
      for (int l = 0; l < 4; ++l) {
        acc[l] = _mm256_fmadd_pd(_mm256_set1_pd(a[p + l]),
                                 _mm256_loadu_pd(b + (p + l) * ldb + c),
                                 acc[l]);
      }
      p += 4;
    }
    __m256d t = _mm256_setzero_pd();
    for (; p < n; ++p) {
      t = _mm256_fmadd_pd(_mm256_set1_pd(a[p]),
                          _mm256_loadu_pd(b + p * ldb + c), t);
    }
    // hsum(acc0 + acc1) + tail, replayed per column: lane l of
    // (acc0 + acc1) is acc[l] + acc[l + 4].
    __m256d s[4];
    for (int l = 0; l < 4; ++l) s[l] = _mm256_add_pd(acc[l], acc[l + 4]);
    const __m256d r = _mm256_add_pd(_mm256_add_pd(s[0], s[1]),
                                    _mm256_add_pd(s[2], s[3]));
    _mm256_storeu_pd(out + c, _mm256_add_pd(r, t));
  }
  for (; c < k; ++c) {
    double acc[8] = {};
    std::size_t p = 0;
    for (; p + 8 <= n; p += 8) {
      for (int l = 0; l < 8; ++l) {
        acc[l] = std::fma(a[p + l], b[(p + l) * ldb + c], acc[l]);
      }
    }
    if (p + 4 <= n) {
      for (int l = 0; l < 4; ++l) {
        acc[l] = std::fma(a[p + l], b[(p + l) * ldb + c], acc[l]);
      }
      p += 4;
    }
    double t = 0.0;
    for (; p < n; ++p) t = std::fma(a[p], b[p * ldb + c], t);
    const double s0 = acc[0] + acc[4], s1 = acc[1] + acc[5];
    const double s2 = acc[2] + acc[6], s3 = acc[3] + acc[7];
    out[c] = ((s0 + s1) + (s2 + s3)) + t;
  }
}

}  // namespace iup::linalg::kernels::avx2
