// Scalar reference implementations of the micro-kernels.
//
// These are the semantic ground truth of the kernel layer: every loop is
// written exactly like the hand-rolled loops the `_into` kernels and the
// solver sweep used before the kernel layer existed, so a build at the
// scalar dispatch level (no -march / IUP_ARCH) reproduces the historical
// results bit for bit.  The AVX2 level (kernels/avx2.hpp) must match these
// within documented rounding differences (FMA contraction on the
// element-wise kernels, vector-lane accumulators on the reductions); the
// dispatch header (kernels/kernels.hpp) states the exact contract.
#pragma once

#include <cstddef>

namespace iup::linalg::kernels::scalar {

/// sum_i a[i] * b[i], accumulated left to right in one scalar accumulator.
inline double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// y[i] += alpha * x[i].
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// out[i] += a * x[i] + b * y[i] — the fused form of two consecutive
/// axpys over the same destination (one pass over `out`).
inline void axpy2(double a, const double* x, double b, const double* y,
                  double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += a * x[i] + b * y[i];
}

/// Rank-1 update of the upper triangle of a row-major n x n matrix with
/// leading dimension ld:  q(a, b) += (weight * v[a]) * v[b] for b >= a.
/// Entries strictly below the diagonal are UNSPECIFIED after the call
/// (this level leaves them untouched; the AVX2 level streams full rows) —
/// callers mirror the upper triangle down before consuming.  Rows whose
/// scaled pivot weight*v[a] is exactly zero are skipped — an exact no-op
/// on finite data (see kernels.hpp).
inline void add_outer_upper(double weight, const double* v, std::size_t n,
                            double* q, std::size_t ld) {
  for (std::size_t a = 0; a < n; ++a) {
    const double va = weight * v[a];
    if (va == 0.0) continue;
    double* q_row = q + a * ld;
    for (std::size_t b = a; b < n; ++b) q_row[b] += va * v[b];
  }
}

/// sum_i x[i]^2.
inline double norm_sq(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

/// sum_i (x[i] - y[i])^2.
inline double diff_norm_sq(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

/// sum_i (mask[i] * x[i] - y[i])^2 — the paper's data term
/// ||B o (L R^T) - X_B||_F^2 in one pass.
inline double masked_diff_norm_sq(const double* mask, const double* x,
                                  const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = mask[i] * x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

/// Panel dot (the trsv_multi back-substitution kernel): out[c] =
/// scalar::dot(a, column c of the row-major n x k panel b), bit for bit.
/// Each column keeps one sequential accumulator fed in ascending p order
/// — the exact op chain of scalar::dot — while the p-outer / c-inner loop
/// order lets the compiler vectorise across the independent columns.
inline void dot_panel(const double* a, const double* b, std::size_t ldb,
                      std::size_t n, std::size_t k, double* out) {
  for (std::size_t c = 0; c < k; ++c) out[c] = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    const double ap = a[p];
    const double* row = b + p * ldb;
    for (std::size_t c = 0; c < k; ++c) out[c] += ap * row[c];
  }
}

}  // namespace iup::linalg::kernels::scalar
