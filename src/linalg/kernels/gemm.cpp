#include "linalg/kernels/gemm.hpp"

#include <cmath>
#include <vector>

#include "linalg/kernels/kernels.hpp"

namespace iup::linalg::kernels {

namespace {

#if defined(IUP_KERNELS_AVX2)

constexpr std::size_t kMr = 4;  ///< rows per register block
constexpr std::size_t kNr = 8;  ///< columns per register block (2 x ymm)

// C tile (kMr x kNr at ldc) += Apanel * Bpanel over the FULL k extent.
// Apanel is k-major (kMr values per k), Bpanel is k-major (kNr values per
// k).  Eight accumulators live in registers: each output element is one
// lane of one accumulator, loaded from C first and fed ascending-k FMAs —
// the same per-element accumulation sequence as the scalar edge loop
// below and the axpy-tiled multiply_into path.
void micro_kernel(const double* ap, const double* bp, std::size_t k,
                  double* c, std::size_t ldc) {
  __m256d acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_loadu_pd(c + r * ldc);
    acc[r][1] = _mm256_loadu_pd(c + r * ldc + 4);
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(bp + kk * kNr);
    const __m256d b1 = _mm256_loadu_pd(bp + kk * kNr + 4);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256d a = _mm256_set1_pd(ap[kk * kMr + r]);
      acc[r][0] = _mm256_fmadd_pd(a, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(a, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    _mm256_storeu_pd(c + r * ldc, acc[r][0]);
    _mm256_storeu_pd(c + r * ldc + 4, acc[r][1]);
  }
}

// Scalar edge path with the micro-kernel's per-element arithmetic (FMA,
// single accumulator, ascending k).
void edge_block(const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * ldc + j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = std::fma(a[i * lda + kk], b[kk * ldb + j], acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

// Grow-only per-thread packing scratch: steady-state calls never allocate
// and concurrent callers (the parallel sweep, batched updates) never
// share buffers.
thread_local std::vector<double> t_apack;
thread_local std::vector<double> t_bpack;

void gemm_avx2(const double* a, std::size_t lda, const double* b,
               std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
               std::size_t k, std::size_t n) {
  const std::size_t m4 = m - m % kMr;
  const std::size_t n8 = n - n % kNr;

  // Pack every full kMr-row panel of A once (panel-major, k-major inside).
  t_apack.resize(m4 * k);
  for (std::size_t ic = 0; ic < m4; ic += kMr) {
    double* ap = t_apack.data() + ic * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t r = 0; r < kMr; ++r) {
        ap[kk * kMr + r] = a[(ic + r) * lda + kk];
      }
    }
  }

  t_bpack.resize(k * kNr);
  for (std::size_t jc = 0; jc < n8; jc += kNr) {
    double* bp = t_bpack.data();
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t cix = 0; cix < kNr; ++cix) {
        bp[kk * kNr + cix] = b[kk * ldb + jc + cix];
      }
    }
    for (std::size_t ic = 0; ic < m4; ic += kMr) {
      micro_kernel(t_apack.data() + ic * k, bp, k, c + ic * ldc + jc, ldc);
    }
  }

  // Right edge (n % kNr columns) over the full-tile rows, then the bottom
  // edge rows over all columns.
  if (n8 < n) {
    edge_block(a, lda, b + n8, ldb, c + n8, ldc, m4, k, n - n8);
  }
  if (m4 < m) {
    edge_block(a + m4 * lda, lda, b, ldb, c + m4 * ldc, ldc, m - m4, k, n);
  }
}

#else  // !IUP_KERNELS_AVX2

void gemm_scalar(const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                 std::size_t k, std::size_t n) {
  // Naive i-k-j with the row of C as the accumulator: per element this is
  // ascending-k mul+add, the scalar level's reference order.
  for (std::size_t i = 0; i < m; ++i) {
    double* c_row = c + i * ldc;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a[i * lda + kk];
      const double* b_row = b + kk * ldb;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += aik * b_row[j];
    }
  }
}

#endif  // IUP_KERNELS_AVX2

}  // namespace

void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
#if defined(IUP_KERNELS_AVX2)
  gemm_avx2(a, lda, b, ldb, c, ldc, m, k, n);
#else
  gemm_scalar(a, lda, b, ldb, c, ldc, m, k, n);
#endif
}

bool gemm_is_vectorized() {
#if defined(IUP_KERNELS_AVX2)
  return true;
#else
  return false;
#endif
}

}  // namespace iup::linalg::kernels
