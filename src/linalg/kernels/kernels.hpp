// iup::linalg::kernels — the SIMD micro-kernel layer of the solver hot
// path.
//
// One dispatch header, compile-time level selection: every translation
// unit of a build sees the same level, chosen by the flags the whole
// build was compiled with (the IUP_ARCH CMake knob; scripts/bench.sh
// benches at -march=native, CI exercises both a baseline and an
// x86-64-v3 cell).
//
//   kernels::dot / axpy / axpy2 / add_outer_upper / norm_sq /
//   diff_norm_sq / masked_diff_norm_sq   — forward to the active level
//   kernels::gemm_accumulate             — register-blocked packed GEMM
//                                          (kernels/gemm.hpp)
//   kernels::scalar::*                   — always available (reference)
//   kernels::avx2::*                     — only at the AVX2 level
//
// Determinism contract (the load-bearing guarantee):
//
//  * WITHIN one build (one dispatch level) every kernel is a pure
//    function of its operand values and length — never of alignment,
//    call site, tiling or thread count.  The solver sweep, the LRR
//    fan-out and the batched engine entry points therefore keep the PR 2
//    guarantee bit for bit: 1 thread and N threads produce identical
//    results at every dispatch level.
//  * ACROSS levels results may differ at ulp magnitude: the AVX2 level
//    contracts mul+add to FMA on the element-wise kernels and reduces
//    dot/norm accumulations through two vector lanes instead of one
//    scalar accumulator.  The scalar level reproduces the historical
//    (pre-kernel-layer) loops exactly.
//  * Zero-skips (add_outer_upper rows, the multiply_into pivot skip) are
//    exact no-ops on finite data: a contribution 0.0 * v adds +/-0, and
//    an accumulator seeded with +0 can never round to -0, so skipping
//    cannot change any finite result.
#pragma once

#include <cstddef>

#include "linalg/kernels/scalar.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define IUP_KERNELS_AVX2 1
#include "linalg/kernels/avx2.hpp"
#endif

namespace iup::linalg::kernels {

/// Compile-time dispatch levels.  kAvx2 requires the build to enable both
/// AVX2 and FMA (e.g. -march=x86-64-v3); anything else runs kScalar.
enum class Level { kScalar, kAvx2 };

constexpr Level active_level() {
#if defined(IUP_KERNELS_AVX2)
  return Level::kAvx2;
#else
  return Level::kScalar;
#endif
}

constexpr const char* active_level_name() {
  return active_level() == Level::kAvx2 ? "avx2" : "scalar";
}

inline double dot(const double* a, const double* b, std::size_t n) {
#if defined(IUP_KERNELS_AVX2)
  return avx2::dot(a, b, n);
#else
  return scalar::dot(a, b, n);
#endif
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
#if defined(IUP_KERNELS_AVX2)
  avx2::axpy(alpha, x, y, n);
#else
  scalar::axpy(alpha, x, y, n);
#endif
}

inline void axpy2(double a, const double* x, double b, const double* y,
                  double* out, std::size_t n) {
#if defined(IUP_KERNELS_AVX2)
  avx2::axpy2(a, x, b, y, out, n);
#else
  scalar::axpy2(a, x, b, y, out, n);
#endif
}

inline void add_outer_upper(double weight, const double* v, std::size_t n,
                            double* q, std::size_t ld) {
#if defined(IUP_KERNELS_AVX2)
  avx2::add_outer_upper(weight, v, n, q, ld);
#else
  scalar::add_outer_upper(weight, v, n, q, ld);
#endif
}

inline double norm_sq(const double* x, std::size_t n) {
#if defined(IUP_KERNELS_AVX2)
  return avx2::norm_sq(x, n);
#else
  return scalar::norm_sq(x, n);
#endif
}

inline double diff_norm_sq(const double* x, const double* y, std::size_t n) {
#if defined(IUP_KERNELS_AVX2)
  return avx2::diff_norm_sq(x, y, n);
#else
  return scalar::diff_norm_sq(x, y, n);
#endif
}

inline double masked_diff_norm_sq(const double* mask, const double* x,
                                  const double* y, std::size_t n) {
#if defined(IUP_KERNELS_AVX2)
  return avx2::masked_diff_norm_sq(mask, x, y, n);
#else
  return scalar::masked_diff_norm_sq(mask, x, y, n);
#endif
}

}  // namespace iup::linalg::kernels
