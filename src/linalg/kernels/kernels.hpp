// iup::linalg::kernels — the SIMD micro-kernel layer of the solver hot
// path.
//
// One dispatch header, compile-time level selection: every translation
// unit of a build sees the same level, chosen by the flags the whole
// build was compiled with (the IUP_ARCH CMake knob; scripts/bench.sh
// benches at -march=native, CI exercises both a baseline and an
// x86-64-v3 cell).
//
//   kernels::dot / axpy / axpy2 / add_outer_upper / norm_sq /
//   diff_norm_sq / masked_diff_norm_sq /
//   dot_panel                            — forward to the active level
//   kernels::gemm_accumulate             — register-blocked packed GEMM
//                                          (kernels/gemm.hpp)
//   kernels::scalar::*                   — always available (reference)
//   kernels::avx2::*                     — only at the AVX2+ levels
//   kernels::avx512::*                   — only at the AVX-512 level
//
// Determinism contract (the load-bearing guarantee):
//
//  * WITHIN one build (one dispatch level) every kernel is a pure
//    function of its operand values and length — never of alignment,
//    call site, tiling or thread count.  The solver sweep, the LRR
//    fan-out and the batched engine entry points therefore keep the PR 2
//    guarantee bit for bit: 1 thread and N threads produce identical
//    results at every dispatch level.
//  * ACROSS levels results may differ at ulp magnitude: the AVX2 and
//    AVX-512 levels contract mul+add to FMA on the element-wise kernels
//    and reduce dot/norm accumulations through vector-lane accumulators
//    (4-lane pairs at AVX2, 8-lane pairs at AVX-512) instead of one
//    scalar accumulator.  The scalar level reproduces the historical
//    (pre-kernel-layer) loops exactly.
//  * dot_panel (the trsv_multi / multi-RHS back-substitution kernel) is
//    held to a STRONGER promise: at every level, out[c] is bit-identical
//    to kernels::dot(a, column c of the panel) at that same level — the
//    panel solve in linalg/cholesky.cpp relies on it to keep each RHS of
//    a multi-RHS SPD solve exactly equal to the historical one-column
//    solve_factored_spd loop.
//  * Zero-skips (add_outer_upper rows, the multiply_into pivot skip) are
//    exact no-ops on finite data: a contribution 0.0 * v adds +/-0, and
//    an accumulator seeded with +0 can never round to -0, so skipping
//    cannot change any finite result.
#pragma once

#include <cstddef>

#include "linalg/kernels/scalar.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define IUP_KERNELS_AVX2 1
#include "linalg/kernels/avx2.hpp"
#endif

#if defined(__AVX512F__)
#define IUP_KERNELS_AVX512 1
#include "linalg/kernels/avx512.hpp"
#endif

namespace iup::linalg::kernels {

/// Compile-time dispatch levels.  kAvx512 requires AVX-512F
/// (e.g. -march=x86-64-v4); kAvx2 requires both AVX2 and FMA
/// (e.g. -march=x86-64-v3); anything else runs kScalar.  A build that
/// enables AVX-512 always dispatches the AVX-512 level (AVX2 is implied
/// by every avx512f target, but the wider level wins).
enum class Level { kScalar, kAvx2, kAvx512 };

// The ONE level-selection point: every forwarding wrapper below calls
// through `active`, so adding a dispatch level (or a kernel) is a single
// edit here plus the new implementation — no per-function #if ladders
// that could drift out of sync.
#if defined(IUP_KERNELS_AVX512)
namespace active = avx512;
#elif defined(IUP_KERNELS_AVX2)
namespace active = avx2;
#else
namespace active = scalar;
#endif

constexpr Level active_level() {
#if defined(IUP_KERNELS_AVX512)
  return Level::kAvx512;
#elif defined(IUP_KERNELS_AVX2)
  return Level::kAvx2;
#else
  return Level::kScalar;
#endif
}

constexpr const char* active_level_name() {
  return active_level() == Level::kAvx512  ? "avx512"
         : active_level() == Level::kAvx2 ? "avx2"
                                          : "scalar";
}

inline double dot(const double* a, const double* b, std::size_t n) {
  return active::dot(a, b, n);
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  active::axpy(alpha, x, y, n);
}

inline void axpy2(double a, const double* x, double b, const double* y,
                  double* out, std::size_t n) {
  active::axpy2(a, x, b, y, out, n);
}

inline void add_outer_upper(double weight, const double* v, std::size_t n,
                            double* q, std::size_t ld) {
  active::add_outer_upper(weight, v, n, q, ld);
}

inline double norm_sq(const double* x, std::size_t n) {
  return active::norm_sq(x, n);
}

inline double diff_norm_sq(const double* x, const double* y, std::size_t n) {
  return active::diff_norm_sq(x, y, n);
}

inline double masked_diff_norm_sq(const double* mask, const double* x,
                                  const double* y, std::size_t n) {
  return active::masked_diff_norm_sq(mask, x, y, n);
}

/// out[c] = dot(a, column c of the row-major n x k panel `b` with leading
/// dimension ldb), for c in [0, k) — bit-identical per column to calling
/// this level's dot() on a contiguous copy of that column, vectorised
/// across the RHS columns instead of along them.  The multi-RHS SPD
/// back substitution (linalg/cholesky.cpp) is the consumer.
inline void dot_panel(const double* a, const double* b, std::size_t ldb,
                      std::size_t n, std::size_t k, double* out) {
  active::dot_panel(a, b, ldb, n, k, out);
}

}  // namespace iup::linalg::kernels
