// AVX-512F implementations of the micro-kernels.
//
// Only compiled when the translation unit is built with AVX-512
// Foundation enabled (-march=x86-64-v4 / native via the IUP_ARCH CMake
// knob); the dispatch header includes this file conditionally, so builds
// without AVX-512 contain none of this code.  Only zmm arithmetic from
// AVX-512F is used (loadu/set1/fmadd/add/mul/store) — no VL/BW/DQ
// dependence — so any avx512f CPU runs this level.
//
// Rounding contract relative to kernels::scalar (see kernels.hpp):
//  * element-wise kernels (axpy, axpy2, add_outer_upper) evaluate each
//    element with one FMA, exactly like the AVX2 level, and are
//    position-independent: an element produces the same bits in a zmm
//    lane or in the std::fma tail, so splitting a row into segments
//    cannot change results;
//  * reductions (dot, norm_sq, diff_norm_sq, masked_diff_norm_sq) use two
//    8-lane accumulators over a 16-element body, one optional 8-element
//    chunk, a scalar tail (explicit fma for dot — dot_panel replays it —
//    mul+add for the norms), and the fixed combine tree
//    hsum8(acc0 + acc1) + tail with
//    hsum8(v) = ((v0+v1)+(v2+v3)) + ((v4+v5)+(v6+v7)).
//    All the *_norm_sq reductions share that tree, keeping identities
//    like diff_norm_sq(x, y) == norm_sq(x - y) exact;
//  * dot_panel reproduces THIS level's dot tree per RHS column while
//    vectorising across columns (see the contract in kernels.hpp).
#pragma once

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace iup::linalg::kernels::avx512 {

namespace detail {

/// Fixed-order 8-lane horizontal sum:
/// ((v0 + v1) + (v2 + v3)) + ((v4 + v5) + (v6 + v7)).
inline double hsum8(__m512d v) {
  alignas(64) double lane[8];
  _mm512_store_pd(lane, v);
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace detail

inline double dot(const double* a, const double* b, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    i += 8;
  }
  // Explicit fma pins the tail arithmetic the optimiser was already
  // emitting under default FP contraction — dot_panel must be able to
  // replay it exactly (lane or scalar), so it cannot be left to flags.
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], b[i], tail);
  return detail::hsum8(_mm512_add_pd(acc0, acc1)) + tail;
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i,
        _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

/// Per-element: out[i] += fma(b, y[i], a * x[i]), evaluated identically in
/// lanes and tail (the same per-element formula as the AVX2 level).
inline void axpy2(double a, const double* x, double b, const double* y,
                  double* out, std::size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  const __m512d vb = _mm512_set1_pd(b);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t = _mm512_fmadd_pd(
        vb, _mm512_loadu_pd(y + i),
        _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    _mm512_storeu_pd(out + i, _mm512_add_pd(_mm512_loadu_pd(out + i), t));
  }
  for (; i < n; ++i) out[i] += std::fma(b, y[i], a * x[i]);
}

// Streams FULL rows like the AVX2 level (uniform row axpys beat the
// half-flop triangular update at the sweep's rank): the strict lower
// triangle accumulates mirrored contributions and callers re-mirror from
// the upper triangle before consuming, per the kernels.hpp contract.
inline void add_outer_upper(double weight, const double* v, std::size_t n,
                            double* q, std::size_t ld) {
  for (std::size_t a = 0; a < n; ++a) {
    const double va = weight * v[a];
    if (va == 0.0) continue;
    axpy(va, v, q + a * ld, n);
  }
}

inline double norm_sq(const double* x, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d v0 = _mm512_loadu_pd(x + i);
    const __m512d v1 = _mm512_loadu_pd(x + i + 8);
    acc0 = _mm512_fmadd_pd(v0, v0, acc0);
    acc1 = _mm512_fmadd_pd(v1, v1, acc1);
  }
  if (i + 8 <= n) {
    const __m512d v = _mm512_loadu_pd(x + i);
    acc0 = _mm512_fmadd_pd(v, v, acc0);
    i += 8;
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i] * x[i];
  return detail::hsum8(_mm512_add_pd(acc0, acc1)) + tail;
}

inline double diff_norm_sq(const double* x, const double* y, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 =
        _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    const __m512d d1 =
        _mm512_sub_pd(_mm512_loadu_pd(x + i + 8), _mm512_loadu_pd(y + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    acc0 = _mm512_fmadd_pd(d, d, acc0);
    i += 8;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    tail += d * d;
  }
  return detail::hsum8(_mm512_add_pd(acc0, acc1)) + tail;
}

inline double masked_diff_norm_sq(const double* mask, const double* x,
                                  const double* y, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 =
        _mm512_sub_pd(_mm512_mul_pd(_mm512_loadu_pd(mask + i),
                                    _mm512_loadu_pd(x + i)),
                      _mm512_loadu_pd(y + i));
    const __m512d d1 =
        _mm512_sub_pd(_mm512_mul_pd(_mm512_loadu_pd(mask + i + 8),
                                    _mm512_loadu_pd(x + i + 8)),
                      _mm512_loadu_pd(y + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    const __m512d d =
        _mm512_sub_pd(_mm512_mul_pd(_mm512_loadu_pd(mask + i),
                                    _mm512_loadu_pd(x + i)),
                      _mm512_loadu_pd(y + i));
    acc0 = _mm512_fmadd_pd(d, d, acc0);
    i += 8;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = mask[i] * x[i] - y[i];
    tail += d * d;
  }
  return detail::hsum8(_mm512_add_pd(acc0, acc1)) + tail;
}

/// Panel dot (the trsv_multi back-substitution kernel): out[c] =
/// avx512::dot(a, column c of the row-major n x k panel b) bit for bit,
/// vectorised ACROSS the k RHS columns.  Per column the chunk/lane role
/// structure of this level's dot() is replayed exactly: sixteen
/// accumulators (one per mod-16 position class), the optional 8-chunk
/// feeding classes 0..7, an fma tail chain, and the hsum8 combine
/// tree.  Column blocks of 8 run in zmm registers (18 live zmm of the
/// 32); leftover columns replay the identical op sequence in scalar
/// std::fma arithmetic.
inline void dot_panel(const double* a, const double* b, std::size_t ldb,
                      std::size_t n, std::size_t k, double* out) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m512d acc[16];
    for (int l = 0; l < 16; ++l) acc[l] = _mm512_setzero_pd();
    std::size_t p = 0;
    for (; p + 16 <= n; p += 16) {
      for (int l = 0; l < 16; ++l) {
        acc[l] = _mm512_fmadd_pd(_mm512_set1_pd(a[p + l]),
                                 _mm512_loadu_pd(b + (p + l) * ldb + c),
                                 acc[l]);
      }
    }
    if (p + 8 <= n) {
      for (int l = 0; l < 8; ++l) {
        acc[l] = _mm512_fmadd_pd(_mm512_set1_pd(a[p + l]),
                                 _mm512_loadu_pd(b + (p + l) * ldb + c),
                                 acc[l]);
      }
      p += 8;
    }
    __m512d t = _mm512_setzero_pd();
    for (; p < n; ++p) {
      t = _mm512_fmadd_pd(_mm512_set1_pd(a[p]),
                          _mm512_loadu_pd(b + p * ldb + c), t);
    }
    // hsum8(acc0 + acc1) + tail, replayed per column: lane l of
    // (acc0 + acc1) is acc[l] + acc[l + 8].
    __m512d s[8];
    for (int l = 0; l < 8; ++l) s[l] = _mm512_add_pd(acc[l], acc[l + 8]);
    const __m512d left = _mm512_add_pd(_mm512_add_pd(s[0], s[1]),
                                       _mm512_add_pd(s[2], s[3]));
    const __m512d right = _mm512_add_pd(_mm512_add_pd(s[4], s[5]),
                                        _mm512_add_pd(s[6], s[7]));
    _mm512_storeu_pd(out + c,
                     _mm512_add_pd(_mm512_add_pd(left, right), t));
  }
  for (; c < k; ++c) {
    double acc[16] = {};
    std::size_t p = 0;
    for (; p + 16 <= n; p += 16) {
      for (int l = 0; l < 16; ++l) {
        acc[l] = std::fma(a[p + l], b[(p + l) * ldb + c], acc[l]);
      }
    }
    if (p + 8 <= n) {
      for (int l = 0; l < 8; ++l) {
        acc[l] = std::fma(a[p + l], b[(p + l) * ldb + c], acc[l]);
      }
      p += 8;
    }
    double t = 0.0;
    for (; p < n; ++p) t = std::fma(a[p], b[p * ldb + c], t);
    const double s0 = acc[0] + acc[8], s1 = acc[1] + acc[9];
    const double s2 = acc[2] + acc[10], s3 = acc[3] + acc[11];
    const double s4 = acc[4] + acc[12], s5 = acc[5] + acc[13];
    const double s6 = acc[6] + acc[14], s7 = acc[7] + acc[15];
    out[c] = (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + t;
  }
}

}  // namespace iup::linalg::kernels::avx512
