#include "linalg/cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "linalg/lu.hpp"

namespace iup::linalg {

namespace {

std::atomic<std::uint64_t> g_cholesky_failures{0};
std::atomic<std::uint64_t> g_bump_recoveries{0};
std::atomic<std::uint64_t> g_lu_fallbacks{0};

// Restore the upper triangle and diagonal of a partially-factored matrix
// from the untouched strict lower triangle and the saved diagonal, then
// add `bump` to every diagonal entry.
void restore_symmetric(Matrix& a, std::span<const double> diag, double bump) {
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = a(j, i);
    a(i, i) = diag[i] + bump;
  }
}

// Right-looking upper-triangular factorisation a = R^T R: reads and
// writes only the diagonal and the strict UPPER triangle (the strict
// lower stays untouched for the retry restore).  On row-major storage the
// pivot-row scale, every trailing rank-1 update and both substitution
// passes of solve_factored_spd run over contiguous row suffixes, so the
// whole SPD solve path vectorises through the kernel layer — the
// motivation for preferring R^T R over the classic lower L L^T here.
bool cholesky_upper_in_place(Matrix& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double* row_j = a.row_span(j).data();
    const double diag = row_j[j];
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double rjj = std::sqrt(diag);
    row_j[j] = rjj;
    for (std::size_t k = j + 1; k < n; ++k) row_j[k] /= rjj;
    for (std::size_t i = j + 1; i < n; ++i) {
      kernels::axpy(-row_j[i], row_j + i, a.row_span(i).data() + i, n - i);
    }
  }
  return true;
}

// Factor `a` in place with the deterministic diagonal-bump retry policy
// (see solve_spd_into's contract).  `diag_scratch` receives the original
// diagonal.  Returns true when `a` holds a usable upper factor (counting
// failures/recoveries); on false, `a` is restored to the symmetrised
// unbumped input and the caller pays for LU.
bool factor_spd_with_retry(Matrix& a, std::span<double> diag_scratch) {
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) diag_scratch[i] = a(i, i);
  if (cholesky_upper_in_place(a)) return true;
  g_cholesky_failures.fetch_add(1, std::memory_order_relaxed);

  double mean_diag = 0.0;
  for (const double d : diag_scratch) mean_diag += std::abs(d);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 0.0;
  // The bump stays relative to the matrix scale; the fallback to 1.0 only
  // applies when the diagonal is entirely zero (where a relative bump
  // would be a no-op and LU is the answer anyway).
  const double scale = mean_diag > 0.0 ? mean_diag : 1.0;
  for (const double rel_bump : {1e-10, 1e-6}) {
    restore_symmetric(a, diag_scratch, rel_bump * scale);
    if (cholesky_upper_in_place(a)) {
      g_bump_recoveries.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  restore_symmetric(a, diag_scratch, 0.0);
  return false;
}

}  // namespace

bool factor_spd(Matrix& a, std::span<double> diag_scratch) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("factor_spd: matrix must be square");
  }
  if (diag_scratch.size() != a.rows()) {
    throw std::invalid_argument("factor_spd: diag scratch size mismatch");
  }
  return factor_spd_with_retry(a, diag_scratch);
}

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  Matrix l = a;
  if (!cholesky_in_place(l)) return std::nullopt;
  // Callers of the allocating API expect a clean lower-triangular matrix.
  const std::size_t n = l.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  return l;
}

bool cholesky_in_place(Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_in_place: matrix must be square");
  }
  const std::size_t n = a.rows();
  // The k-prefix reductions run through the kernel layer (both operands
  // are contiguous row prefixes of the factored L).  Subtracting the
  // reduced sum once instead of term by term changes the factor at ulp
  // magnitude relative to pre-kernel releases — deterministically per
  // build, identically at every thread count.
  for (std::size_t j = 0; j < n; ++j) {
    const double* row_j = a.row_span(j).data();
    const double diag = a(j, j) - kernels::norm_sq(row_j, j);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const double acc =
          a(i, j) - kernels::dot(a.row_span(i).data(), row_j, j);
      a(i, j) = acc / ljj;
    }
  }
  return true;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  if (b.size() != l.rows()) {
    throw std::invalid_argument("cholesky_solve: size mismatch");
  }
  std::vector<double> x(b.begin(), b.end());
  cholesky_solve_in_place(l, x);
  return x;
}

void cholesky_solve_in_place(const Matrix& l, std::span<double> bx) {
  const std::size_t n = l.rows();
  if (bx.size() != n) {
    throw std::invalid_argument("cholesky_solve_in_place: size mismatch");
  }
  // L y = b: forward substitution, y overwrites b entry by entry; the
  // row-prefix reduction is contiguous on both sides and runs through the
  // kernel layer.
  for (std::size_t i = 0; i < n; ++i) {
    const double acc =
        bx[i] - kernels::dot(l.row_span(i).data(), bx.data(), i);
    bx[i] = acc / l(i, i);
  }
  // L^T x = y: back substitution, x overwrites y.
  for (std::size_t i = n; i-- > 0;) {
    double acc = bx[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= l(j, i) * bx[j];
    bx[i] = acc / l(i, i);
  }
}

void solve_factored_spd(const Matrix& r, std::span<double> bx) {
  const std::size_t n = r.rows();
  if (bx.size() != n) {
    throw std::invalid_argument("solve_factored_spd: size mismatch");
  }
  // R^T y = b: column-oriented forward elimination — once y_j is known,
  // its contribution streams into the remaining entries through the
  // contiguous suffix of row j.
  for (std::size_t j = 0; j < n; ++j) {
    const double* row_j = r.row_span(j).data();
    const double yj = bx[j] / row_j[j];
    bx[j] = yj;
    if (j + 1 < n) {
      kernels::axpy(-yj, row_j + j + 1, bx.data() + j + 1, n - j - 1);
    }
  }
  // R x = y: row-suffix dot back substitution.
  for (std::size_t i = n; i-- > 0;) {
    const double* row_i = r.row_span(i).data();
    const double acc =
        bx[i] - kernels::dot(row_i + i + 1, bx.data() + i + 1, n - i - 1);
    bx[i] = acc / row_i[i];
  }
}

void solve_factored_spd_multi(const Matrix& r, Matrix& panel,
                              std::span<double> dot_scratch) {
  const std::size_t n = r.rows();
  const std::size_t k = panel.cols();
  if (panel.rows() != n) {
    throw std::invalid_argument("solve_factored_spd_multi: panel rows");
  }
  if (dot_scratch.size() < k) {
    throw std::invalid_argument("solve_factored_spd_multi: scratch size");
  }
  if (k == 0) return;
  double* p = panel.data().data();
  // R^T y = b across the panel: once row j of y is known, its contribution
  // streams into every remaining panel row.  Per column this performs the
  // same ops as the single-RHS loop — b[i] += (-y_j) * r(j, i) there,
  // b[i][c] += (-r(j, i)) * y[j][c] here; mul and fma commute bitwise in
  // their factor operands, and the level's axpy evaluates every element
  // with the identical (position-independent) arithmetic.
  for (std::size_t j = 0; j < n; ++j) {
    const double* row_j = r.row_span(j).data();
    double* y_j = p + j * k;
    const double rjj = row_j[j];
    for (std::size_t c = 0; c < k; ++c) y_j[c] /= rjj;
    for (std::size_t i = j + 1; i < n; ++i) {
      kernels::axpy(-row_j[i], y_j, p + i * k, k);
    }
  }
  // R x = y: per output row one panel-wide suffix reduction; dot_panel
  // replays the active level's dot() tree per column, so the subtraction
  // and division below complete the exact single-RHS op sequence.
  for (std::size_t i = n; i-- > 0;) {
    const double* row_i = r.row_span(i).data();
    kernels::dot_panel(row_i + i + 1, p + (i + 1) * k, k, n - i - 1, k,
                       dot_scratch.data());
    double* x_i = p + i * k;
    const double rii = row_i[i];
    for (std::size_t c = 0; c < k; ++c) {
      x_i[c] = (x_i[c] - dot_scratch[c]) / rii;
    }
  }
}

void solve_spd_into(Matrix& a, std::span<double> bx,
                    std::span<double> diag_scratch) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("solve_spd_into: matrix must be square");
  }
  if (bx.size() != n || diag_scratch.size() != n) {
    throw std::invalid_argument("solve_spd_into: size mismatch");
  }
  if (factor_spd_with_retry(a, diag_scratch)) {
    solve_factored_spd(a, bx);
    return;
  }

  // Genuinely indefinite (or wildly ill-conditioned): pay for LU with
  // partial pivoting on the restored matrix.  This path allocates, but it
  // is rare by construction and now visible in the stats.
  g_lu_fallbacks.fetch_add(1, std::memory_order_relaxed);
  const std::vector<double> x = solve(a, bx);
  std::copy(x.begin(), x.end(), bx.begin());
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  Matrix work = a;
  std::vector<double> bx(b.begin(), b.end());
  std::vector<double> diag(a.rows());
  solve_spd_into(work, bx, diag);
  return bx;
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("solve_spd: row count mismatch");
  }
  Matrix work = a;
  std::vector<double> diag(a.rows());
  if (factor_spd_with_retry(work, diag)) {
    Matrix x(a.cols(), b.cols());
    std::vector<double> col(b.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      b.copy_col_into(j, col);
      solve_factored_spd(work, col);
      x.set_col(j, col);
    }
    return x;
  }
  g_lu_fallbacks.fetch_add(1, std::memory_order_relaxed);
  return solve(a, b);
}

SpdStats spd_stats() {
  SpdStats s;
  s.cholesky_failures = g_cholesky_failures.load(std::memory_order_relaxed);
  s.bump_recoveries = g_bump_recoveries.load(std::memory_order_relaxed);
  s.lu_fallbacks = g_lu_fallbacks.load(std::memory_order_relaxed);
  return s;
}

void reset_spd_stats() {
  g_cholesky_failures.store(0, std::memory_order_relaxed);
  g_bump_recoveries.store(0, std::memory_order_relaxed);
  g_lu_fallbacks.store(0, std::memory_order_relaxed);
}

}  // namespace iup::linalg
