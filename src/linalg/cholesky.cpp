#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace iup::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) {
    throw std::invalid_argument("cholesky_solve: size mismatch");
  }
  // L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * y[j];
    y[i] = acc / l(i, i);
  }
  // L^T x = y.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= l(j, i) * x[j];
    x[i] = acc / l(i, i);
  }
  return x;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  if (auto l = cholesky(a)) return cholesky_solve(*l, b);
  return solve(a, b);
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("solve_spd: row count mismatch");
  }
  if (auto l = cholesky(a)) {
    Matrix x(a.cols(), b.cols());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      x.set_col(j, cholesky_solve(*l, b.col(j)));
    }
    return x;
  }
  return solve(a, b);
}

}  // namespace iup::linalg
