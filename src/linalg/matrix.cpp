#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace iup::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::diag(std::initializer_list<double> d) {
  return diag(std::span<const double>(d.begin(), d.size()));
}

Matrix Matrix::toeplitz(double lower, double center, double upper,
                        std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = center;
    if (i + 1 < n) {
      m(i + 1, i) = lower;
      m(i, i + 1) = upper;
    }
  }
  return m;
}

Matrix Matrix::from_columns(const std::vector<std::vector<double>>& cols) {
  if (cols.empty()) return {};
  const std::size_t nr = cols.front().size();
  Matrix m(nr, cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (cols[j].size() != nr) {
      throw std::invalid_argument("from_columns: ragged input");
    }
    for (std::size_t i = 0; i < nr; ++i) m(i, j) = cols[j][i];
  }
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t nc = rows.front().size();
  Matrix m(rows.size(), nc);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != nc) {
      throw std::invalid_argument("from_rows: ragged input");
    }
    m.set_row(i, rows[i]);
  }
  return m;
}

double& Matrix::operator()(std::size_t i, std::size_t j) {
  return data_[index(i, j)];
}

double Matrix::operator()(std::size_t i, std::size_t j) const {
  return data_[index(i, j)];
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(i) + "," +
                            std::to_string(j) + ") out of " +
                            std::to_string(rows_) + "x" +
                            std::to_string(cols_));
  }
  return data_[index(i, j)];
}

double Matrix::at(std::size_t i, std::size_t j) const {
  return const_cast<Matrix*>(this)->at(i, j);
}

std::span<double> Matrix::row_span(std::size_t i) {
  return std::span<double>(data_).subspan(i * cols_, cols_);
}

std::span<const double> Matrix::row_span(std::size_t i) const {
  return std::span<const double>(data_).subspan(i * cols_, cols_);
}

std::vector<double> Matrix::row(std::size_t i) const {
  auto s = row_span(i);
  return {s.begin(), s.end()};
}

std::vector<double> Matrix::col(std::size_t j) const {
  std::vector<double> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::set_row(std::size_t i, std::span<const double> values) {
  if (values.size() != cols_) {
    throw std::invalid_argument("set_row: length mismatch");
  }
  std::copy(values.begin(), values.end(), row_span(i).begin());
}

void Matrix::set_col(std::size_t j, std::span<const double> values) {
  if (values.size() != rows_) {
    throw std::invalid_argument("set_col: length mismatch");
  }
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("Matrix::block out of range");
  }
  Matrix out(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    for (std::size_t j = 0; j < nc; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
  }
  return out;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= cols_) {
      throw std::out_of_range("select_columns: index out of range");
    }
    for (std::size_t i = 0; i < rows_; ++i) out(i, k) = (*this)(i, indices[k]);
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= rows_) {
      throw std::out_of_range("select_rows: index out of range");
    }
    out.set_row(k, row_span(indices[k]));
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::check_same_shape(const Matrix& rhs, const char* op) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument(std::string("Matrix ") + op +
                                ": shape mismatch " + std::to_string(rows_) +
                                "x" + std::to_string(cols_) + " vs " +
                                std::to_string(rhs.rows_) + "x" +
                                std::to_string(rhs.cols_));
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(rhs, "+=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(rhs, "-=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  for (double& v : data_) v /= s;
  return *this;
}

Matrix Matrix::operator-() const {
  Matrix out = *this;
  for (double& v : out.data_) v = -v;
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix product: inner dimension mismatch");
  }
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both b and out.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

std::vector<double> operator*(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("Matrix*vector: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    auto r = a.row_span(i);
    for (std::size_t j = 0; j < x.size(); ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::hadamard(const Matrix& rhs) const {
  check_same_shape(rhs, "hadamard");
  Matrix out = *this;
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] *= rhs.data_[k];
  return out;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Matrix::max() const {
  if (empty()) throw std::logic_error("Matrix::max on empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::min() const {
  if (empty()) throw std::logic_error("Matrix::min on empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Matrix::approx_equal(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    if (std::abs(data_[k] - rhs.data_[k]) > tol) return false;
  }
  return true;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    auto r = row_span(i);
    for (std::size_t a = 0; a < cols_; ++a) {
      const double ra = r[a];
      if (ra == 0.0) continue;
      for (std::size_t b = a; b < cols_; ++b) g(a, b) += ra * r[b];
    }
  }
  for (std::size_t a = 0; a < cols_; ++a) {
    for (std::size_t b = 0; b < a; ++b) g(a, b) = g(b, a);
  }
  return g;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace iup::linalg
