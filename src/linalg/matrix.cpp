#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/kernels/gemm.hpp"
#include "linalg/kernels/kernels.hpp"

namespace iup::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::diag(std::initializer_list<double> d) {
  return diag(std::span<const double>(d.begin(), d.size()));
}

Matrix Matrix::toeplitz(double lower, double center, double upper,
                        std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = center;
    if (i + 1 < n) {
      m(i + 1, i) = lower;
      m(i, i + 1) = upper;
    }
  }
  return m;
}

Matrix Matrix::from_columns(const std::vector<std::vector<double>>& cols) {
  if (cols.empty()) return {};
  const std::size_t nr = cols.front().size();
  Matrix m(nr, cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (cols[j].size() != nr) {
      throw std::invalid_argument("from_columns: ragged input");
    }
    for (std::size_t i = 0; i < nr; ++i) m(i, j) = cols[j][i];
  }
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t nc = rows.front().size();
  Matrix m(rows.size(), nc);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != nc) {
      throw std::invalid_argument("from_rows: ragged input");
    }
    m.set_row(i, rows[i]);
  }
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(i) + "," +
                            std::to_string(j) + ") out of " +
                            std::to_string(rows_) + "x" +
                            std::to_string(cols_));
  }
  return data_[index(i, j)];
}

double Matrix::at(std::size_t i, std::size_t j) const {
  return const_cast<Matrix*>(this)->at(i, j);
}

std::vector<double> Matrix::row(std::size_t i) const {
  auto s = row_span(i);
  return {s.begin(), s.end()};
}

std::vector<double> Matrix::col(std::size_t j) const {
  std::vector<double> out(rows_);
  copy_col_into(j, out);
  return out;
}

void Matrix::copy_col_into(std::size_t j, std::span<double> out) const {
  if (out.size() != rows_) {
    throw std::invalid_argument("copy_col_into: length mismatch");
  }
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
}

void Matrix::copy_row_into(std::size_t i, std::span<double> out) const {
  if (out.size() != cols_) {
    throw std::invalid_argument("copy_row_into: length mismatch");
  }
  auto s = row_span(i);
  std::copy(s.begin(), s.end(), out.begin());
}

void Matrix::set_row(std::size_t i, std::span<const double> values) {
  if (values.size() != cols_) {
    throw std::invalid_argument("set_row: length mismatch");
  }
  std::copy(values.begin(), values.end(), row_span(i).begin());
}

void Matrix::set_col(std::size_t j, std::span<const double> values) {
  if (values.size() != rows_) {
    throw std::invalid_argument("set_col: length mismatch");
  }
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("Matrix::block out of range");
  }
  Matrix out(nr, nc);
  // One contiguous copy per row — both matrices are row-major.
  for (std::size_t i = 0; i < nr; ++i) {
    const auto src = row_span(r0 + i).subspan(c0, nc);
    std::copy(src.begin(), src.end(), out.row_span(i).begin());
  }
  return out;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= cols_) {
      throw std::out_of_range("select_columns: index out of range");
    }
    for (std::size_t i = 0; i < rows_; ++i) out(i, k) = (*this)(i, indices[k]);
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= rows_) {
      throw std::out_of_range("select_rows: index out of range");
    }
    out.set_row(k, row_span(indices[k]));
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out;
  transpose_into(*this, out);
  return out;
}

void Matrix::check_same_shape(const Matrix& rhs, const char* op) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument(std::string("Matrix ") + op +
                                ": shape mismatch " + std::to_string(rows_) +
                                "x" + std::to_string(cols_) + " vs " +
                                std::to_string(rhs.rows_) + "x" +
                                std::to_string(rhs.cols_));
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(rhs, "+=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(rhs, "-=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  for (double& v : data_) v /= s;
  return *this;
}

Matrix Matrix::operator-() const {
  Matrix out = *this;
  for (double& v : out.data_) v = -v;
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  Matrix out;
  multiply_into(a, b, out);
  return out;
}

std::vector<double> operator*(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("Matrix*vector: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    auto r = a.row_span(i);
    for (std::size_t j = 0; j < x.size(); ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::hadamard(const Matrix& rhs) const {
  check_same_shape(rhs, "hadamard");
  Matrix out = *this;
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] *= rhs.data_[k];
  return out;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Matrix::max() const {
  if (empty()) throw std::logic_error("Matrix::max on empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::min() const {
  if (empty()) throw std::logic_error("Matrix::min on empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Matrix::approx_equal(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    if (std::abs(data_[k] - rhs.data_[k]) > tol) return false;
  }
  return true;
}

Matrix Matrix::gram() const {
  Matrix g;
  gram_into(*this, g);
  return g;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

namespace {

// Tile edge for the blocked kernels: 64 doubles = 512 B per row segment,
// so an out/a/b tile triple stays comfortably inside L1.
constexpr std::size_t kTile = 64;

void check_not_aliased(const Matrix& out, const Matrix& a, const Matrix& b,
                       const char* op) {
  if (&out == &a || &out == &b) {
    throw std::invalid_argument(std::string(op) + ": out aliases an input");
  }
}

}  // namespace

void multiply_into(const Matrix& a, const Matrix& b, Matrix& out) {
  check_not_aliased(out, a, b, "multiply_into");
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix product: inner dimension mismatch");
  }
  const std::size_t m = a.rows();
  const std::size_t inner = a.cols();
  const std::size_t n = b.cols();
  out.resize(m, n, 0.0);
  // Shapes with enough work to amortise panel packing route through the
  // register-blocked GEMM micro-kernel.  Per output element both paths
  // accumulate over k in ascending order with the active dispatch level's
  // element arithmetic, so the routing threshold cannot change results on
  // finite data (the pivot zero-skip below is an exact no-op, see
  // kernels.hpp).
  if (kernels::gemm_is_vectorized() && m >= 8 && inner >= 16 && n >= 16) {
    kernels::gemm_accumulate(a.data().data(), inner, b.data().data(), n,
                             out.data().data(), n, m, inner, n);
    return;
  }
  // Blocked i-k-j: for every out element the k contributions still arrive
  // in ascending order (k tiles ascending, k ascending within a tile), so
  // the result matches the naive triple loop at the active dispatch level.
  for (std::size_t i0 = 0; i0 < m; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, m);
    for (std::size_t k0 = 0; k0 < inner; k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, inner);
      for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
        const std::size_t j1 = std::min(j0 + kTile, n);
        for (std::size_t i = i0; i < i1; ++i) {
          auto out_row = out.row_span(i);
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            const auto b_row = b.row_span(k);
            kernels::axpy(aik, b_row.data() + j0, out_row.data() + j0,
                          j1 - j0);
          }
        }
      }
    }
  }
}

void multiply_transposed_into(const Matrix& a, const Matrix& b, Matrix& out) {
  check_not_aliased(out, a, b, "multiply_transposed_into");
  if (a.cols() != b.cols()) {
    throw std::invalid_argument(
        "multiply_transposed_into: inner dimension mismatch");
  }
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t inner = a.cols();
  out.resize(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto a_row = a.row_span(i);
    auto out_row = out.row_span(i);
    for (std::size_t j = 0; j < n; ++j) {
      const auto b_row = b.row_span(j);
      out_row[j] = kernels::dot(a_row.data(), b_row.data(), inner);
    }
  }
}

void transpose_into(const Matrix& a, Matrix& out) {
  check_not_aliased(out, a, a, "transpose_into");
  out.resize(a.cols(), a.rows());
  // Tiled so both the strided reads and the contiguous writes stay within
  // a cache-resident block.
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, a.rows());
    for (std::size_t j0 = 0; j0 < a.cols(); j0 += kTile) {
      const std::size_t j1 = std::min(j0 + kTile, a.cols());
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) out(j, i) = a(i, j);
      }
    }
  }
}

void gram_into(const Matrix& a, Matrix& out) {
  check_not_aliased(out, a, a, "gram_into");
  const std::size_t n = a.cols();
  out.resize(n, n, 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto r = a.row_span(i);
    // One rank-1 update of the upper triangle per row of a (suffix axpys).
    kernels::add_outer_upper(1.0, r.data(), n, out.data().data(), n);
  }
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < p; ++q) out(p, q) = out(q, p);
  }
}

void add_scaled(Matrix& y, double alpha, const Matrix& x) {
  if (y.rows() != x.rows() || y.cols() != x.cols()) {
    throw std::invalid_argument("add_scaled: shape mismatch");
  }
  kernels::axpy(alpha, x.data().data(), y.data().data(), y.size());
}

}  // namespace iup::linalg
