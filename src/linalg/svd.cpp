#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iup::linalg {

namespace {

// One-sided Jacobi on a tall-or-square matrix (m >= n).  Returns U (m x n),
// sigma (n) and V (n x n) with A = U * diag(sigma) * V^T, sigma descending.
void jacobi_svd_tall(const Matrix& a, Matrix& u, std::vector<double>& sigma,
                     Matrix& v) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix w = a;  // working copy whose columns converge to sigma_j * u_j
  v = Matrix::identity(n);

  const double eps = 1e-14;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;  // largest normalised off-diagonal correlation
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (alpha == 0.0 || beta == 0.0) continue;
        off = std::max(off, std::abs(gamma) / std::sqrt(alpha * beta));
        if (std::abs(gamma) <= eps * std::sqrt(alpha * beta)) continue;

        // Jacobi rotation that zeroes the (p,q) correlation.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < eps) break;
  }

  // Column norms are the singular values; sort descending.
  sigma.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(acc);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return sigma[x] > sigma[y];
                   });

  u = Matrix(m, n);
  Matrix v_sorted(n, n);
  std::vector<double> sigma_sorted(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = order[k];
    sigma_sorted[k] = sigma[j];
    if (sigma[j] > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, k) = w(i, j) / sigma[j];
    } else {
      // Null direction: leave the column zero.  Callers that need a full
      // orthonormal basis should re-orthogonalise; none of our algorithms do.
      for (std::size_t i = 0; i < m; ++i) u(i, k) = 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) v_sorted(i, k) = v(i, j);
  }
  sigma = std::move(sigma_sorted);
  v = std::move(v_sorted);
}

}  // namespace

Matrix SvdResult::reconstruct() const { return reconstruct_rank(sigma.size()); }

Matrix SvdResult::reconstruct_rank(std::size_t r) const {
  r = std::min(r, sigma.size());
  Matrix out(u.rows(), v.rows());
  for (std::size_t k = 0; k < r; ++k) {
    const double s = sigma[k];
    if (s == 0.0) continue;
    for (std::size_t i = 0; i < u.rows(); ++i) {
      const double uis = u(i, k) * s;
      if (uis == 0.0) continue;
      for (std::size_t j = 0; j < v.rows(); ++j) {
        out(i, j) += uis * v(j, k);
      }
    }
  }
  return out;
}

SvdResult svd(const Matrix& a) {
  if (a.empty()) throw std::invalid_argument("svd: empty matrix");
  SvdResult r;
  if (a.rows() >= a.cols()) {
    jacobi_svd_tall(a, r.u, r.sigma, r.v);
  } else {
    // SVD of A^T = V S U^T  =>  swap the factors.
    Matrix ut, vt;
    jacobi_svd_tall(a.transpose(), vt, r.sigma, ut);
    r.u = std::move(ut);
    r.v = std::move(vt);
  }
  return r;
}

std::vector<double> singular_values(const Matrix& a) { return svd(a).sigma; }

std::size_t numerical_rank(const Matrix& a, double rel_tol) {
  const auto s = singular_values(a);
  if (s.empty() || s.front() == 0.0) return 0;
  const double cutoff = rel_tol * s.front();
  std::size_t rank = 0;
  for (double v : s) {
    if (v > cutoff) ++rank;
  }
  return rank;
}

Matrix singular_value_threshold(const Matrix& a, double tau) {
  SvdResult d = svd(a);
  for (double& s : d.sigma) s = std::max(0.0, s - tau);
  return d.reconstruct();
}

void eigh_sym_in_place(Matrix& a, Matrix& v) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigh_sym_in_place: matrix must be square");
  }
  const std::size_t n = a.rows();
  v.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double eps = 1e-14;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Relative off-diagonal magnitude, measured against the diagonal scale
    // exactly as the one-sided SVD sweeps measure column correlations.
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double scale =
            std::sqrt(std::abs(a(p, p)) * std::abs(a(q, q)));
        if (scale > 0.0) off = std::max(off, std::abs(apq) / scale);
        if (scale > 0.0 && std::abs(apq) <= eps * scale) continue;

        // Jacobi rotation zeroing a(p, q).
        const double zeta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Rotate rows/columns p and q of the symmetric iterate.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    if (off < eps) break;
  }
}

}  // namespace iup::linalg
