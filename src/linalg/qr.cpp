#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/vec.hpp"
#include "parallel/thread_pool.hpp"

namespace iup::linalg {

namespace {

// Apply the Householder reflector defined by v (with v[0..j-1] == 0 implied
// by construction) to column c of m, rows j..rows-1.
void apply_reflector(Matrix& m, std::size_t col, std::size_t j,
                     std::span<const double> v, double beta) {
  double dot_vc = 0.0;
  for (std::size_t i = j; i < m.rows(); ++i) dot_vc += v[i] * m(i, col);
  const double f = beta * dot_vc;
  for (std::size_t i = j; i < m.rows(); ++i) m(i, col) -= f * v[i];
}

}  // namespace

QrResult qr(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(m, n);
  Matrix r = a;
  // Accumulate Q by applying the reflectors to the identity afterwards; we
  // keep the reflector vectors explicitly for clarity.
  std::vector<std::vector<double>> vs;
  std::vector<double> betas;
  vs.reserve(k);
  betas.reserve(k);

  for (std::size_t j = 0; j < k; ++j) {
    // Build the reflector that annihilates r(j+1.., j).
    double norm_x = 0.0;
    for (std::size_t i = j; i < m; ++i) norm_x += r(i, j) * r(i, j);
    norm_x = std::sqrt(norm_x);
    std::vector<double> v(m, 0.0);
    double beta = 0.0;
    if (norm_x > 0.0) {
      const double alpha = r(j, j) >= 0.0 ? -norm_x : norm_x;
      for (std::size_t i = j; i < m; ++i) v[i] = r(i, j);
      v[j] -= alpha;
      const double vnorm2 = dot(v, v);
      if (vnorm2 > 0.0) beta = 2.0 / vnorm2;
      for (std::size_t c = j; c < n; ++c) apply_reflector(r, c, j, v, beta);
    }
    vs.push_back(std::move(v));
    betas.push_back(beta);
  }

  // Zero the strictly-lower part explicitly (numerical dust).
  Matrix r_thin(k, n);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < n; ++j) r_thin(i, j) = r(i, j);
  }

  // Q = H_0 H_1 ... H_{k-1} * I_thin.
  Matrix q(m, k);
  for (std::size_t j = 0; j < k; ++j) q(j, j) = 1.0;
  for (std::size_t j = k; j-- > 0;) {
    for (std::size_t c = 0; c < k; ++c) {
      apply_reflector(q, c, j, vs[j], betas[j]);
    }
  }
  return {std::move(q), std::move(r_thin)};
}

QrcpResult qr_column_pivoted(const Matrix& a, double rel_tol,
                             std::size_t threads) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(m, n);
  const std::size_t ways = parallel::resolve_threads(threads);
  Matrix work = a;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  // Remaining squared column norms, updated as we go.
  std::vector<double> col_norm2(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) col_norm2[j] += work(i, j) * work(i, j);
  }
  const double max_norm =
      std::sqrt(*std::max_element(col_norm2.begin(), col_norm2.end()));
  const double cutoff = rel_tol * (max_norm > 0.0 ? max_norm : 1.0);

  std::vector<std::vector<double>> vs;
  std::vector<double> betas;
  std::size_t rank = 0;

  for (std::size_t j = 0; j < k; ++j) {
    // Pivot: bring the column with the largest remaining norm to position j.
    std::size_t pivot = j;
    for (std::size_t c = j + 1; c < n; ++c) {
      if (col_norm2[c] > col_norm2[pivot]) pivot = c;
    }
    if (std::sqrt(std::max(0.0, col_norm2[pivot])) <= cutoff) break;
    if (pivot != j) {
      for (std::size_t i = 0; i < m; ++i) {
        std::swap(work(i, j), work(i, pivot));
      }
      std::swap(col_norm2[j], col_norm2[pivot]);
      std::swap(perm[j], perm[pivot]);
    }

    double norm_x = 0.0;
    for (std::size_t i = j; i < m; ++i) norm_x += work(i, j) * work(i, j);
    norm_x = std::sqrt(norm_x);
    std::vector<double> v(m, 0.0);
    double beta = 0.0;
    if (norm_x > 0.0) {
      const double alpha = work(j, j) >= 0.0 ? -norm_x : norm_x;
      for (std::size_t i = j; i < m; ++i) v[i] = work(i, j);
      v[j] -= alpha;
      const double vnorm2 = dot(v, v);
      if (vnorm2 > 0.0) beta = 2.0 / vnorm2;
    }

    // Score the trailing columns: apply the reflector, then recompute the
    // residual column norm exactly.  The classic downdate (subtracting
    // work(j,c)^2) drifts once columns become nearly dependent, which
    // corrupts both the pivot order and the rank cutoff; our matrices are
    // small, so the exact O(mn) refresh is cheap.  Each trailing column is
    // owned by exactly one chunk (its work(:,c) entries and its
    // col_norm2[c] slot), and both the reflector application and the norm
    // accumulate serially within the column, so the fan-out is
    // bit-identical for any thread count.
    const bool have_reflector = norm_x > 0.0;
    const auto score_columns = [&](std::size_t begin, std::size_t end) {
      for (std::size_t off = begin; off < end; ++off) {
        const std::size_t c = j + off;
        if (have_reflector) apply_reflector(work, c, j, v, beta);
        if (c > j) {
          double acc = 0.0;
          for (std::size_t i = j + 1; i < m; ++i) {
            acc += work(i, c) * work(i, c);
          }
          col_norm2[c] = acc;
        }
      }
    };
    if (ways <= 1) {
      // Direct call on the serial path: no type-erased dispatch between
      // the pivot step and its inner loops.
      score_columns(0, n - j);
    } else {
      parallel::parallel_for(
          ways, n - j,
          [&](std::size_t begin, std::size_t end, std::size_t) {
            score_columns(begin, end);
          });
    }
    vs.push_back(std::move(v));
    betas.push_back(beta);
    ++rank;
  }

  Matrix r_thin(k, n);
  for (std::size_t i = 0; i < std::min(rank, k); ++i) {
    for (std::size_t j = i; j < n; ++j) r_thin(i, j) = work(i, j);
  }

  Matrix q(m, k);
  for (std::size_t j = 0; j < k; ++j) q(j, j) = 1.0;
  for (std::size_t j = vs.size(); j-- > 0;) {
    for (std::size_t c = 0; c < k; ++c) {
      apply_reflector(q, c, j, vs[j], betas[j]);
    }
  }
  return {std::move(q), std::move(r_thin), std::move(perm), rank};
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("least_squares: dimension mismatch");
  }
  if (a.rows() < a.cols()) {
    throw std::invalid_argument("least_squares: system is underdetermined");
  }
  const QrResult f = qr(a);
  // x = R^{-1} Q^T b  (back substitution).
  const std::size_t n = a.cols();
  std::vector<double> qtb(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) acc += f.q(i, j) * b[i];
    qtb[j] = acc;
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = qtb[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= f.r(i, j) * x[j];
    const double d = f.r(i, i);
    if (std::abs(d) < 1e-300) {
      throw std::runtime_error("least_squares: rank-deficient system");
    }
    x[i] = acc / d;
  }
  return x;
}

}  // namespace iup::linalg
