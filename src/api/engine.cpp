#include "api/engine.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "baselines/rass.hpp"
#include "core/mic.hpp"
#include "loc/knn.hpp"
#include "loc/omp.hpp"

namespace iup::api {

std::unique_ptr<loc::Localizer> make_localizer(
    LocalizerKind kind, const linalg::Matrix& database,
    const sim::Deployment* deployment) {
  switch (kind) {
    case LocalizerKind::kOmp:
      return std::make_unique<loc::OmpLocalizer>(database,
                                                 std::vector<double>{});
    case LocalizerKind::kKnn: {
      auto knn = std::make_unique<loc::KnnLocalizer>(database);
      knn->set_deployment(deployment);
      return knn;
    }
    case LocalizerKind::kRass:
      if (deployment == nullptr) return nullptr;
      return std::make_unique<baselines::Rass>(database, *deployment);
  }
  return nullptr;
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), store_(config_.history_limit()) {
  backend_ = config_.solver_backend();
  if (backend_ == nullptr) {
    backend_ = make_backend(config_.solver_name(), config_.rsvd());
  }
  if (backend_ == nullptr) {
    throw std::invalid_argument("Engine: unknown solver backend '" +
                                config_.solver_name() + "'");
  }
}

Result<SnapshotPtr> Engine::register_site(std::string site,
                                          linalg::Matrix x_original,
                                          linalg::Matrix b_mask) {
  if (site.empty()) {
    return Status::invalid_argument("register_site: empty site name");
  }
  if (store_.contains(site)) {
    return Status::failed_precondition("register_site: site '" + site +
                                       "' is already registered");
  }
  if (x_original.empty()) {
    return Status::invalid_argument("register_site: empty fingerprint matrix");
  }
  if (x_original.rows() != b_mask.rows() ||
      x_original.cols() != b_mask.cols()) {
    return Status::invalid_argument(
        "register_site: X is " + std::to_string(x_original.rows()) + "x" +
        std::to_string(x_original.cols()) + " but B is " +
        std::to_string(b_mask.rows()) + "x" + std::to_string(b_mask.cols()));
  }
  if (x_original.cols() % x_original.rows() != 0) {
    return Status::invalid_argument(
        "register_site: grid size " + std::to_string(x_original.cols()) +
        " is not a multiple of the link count " +
        std::to_string(x_original.rows()) + " (band layout)");
  }
  const core::BandLayout layout = core::band_layout_of(x_original);

  core::MicResult mic;
  linalg::Matrix z;
  try {
    mic = core::extract_mic(x_original, config_.mic_strategy());
    if (mic.reference_cells.empty()) {
      return Status::invalid_argument(
          "register_site: fingerprint matrix has rank 0, no reference "
          "locations can be selected");
    }
    z = core::acquire_correlation(mic, x_original, config_.lrr());
  } catch (const std::exception& e) {
    return Status::internal(std::string("register_site: ") + e.what());
  }

  auto snapshot = std::make_shared<FingerprintSnapshot>(
      site, store_.next_version(site), std::move(x_original),
      std::move(b_mask), layout, std::move(mic.reference_cells),
      std::move(z));
  if (const Status put = store_.put(snapshot); !put.ok()) return put;
  return SnapshotPtr(std::move(snapshot));
}

Status Engine::drop_site(const std::string& site) {
  deployments_.erase(site);
  localizers_.erase(site);
  return store_.erase_site(site);
}

Status Engine::attach_deployment(const std::string& site,
                                 const sim::Deployment* deployment) {
  if (deployment == nullptr) {
    return Status::invalid_argument("attach_deployment: null deployment");
  }
  if (!store_.contains(site)) {
    return Status::not_found("attach_deployment: unknown site '" + site +
                             "'");
  }
  deployments_[site] = deployment;
  localizers_.erase(site);  // rebuild with geometry on next localize
  return Status();
}

Result<SnapshotPtr> Engine::snapshot(const std::string& site) const {
  return store_.latest(site);
}

Result<SnapshotPtr> Engine::snapshot(const std::string& site,
                                     std::uint64_t version) const {
  return store_.at_version(site, version);
}

Result<std::vector<std::size_t>> Engine::reference_cells(
    const std::string& site) const {
  Result<SnapshotPtr> latest = store_.latest(site);
  if (!latest.ok()) return latest.status();
  return latest.value()->reference_cells();
}

Status Engine::set_reference_cells(const std::string& site,
                                   std::vector<std::size_t> cells) {
  Result<SnapshotPtr> latest = store_.latest(site);
  if (!latest.ok()) return latest.status();
  const SnapshotPtr& snap = latest.value();
  if (cells.empty()) {
    return Status::invalid_argument("set_reference_cells: empty reference "
                                    "set (at least one cell is required)");
  }
  for (const std::size_t cell : cells) {
    if (cell >= snap->database().cols()) {
      return Status::invalid_argument(
          "set_reference_cells: cell " + std::to_string(cell) +
          " is outside the " + std::to_string(snap->database().cols()) +
          "-cell grid");
    }
  }

  linalg::Matrix z;
  try {
    const core::MicResult mic =
        core::mic_from_cells(snap->database(), cells);
    z = core::acquire_correlation(mic, snap->database(), config_.lrr());
  } catch (const std::exception& e) {
    return Status::internal(std::string("set_reference_cells: ") + e.what());
  }

  auto next = std::make_shared<FingerprintSnapshot>(
      site, store_.next_version(site), snap->database(), snap->mask(),
      snap->layout(), std::move(cells), std::move(z), snap->day());
  return store_.put(std::move(next));
}

Result<UpdateResult> Engine::solve_request(const FingerprintSnapshot& snap,
                                           const UpdateRequest& request) const {
  const core::UpdateInputs& inputs = request.inputs;
  const linalg::Matrix& mask = snap.mask();
  if (inputs.x_b.rows() != mask.rows() || inputs.x_b.cols() != mask.cols()) {
    return Status::invalid_argument(
        "update: X_B is " + std::to_string(inputs.x_b.rows()) + "x" +
        std::to_string(inputs.x_b.cols()) + " but site '" + snap.site() +
        "' expects " + std::to_string(mask.rows()) + "x" +
        std::to_string(mask.cols()));
  }
  if (inputs.x_r.rows() != mask.rows() ||
      inputs.x_r.cols() != snap.reference_cells().size()) {
    return Status::invalid_argument(
        "update: X_R is " + std::to_string(inputs.x_r.rows()) + "x" +
        std::to_string(inputs.x_r.cols()) + " but site '" + snap.site() +
        "' expects one fresh column per reference location (" +
        std::to_string(mask.rows()) + "x" +
        std::to_string(snap.reference_cells().size()) + ")");
  }

  core::RsvdProblem problem;
  problem.x_b = inputs.x_b;
  problem.b = mask;
  if (backend_->uses_correlation()) {
    problem.p = inputs.x_r * snap.correlation();
  }

  UpdateResult result;
  try {
    result.solver = backend_->solve(problem, snap.layout());
  } catch (const std::exception& e) {
    return Status::internal("solver backend '" + backend_->name() +
                            "' failed: " + e.what());
  }
  result.reference_count = snap.reference_cells().size();
  result.base_version = snap.version();
  return result;
}

Result<UpdateResult> Engine::reconstruct(const UpdateRequest& request) const {
  Result<SnapshotPtr> latest = store_.latest(request.site);
  if (!latest.ok()) return latest.status();
  return solve_request(*latest.value(), request);
}

Result<UpdateResult> Engine::update(const UpdateRequest& request) {
  Result<SnapshotPtr> latest = store_.latest(request.site);
  if (!latest.ok()) return latest.status();
  const SnapshotPtr& snap = latest.value();

  Result<UpdateResult> solved = solve_request(*snap, request);
  if (!solved.ok()) return solved;
  UpdateResult result = std::move(solved).value();

  // Commit: the reconstruction becomes the latest database; optionally
  // re-acquire the correlation from it for the next cycle (the paper's
  // "original or latest updated" phrasing).
  std::vector<std::size_t> cells = snap->reference_cells();
  linalg::Matrix z = snap->correlation();
  if (config_.refresh_correlation()) {
    try {
      const core::MicResult mic =
          core::mic_from_cells(result.solver.x_hat, cells);
      z = core::acquire_correlation(mic, result.solver.x_hat, config_.lrr());
    } catch (const std::exception& e) {
      return Status::internal(std::string("update: correlation refresh: ") +
                              e.what());
    }
  }

  auto next = std::make_shared<FingerprintSnapshot>(
      request.site, store_.next_version(request.site), result.solver.x_hat,
      snap->mask(), snap->layout(), std::move(cells), std::move(z),
      request.day);
  if (const Status put = store_.put(next); !put.ok()) return put;
  result.committed_version = next->version();
  result.snapshot = std::move(next);
  return result;
}

std::vector<Result<UpdateResult>> Engine::update_batch(
    const std::vector<UpdateRequest>& requests) {
  std::vector<Result<UpdateResult>> results;
  results.reserve(requests.size());
  for (const UpdateRequest& request : requests) {
    // In-order application keeps same-site batches exactly equivalent to
    // sequential update() calls; each request reads the store state its
    // predecessors committed.
    results.push_back(update(request));
  }
  return results;
}

Result<const loc::Localizer*> Engine::localizer_for(
    const std::string& site) const {
  Result<SnapshotPtr> latest = store_.latest(site);
  if (!latest.ok()) return latest.status();
  const SnapshotPtr& snap = latest.value();

  const auto cached = localizers_.find(site);
  if (cached != localizers_.end() &&
      cached->second.version == snap->version()) {
    return static_cast<const loc::Localizer*>(
        cached->second.localizer.get());
  }

  const auto dep = deployments_.find(site);
  std::unique_ptr<loc::Localizer> built;
  try {
    built = make_localizer(config_.localizer(), snap->database(),
                           dep == deployments_.end() ? nullptr : dep->second);
  } catch (const std::exception& e) {
    return Status::internal(std::string("localizer construction: ") +
                            e.what());
  }
  if (built == nullptr) {
    return Status::failed_precondition(
        "localize: this localizer needs deployment geometry; call "
        "attach_deployment('" + site + "', ...) first");
  }
  CachedLocalizer& slot = localizers_[site];
  slot.version = snap->version();
  slot.localizer = std::move(built);
  return static_cast<const loc::Localizer*>(slot.localizer.get());
}

Result<loc::LocalizationEstimate> Engine::localize(
    const std::string& site, std::span<const double> measurement) const {
  Result<SnapshotPtr> latest = store_.latest(site);
  if (!latest.ok()) return latest.status();
  if (measurement.size() != latest.value()->database().rows()) {
    return Status::invalid_argument(
        "localize: measurement has " + std::to_string(measurement.size()) +
        " entries but site '" + site + "' has " +
        std::to_string(latest.value()->database().rows()) + " links");
  }
  Result<const loc::Localizer*> localizer = localizer_for(site);
  if (!localizer.ok()) return localizer.status();
  try {
    return localizer.value()->localize(measurement);
  } catch (const std::exception& e) {
    return Status::internal(std::string("localize: ") + e.what());
  }
}

Result<std::vector<loc::LocalizationEstimate>> Engine::localize_batch(
    const std::string& site,
    const std::vector<std::vector<double>>& measurements) const {
  Result<SnapshotPtr> latest = store_.latest(site);
  if (!latest.ok()) return latest.status();
  const std::size_t links = latest.value()->database().rows();
  for (std::size_t k = 0; k < measurements.size(); ++k) {
    if (measurements[k].size() != links) {
      return Status::invalid_argument(
          "localize_batch: measurement " + std::to_string(k) + " has " +
          std::to_string(measurements[k].size()) + " entries but site '" +
          site + "' has " + std::to_string(links) + " links");
    }
  }
  Result<const loc::Localizer*> localizer = localizer_for(site);
  if (!localizer.ok()) return localizer.status();
  try {
    return localizer.value()->localize_batch(measurements);
  } catch (const std::exception& e) {
    return Status::internal(std::string("localize_batch: ") + e.what());
  }
}

}  // namespace iup::api
