#include "api/engine.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <utility>

#include "baselines/rass.hpp"
#include "core/mic.hpp"
#include "loc/knn.hpp"
#include "loc/omp.hpp"
#include "parallel/thread_pool.hpp"

namespace iup::api {

namespace {

// Input hygiene for the service boundary: a single NaN/Inf smuggled into a
// solve poisons every downstream iterate (and commits a corrupt snapshot),
// so malformed RSS is rejected with kInvalidArgument BEFORE any state is
// touched.  One linear pass over caller-provided data — noise next to the
// solves it protects.
bool all_finite(const linalg::Matrix& m) {
  for (const double v : m.data()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool all_finite(std::span<const double> v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

std::unique_ptr<loc::Localizer> make_localizer(
    LocalizerKind kind, const linalg::Matrix& database,
    const sim::Deployment* deployment, std::size_t threads) {
  switch (kind) {
    case LocalizerKind::kOmp:
      return std::make_unique<loc::OmpLocalizer>(database,
                                                 std::vector<double>{});
    case LocalizerKind::kKnn: {
      auto knn = std::make_unique<loc::KnnLocalizer>(database);
      knn->set_deployment(deployment);
      return knn;
    }
    case LocalizerKind::kRass: {
      if (deployment == nullptr) return nullptr;
      baselines::RassOptions options;
      options.threads = threads;
      return std::make_unique<baselines::Rass>(database, *deployment,
                                               options);
    }
  }
  return nullptr;
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      hooks_(config_.update_hooks()),
      store_(config_.history_limit()) {
  // The effective thread count wins over the per-options thread knobs no
  // matter in which order the fluent setters were called: the solver
  // sweep, the MIC column scoring and the LRR fan-out all share it.
  lrr_options_ = config_.lrr();
  lrr_options_.threads = config_.threads();
  backend_ = config_.solver_backend();
  if (backend_ == nullptr) {
    core::RsvdOptions options = config_.rsvd();
    options.threads = config_.threads();
    backend_ = make_backend(config_.solver_name(), options);
  }
  if (backend_ == nullptr) {
    throw std::invalid_argument("Engine: unknown solver backend '" +
                                config_.solver_name() + "'");
  }
  warm_start_enabled_ = config_.warm_start() && backend_->uses_warm_start();
  lrr_warm_enabled_ = config_.lrr_warm_start();
}

std::shared_ptr<const core::LrrWarmStart> Engine::lrr_warm_for(
    const std::string& site, std::uint64_t version) const {
  if (!lrr_warm_enabled_) return nullptr;
  const auto shard = shards_->find(site);
  if (shard == nullptr) return nullptr;
  const auto lock = shard->lock_for_update();
  const serve::WarmCaches& caches = shard->caches(lock);
  if (caches.lrr_version != version) return nullptr;
  return caches.lrr;
}

std::shared_ptr<const core::LrrWarmStart> Engine::lrr_state_of(
    const linalg::Matrix& z, core::LrrResult&& result) {
  auto state = std::make_shared<core::LrrWarmStart>();
  state->z = z;
  state->y1 = std::move(result.y1);
  state->y2 = std::move(result.y2);
  state->mu = result.mu_final;
  return state;
}

void Engine::cache_warm_state(
    const std::string& site, std::uint64_t version,
    std::shared_ptr<const linalg::Matrix> factor,
    std::shared_ptr<const core::LrrWarmStart> lrr) const {
  if (factor == nullptr && lrr == nullptr) return;
  const auto shard = shards_->find(site);
  if (shard == nullptr) return;  // site dropped since the commit
  const auto lock = shard->lock_for_update();
  serve::WarmCaches& caches = shard->caches(lock);
  // Monotonic: never let a slower writer overwrite a newer commit's cache
  // with an older entry (consultation is exact-version-match, so a stale
  // overwrite would only cost a cold start — but it is free to prevent).
  if (factor != nullptr && version >= caches.factor_version) {
    caches.factor_version = version;
    caches.factor = std::move(factor);
  }
  if (lrr != nullptr && version >= caches.lrr_version) {
    caches.lrr_version = version;
    caches.lrr = std::move(lrr);
  }
}

Result<std::shared_ptr<const loc::Localizer>> Engine::build_localizer(
    const linalg::Matrix& database, const sim::Deployment* deployment) const {
  // A null result is a VALID bundle payload: the configured kind needs
  // deployment geometry that is not attached yet, so the site publishes a
  // data-only bundle and localize() reports the precondition until
  // attach_deployment republishes.
  try {
    return std::shared_ptr<const loc::Localizer>(make_localizer(
        config_.localizer(), database, deployment, config_.threads()));
  } catch (const std::exception& e) {
    return Status::internal(std::string("localizer construction: ") +
                            e.what());
  }
}

Result<SnapshotPtr> Engine::register_site(std::string site,
                                          linalg::Matrix x_original,
                                          linalg::Matrix b_mask) {
  return register_site(std::move(site), std::move(x_original),
                       std::move(b_mask), {});
}

Result<SnapshotPtr> Engine::register_site(std::string site,
                                          linalg::Matrix x_original,
                                          linalg::Matrix b_mask,
                                          std::vector<SourceInfo> sources) {
  if (site.empty()) {
    return Status::invalid_argument("register_site: empty site name");
  }
  {
    const auto lock = state_lock();
    if (store_.contains(site)) {
      return Status::failed_precondition("register_site: site '" + site +
                                         "' is already registered");
    }
  }
  if (x_original.empty()) {
    return Status::invalid_argument("register_site: empty fingerprint matrix");
  }
  if (x_original.rows() != b_mask.rows() ||
      x_original.cols() != b_mask.cols()) {
    return Status::invalid_argument(
        "register_site: X is " + std::to_string(x_original.rows()) + "x" +
        std::to_string(x_original.cols()) + " but B is " +
        std::to_string(b_mask.rows()) + "x" + std::to_string(b_mask.cols()));
  }
  if (x_original.cols() % x_original.rows() != 0) {
    return Status::invalid_argument(
        "register_site: grid size " + std::to_string(x_original.cols()) +
        " is not a multiple of the link count " +
        std::to_string(x_original.rows()) + " (band layout)");
  }
  if (!all_finite(x_original) || !all_finite(b_mask)) {
    return Status::invalid_argument(
        "register_site: survey matrix contains non-finite entries");
  }
  // Source-table hygiene (multi-radio model): one entry per link, every
  // id specified and unique.  An empty table is the legacy degenerate
  // case — single technology, no source validation anywhere downstream.
  if (!sources.empty()) {
    if (sources.size() != x_original.rows()) {
      return Status::invalid_argument(
          "register_site: source table has " +
          std::to_string(sources.size()) + " entries but the site has " +
          std::to_string(x_original.rows()) + " links");
    }
    std::unordered_map<std::uint64_t, std::size_t> seen;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].id.specified()) {
        return Status::invalid_argument(
            "register_site: source for link " + std::to_string(i) +
            " has an unspecified id");
      }
      const auto [it, fresh] = seen.try_emplace(sources[i].id.value(), i);
      if (!fresh) {
        return Status::invalid_argument(
            "register_site: source id " +
            std::to_string(sources[i].id.value()) +
            " is registered for both link " + std::to_string(it->second) +
            " and link " + std::to_string(i));
      }
    }
  }
  const core::BandLayout layout = core::band_layout_of(x_original);

  core::MicResult mic;
  linalg::Matrix z;
  std::shared_ptr<const core::LrrWarmStart> lrr_state;
  try {
    mic = core::extract_mic(x_original, config_.mic_strategy(),
                            core::kMicDefaultRelTol, config_.threads());
    if (mic.reference_cells.empty()) {
      return Status::invalid_argument(
          "register_site: fingerprint matrix has rank 0, no reference "
          "locations can be selected");
    }
    core::LrrResult lrr =
        core::acquire_correlation_full(mic, x_original, lrr_options_);
    z = std::move(lrr.z);
    // Seed the refresh warm-start cache from the registration solve, so
    // even the site's first update refreshes warm.
    if (lrr_warm_enabled_) lrr_state = lrr_state_of(z, std::move(lrr));
  } catch (const std::exception& e) {
    return Status::internal(std::string("register_site: ") + e.what());
  }

  // The first serving bundle's localizer, built outside the lock (no
  // deployment can be attached before registration succeeds).
  Result<std::shared_ptr<const loc::Localizer>> localizer =
      build_localizer(x_original, nullptr);
  if (!localizer.ok()) return localizer.status();

  std::uint64_t version = 0;
  SnapshotPtr published;
  {
    const auto lock = state_lock();
    // Re-check under the commit lock: a concurrent register_site for the
    // same name may have won the race since the early check above.
    if (store_.contains(site)) {
      return Status::failed_precondition("register_site: site '" + site +
                                         "' is already registered");
    }
    auto snapshot = std::make_shared<FingerprintSnapshot>(
        site, store_.next_version(site), std::move(x_original),
        std::move(b_mask), layout, std::move(mic.reference_cells),
        std::move(z), /*day=*/0, std::move(sources));
    if (const Status put = store_.put(snapshot); !put.ok()) return put;
    version = snapshot->version();
    published = snapshot;
    const auto shard = shards_->emplace(site);
    shard->publish(std::make_shared<const serve::PublishedSite>(
        serve::PublishedSite{published, std::move(localizer).value()}));
  }
  cache_warm_state(site, version, nullptr, lrr_state);
  // Durability tap: registration is a commit like any other (version 1).
  if (hooks_.after_commit) {
    hooks_.after_commit(CommitEvent{published, nullptr, std::move(lrr_state)});
  }
  return published;
}

Status Engine::drop_site(const std::string& site) {
  const auto lock = state_lock();
  deployments_.erase(site);
  // Readers that already resolved the shard keep serving its last bundle;
  // new lookups miss.  Warm caches die with the shard.
  shards_->erase(site);
  return store_.erase_site(site);
}

std::optional<std::uint64_t> Engine::warm_start_version(
    const std::string& site) const {
  const auto shard = shards_->find(site);
  if (shard == nullptr) return std::nullopt;
  const auto lock = shard->lock_for_update();
  const serve::WarmCaches& caches = shard->caches(lock);
  if (caches.factor == nullptr) return std::nullopt;
  return caches.factor_version;
}

std::optional<std::uint64_t> Engine::lrr_warm_version(
    const std::string& site) const {
  const auto shard = shards_->find(site);
  if (shard == nullptr) return std::nullopt;
  const auto lock = shard->lock_for_update();
  const serve::WarmCaches& caches = shard->caches(lock);
  if (caches.lrr == nullptr) return std::nullopt;
  return caches.lrr_version;
}

Status Engine::attach_deployment(const std::string& site,
                                 const sim::Deployment* deployment) {
  if (deployment == nullptr) {
    return Status::invalid_argument("attach_deployment: null deployment");
  }
  SnapshotPtr snap;
  {
    const auto lock = state_lock();
    if (!store_.contains(site)) {
      return Status::not_found("attach_deployment: unknown site '" + site +
                               "'");
    }
    // From here on every commit path reads the new pointer at its own
    // commit time, so any update racing with this attach republishes with
    // geometry itself (the deployment-pointer recheck in update()).
    deployments_[site] = deployment;
    snap = store_.latest(site).value();
  }

  Result<std::shared_ptr<const loc::Localizer>> localizer =
      build_localizer(snap->database(), deployment);
  if (!localizer.ok()) return localizer.status();

  const auto lock = state_lock();
  const auto current = deployments_.find(site);
  if (current == deployments_.end() || current->second != deployment) {
    return Status();  // a newer attach/drop superseded us; its publish wins
  }
  const Result<SnapshotPtr> latest = store_.latest(site);
  if (!latest.ok() || latest.value()->version() != snap->version()) {
    // The site advanced while we were building: that commit already
    // published a bundle built with the pointer we installed above.
    return Status();
  }
  if (const auto shard = shards_->find(site); shard != nullptr) {
    shard->publish(std::make_shared<const serve::PublishedSite>(
        serve::PublishedSite{snap, std::move(localizer).value()}));
  }
  return Status();
}

Result<SnapshotPtr> Engine::snapshot(const std::string& site) const {
  const auto lock = state_lock();
  return store_.latest(site);
}

Result<SnapshotPtr> Engine::snapshot(const std::string& site,
                                     std::uint64_t version) const {
  const auto lock = state_lock();
  return store_.at_version(site, version);
}

Result<std::vector<CellId>> Engine::reference_cells(
    const std::string& site) const {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  return to_cell_ids(latest.value()->reference_cells());
}

Result<std::vector<SourceInfo>> Engine::sources(
    const std::string& site) const {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  return latest.value()->sources();
}

Status Engine::set_reference_cells(const std::string& site,
                                   std::vector<CellId> cells) {
  return set_reference_cells_impl(site, to_raw_cells(cells));
}

Status Engine::set_reference_cells_impl(const std::string& site,
                                        std::vector<std::size_t> cells) {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  const SnapshotPtr& snap = latest.value();
  if (cells.empty()) {
    return Status::invalid_argument("set_reference_cells: empty reference "
                                    "set (at least one cell is required)");
  }
  for (const std::size_t cell : cells) {
    if (cell >= snap->database().cols()) {
      return Status::invalid_argument(
          "set_reference_cells: cell " + std::to_string(cell) +
          " is outside the " + std::to_string(snap->database().cols()) +
          "-cell grid");
    }
  }

  // A reference-set change invalidates any cached ADMM state by shape, so
  // this refresh always solves cold (the convergence-preserving reset) —
  // and its state re-seeds the cache for the version it commits.
  Result<core::LrrResult> refreshed =
      refreshed_correlation(snap->database(), cells, nullptr);
  if (!refreshed.ok()) {
    return Status::internal("set_reference_cells: " +
                            refreshed.status().message());
  }
  core::LrrResult lrr = std::move(refreshed).value();
  linalg::Matrix z = std::move(lrr.z);
  std::shared_ptr<const core::LrrWarmStart> lrr_state;
  if (lrr_warm_enabled_) lrr_state = lrr_state_of(z, std::move(lrr));

  std::uint64_t version = 0;
  SnapshotPtr committed;
  {
    const auto lock = state_lock();
    if (store_.next_version(site) != snap->version() + 1) {
      return Status::failed_precondition(
          "set_reference_cells: site '" + site +
          "' advanced past version " + std::to_string(snap->version()) +
          " while re-acquiring the correlation (concurrent update)");
    }
    auto next = std::make_shared<FingerprintSnapshot>(
        site, snap->version() + 1, snap->database(), snap->mask(),
        snap->layout(), std::move(cells), std::move(z), snap->day(),
        snap->sources());
    if (const Status put = store_.put(next); !put.ok()) return put;
    version = next->version();
    committed = next;
    if (const auto shard = shards_->find(site); shard != nullptr) {
      // The database is unchanged, so the published localizer matches the
      // new snapshot bit for bit — republish it with the new version
      // rather than rebuilding the dictionary.
      const serve::PublishedPtr bundle = shard->published();
      shard->publish(std::make_shared<const serve::PublishedSite>(
          serve::PublishedSite{std::move(next), bundle->localizer}));
    }
  }
  cache_warm_state(site, version, nullptr, lrr_state);
  if (hooks_.after_commit) {
    hooks_.after_commit(
        CommitEvent{std::move(committed), nullptr, std::move(lrr_state)});
  }
  return Status();
}

Result<UpdateResult> Engine::solve_request(const FingerprintSnapshot& snap,
                                           const UpdateRequest& request) const {
  const core::UpdateInputs& inputs = request.inputs;
  const linalg::Matrix& mask = snap.mask();
  if (inputs.x_b.rows() != mask.rows() || inputs.x_b.cols() != mask.cols()) {
    return Status::invalid_argument(
        "update: X_B is " + std::to_string(inputs.x_b.rows()) + "x" +
        std::to_string(inputs.x_b.cols()) + " but site '" + snap.site() +
        "' expects " + std::to_string(mask.rows()) + "x" +
        std::to_string(mask.cols()));
  }
  if (inputs.x_r.rows() != mask.rows() ||
      inputs.x_r.cols() != snap.reference_cells().size()) {
    return Status::invalid_argument(
        "update: X_R is " + std::to_string(inputs.x_r.rows()) + "x" +
        std::to_string(inputs.x_r.cols()) + " but site '" + snap.site() +
        "' expects one fresh column per reference location (" +
        std::to_string(mask.rows()) + "x" +
        std::to_string(snap.reference_cells().size()) + ")");
  }
  // Reject corrupt measurements before any solver state is built: a
  // non-finite entry would propagate through the factor iterates and, on
  // the update path, commit a poisoned snapshot.
  if (!all_finite(inputs.x_b)) {
    return Status::invalid_argument(
        "update: X_B contains non-finite RSS values");
  }
  if (!all_finite(inputs.x_r)) {
    return Status::invalid_argument(
        "update: X_R contains non-finite RSS values");
  }
  // Source-provenance check: inputs that declare where their rows came
  // from must agree with the site's registered table link by link (a row
  // swap between technologies is undetectable numerically but corrupts
  // the fingerprint semantics).  Unattributed inputs (empty) are accepted
  // for compatibility with pre-source measurement campaigns.
  if (!inputs.sources.empty()) {
    const std::vector<SourceInfo>& registered = snap.sources();
    if (registered.empty()) {
      return Status::invalid_argument(
          "update: inputs carry a source table but site '" + snap.site() +
          "' was registered without one");
    }
    if (inputs.sources.size() != registered.size()) {
      return Status::invalid_argument(
          "update: inputs carry " + std::to_string(inputs.sources.size()) +
          " sources but site '" + snap.site() + "' registered " +
          std::to_string(registered.size()));
    }
    for (std::size_t i = 0; i < registered.size(); ++i) {
      if (inputs.sources[i] != registered[i]) {
        return Status::invalid_argument(
            "update: source for link " + std::to_string(i) + " is id " +
            std::to_string(inputs.sources[i].id.value()) + " (" +
            std::string(to_string(inputs.sources[i].technology)) +
            ") but site '" + snap.site() + "' registered id " +
            std::to_string(registered[i].id.value()) + " (" +
            std::string(to_string(registered[i].technology)) + ")");
      }
    }
  }
  // Fault-injection / chaos seam: a non-OK on_solve hook IS a solver
  // failure as far as every caller can tell (empty by default).
  if (hooks_.on_solve) {
    if (Status forced = hooks_.on_solve(); !forced.ok()) return forced;
  }

  core::RsvdProblem problem;
  problem.x_b = inputs.x_b;
  problem.b = mask;
  if (backend_->uses_correlation()) {
    problem.p = inputs.x_r * snap.correlation();
  }
  if (warm_start_enabled_) {
    // Seed the solver from the cached factor when — and only when — it was
    // derived from the exact snapshot this solve reads; any other version
    // means the site moved underneath the cache and the solver starts cold.
    // Only the pointer moves under the shard lock; the copy happens
    // outside it.
    std::shared_ptr<const linalg::Matrix> cached;
    if (const auto shard = shards_->find(snap.site()); shard != nullptr) {
      const auto lock = shard->lock_for_update();
      const serve::WarmCaches& caches = shard->caches(lock);
      if (caches.factor_version == snap.version()) cached = caches.factor;
    }
    if (cached != nullptr) problem.l0 = *cached;
  }

  UpdateResult result;
  try {
    result.solver = backend_->solve(problem, snap.layout());
  } catch (const std::exception& e) {
    return Status::internal("solver backend '" + backend_->name() +
                            "' failed: " + e.what());
  }
  result.reference_count = snap.reference_cells().size();
  result.base_version = snap.version();
  return result;
}

Result<UpdateResult> Engine::reconstruct(const UpdateRequest& request) const {
  Result<SnapshotPtr> latest = snapshot(request.site);
  if (!latest.ok()) return latest.status();
  return solve_request(*latest.value(), request);
}

Result<core::LrrResult> Engine::refreshed_correlation(
    const linalg::Matrix& x_hat, const std::vector<std::size_t>& cells,
    const core::LrrWarmStart* warm) const {
  try {
    const core::MicResult mic = core::mic_from_cells(x_hat, cells);
    return core::acquire_correlation_full(mic, x_hat, lrr_options_, warm);
  } catch (const std::exception& e) {
    return Status::internal(std::string("correlation refresh: ") + e.what());
  }
}

Result<UpdateResult> Engine::update(const UpdateRequest& request) {
  // Health accounting wraps the real work: sample the process-wide SPD
  // counters so the attempt's fallback delta lands on this site, and
  // record the commit outcome.  Counters only — no behavior change.
  const linalg::SpdStats spd_before = linalg::spd_stats();
  Result<UpdateResult> result = update_impl(request);
  record_update_health(request.site, result.ok(), spd_before);
  return result;
}

void Engine::record_update_health(const std::string& site, bool ok,
                                  const linalg::SpdStats& before) const {
  const auto shard = shards_->find(site);
  if (shard == nullptr) return;  // unknown or dropped site: nothing to tag
  serve::SiteHealthCounters& health = shard->health();
  (ok ? health.updates_ok : health.updates_failed)
      .fetch_add(1, std::memory_order_relaxed);
  const linalg::SpdStats now = linalg::spd_stats();
  const auto add = [](std::atomic<std::uint64_t>& counter, std::uint64_t a,
                      std::uint64_t b) {
    if (a > b) counter.fetch_add(a - b, std::memory_order_relaxed);
  };
  add(health.spd_cholesky_failures, now.cholesky_failures,
      before.cholesky_failures);
  add(health.spd_bump_recoveries, now.bump_recoveries, before.bump_recoveries);
  add(health.spd_lu_fallbacks, now.lu_fallbacks, before.lu_fallbacks);
}

Result<SiteHealth> Engine::site_health(const std::string& site) const {
  const auto shard = shards_->find(site);
  if (shard == nullptr) {
    return Status::not_found("site_health: unknown site '" + site + "'");
  }
  SiteHealth out;
  if (const serve::PublishedPtr bundle = shard->published();
      bundle != nullptr && bundle->snapshot != nullptr) {
    out.serving_version = bundle->snapshot->version();
    out.serving_day = bundle->snapshot->day();
  }
  {
    const auto lock = state_lock();
    if (store_.contains(site)) {
      out.latest_version = store_.next_version(site) - 1;
    }
  }
  const serve::SiteHealthCounters& h = shard->health();
  const auto get = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  out.state =
      static_cast<serve::SiteState>(h.state.load(std::memory_order_relaxed));
  out.last_observed_day = get(h.last_observed_day);
  out.staleness_days = out.last_observed_day > out.serving_day
                           ? out.last_observed_day - out.serving_day
                           : 0;
  out.updates_ok = get(h.updates_ok);
  out.updates_failed = get(h.updates_failed);
  out.update_attempts = get(h.update_attempts);
  out.consecutive_failures = get(h.consecutive_failures);
  out.drift_triggers = get(h.drift_triggers);
  out.deadline_trips = get(h.deadline_trips);
  out.breaker_trips = get(h.breaker_trips);
  out.recoveries = get(h.recoveries);
  out.observations_accepted = get(h.observations_accepted);
  out.quarantine_non_finite = get(h.quarantine_non_finite);
  out.quarantine_out_of_range = get(h.quarantine_out_of_range);
  out.quarantine_unknown_link = get(h.quarantine_unknown_link);
  out.quarantine_unknown_cell = get(h.quarantine_unknown_cell);
  out.quarantine_unknown_source = get(h.quarantine_unknown_source);
  out.quarantine_overflow = get(h.quarantine_overflow);
  out.spd_cholesky_failures = get(h.spd_cholesky_failures);
  out.spd_bump_recoveries = get(h.spd_bump_recoveries);
  out.spd_lu_fallbacks = get(h.spd_lu_fallbacks);
  return out;
}

Result<UpdateResult> Engine::update_impl(const UpdateRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  SnapshotPtr snap;
  const sim::Deployment* deployment = nullptr;
  {
    const auto lock = state_lock();
    Result<SnapshotPtr> latest = store_.latest(request.site);
    if (!latest.ok()) return latest.status();
    snap = latest.value();
    const auto dep = deployments_.find(request.site);
    if (dep != deployments_.end()) deployment = dep->second;
  }

  // The solve — the expensive part — runs outside the state lock; only
  // the commit below re-acquires it.  Per-site ordering is the caller's
  // (or update_batch's) responsibility, exactly as before.
  Result<UpdateResult> solved = solve_request(*snap, request);
  if (!solved.ok()) return solved;
  UpdateResult result = std::move(solved).value();

  // Post-solve correlation refresh: the reconstruction becomes the latest
  // database; optionally re-acquire Z from it for the next cycle (the
  // paper's "original or latest updated" phrasing).  Runs outside the
  // lock, over the engine's thread budget, warm-started from the ADMM
  // state cached for the exact snapshot this update read (version jumps
  // reset to a cold solve).
  std::vector<std::size_t> cells = snap->reference_cells();
  linalg::Matrix z = snap->correlation();
  std::shared_ptr<const core::LrrWarmStart> lrr_state;
  if (config_.refresh_correlation()) {
    const std::shared_ptr<const core::LrrWarmStart> lrr_warm =
        lrr_warm_for(request.site, snap->version());
    Result<core::LrrResult> refreshed =
        refreshed_correlation(result.solver.x_hat, cells, lrr_warm.get());
    if (!refreshed.ok()) {
      return Status::internal("update: " + refreshed.status().message());
    }
    core::LrrResult lrr = std::move(refreshed).value();
    z = std::move(lrr.z);
    if (lrr_warm_enabled_) lrr_state = lrr_state_of(z, std::move(lrr));
  }

  // Copy the converged factor for the cache before taking the lock (only
  // the pointer is exchanged under it).
  std::shared_ptr<const linalg::Matrix> warm_factor;
  if (warm_start_enabled_) {
    warm_factor = std::make_shared<linalg::Matrix>(result.solver.l);
  }

  // Fault-injection / deadline seam: the everything-is-built,
  // nothing-is-published point.  A non-OK return abandons the commit in
  // full — the site keeps serving its previous bundle bit for bit, which
  // is what lets a supervisor abort a solve that blew its deadline
  // without ever exposing partial state (empty by default).
  if (hooks_.before_publish) {
    if (Status aborted = hooks_.before_publish(
            std::chrono::steady_clock::now() - start);
        !aborted.ok()) {
      return aborted;
    }
  }

  // Commit + publish.  The next bundle's localizer is built over the
  // reconstruction OUTSIDE the lock; the loop re-builds in the rare case
  // a concurrent attach_deployment swapped the geometry pointer while we
  // were building (one extra build per attach, bounded by the recheck).
  while (true) {
    Result<std::shared_ptr<const loc::Localizer>> localizer =
        build_localizer(result.solver.x_hat, deployment);
    if (!localizer.ok()) return localizer.status();

    const auto lock = state_lock();
    // Lost-update guard: the solve ran against snap; if another commit for
    // this site landed meanwhile (overlapping-site batches from two
    // threads), silently committing on top would discard it.
    if (store_.next_version(request.site) != snap->version() + 1) {
      return Status::failed_precondition(
          "update: site '" + request.site + "' advanced past version " +
          std::to_string(snap->version()) +
          " while this update was solving (concurrent same-site update)");
    }
    const auto dep = deployments_.find(request.site);
    const sim::Deployment* current =
        dep == deployments_.end() ? nullptr : dep->second;
    if (current != deployment) {
      deployment = current;
      continue;  // rebuild the localizer with the new geometry
    }
    auto next = std::make_shared<FingerprintSnapshot>(
        request.site, snap->version() + 1, result.solver.x_hat, snap->mask(),
        snap->layout(), std::move(cells), std::move(z), request.day,
        snap->sources());
    if (const Status put = store_.put(next); !put.ok()) return put;
    if (const auto shard = shards_->emplace(request.site); shard != nullptr) {
      // Published under the commit lock so versions can never publish out
      // of order; a localize overlapping this store is entirely lock-free
      // (it loads the atomic bundle pointer, not this mutex).
      shard->publish(std::make_shared<const serve::PublishedSite>(
          serve::PublishedSite{next, std::move(localizer).value()}));
    }
    result.committed_version = next->version();
    result.snapshot = std::move(next);
    break;
  }
  // The converged factor is the warm start for the next solve reading the
  // committed snapshot; version-paired in the shard cache (see
  // cache_warm_state for why post-lock writes stay consistent).
  cache_warm_state(request.site, result.committed_version, warm_factor,
                   lrr_state);
  if (hooks_.after_commit) {
    hooks_.after_commit(CommitEvent{result.snapshot, std::move(warm_factor),
                                    std::move(lrr_state)});
  }
  return result;
}

std::vector<Result<UpdateResult>> Engine::update_batch(
    const std::vector<UpdateRequest>& requests) {
  const std::size_t threads = parallel::resolve_threads(config_.threads());
  if (threads <= 1 || requests.size() <= 1) {
    std::vector<Result<UpdateResult>> results;
    results.reserve(requests.size());
    for (const UpdateRequest& request : requests) {
      // In-order application keeps same-site batches exactly equivalent to
      // sequential update() calls; each request reads the store state its
      // predecessors committed.
      results.push_back(update(request));
    }
    return results;
  }

  // Parallel path: group request indices by site (first-appearance order).
  // Sites share no mutable state, so running the per-site chains
  // concurrently — each chain still strictly in request order — commits
  // exactly the snapshots and returns exactly the Results of the
  // sequential loop above.  Each chain carries its own post-commit MIC +
  // LRR correlation refresh, so site A's refresh overlaps site B's solve
  // instead of serialising the whole batch behind the refreshes.  With
  // fewer active chains than pool threads the surplus budget flows into
  // the chains' solver/LRR fan-outs through the pool's budgeted nesting
  // (iup::parallel submits one nested level to the shared queue): each
  // chain's sweeps still partition by the engine-wide thread knob, and
  // idle workers execute whichever chain's chunks are queued.  Results
  // stay bit-identical to the sequential order — partitions depend only
  // on (n, threads), never on which thread runs a chunk.
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::string, std::size_t> group_of;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const auto [it, fresh] = group_of.try_emplace(requests[k].site,
                                                  groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(k);
  }

  std::vector<Result<UpdateResult>> results(
      requests.size(),
      Result<UpdateResult>(Status::internal("update_batch: not processed")));
  parallel::parallel_for(
      threads, groups.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
        for (std::size_t g = begin; g < end; ++g) {
          for (const std::size_t k : groups[g]) {
            results[k] = update(requests[k]);
          }
        }
      });
  return results;
}

Result<serve::PublishedPtr> Engine::published(const std::string& site) const {
  const auto shard = shards_->find(site);
  if (shard == nullptr) {
    return Status::not_found("published: unknown site '" + site + "'");
  }
  return shard->published();
}

Result<loc::LocalizationEstimate> Engine::localize(
    const std::string& site, std::span<const double> measurement) const {
  // THE lock-free read path: registry map load + published-bundle load,
  // then pure compute against immutable state.  The scope turns any state
  // mutex acquired below into a counted contract violation.
  serve::ReadPathScope read_scope;
  const auto shard = shards_->find(site);
  if (shard == nullptr) {
    return Status::not_found("localize: unknown site '" + site + "'");
  }
  const serve::PublishedPtr bundle = shard->published();
  const std::size_t links = bundle->snapshot->database().rows();
  if (measurement.size() != links) {
    return Status::invalid_argument(
        "localize: measurement has " + std::to_string(measurement.size()) +
        " entries but site '" + site + "' has " + std::to_string(links) +
        " links");
  }
  if (!all_finite(measurement)) {
    return Status::invalid_argument(
        "localize: measurement contains non-finite RSS values");
  }
  if (bundle->localizer == nullptr) {
    return Status::failed_precondition(
        "localize: this localizer needs deployment geometry; call "
        "attach_deployment('" + site + "', ...) first");
  }
  try {
    return bundle->localizer->localize(measurement);
  } catch (const std::exception& e) {
    return Status::internal(std::string("localize: ") + e.what());
  }
}

Result<std::vector<loc::LocalizationEstimate>> Engine::localize_batch(
    const std::string& site,
    const std::vector<std::vector<double>>& measurements) const {
  serve::ReadPathScope read_scope;
  const auto shard = shards_->find(site);
  if (shard == nullptr) {
    return Status::not_found("localize: unknown site '" + site + "'");
  }
  // ONE bundle for the whole batch: every measurement matches the same
  // published version even if updates land mid-batch.
  const serve::PublishedPtr bundle = shard->published();
  const std::size_t links = bundle->snapshot->database().rows();
  for (std::size_t k = 0; k < measurements.size(); ++k) {
    if (measurements[k].size() != links) {
      return Status::invalid_argument(
          "localize_batch: measurement " + std::to_string(k) + " has " +
          std::to_string(measurements[k].size()) + " entries but site '" +
          site + "' has " + std::to_string(links) + " links");
    }
    if (!all_finite(measurements[k])) {
      return Status::invalid_argument(
          "localize_batch: measurement " + std::to_string(k) +
          " contains non-finite RSS values");
    }
  }
  if (bundle->localizer == nullptr) {
    return Status::failed_precondition(
        "localize: this localizer needs deployment geometry; call "
        "attach_deployment('" + site + "', ...) first");
  }
  const std::size_t threads = parallel::resolve_threads(config_.threads());
  try {
    if (threads <= 1 || measurements.size() <= 1) {
      return bundle->localizer->localize_batch(measurements);
    }
    // Fan out: measurements are independent and each index owns its
    // output slot, so the result is identical to the sequential loop.
    // parallel_for rethrows the first body exception on this thread,
    // where the catch below converts it to a Status.
    std::vector<loc::LocalizationEstimate> estimates(measurements.size());
    parallel::parallel_for(
        threads, measurements.size(),
        [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
          for (std::size_t k = begin; k < end; ++k) {
            estimates[k] = bundle->localizer->localize(measurements[k]);
          }
        });
    return estimates;
  } catch (const std::exception& e) {
    return Status::internal(std::string("localize_batch: ") + e.what());
  }
}

}  // namespace iup::api
