#include "api/engine.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "baselines/rass.hpp"
#include "core/mic.hpp"
#include "loc/knn.hpp"
#include "loc/omp.hpp"
#include "parallel/thread_pool.hpp"

namespace iup::api {

std::unique_ptr<loc::Localizer> make_localizer(
    LocalizerKind kind, const linalg::Matrix& database,
    const sim::Deployment* deployment, std::size_t threads) {
  switch (kind) {
    case LocalizerKind::kOmp:
      return std::make_unique<loc::OmpLocalizer>(database,
                                                 std::vector<double>{});
    case LocalizerKind::kKnn: {
      auto knn = std::make_unique<loc::KnnLocalizer>(database);
      knn->set_deployment(deployment);
      return knn;
    }
    case LocalizerKind::kRass: {
      if (deployment == nullptr) return nullptr;
      baselines::RassOptions options;
      options.threads = threads;
      return std::make_unique<baselines::Rass>(database, *deployment,
                                               options);
    }
  }
  return nullptr;
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), store_(config_.history_limit()) {
  // The effective thread count wins over the per-options thread knobs no
  // matter in which order the fluent setters were called: the solver
  // sweep, the MIC column scoring and the LRR fan-out all share it.
  lrr_options_ = config_.lrr();
  lrr_options_.threads = config_.threads();
  backend_ = config_.solver_backend();
  if (backend_ == nullptr) {
    core::RsvdOptions options = config_.rsvd();
    options.threads = config_.threads();
    backend_ = make_backend(config_.solver_name(), options);
  }
  if (backend_ == nullptr) {
    throw std::invalid_argument("Engine: unknown solver backend '" +
                                config_.solver_name() + "'");
  }
  warm_start_enabled_ = config_.warm_start() && backend_->uses_warm_start();
  lrr_warm_enabled_ = config_.lrr_warm_start();
}

std::shared_ptr<const core::LrrWarmStart> Engine::lrr_warm_for(
    const std::string& site, std::uint64_t version) const {
  if (!lrr_warm_enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(*state_mutex_);
  const auto it = warm_starts_.find(site);
  if (it == warm_starts_.end() || it->second.lrr_version != version) {
    return nullptr;
  }
  return it->second.lrr;
}

std::shared_ptr<const core::LrrWarmStart> Engine::lrr_state_of(
    const linalg::Matrix& z, core::LrrResult&& result) {
  auto state = std::make_shared<core::LrrWarmStart>();
  state->z = z;
  state->y1 = std::move(result.y1);
  state->y2 = std::move(result.y2);
  state->mu = result.mu_final;
  return state;
}

Result<SnapshotPtr> Engine::register_site(std::string site,
                                          linalg::Matrix x_original,
                                          linalg::Matrix b_mask) {
  if (site.empty()) {
    return Status::invalid_argument("register_site: empty site name");
  }
  {
    std::lock_guard<std::mutex> lock(*state_mutex_);
    if (store_.contains(site)) {
      return Status::failed_precondition("register_site: site '" + site +
                                         "' is already registered");
    }
  }
  if (x_original.empty()) {
    return Status::invalid_argument("register_site: empty fingerprint matrix");
  }
  if (x_original.rows() != b_mask.rows() ||
      x_original.cols() != b_mask.cols()) {
    return Status::invalid_argument(
        "register_site: X is " + std::to_string(x_original.rows()) + "x" +
        std::to_string(x_original.cols()) + " but B is " +
        std::to_string(b_mask.rows()) + "x" + std::to_string(b_mask.cols()));
  }
  if (x_original.cols() % x_original.rows() != 0) {
    return Status::invalid_argument(
        "register_site: grid size " + std::to_string(x_original.cols()) +
        " is not a multiple of the link count " +
        std::to_string(x_original.rows()) + " (band layout)");
  }
  const core::BandLayout layout = core::band_layout_of(x_original);

  core::MicResult mic;
  linalg::Matrix z;
  std::shared_ptr<const core::LrrWarmStart> lrr_state;
  try {
    mic = core::extract_mic(x_original, config_.mic_strategy(),
                            core::kMicDefaultRelTol, config_.threads());
    if (mic.reference_cells.empty()) {
      return Status::invalid_argument(
          "register_site: fingerprint matrix has rank 0, no reference "
          "locations can be selected");
    }
    core::LrrResult lrr =
        core::acquire_correlation_full(mic, x_original, lrr_options_);
    z = std::move(lrr.z);
    // Seed the refresh warm-start cache from the registration solve, so
    // even the site's first update refreshes warm.
    if (lrr_warm_enabled_) lrr_state = lrr_state_of(z, std::move(lrr));
  } catch (const std::exception& e) {
    return Status::internal(std::string("register_site: ") + e.what());
  }

  std::lock_guard<std::mutex> lock(*state_mutex_);
  // Re-check under the commit lock: a concurrent register_site for the
  // same name may have won the race since the early check above.
  if (store_.contains(site)) {
    return Status::failed_precondition("register_site: site '" + site +
                                       "' is already registered");
  }
  auto snapshot = std::make_shared<FingerprintSnapshot>(
      site, store_.next_version(site), std::move(x_original),
      std::move(b_mask), layout, std::move(mic.reference_cells),
      std::move(z));
  if (const Status put = store_.put(snapshot); !put.ok()) return put;
  if (lrr_state != nullptr) {
    WarmStart& ws = warm_starts_[snapshot->site()];
    ws.lrr_version = snapshot->version();
    ws.lrr = std::move(lrr_state);
  }
  return SnapshotPtr(std::move(snapshot));
}

Status Engine::drop_site(const std::string& site) {
  std::lock_guard<std::mutex> lock(*state_mutex_);
  deployments_.erase(site);
  localizers_.erase(site);
  warm_starts_.erase(site);
  return store_.erase_site(site);
}

std::optional<std::uint64_t> Engine::warm_start_version(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(*state_mutex_);
  const auto it = warm_starts_.find(site);
  if (it == warm_starts_.end() || it->second.l0 == nullptr) {
    return std::nullopt;
  }
  return it->second.version;
}

std::optional<std::uint64_t> Engine::lrr_warm_version(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(*state_mutex_);
  const auto it = warm_starts_.find(site);
  if (it == warm_starts_.end() || it->second.lrr == nullptr) {
    return std::nullopt;
  }
  return it->second.lrr_version;
}

Status Engine::attach_deployment(const std::string& site,
                                 const sim::Deployment* deployment) {
  if (deployment == nullptr) {
    return Status::invalid_argument("attach_deployment: null deployment");
  }
  std::lock_guard<std::mutex> lock(*state_mutex_);
  if (!store_.contains(site)) {
    return Status::not_found("attach_deployment: unknown site '" + site +
                             "'");
  }
  deployments_[site] = deployment;
  localizers_.erase(site);  // rebuild with geometry on next localize
  return Status();
}

Result<SnapshotPtr> Engine::snapshot(const std::string& site) const {
  std::lock_guard<std::mutex> lock(*state_mutex_);
  return store_.latest(site);
}

Result<SnapshotPtr> Engine::snapshot(const std::string& site,
                                     std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(*state_mutex_);
  return store_.at_version(site, version);
}

Result<std::vector<std::size_t>> Engine::reference_cells(
    const std::string& site) const {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  return latest.value()->reference_cells();
}

Status Engine::set_reference_cells(const std::string& site,
                                   std::vector<std::size_t> cells) {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  const SnapshotPtr& snap = latest.value();
  if (cells.empty()) {
    return Status::invalid_argument("set_reference_cells: empty reference "
                                    "set (at least one cell is required)");
  }
  for (const std::size_t cell : cells) {
    if (cell >= snap->database().cols()) {
      return Status::invalid_argument(
          "set_reference_cells: cell " + std::to_string(cell) +
          " is outside the " + std::to_string(snap->database().cols()) +
          "-cell grid");
    }
  }

  // A reference-set change invalidates any cached ADMM state by shape, so
  // this refresh always solves cold (the convergence-preserving reset) —
  // and its state re-seeds the cache for the version it commits.
  Result<core::LrrResult> refreshed =
      refreshed_correlation(snap->database(), cells, nullptr);
  if (!refreshed.ok()) {
    return Status::internal("set_reference_cells: " +
                            refreshed.status().message());
  }
  core::LrrResult lrr = std::move(refreshed).value();
  linalg::Matrix z = std::move(lrr.z);
  std::shared_ptr<const core::LrrWarmStart> lrr_state;
  if (lrr_warm_enabled_) lrr_state = lrr_state_of(z, std::move(lrr));

  std::lock_guard<std::mutex> lock(*state_mutex_);
  if (store_.next_version(site) != snap->version() + 1) {
    return Status::failed_precondition(
        "set_reference_cells: site '" + site +
        "' advanced past version " + std::to_string(snap->version()) +
        " while re-acquiring the correlation (concurrent update)");
  }
  auto next = std::make_shared<FingerprintSnapshot>(
      site, snap->version() + 1, snap->database(), snap->mask(),
      snap->layout(), std::move(cells), std::move(z), snap->day());
  if (const Status put = store_.put(next); !put.ok()) return put;
  if (lrr_state != nullptr) {
    WarmStart& ws = warm_starts_[site];
    ws.lrr_version = next->version();
    ws.lrr = std::move(lrr_state);
  }
  return Status();
}

Result<UpdateResult> Engine::solve_request(const FingerprintSnapshot& snap,
                                           const UpdateRequest& request) const {
  const core::UpdateInputs& inputs = request.inputs;
  const linalg::Matrix& mask = snap.mask();
  if (inputs.x_b.rows() != mask.rows() || inputs.x_b.cols() != mask.cols()) {
    return Status::invalid_argument(
        "update: X_B is " + std::to_string(inputs.x_b.rows()) + "x" +
        std::to_string(inputs.x_b.cols()) + " but site '" + snap.site() +
        "' expects " + std::to_string(mask.rows()) + "x" +
        std::to_string(mask.cols()));
  }
  if (inputs.x_r.rows() != mask.rows() ||
      inputs.x_r.cols() != snap.reference_cells().size()) {
    return Status::invalid_argument(
        "update: X_R is " + std::to_string(inputs.x_r.rows()) + "x" +
        std::to_string(inputs.x_r.cols()) + " but site '" + snap.site() +
        "' expects one fresh column per reference location (" +
        std::to_string(mask.rows()) + "x" +
        std::to_string(snap.reference_cells().size()) + ")");
  }

  core::RsvdProblem problem;
  problem.x_b = inputs.x_b;
  problem.b = mask;
  if (backend_->uses_correlation()) {
    problem.p = inputs.x_r * snap.correlation();
  }
  if (warm_start_enabled_) {
    // Seed the solver from the cached factor when — and only when — it was
    // derived from the exact snapshot this solve reads; any other version
    // means the site moved underneath the cache and the solver starts cold.
    // Only the pointer moves under the lock; the copy happens outside it.
    std::shared_ptr<const linalg::Matrix> cached;
    {
      std::lock_guard<std::mutex> lock(*state_mutex_);
      const auto it = warm_starts_.find(snap.site());
      if (it != warm_starts_.end() && it->second.version == snap.version()) {
        cached = it->second.l0;
      }
    }
    if (cached != nullptr) problem.l0 = *cached;
  }

  UpdateResult result;
  try {
    result.solver = backend_->solve(problem, snap.layout());
  } catch (const std::exception& e) {
    return Status::internal("solver backend '" + backend_->name() +
                            "' failed: " + e.what());
  }
  result.reference_count = snap.reference_cells().size();
  result.base_version = snap.version();
  return result;
}

Result<UpdateResult> Engine::reconstruct(const UpdateRequest& request) const {
  Result<SnapshotPtr> latest = snapshot(request.site);
  if (!latest.ok()) return latest.status();
  return solve_request(*latest.value(), request);
}

Result<core::LrrResult> Engine::refreshed_correlation(
    const linalg::Matrix& x_hat, const std::vector<std::size_t>& cells,
    const core::LrrWarmStart* warm) const {
  try {
    const core::MicResult mic = core::mic_from_cells(x_hat, cells);
    return core::acquire_correlation_full(mic, x_hat, lrr_options_, warm);
  } catch (const std::exception& e) {
    return Status::internal(std::string("correlation refresh: ") + e.what());
  }
}

Result<UpdateResult> Engine::update(const UpdateRequest& request) {
  Result<SnapshotPtr> latest = snapshot(request.site);
  if (!latest.ok()) return latest.status();
  const SnapshotPtr& snap = latest.value();

  // The solve — the expensive part — runs outside the state lock; only
  // the commit below re-acquires it.  Per-site ordering is the caller's
  // (or update_batch's) responsibility, exactly as before.
  Result<UpdateResult> solved = solve_request(*snap, request);
  if (!solved.ok()) return solved;
  UpdateResult result = std::move(solved).value();

  // Post-solve correlation refresh: the reconstruction becomes the latest
  // database; optionally re-acquire Z from it for the next cycle (the
  // paper's "original or latest updated" phrasing).  Runs outside the
  // lock, over the engine's thread budget, warm-started from the ADMM
  // state cached for the exact snapshot this update read (version jumps
  // reset to a cold solve).
  std::vector<std::size_t> cells = snap->reference_cells();
  linalg::Matrix z = snap->correlation();
  std::shared_ptr<const core::LrrWarmStart> lrr_state;
  if (config_.refresh_correlation()) {
    const std::shared_ptr<const core::LrrWarmStart> lrr_warm =
        lrr_warm_for(request.site, snap->version());
    Result<core::LrrResult> refreshed =
        refreshed_correlation(result.solver.x_hat, cells, lrr_warm.get());
    if (!refreshed.ok()) {
      return Status::internal("update: " + refreshed.status().message());
    }
    core::LrrResult lrr = std::move(refreshed).value();
    z = std::move(lrr.z);
    if (lrr_warm_enabled_) lrr_state = lrr_state_of(z, std::move(lrr));
  }

  // Copy the converged factor for the cache before taking the lock (only
  // the pointer is exchanged under it).
  std::shared_ptr<const linalg::Matrix> warm_factor;
  if (warm_start_enabled_) {
    warm_factor = std::make_shared<linalg::Matrix>(result.solver.l);
  }

  std::lock_guard<std::mutex> lock(*state_mutex_);
  // Lost-update guard: the solve ran against snap; if another commit for
  // this site landed meanwhile (overlapping-site batches from two
  // threads), silently committing on top would discard it.
  if (store_.next_version(request.site) != snap->version() + 1) {
    return Status::failed_precondition(
        "update: site '" + request.site + "' advanced past version " +
        std::to_string(snap->version()) +
        " while this update was solving (concurrent same-site update)");
  }
  auto next = std::make_shared<FingerprintSnapshot>(
      request.site, snap->version() + 1, result.solver.x_hat, snap->mask(),
      snap->layout(), std::move(cells), std::move(z), request.day);
  if (const Status put = store_.put(next); !put.ok()) return put;
  if (warm_start_enabled_) {
    // The converged factor is the warm start for the next solve reading
    // this snapshot; stored under the same lock as the commit so the
    // version pairing can never be observed torn.
    WarmStart& ws = warm_starts_[request.site];
    ws.version = next->version();
    ws.l0 = std::move(warm_factor);
  }
  if (lrr_state != nullptr) {
    WarmStart& ws = warm_starts_[request.site];
    ws.lrr_version = next->version();
    ws.lrr = std::move(lrr_state);
  }
  result.committed_version = next->version();
  result.snapshot = std::move(next);
  return result;
}

std::vector<Result<UpdateResult>> Engine::update_batch(
    const std::vector<UpdateRequest>& requests) {
  const std::size_t threads = parallel::resolve_threads(config_.threads());
  if (threads <= 1 || requests.size() <= 1) {
    std::vector<Result<UpdateResult>> results;
    results.reserve(requests.size());
    for (const UpdateRequest& request : requests) {
      // In-order application keeps same-site batches exactly equivalent to
      // sequential update() calls; each request reads the store state its
      // predecessors committed.
      results.push_back(update(request));
    }
    return results;
  }

  // Parallel path: group request indices by site (first-appearance order).
  // Sites share no mutable state, so running the per-site chains
  // concurrently — each chain still strictly in request order — commits
  // exactly the snapshots and returns exactly the Results of the
  // sequential loop above.  Each chain carries its own post-commit MIC +
  // LRR correlation refresh, so site A's refresh overlaps site B's solve
  // instead of serialising the whole batch behind the refreshes.  With
  // fewer active chains than pool threads the surplus budget flows into
  // the chains' solver/LRR fan-outs through the pool's budgeted nesting
  // (iup::parallel submits one nested level to the shared queue): each
  // chain's sweeps still partition by the engine-wide thread knob, and
  // idle workers execute whichever chain's chunks are queued.  Results
  // stay bit-identical to the sequential order — partitions depend only
  // on (n, threads), never on which thread runs a chunk.
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::string, std::size_t> group_of;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const auto [it, fresh] = group_of.try_emplace(requests[k].site,
                                                  groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(k);
  }

  std::vector<Result<UpdateResult>> results(
      requests.size(),
      Result<UpdateResult>(Status::internal("update_batch: not processed")));
  parallel::parallel_for(
      threads, groups.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
        for (std::size_t g = begin; g < end; ++g) {
          for (const std::size_t k : groups[g]) {
            results[k] = update(requests[k]);
          }
        }
      });
  return results;
}

Result<std::shared_ptr<const loc::Localizer>> Engine::localizer_for(
    const std::string& site) const {
  SnapshotPtr snap;
  const sim::Deployment* deployment = nullptr;
  {
    std::lock_guard<std::mutex> lock(*state_mutex_);
    Result<SnapshotPtr> latest = store_.latest(site);
    if (!latest.ok()) return latest.status();
    snap = latest.value();
    const auto cached = localizers_.find(site);
    if (cached != localizers_.end() &&
        cached->second.version == snap->version()) {
      return cached->second.localizer;
    }
    const auto dep = deployments_.find(site);
    if (dep != deployments_.end()) deployment = dep->second;
  }

  // Construction (dictionary build, SVR training for kRass) runs outside
  // the lock; concurrent callers may build twice and the loser's copy is
  // simply discarded below.
  std::shared_ptr<const loc::Localizer> built;
  try {
    built = make_localizer(config_.localizer(), snap->database(), deployment,
                           config_.threads());
  } catch (const std::exception& e) {
    return Status::internal(std::string("localizer construction: ") +
                            e.what());
  }
  if (built == nullptr) {
    return Status::failed_precondition(
        "localize: this localizer needs deployment geometry; call "
        "attach_deployment('" + site + "', ...) first");
  }

  std::lock_guard<std::mutex> lock(*state_mutex_);
  CachedLocalizer& slot = localizers_[site];
  if (slot.localizer != nullptr && slot.version == snap->version()) {
    return slot.localizer;  // lost a same-version race; keep the winner
  }
  if (slot.localizer == nullptr || slot.version < snap->version()) {
    slot.version = snap->version();
    slot.localizer = std::move(built);
    return slot.localizer;
  }
  // The cache moved past our snapshot while we were building: serve the
  // stale build to this caller without evicting the newer entry.
  return built;
}

Result<loc::LocalizationEstimate> Engine::localize(
    const std::string& site, std::span<const double> measurement) const {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  if (measurement.size() != latest.value()->database().rows()) {
    return Status::invalid_argument(
        "localize: measurement has " + std::to_string(measurement.size()) +
        " entries but site '" + site + "' has " +
        std::to_string(latest.value()->database().rows()) + " links");
  }
  const auto localizer = localizer_for(site);
  if (!localizer.ok()) return localizer.status();
  try {
    return localizer.value()->localize(measurement);
  } catch (const std::exception& e) {
    return Status::internal(std::string("localize: ") + e.what());
  }
}

Result<std::vector<loc::LocalizationEstimate>> Engine::localize_batch(
    const std::string& site,
    const std::vector<std::vector<double>>& measurements) const {
  Result<SnapshotPtr> latest = snapshot(site);
  if (!latest.ok()) return latest.status();
  const std::size_t links = latest.value()->database().rows();
  for (std::size_t k = 0; k < measurements.size(); ++k) {
    if (measurements[k].size() != links) {
      return Status::invalid_argument(
          "localize_batch: measurement " + std::to_string(k) + " has " +
          std::to_string(measurements[k].size()) + " entries but site '" +
          site + "' has " + std::to_string(links) + " links");
    }
  }
  const auto localizer = localizer_for(site);
  if (!localizer.ok()) return localizer.status();
  const std::size_t threads = parallel::resolve_threads(config_.threads());
  try {
    if (threads <= 1 || measurements.size() <= 1) {
      return localizer.value()->localize_batch(measurements);
    }
    // Fan out: measurements are independent and each index owns its
    // output slot, so the result is identical to the sequential loop.
    // parallel_for rethrows the first body exception on this thread,
    // where the catch below converts it to a Status.
    std::vector<loc::LocalizationEstimate> estimates(measurements.size());
    parallel::parallel_for(
        threads, measurements.size(),
        [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
          for (std::size_t k = begin; k < end; ++k) {
            estimates[k] = localizer.value()->localize(measurements[k]);
          }
        });
    return estimates;
  } catch (const std::exception& e) {
    return Status::internal(std::string("localize_batch: ") + e.what());
  }
}

}  // namespace iup::api
