// iup::api::Engine — the service facade over the whole pipeline.
//
// One Engine owns any number of deployments ("sites"), each a versioned
// history of immutable FingerprintSnapshots in a SnapshotStore.  Per site
// it runs the paper's loop: MIC reference selection + LRR correlation at
// registration, then low-cost updates that reconstruct the database from
// fresh X_B / X_R through a pluggable SolverBackend, and localization over
// the latest database.  Every entry point validates its inputs and returns
// Status / Result<T>; exceptions never cross this boundary.
//
// Serving architecture (src/serve/): each site is backed by a SiteShard
// whose published {snapshot, localizer} bundle is swapped RCU-style by the
// write paths, so localize()/localize_batch() run WITHOUT ANY LOCK in
// steady state — they resolve the shard through the registry's lock-free
// map, load one published pointer (serve::RcuSlot) and compute against
// the immutable bundle.  A localize overlapping an update observes either
// the old or the new version in full, and its result is bit-identical to a
// serial localize against whichever version it observed (the bundle pins
// database and localizer together).  The zero-locks contract is machine-
// checked: the read paths run inside serve::ReadPathScope and every state
// mutex routes through serve::note_state_lock_acquired().  Concurrent
// single-measurement callers can additionally be coalesced into batch
// panels by serve::ServeFront.
//
// Batched entry points (update_batch / localize_batch) amortize per-site
// state: snapshots and correlation matrices are reused from the store, the
// localizer (whose construction builds the matching dictionary) lives in
// the published bundle, and each commit caches its converged solver factor
// in the site's shard as a versioned warm start for the next solve of the
// same snapshot (EngineConfig::warm_start, on by default), skipping the
// per-update initialisation SVD.  With EngineConfig::threads(n) > 1 they
// fan out over iup::parallel: update_batch parallelises across *sites*
// (same-site requests stay strictly ordered, so batches remain exactly
// equivalent to sequential update() calls) and localize_batch across
// measurements.  Solver and localizer-construction work always runs
// outside the commit lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/engine_config.hpp"
#include "api/snapshot.hpp"
#include "api/status.hpp"
#include "base/ids.hpp"
#include "core/updater.hpp"
#include "linalg/cholesky.hpp"
#include "loc/localizer.hpp"
#include "serve/health.hpp"
#include "serve/registry.hpp"
#include "serve/shard.hpp"

namespace iup::persist {
struct EngineImage;
struct SiteImage;
struct WalRecord;
}  // namespace iup::persist

namespace iup::api {

// API v2 vocabulary (base/ids.hpp), re-exported so callers can spell the
// typed identifiers as api::CellId etc. next to the Engine they feed.
using iup::CellId;
using iup::LinkId;
using iup::SourceId;
using iup::SourceInfo;
using iup::Technology;

/// One low-cost update: fresh measurements for one site at one timestamp.
struct UpdateRequest {
  std::string site;
  core::UpdateInputs inputs;  ///< X_B (no-decrease) + X_R (reference survey)
  std::size_t day = 0;        ///< timestamp label carried into the snapshot
};

/// One-call health/staleness introspection for a site: a plain-value
/// snapshot of its serve::SiteHealthCounters plus the serving metadata a
/// degraded site keeps publishing (which version is served, how stale it
/// is against the observation stream).  Counters are relaxed-atomic
/// tallies sampled individually, so fields may be mutually skewed by
/// in-flight updates — a monitoring surface, not a transaction.
struct SiteHealth {
  serve::SiteState state = serve::SiteState::kHealthy;
  std::uint64_t serving_version = 0;  ///< published bundle's version
  std::size_t serving_day = 0;        ///< published bundle's day label
  std::uint64_t latest_version = 0;   ///< store's newest committed version
  /// Largest day label seen on the site's observation stream; together
  /// with serving_day this is the staleness a degraded site serves under.
  std::uint64_t last_observed_day = 0;
  /// last_observed_day - serving_day when the stream is ahead, else 0.
  std::uint64_t staleness_days = 0;

  std::uint64_t updates_ok = 0;
  std::uint64_t updates_failed = 0;
  std::uint64_t update_attempts = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t drift_triggers = 0;
  std::uint64_t deadline_trips = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t recoveries = 0;

  std::uint64_t observations_accepted = 0;
  std::uint64_t quarantine_non_finite = 0;
  std::uint64_t quarantine_out_of_range = 0;
  std::uint64_t quarantine_unknown_link = 0;
  std::uint64_t quarantine_unknown_cell = 0;
  std::uint64_t quarantine_unknown_source = 0;
  std::uint64_t quarantine_overflow = 0;
  std::uint64_t quarantined_total() const {
    return quarantine_non_finite + quarantine_out_of_range +
           quarantine_unknown_link + quarantine_unknown_cell +
           quarantine_unknown_source + quarantine_overflow;
  }

  /// Per-site SPD fallback attribution (see serve/health.hpp for the
  /// concurrent-update attribution caveat).
  std::uint64_t spd_cholesky_failures = 0;
  std::uint64_t spd_bump_recoveries = 0;
  std::uint64_t spd_lu_fallbacks = 0;
};

struct UpdateResult {
  core::RsvdResult solver;
  std::size_t reference_count = 0;
  std::uint64_t base_version = 0;       ///< snapshot version the solve read
  std::uint64_t committed_version = 0;  ///< 0 for reconstruct()
  SnapshotPtr snapshot;                 ///< committed snapshot; null for
                                        ///< reconstruct()

  /// The reconstructed fingerprint matrix.
  const linalg::Matrix& x_hat() const { return solver.x_hat; }
};

/// Build a localizer of `kind` over `database`.  `deployment` enables
/// geometry-aware matching (KNN centroid averaging) and is mandatory for
/// kRass; returns nullptr when it is missing for a kind that requires it.
/// `threads` is the training budget for localizers that learn a model at
/// construction (kRass SVR training: kernel-matrix rows + the per-axis
/// fits fan out over iup::parallel, bit-identical for any value).
std::unique_ptr<loc::Localizer> make_localizer(
    LocalizerKind kind, const linalg::Matrix& database,
    const sim::Deployment* deployment = nullptr, std::size_t threads = 1);

class Engine {
 public:
  /// Throws std::invalid_argument when the config names an unknown solver
  /// backend (a programming error, unlike the data errors below which are
  /// reported through Status).
  explicit Engine(EngineConfig config = {});

  // --- site lifecycle --------------------------------------------------
  /// Register a deployment from its initial site survey: selects the MIC
  /// reference locations, acquires the correlation matrix Z, commits
  /// snapshot version 1 and publishes the site's first serving bundle.
  Result<SnapshotPtr> register_site(std::string site,
                                    linalg::Matrix x_original,
                                    linalg::Matrix b_mask);
  /// Multi-radio registration: as above, plus the site's per-link source
  /// table — entry i names the transmitter behind fingerprint row i and
  /// its technology (WiFi AP / BLE beacon / LoRa node).  `sources` must
  /// be empty (legacy: source validation disabled) or have exactly one
  /// entry per link, every id specified and unique.  The table is carried
  /// immutably through every snapshot version the site commits, and
  /// enforced against UpdateInputs::sources and (through the supervisor's
  /// ObservationBuffer) every streamed observation.
  Result<SnapshotPtr> register_site(std::string site,
                                    linalg::Matrix x_original,
                                    linalg::Matrix b_mask,
                                    std::vector<SourceInfo> sources);
  Status drop_site(const std::string& site);

  /// Attach deployment geometry (cell centres) to a registered site; the
  /// pointer must outlive the engine.  Required for kKnn centroid
  /// averaging and for kRass.  Republishes the serving bundle with a
  /// geometry-aware localizer.
  Status attach_deployment(const std::string& site,
                           const sim::Deployment* deployment);

  // --- snapshots -------------------------------------------------------
  Result<SnapshotPtr> snapshot(const std::string& site) const;
  Result<SnapshotPtr> snapshot(const std::string& site,
                               std::uint64_t version) const;
  /// The grid cells a surveyor must visit for the next update, as typed
  /// CellIds (API v2; use CellId::value() at the numeric boundary).
  Result<std::vector<CellId>> reference_cells(const std::string& site) const;
  /// Override the reference set (benches evaluate 7 / 8+1 / random sets);
  /// commits a new snapshot version with the re-acquired correlation.
  Status set_reference_cells(const std::string& site,
                             std::vector<CellId> cells);
  /// The site's registered per-link source table; empty for legacy
  /// single-technology registrations.
  Result<std::vector<SourceInfo>> sources(const std::string& site) const;

  // --- updates ---------------------------------------------------------
  /// Reconstruct against the latest snapshot without committing.
  Result<UpdateResult> reconstruct(const UpdateRequest& request) const;
  /// Reconstruct and commit a new snapshot version.
  Result<UpdateResult> update(const UpdateRequest& request);
  /// Apply many updates (any mix of sites).  Per site, requests are
  /// processed in order, so same-site requests at increasing timestamps
  /// are exactly equivalent to sequential update() calls; each request
  /// gets its own Result and a failed request never blocks the rest of
  /// the batch.  With config().threads() > 1 distinct sites are updated
  /// concurrently — results are bit-identical to the sequential order
  /// because sites share no mutable state.
  std::vector<Result<UpdateResult>> update_batch(
      const std::vector<UpdateRequest>& requests);

  // --- localization ----------------------------------------------------
  /// Lock-free: resolves the site's published {snapshot, localizer}
  /// bundle and matches against it (see the serving-architecture note).
  Result<loc::LocalizationEstimate> localize(
      const std::string& site, std::span<const double> measurement) const;
  /// Localize many online measurements against one site; all of them
  /// match the SAME published bundle (one version, even mid-update).
  Result<std::vector<loc::LocalizationEstimate>> localize_batch(
      const std::string& site,
      const std::vector<std::vector<double>>& measurements) const;

  const SnapshotStore& store() const { return store_; }
  const EngineConfig& config() const { return config_; }
  const SolverBackend& solver() const { return *backend_; }

  /// The serve-layer registry backing this engine's sites.  ServeFront
  /// and the soak/bench harnesses build on it; shards resolved from it
  /// stay valid across drop_site.
  const serve::ShardRegistry& shards() const { return *shards_; }

  /// The site's current published serving bundle (lock-free).  Holding
  /// the pointer pins that exact {snapshot, localizer} version across
  /// any number of concurrent updates or evictions.
  Result<serve::PublishedPtr> published(const std::string& site) const;

  /// Snapshot version the site's cached warm-start factor was derived
  /// from, or nullopt when the cache is empty (warm_start(false), never
  /// updated, or dropped).  A cached version older than the site's latest
  /// snapshot means the next solve re-initialises cold — the cache is
  /// consulted only when the versions match exactly.  Introspection for
  /// tests and monitoring.
  std::optional<std::uint64_t> warm_start_version(
      const std::string& site) const;

  /// Snapshot version of the site's cached LRR ADMM warm-start state
  /// (correlation refresh), or nullopt when empty.  Same exact-match
  /// consultation rule as warm_start_version().
  std::optional<std::uint64_t> lrr_warm_version(const std::string& site) const;

  /// Health/staleness snapshot for one site: update pipeline state,
  /// serving version vs latest commit, quarantine tallies and the SPD
  /// fallback counters attributed to this site (previously only the
  /// process-global linalg::spd_stats() existed).  Not a read-path call
  /// (it takes the commit lock for the latest version); monitoring and
  /// tests only.
  Result<SiteHealth> site_health(const std::string& site) const;

  // --- durability (implemented in src/persist/engine_persist.cpp) ------
  /// Write a durable checkpoint of every site — retained snapshot chain,
  /// warm-start caches, health counters — into `dir` (created if needed)
  /// with atomic publication (temp + fsync + rename).  Safe to call
  /// concurrently with updates: it collects a commit-consistent view per
  /// site (never holding the commit lock across I/O) and never touches
  /// the serve read path.
  Status save_checkpoint(const std::string& dir) const;
  /// Crash recovery into a FRESH engine (kFailedPrecondition when any
  /// site is already registered): load `dir`'s checkpoint (if present),
  /// replay the WAL suffix (torn tail tolerated, mid-stream corruption is
  /// kDataLoss), republish every site at its recovered latest version and
  /// reinstall the warm caches so the next solves are bit-identical to an
  /// uninterrupted run.  kNotFound when `dir` holds no durable state at
  /// all.  Deployment geometry is not persisted — re-attach after
  /// restore; the engine's config must match the writer's for
  /// bit-identity (documented in README).
  Status restore_from(const std::string& dir);

 private:
  /// Shared body of both set_reference_cells overloads (raw indices are
  /// the numeric core's vocabulary).
  Status set_reference_cells_impl(const std::string& site,
                                  std::vector<std::size_t> cells);

  /// Validate `request` against `snapshot` and run the solver, seeding it
  /// from the shard's warm-start cache when the cached version matches.
  Result<UpdateResult> solve_request(const FingerprintSnapshot& snapshot,
                                     const UpdateRequest& request) const;

  /// update() minus the health accounting wrapper.
  Result<UpdateResult> update_impl(const UpdateRequest& request);

  /// Record one update outcome in the site's shard counters: commit
  /// success/failure plus the delta of the process-wide SPD stats across
  /// the attempt (the per-site fallback attribution; see serve/health.hpp
  /// for the concurrency caveat).
  void record_update_health(const std::string& site, bool ok,
                            const linalg::SpdStats& before) const;

  /// Post-commit correlation refresh: gather the reference columns of
  /// `x_hat` (MIC) and re-solve the LRR for Z, both over the engine's
  /// thread budget (lrr_options_), warm-starting the ADMM from `warm`
  /// when given.  Runs outside the state lock; in update_batch the
  /// per-site refreshes execute concurrently across sites, and at top
  /// level (single-site batches, plain update()) the LRR's own column
  /// fan-out uses the full budget.
  Result<core::LrrResult> refreshed_correlation(
      const linalg::Matrix& x_hat, const std::vector<std::size_t>& cells,
      const core::LrrWarmStart* warm) const;

  /// Cached LRR state for solves reading snapshot `version` of `site`
  /// (nullptr on version mismatch / empty cache) from the site's shard.
  std::shared_ptr<const core::LrrWarmStart> lrr_warm_for(
      const std::string& site, std::uint64_t version) const;
  static std::shared_ptr<const core::LrrWarmStart> lrr_state_of(
      const linalg::Matrix& z, core::LrrResult&& result);

  /// Build the configured localizer over `database` as a bundle-ready
  /// shared_ptr (null when the kind needs missing deployment geometry).
  /// Wraps construction exceptions into Status.
  Result<std::shared_ptr<const loc::Localizer>> build_localizer(
      const linalg::Matrix& database, const sim::Deployment* deployment) const;

  /// Acquire the commit lock, asserting the caller is not on the serve
  /// read path (the zero-locks contract; see serve/shard.hpp).
  std::unique_lock<std::mutex> state_lock() const {
    serve::note_state_lock_acquired();
    return std::unique_lock<std::mutex>(*state_mutex_);
  }

  /// Store the post-commit warm-start caches in the site's shard (its own
  /// lock; never held together with the commit lock).  Null pointers skip
  /// their slot.
  void cache_warm_state(const std::string& site, std::uint64_t version,
                        std::shared_ptr<const linalg::Matrix> factor,
                        std::shared_ptr<const core::LrrWarmStart> lrr) const;

  // --- durability internals (src/persist/engine_persist.cpp) -----------
  /// Commit-consistent value image of every site for checkpointing.
  persist::EngineImage collect_persist_image() const;
  /// Install one checkpointed site into a fresh engine: restore the
  /// chain, publish the latest version, reinstall warm caches + health.
  Status install_restored_site(persist::SiteImage image);
  /// Apply one WAL record during replay (idempotent: versions at or below
  /// the site's restored latest are skipped; a gap is kDataLoss).
  Status apply_wal_record(const persist::WalRecord& record);

  EngineConfig config_;
  /// config_.update_hooks(): failure-path seams, empty (never consulted)
  /// by default.
  UpdateHooks hooks_;
  /// config_.lrr() with the effective thread budget applied; every
  /// correlation acquisition/refresh solves with these options.
  core::LrrOptions lrr_options_;
  std::shared_ptr<const SolverBackend> backend_;
  /// warm_start() requested AND the backend actually consumes problem.l0;
  /// otherwise the cache is bypassed entirely (no copies, no retention).
  bool warm_start_enabled_ = false;
  /// config_.lrr_warm_start(): cache + resume the ADMM state of the
  /// correlation refreshes.
  bool lrr_warm_enabled_ = false;
  /// The COMMIT lock: guards store_ and deployments_ (and serialises
  /// publication order — bundles are published while it is held, so a
  /// site's published version can never move backwards).  Solver,
  /// correlation and localizer-construction work always runs outside it,
  /// and the localization read paths never touch it at all.  Held by
  /// unique_ptr so Engine stays movable (moving an Engine while a batch is
  /// in flight is a caller bug, as with any container).
  std::unique_ptr<std::mutex> state_mutex_ = std::make_unique<std::mutex>();
  SnapshotStore store_;
  std::unordered_map<std::string, const sim::Deployment*> deployments_;
  /// Per-site serving shards: published bundles + warm-start caches.
  /// unique_ptr (registry is non-movable) so Engine stays movable.
  std::unique_ptr<serve::ShardRegistry> shards_ =
      std::make_unique<serve::ShardRegistry>();
};

}  // namespace iup::api
