// Immutable fingerprint snapshots and the versioned per-site store.
//
// A FingerprintSnapshot bundles everything one deployment needs to serve
// reconstruction and localization at a point in time: the fingerprint
// database, the no-decrease mask, the band layout, the reference-location
// set and the inherent correlation matrix Z derived from them.  Snapshots
// are immutable; an update never edits state in place, it commits a new
// version to the SnapshotStore.  Readers therefore keep a consistent view
// (shared_ptr) for as long as they need it while writers move the site
// forward — the seam future sharding/async work builds on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/status.hpp"
#include "base/ids.hpp"
#include "core/fingerprint.hpp"
#include "linalg/matrix.hpp"

namespace iup::api {

class FingerprintSnapshot {
 public:
  FingerprintSnapshot(std::string site, std::uint64_t version,
                      linalg::Matrix database, linalg::Matrix mask,
                      core::BandLayout layout,
                      std::vector<std::size_t> reference_cells,
                      linalg::Matrix correlation, std::size_t day = 0,
                      std::vector<SourceInfo> sources = {})
      : site_(std::move(site)),
        version_(version),
        day_(day),
        database_(std::move(database)),
        mask_(std::move(mask)),
        layout_(layout),
        reference_cells_(std::move(reference_cells)),
        correlation_(std::move(correlation)),
        sources_(std::move(sources)) {}

  const std::string& site() const { return site_; }
  /// 1-based, monotonically increasing per site.
  std::uint64_t version() const { return version_; }
  /// Timestamp label of the survey/update that produced this snapshot.
  std::size_t day() const { return day_; }

  /// M x N fingerprint matrix ("original or latest updated").
  const linalg::Matrix& database() const { return database_; }
  /// M x N 0/1 no-decrease index matrix (Eq. 8).
  const linalg::Matrix& mask() const { return mask_; }
  const core::BandLayout& layout() const { return layout_; }
  /// Grid cells a surveyor must visit for the next update.
  const std::vector<std::size_t>& reference_cells() const {
    return reference_cells_;
  }
  /// Inherent correlation matrix Z (n x N, Eq. 12).
  const linalg::Matrix& correlation() const { return correlation_; }
  /// Per-link source table (one entry per fingerprint row) when the site
  /// was registered with the multi-radio model; empty for legacy
  /// single-technology registrations (source validation disabled).
  const std::vector<SourceInfo>& sources() const { return sources_; }

 private:
  std::string site_;
  std::uint64_t version_ = 0;
  std::size_t day_ = 0;
  linalg::Matrix database_;
  linalg::Matrix mask_;
  core::BandLayout layout_;
  std::vector<std::size_t> reference_cells_;
  linalg::Matrix correlation_;
  std::vector<SourceInfo> sources_;
};

using SnapshotPtr = std::shared_ptr<const FingerprintSnapshot>;

/// Versioned snapshot history for any number of sites.
///
/// Eviction vs concurrent readers: the store hands out SnapshotPtr
/// (shared_ptr) copies, never references into its containers, so a reader
/// holding a pointer to a version that the history limit has since evicted
/// keeps a fully valid, immutable snapshot for as long as it holds the
/// pointer — eviction only drops the STORE's reference.  This is the
/// contract the serve layer's RCU publication relies on (a published
/// bundle may outlive its store entry arbitrarily), and it is
/// machine-checked by the evict-while-read regression tests in
/// tests/serve_test.cpp.  Structural mutation of the store itself is not
/// internally synchronised; Engine guards it with its state mutex.
class SnapshotStore {
 public:
  /// Cap on retained versions per site (oldest evicted first); 0 keeps the
  /// full history.  Version numbers keep counting across evictions.
  explicit SnapshotStore(std::size_t history_limit = 0)
      : history_limit_(history_limit) {}

  /// The version number the next put() for `site` must carry (1 for a new
  /// site).
  std::uint64_t next_version(const std::string& site) const;

  /// Append the newest version of its site.  Fails with
  /// kFailedPrecondition when `snapshot->version() != next_version()` —
  /// versions are append-only and gap-free by construction.
  Status put(SnapshotPtr snapshot);

  /// Install a restored retained window for a site the store does not
  /// know yet (crash recovery: the checkpointed chain may start at any
  /// version > 1 after history-limit eviction).  `chain` must be
  /// non-empty, oldest first, gap-free, all entries non-null and naming
  /// the same site; the history limit trims the oldest entries exactly as
  /// live eviction would.  After this call put() continues the chain at
  /// chain.back()->version() + 1.
  Status restore_history(std::vector<SnapshotPtr> chain);

  bool contains(const std::string& site) const {
    return sites_.count(site) != 0;
  }
  Result<SnapshotPtr> latest(const std::string& site) const;
  Result<SnapshotPtr> at_version(const std::string& site,
                                 std::uint64_t version) const;

  /// Number of versions currently retained (after eviction) for `site`;
  /// 0 for unknown sites.
  std::size_t version_count(const std::string& site) const;
  std::vector<std::string> sites() const;
  Status erase_site(const std::string& site);

  std::size_t history_limit() const { return history_limit_; }

 private:
  struct SiteHistory {
    std::uint64_t first_version = 1;   ///< version of versions.front()
    /// Deque, not vector: the history-limit eviction pops from the front
    /// on every put once the site is at its limit — O(1) instead of
    /// shifting the whole retained window each commit.
    std::deque<SnapshotPtr> versions;
  };

  std::unordered_map<std::string, SiteHistory> sites_;
  std::size_t history_limit_ = 0;
};

}  // namespace iup::api
