#include "api/solver_backend.hpp"

#include "core/self_augmented.hpp"

namespace iup::api {

core::RsvdResult SelfAugmentedBackend::solve(
    const core::RsvdProblem& problem, const core::BandLayout& layout) const {
  const core::SelfAugmentedRsvd solver(layout, options_);
  return solver.solve(problem);
}

core::RsvdResult BasicRsvdBackend::solve(const core::RsvdProblem& problem,
                                         const core::BandLayout&) const {
  return core::basic_rsvd(problem.x_b, problem.b, options_);
}

std::vector<std::string> backend_names() {
  return {"self-augmented", "basic-rsvd", "correlation-only", "nlc-only",
          "als-only"};
}

std::shared_ptr<const SolverBackend> make_backend(
    std::string_view name, const core::RsvdOptions& base) {
  core::RsvdOptions options = base;
  if (name == "self-augmented") {
    return std::make_shared<SelfAugmentedBackend>(options);
  }
  if (name == "basic-rsvd") {
    options.use_constraint1 = false;
    options.use_constraint2 = false;
    return std::make_shared<BasicRsvdBackend>(options);
  }
  if (name == "correlation-only") {
    options.use_constraint1 = true;
    options.use_constraint2 = false;
    return std::make_shared<SelfAugmentedBackend>(options,
                                                  "correlation-only");
  }
  if (name == "nlc-only") {
    options.use_constraint1 = true;
    options.use_constraint2 = true;
    options.w_similarity = 0.0;
    return std::make_shared<SelfAugmentedBackend>(options, "nlc-only");
  }
  if (name == "als-only") {
    options.use_constraint1 = true;
    options.use_constraint2 = true;
    options.w_continuity = 0.0;
    return std::make_shared<SelfAugmentedBackend>(options, "als-only");
  }
  return nullptr;
}

}  // namespace iup::api
