#include "api/snapshot.hpp"

#include <algorithm>

namespace iup::api {

std::uint64_t SnapshotStore::next_version(const std::string& site) const {
  const auto it = sites_.find(site);
  if (it == sites_.end()) return 1;
  const SiteHistory& history = it->second;
  return history.first_version + history.versions.size();
}

Status SnapshotStore::put(SnapshotPtr snapshot) {
  if (snapshot == nullptr) {
    return Status::invalid_argument("SnapshotStore::put: null snapshot");
  }
  const std::string& site = snapshot->site();
  if (site.empty()) {
    return Status::invalid_argument("SnapshotStore::put: empty site name");
  }
  const std::uint64_t expected = next_version(site);
  if (snapshot->version() != expected) {
    return Status::failed_precondition(
        "SnapshotStore::put: site '" + site + "' expects version " +
        std::to_string(expected) + ", got " +
        std::to_string(snapshot->version()));
  }
  SiteHistory& history = sites_[site];
  history.versions.push_back(std::move(snapshot));
  // Eviction drops only the store's reference: any reader (or published
  // serve bundle) still holding the SnapshotPtr keeps the snapshot alive
  // and immutable — see the class comment.
  while (history_limit_ > 0 && history.versions.size() > history_limit_) {
    history.versions.pop_front();
    ++history.first_version;
  }
  return Status();
}

Status SnapshotStore::restore_history(std::vector<SnapshotPtr> chain) {
  if (chain.empty()) {
    return Status::invalid_argument(
        "SnapshotStore::restore_history: empty chain");
  }
  for (const SnapshotPtr& snapshot : chain) {
    if (snapshot == nullptr) {
      return Status::invalid_argument(
          "SnapshotStore::restore_history: null snapshot in chain");
    }
  }
  const std::string& site = chain.front()->site();
  if (site.empty()) {
    return Status::invalid_argument(
        "SnapshotStore::restore_history: empty site name");
  }
  if (contains(site)) {
    return Status::failed_precondition(
        "SnapshotStore::restore_history: site '" + site +
        "' already has history (restore requires a fresh site)");
  }
  const std::uint64_t first = chain.front()->version();
  for (std::size_t k = 0; k < chain.size(); ++k) {
    if (chain[k]->site() != site) {
      return Status::invalid_argument(
          "SnapshotStore::restore_history: chain mixes sites '" + site +
          "' and '" + chain[k]->site() + "'");
    }
    if (chain[k]->version() != first + k) {
      return Status::data_loss(
          "SnapshotStore::restore_history: site '" + site +
          "' chain has a version gap (expected " +
          std::to_string(first + k) + ", got " +
          std::to_string(chain[k]->version()) + ")");
    }
  }
  SiteHistory& history = sites_[site];
  history.versions.assign(std::make_move_iterator(chain.begin()),
                          std::make_move_iterator(chain.end()));
  history.first_version = first;
  // A restore into an engine with a tighter history limit trims exactly
  // as live eviction would have.
  while (history_limit_ > 0 && history.versions.size() > history_limit_) {
    history.versions.pop_front();
    ++history.first_version;
  }
  return Status();
}

Result<SnapshotPtr> SnapshotStore::latest(const std::string& site) const {
  const auto it = sites_.find(site);
  if (it == sites_.end() || it->second.versions.empty()) {
    return Status::not_found("SnapshotStore: unknown site '" + site + "'");
  }
  return it->second.versions.back();
}

Result<SnapshotPtr> SnapshotStore::at_version(const std::string& site,
                                              std::uint64_t version) const {
  const auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::not_found("SnapshotStore: unknown site '" + site + "'");
  }
  const SiteHistory& history = it->second;
  if (version < history.first_version) {
    return Status::not_found("SnapshotStore: site '" + site + "' version " +
                             std::to_string(version) +
                             " was evicted by the history limit");
  }
  const std::uint64_t offset = version - history.first_version;
  if (offset >= history.versions.size()) {
    return Status::not_found("SnapshotStore: site '" + site +
                             "' has no version " + std::to_string(version));
  }
  return history.versions[offset];
}

std::size_t SnapshotStore::version_count(const std::string& site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.versions.size();
}

std::vector<std::string> SnapshotStore::sites() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, history] : sites_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SnapshotStore::erase_site(const std::string& site) {
  if (sites_.erase(site) == 0) {
    return Status::not_found("SnapshotStore: unknown site '" + site + "'");
  }
  return Status();
}

}  // namespace iup::api
