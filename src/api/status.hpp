// Status / Result<T> error handling for the service facade.
//
// The research layers below (core/, loc/, ...) throw std::invalid_argument
// on malformed inputs, which is fine for a bench harness but not for a
// long-running service where one bad request must not take down the
// process.  Every iup::api entry point validates its inputs and returns a
// Status (or Result<T>) instead; exceptions never cross the api boundary.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace iup::api {

enum class StatusCode {
  kOk,
  kInvalidArgument,     ///< malformed request (shape mismatch, empty set,
                        ///< non-finite RSS, ...)
  kNotFound,            ///< unknown site / evicted snapshot version
  kFailedPrecondition,  ///< valid request, wrong engine state (duplicate
                        ///< site, missing deployment, ...)
  kInternal,            ///< a lower layer failed unexpectedly
  kUnavailable,         ///< transient: retry may succeed (circuit breaker
                        ///< open, injected fault, solver outage)
  kDeadlineExceeded,    ///< the work ran past its deadline; any commit was
                        ///< aborted, the last-good version keeps serving
  kResourceExhausted,   ///< a bounded resource is full (observation
                        ///< buffer at capacity, ...)
  kDataLoss,            ///< durable state is corrupt beyond the recovery
                        ///< rules (mid-WAL CRC mismatch, checkpoint
                        ///< section damage, version gap on replay)
};

constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Inverse of to_string(StatusCode): the code whose name is `name`, or
/// nullopt for anything else (including "UNKNOWN").  Exists so logs and
/// wire formats can round-trip codes; tests enumerate every code through
/// it.
constexpr std::optional<StatusCode> status_code_from_string(
    std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded,
        StatusCode::kResourceExhausted, StatusCode::kDataLoss}) {
    if (to_string(code) == name) return code;
  }
  return std::nullopt;
}

class Status {
 public:
  /// Default construction is success, so `return {};` reads as "ok".
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string message) {
    return {StatusCode::kInvalidArgument, std::move(message)};
  }
  static Status not_found(std::string message) {
    return {StatusCode::kNotFound, std::move(message)};
  }
  static Status failed_precondition(std::string message) {
    return {StatusCode::kFailedPrecondition, std::move(message)};
  }
  static Status internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }
  static Status unavailable(std::string message) {
    return {StatusCode::kUnavailable, std::move(message)};
  }
  static Status deadline_exceeded(std::string message) {
    return {StatusCode::kDeadlineExceeded, std::move(message)};
  }
  static Status resource_exhausted(std::string message) {
    return {StatusCode::kResourceExhausted, std::move(message)};
  }
  static Status data_loss(std::string message) {
    return {StatusCode::kDataLoss, std::move(message)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string to_string() const {
    std::string out{api::to_string(code_)};
    if (!message_.empty()) out += ": " + message_;
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::internal("Result constructed from an OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The held value; throws std::logic_error when !ok() (reaching for the
  /// value of a failed Result is a caller bug, not a data error).
  const T& value() const& {
    ensure_ok();
    return *value_;
  }
  T& value() & {
    ensure_ok();
    return *value_;
  }
  T&& value() && {
    ensure_ok();
    return std::move(*value_);
  }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  void ensure_ok() const {
    if (!ok()) {
      throw std::logic_error("Result::value on error: " + status_.to_string());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace iup::api
