// Fluent configuration for iup::api::Engine.
//
//   auto engine = api::Engine(api::EngineConfig()
//                                 .solver("nlc-only")
//                                 .localizer(api::LocalizerKind::kKnn)
//                                 .refresh_correlation(false));
//
// Setters return *this; unset fields keep the paper's defaults (self-
// augmented RSVD, OMP localization, correlation refreshed on every commit).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "api/snapshot.hpp"
#include "api/solver_backend.hpp"
#include "api/status.hpp"
#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "core/rsvd.hpp"

namespace iup::api {

/// Which localizer Engine::localize builds over a site's database.
enum class LocalizerKind {
  kOmp,   ///< the paper's sparse-recovery matcher (Sec. V)
  kKnn,   ///< RADAR-style nearest fingerprints
  kRass,  ///< SVR baseline; needs Engine::attach_deployment
};

/// One successfully committed snapshot, as observed by the after_commit
/// hook: the exact immutable state a durability layer must write to make
/// a later restore bit-identical.  The warm-cache pointers mirror what
/// Engine::cache_warm_state installed for this version (null when the
/// corresponding cache is disabled or the commit path produced none) —
/// persisting them matters because the caches change later solver
/// iterates, so a replay that re-solved from cold caches would drift
/// from the uninterrupted run at the byte level.
struct CommitEvent {
  SnapshotPtr snapshot;  ///< the committed version (never null)
  std::shared_ptr<const linalg::Matrix> warm_factor;    ///< converged L
  std::shared_ptr<const core::LrrWarmStart> lrr_state;  ///< ADMM state
};

/// Failure-path and durability seams on the update pipeline, default-empty
/// (and then completely free: a null hook is never consulted, so the
/// default-config update trajectory is byte-identical with or without this
/// struct).  ingest::FaultInjector::engine_hooks() builds closures for the
/// failure seams; persist::DurabilityManager::engine_hooks() adds the
/// after_commit durability tap (and can compose around an inner injector's
/// hooks).  Hooks may be called concurrently (one per in-flight update)
/// and must be thread-safe.
struct UpdateHooks {
  /// Consulted by every solve (update / reconstruct / update_batch) after
  /// request validation, before the solver runs.  A non-OK return fails
  /// the solve with exactly that status — no state has been touched.
  std::function<Status()> on_solve;
  /// Consulted once per update() after the solve and correlation refresh,
  /// before the commit lock is taken; `elapsed` is the wall-clock time
  /// since the update entered the engine.  A non-OK return aborts the
  /// commit — nothing is published, the site keeps serving its last-good
  /// bundle — which is how a cooperative deadline is enforced (return
  /// kDeadlineExceeded when `elapsed` is past budget).
  std::function<Status(std::chrono::nanoseconds elapsed)> before_publish;
  /// Fired once per committed snapshot (register_site,
  /// set_reference_cells and every update() commit), after publication
  /// and warm-cache installation, OUTSIDE the commit lock and every shard
  /// lock.  The commit is already visible to readers, so the hook cannot
  /// veto it — a durability layer that crashes between publish and its
  /// WAL append loses at most this in-flight commit, never a published
  /// prefix.  Runs on the committing thread; keep it cheap or hand off.
  std::function<void(const CommitEvent&)> after_commit;
};

class EngineConfig {
 public:
  EngineConfig() = default;

  EngineConfig& rsvd(core::RsvdOptions value) {
    rsvd_ = value;
    return *this;
  }
  EngineConfig& lrr(core::LrrOptions value) {
    lrr_ = value;
    return *this;
  }
  EngineConfig& mic_strategy(core::MicStrategy value) {
    mic_strategy_ = value;
    return *this;
  }
  /// Re-derive Z from each committed reconstruction (the paper's "original
  /// or latest updated" phrasing).
  EngineConfig& refresh_correlation(bool value) {
    refresh_correlation_ = value;
    return *this;
  }
  /// Reuse the previous snapshot's converged factor as the solver's L0
  /// (versioned per-site cache, invalidated whenever the site moves to a
  /// version the cache was not derived from) instead of paying for a fresh
  /// warm-start SVD on every update.  Only backends that consume the
  /// factor participate (FactorInit::kWarmStart).  NOTE: on by default,
  /// which changes the second-and-later update() iterates (and thus
  /// committed x_hat values) relative to releases without the cache — the
  /// solver starts from a different, better L0.  Results remain
  /// bit-identical across thread counts and across engines replaying the
  /// same per-site request sequence; set warm_start(false) to reproduce
  /// cold-start-era numbers exactly.
  EngineConfig& warm_start(bool value) {
    warm_start_ = value;
    return *this;
  }
  /// Warm-start each post-commit correlation refresh from the previous
  /// snapshot's ADMM state (Z + multipliers + penalty, versioned per-site
  /// cache like the solver factor above) instead of solving the LRR cold
  /// — roughly a 3-4x cut in refresh iterations on slowly-drifting
  /// databases.  A version jump the cache was not derived from (e.g.
  /// set_reference_cells) resets to a cold solve, so stale state can
  /// never leak across reference sets.  Changes refreshed Z values at
  /// iterate level (same fixed point within the ADMM tolerance); results
  /// remain bit-identical across thread counts and across engines
  /// replaying the same request sequence.  Set false for cold-refresh
  /// numbers.
  EngineConfig& lrr_warm_start(bool value) {
    lrr_warm_start_ = value;
    return *this;
  }
  /// Pick a solver by registry name (see make_backend()); resolved against
  /// the rsvd() options when the engine is constructed.
  EngineConfig& solver(std::string name) {
    solver_name_ = std::move(name);
    solver_backend_.reset();
    return *this;
  }
  /// Inject a concrete backend instance (wins over solver(name)).
  EngineConfig& solver(std::shared_ptr<const SolverBackend> backend) {
    solver_backend_ = std::move(backend);
    return *this;
  }
  EngineConfig& localizer(LocalizerKind value) {
    localizer_ = value;
    return *this;
  }
  /// Snapshot versions retained per site (0 = unlimited).
  EngineConfig& history_limit(std::size_t value) {
    history_limit_ = value;
    return *this;
  }
  /// Worker threads (0 = all hardware threads).  Sets the solver sweep
  /// parallelism (RsvdOptions::threads is overridden when the engine
  /// builds its backend, regardless of setter order), the correlation
  /// pipeline (MIC column scoring and the LRR ADMM fan-out, both at
  /// registration and on every post-commit refresh) and the update_batch /
  /// localize_batch fan-out.  When never called, the rsvd().threads value
  /// applies throughout.  Results are bit-identical for any value: the
  /// solver sweep and the MIC/LRR kernels never reorder a floating-point
  /// reduction, and the batch fan-outs only parallelise independent work
  /// (distinct sites / distinct measurements).
  EngineConfig& threads(std::size_t value) {
    threads_ = value;
    return *this;
  }
  /// Install failure-path seams on the update pipeline (see UpdateHooks).
  /// Default-empty hooks cost nothing and change nothing.
  EngineConfig& update_hooks(UpdateHooks value) {
    update_hooks_ = std::move(value);
    return *this;
  }

  const core::RsvdOptions& rsvd() const { return rsvd_; }
  const core::LrrOptions& lrr() const { return lrr_; }
  core::MicStrategy mic_strategy() const { return mic_strategy_; }
  bool refresh_correlation() const { return refresh_correlation_; }
  bool warm_start() const { return warm_start_; }
  bool lrr_warm_start() const { return lrr_warm_start_; }
  const std::string& solver_name() const { return solver_name_; }
  const std::shared_ptr<const SolverBackend>& solver_backend() const {
    return solver_backend_;
  }
  LocalizerKind localizer() const { return localizer_; }
  std::size_t history_limit() const { return history_limit_; }
  const UpdateHooks& update_hooks() const { return update_hooks_; }
  std::size_t threads() const {
    return threads_ == kInheritThreads ? rsvd_.threads : threads_;
  }

 private:
  /// Sentinel: threads() inherits rsvd().threads until explicitly set.
  static constexpr std::size_t kInheritThreads =
      static_cast<std::size_t>(-1);
  core::RsvdOptions rsvd_;
  core::LrrOptions lrr_;
  core::MicStrategy mic_strategy_ = core::MicStrategy::kQrcp;
  bool refresh_correlation_ = true;
  bool warm_start_ = true;
  bool lrr_warm_start_ = true;
  std::string solver_name_ = "self-augmented";
  std::shared_ptr<const SolverBackend> solver_backend_;
  LocalizerKind localizer_ = LocalizerKind::kOmp;
  std::size_t history_limit_ = 0;
  std::size_t threads_ = kInheritThreads;
  UpdateHooks update_hooks_;
};

}  // namespace iup::api
