// Pluggable reconstruction solvers.
//
// The seed hardwired SelfAugmentedRsvd into the update path; the engine
// instead solves through this interface, so ablation variants
// (basic RSVD, correlation-only, NLC-only, ALS-only) and future backends
// (other completion solvers, accelerator offload) are a runtime choice.
// Backends are stateless function objects over a fully-specified
// RsvdProblem; one instance may serve any number of sites concurrently.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/rsvd.hpp"

namespace iup::api {

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  /// Registry name ("self-augmented", "basic-rsvd", ...).
  virtual std::string name() const = 0;

  /// True when the backend consumes the Constraint-1 prediction
  /// `problem.p = X_R * Z`; the engine skips that product otherwise.
  virtual bool uses_correlation() const = 0;

  /// True when the backend consumes an explicit warm-start factor
  /// `problem.l0`; the engine's versioned warm-start cache is bypassed
  /// (no factor copies, no retained memory) otherwise.
  virtual bool uses_warm_start() const { return false; }

  /// Reconstruct the full fingerprint matrix for one problem.  `layout` is
  /// the band structure Constraint 2 operates on.
  virtual core::RsvdResult solve(const core::RsvdProblem& problem,
                                 const core::BandLayout& layout) const = 0;
};

/// The paper's self-augmented RSVD (Eq. 18 / Algorithm 1) with explicit
/// options; also backs the ablation presets in make_backend().
class SelfAugmentedBackend final : public SolverBackend {
 public:
  explicit SelfAugmentedBackend(core::RsvdOptions options = {},
                                std::string name = "self-augmented")
      : options_(options), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  bool uses_correlation() const override { return options_.use_constraint1; }
  bool uses_warm_start() const override {
    return options_.init == core::FactorInit::kWarmStart;
  }
  core::RsvdResult solve(const core::RsvdProblem& problem,
                         const core::BandLayout& layout) const override;

  const core::RsvdOptions& options() const { return options_; }

 private:
  core::RsvdOptions options_;
  std::string name_;
};

/// Plain regularized-SVD completion (Eq. 11): no constraints at all.
class BasicRsvdBackend final : public SolverBackend {
 public:
  explicit BasicRsvdBackend(core::RsvdOptions options = {})
      : options_(options) {}

  std::string name() const override { return "basic-rsvd"; }
  bool uses_correlation() const override { return false; }
  core::RsvdResult solve(const core::RsvdProblem& problem,
                         const core::BandLayout& layout) const override;

 private:
  core::RsvdOptions options_;
};

/// Names make_backend() understands, in registry order.
std::vector<std::string> backend_names();

/// Build a backend by registry name, deriving its options from `base`:
///   "self-augmented"   both constraints as configured in `base`
///   "basic-rsvd"       Eq. 11 completion, no constraints
///   "correlation-only" Constraint 1 only
///   "nlc-only"         Constraint 1 + location continuity (ALS weight 0)
///   "als-only"         Constraint 1 + adjacent-link similarity (NLC 0)
/// Returns nullptr for unknown names.
std::shared_ptr<const SolverBackend> make_backend(
    std::string_view name, const core::RsvdOptions& base = {});

}  // namespace iup::api
