// K-nearest-neighbour fingerprint matching.
//
// The classic RADAR-style matcher the paper mentions as an alternative to
// its nonlinear-optimization approach (Sec. V).  Included both as a
// comparison localizer and because the KNN-vs-OMP gap is part of what the
// RASS comparison (Figs. 23/24) attributes to the matching algorithm.
#pragma once

#include "loc/localizer.hpp"

namespace iup::loc {

struct KnnOptions {
  std::size_t k = 3;  ///< neighbours averaged for the estimate
};

class KnnLocalizer final : public Localizer {
 public:
  KnnLocalizer(linalg::Matrix database, KnnOptions options = {});

  /// Nearest column by Euclidean distance; with k > 1 the estimate is the
  /// cell whose centre is closest to the distance-weighted centroid of the
  /// k best cells (needs a deployment for geometry).
  LocalizationEstimate localize(
      std::span<const double> measurement) const override;

  std::string name() const override { return "KNN"; }

  /// Attach deployment geometry to enable centroid averaging; without it,
  /// k is effectively 1.
  void set_deployment(const sim::Deployment* deployment) {
    deployment_ = deployment;
  }

 private:
  linalg::Matrix database_;
  KnnOptions options_;
  const sim::Deployment* deployment_ = nullptr;
};

}  // namespace iup::loc
