// Orthogonal Matching Pursuit localizer — Section V of the paper.
//
// The paper models localization as y = X_hat * W + noise with a 0/1 sparse
// location vector W (Eq. 26) and recovers W greedily by OMP (Eq. 27),
// stopping when the residual drops below xi.
//
// Practical detail: raw dBm fingerprint columns are dominated by the
// per-link baseline level and are therefore nearly collinear, which blunts
// the greedy correlation step.  Like compressive-sensing DFL systems
// built on the same formulation [18], we match in the *perturbation*
// domain by default: the measured (or estimated) no-target baseline is
// subtracted from y and from every column, turning fingerprints into
// sparse attenuation signatures.  Set `subtract_baseline = false` for the
// raw-domain variant; both are exercised in tests and benches.
#pragma once

#include <optional>

#include "loc/localizer.hpp"

namespace iup::loc {

struct OmpOptions {
  std::size_t max_atoms = 3;  ///< sparsity budget (1 target + slack atoms)
  double residual_xi = 1e-3;  ///< stop threshold on ||y - X w||_2^2 (Eq. 27),
                              ///< relative to ||y||_2^2
  bool subtract_baseline = true;
  /// Also remove the across-link mean from the matching domain.
  /// Differential signatures are immune to common-mode interference *and*
  /// to common-mode drift — which makes even a stale database usable and
  /// would mask the staleness effect the paper evaluates (Figs. 21/22).
  /// Off by default to stay faithful to the paper's raw-RSS matching
  /// (Eq. 26); turn on for deployments that prefer drift tolerance over
  /// absolute fidelity.
  bool remove_common_mode = false;
};

class OmpLocalizer final : public Localizer {
 public:
  /// `database` is the fingerprint matrix (M x N).  `baselines` holds the
  /// per-link no-target RSS used for perturbation-domain matching; pass an
  /// empty vector to derive it from the database's no-decrease entries
  /// (per-row median).
  OmpLocalizer(linalg::Matrix database, std::vector<double> baselines,
               OmpOptions options = {});

  LocalizationEstimate localize(
      std::span<const double> measurement) const override;

  std::string name() const override { return "OMP"; }

  /// Full OMP solve: the sparse weight vector (support + coefficients);
  /// exposed for the multi-target extension and for tests.
  struct SparseSolution {
    std::vector<std::size_t> support;
    std::vector<double> coefficients;
    double residual_norm = 0.0;
  };
  SparseSolution solve(std::span<const double> measurement) const;

  const linalg::Matrix& database() const { return database_; }
  const std::vector<double>& baselines() const { return baselines_; }

 private:
  linalg::Matrix database_;         ///< raw fingerprints
  linalg::Matrix dictionary_;       ///< matching-domain columns (normalised)
  linalg::Matrix atoms_;            ///< matching-domain columns (raw scale)
  std::vector<double> baselines_;
  OmpOptions options_;
};

}  // namespace iup::loc
