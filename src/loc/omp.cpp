#include "loc/omp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/qr.hpp"
#include "linalg/vec.hpp"

namespace iup::loc {

namespace {

// Per-row median of the entries of `x`; a robust baseline estimate because
// most entries of a fingerprint row are no-decrease (unaffected) readings.
std::vector<double> row_medians(const linalg::Matrix& x) {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto row = x.row(i);
    std::nth_element(row.begin(), row.begin() + row.size() / 2, row.end());
    out[i] = row[row.size() / 2];
  }
  return out;
}

}  // namespace

OmpLocalizer::OmpLocalizer(linalg::Matrix database,
                           std::vector<double> baselines, OmpOptions options)
    : database_(std::move(database)),
      baselines_(std::move(baselines)),
      options_(options) {
  if (database_.empty()) {
    throw std::invalid_argument("OmpLocalizer: empty database");
  }
  if (baselines_.empty()) {
    baselines_ = row_medians(database_);
  }
  if (baselines_.size() != database_.rows()) {
    throw std::invalid_argument("OmpLocalizer: baseline length mismatch");
  }

  // Matching-domain atoms: optionally baseline-subtracted columns.
  atoms_ = database_;
  if (options_.subtract_baseline) {
    for (std::size_t i = 0; i < atoms_.rows(); ++i) {
      for (std::size_t j = 0; j < atoms_.cols(); ++j) {
        atoms_(i, j) -= baselines_[i];
      }
    }
  }
  if (options_.remove_common_mode) {
    for (std::size_t j = 0; j < atoms_.cols(); ++j) {
      double mean = 0.0;
      for (std::size_t i = 0; i < atoms_.rows(); ++i) mean += atoms_(i, j);
      mean /= static_cast<double>(atoms_.rows());
      for (std::size_t i = 0; i < atoms_.rows(); ++i) atoms_(i, j) -= mean;
    }
  }
  // Unit-norm copy for the greedy correlation step.
  dictionary_ = atoms_;
  for (std::size_t j = 0; j < dictionary_.cols(); ++j) {
    const auto col = dictionary_.col(j);
    const double n = linalg::norm2(col);
    if (n > 0.0) {
      for (std::size_t i = 0; i < dictionary_.rows(); ++i) {
        dictionary_(i, j) /= n;
      }
    }
  }
}

OmpLocalizer::SparseSolution OmpLocalizer::solve(
    std::span<const double> measurement) const {
  if (measurement.size() != database_.rows()) {
    throw std::invalid_argument("OmpLocalizer: measurement length mismatch");
  }
  std::vector<double> y(measurement.begin(), measurement.end());
  if (options_.subtract_baseline) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] -= baselines_[i];
  }
  if (options_.remove_common_mode) {
    const double mean = linalg::mean(y);
    for (double& v : y) v -= mean;
  }

  SparseSolution sol;
  std::vector<double> residual = y;
  const double y_norm_sq = std::max(linalg::dot(y, y), 1e-300);
  std::vector<bool> used(database_.cols(), false);

  for (std::size_t k = 0; k < options_.max_atoms; ++k) {
    // Greedy step: atom with the largest |<residual, atom>|.
    std::size_t best = 0;
    double best_corr = -1.0;
    for (std::size_t j = 0; j < dictionary_.cols(); ++j) {
      if (used[j]) continue;
      const double corr = std::abs(linalg::dot(residual, dictionary_.col(j)));
      if (corr > best_corr) {
        best_corr = corr;
        best = j;
      }
    }
    if (best_corr <= 0.0) break;
    used[best] = true;
    sol.support.push_back(best);

    // Least-squares refit of y on the selected atoms.
    const linalg::Matrix sub = atoms_.select_columns(sol.support);
    sol.coefficients = linalg::least_squares(sub, y);

    // Updated residual.
    const auto fitted = sub * std::span<const double>(sol.coefficients);
    residual = linalg::sub(y, fitted);
    const double res_sq = linalg::dot(residual, residual);
    sol.residual_norm = std::sqrt(res_sq);
    if (res_sq < options_.residual_xi * y_norm_sq) break;
  }
  return sol;
}

LocalizationEstimate OmpLocalizer::localize(
    std::span<const double> measurement) const {
  const SparseSolution sol = solve(measurement);
  LocalizationEstimate est;
  if (sol.support.empty()) {
    est.cell = 0;
    est.score = std::numeric_limits<double>::infinity();
    return est;
  }
  // The first greedy atom is the single-target estimate.  (Do NOT pick the
  // largest refit coefficient: weak-attenuation atoms have small norms and
  // soak up large coefficients, which systematically drags estimates to
  // the link midpoint.)
  est.cell = sol.support.front();
  est.score = sol.residual_norm;
  return est;
}

}  // namespace iup::loc
