#include "loc/localizer.hpp"

#include "geom/geometry.hpp"

namespace iup::loc {

double cell_distance_m(const sim::Deployment& deployment, std::size_t a,
                       std::size_t b) {
  return geom::distance(deployment.cell_center(a), deployment.cell_center(b));
}

}  // namespace iup::loc
