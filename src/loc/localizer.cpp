#include "loc/localizer.hpp"

#include "geom/geometry.hpp"

namespace iup::loc {

std::vector<LocalizationEstimate> Localizer::localize_batch(
    const std::vector<std::vector<double>>& measurements) const {
  std::vector<LocalizationEstimate> estimates;
  estimates.reserve(measurements.size());
  for (const std::vector<double>& measurement : measurements) {
    estimates.push_back(localize(measurement));
  }
  return estimates;
}

double cell_distance_m(const sim::Deployment& deployment, std::size_t a,
                       std::size_t b) {
  return geom::distance(deployment.cell_center(a), deployment.cell_center(b));
}

}  // namespace iup::loc
