// Localizer interface and shared error metrics (Section V).
//
// A localizer matches one online measurement vector y (Eq. 25) against a
// fingerprint database and returns the estimated grid cell.  Concrete
// implementations: OmpLocalizer (the paper's nonlinear-optimization method,
// Eq. 26/27), KnnLocalizer (classic nearest-fingerprint matching) and
// baselines::Rass (SVR regression).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/deployment.hpp"

namespace iup::loc {

struct LocalizationEstimate {
  std::size_t cell = 0;     ///< estimated grid index
  double score = 0.0;       ///< method-specific confidence (residual, ...)
};

class Localizer {
 public:
  virtual ~Localizer() = default;

  /// Estimate the target's grid cell from an online RSS vector
  /// (one entry per link).
  virtual LocalizationEstimate localize(
      std::span<const double> measurement) const = 0;

  /// Batched localization: one estimate per measurement, in order.  The
  /// base implementation loops over localize(); implementations with
  /// per-call setup cost may override it to amortize that work.
  virtual std::vector<LocalizationEstimate> localize_batch(
      const std::vector<std::vector<double>>& measurements) const;

  /// Human-readable method name for reports.
  virtual std::string name() const = 0;
};

/// Euclidean distance [m] between the centres of two grid cells.
double cell_distance_m(const sim::Deployment& deployment, std::size_t a,
                       std::size_t b);

}  // namespace iup::loc
