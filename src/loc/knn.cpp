#include "loc/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "geom/geometry.hpp"
#include "linalg/vec.hpp"

namespace iup::loc {

KnnLocalizer::KnnLocalizer(linalg::Matrix database, KnnOptions options)
    : database_(std::move(database)), options_(options) {
  if (database_.empty()) {
    throw std::invalid_argument("KnnLocalizer: empty database");
  }
  if (options_.k == 0) {
    throw std::invalid_argument("KnnLocalizer: k must be >= 1");
  }
}

LocalizationEstimate KnnLocalizer::localize(
    std::span<const double> measurement) const {
  if (measurement.size() != database_.rows()) {
    throw std::invalid_argument("KnnLocalizer: measurement length mismatch");
  }

  // Euclidean distance to every fingerprint column.
  std::vector<double> dist(database_.cols());
  for (std::size_t j = 0; j < database_.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < database_.rows(); ++i) {
      const double d = measurement[i] - database_(i, j);
      acc += d * d;
    }
    dist[j] = std::sqrt(acc);
  }

  const std::size_t k = std::min(options_.k, dist.size());
  std::vector<std::size_t> order(dist.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return dist[a] < dist[b];
                    });

  LocalizationEstimate est;
  est.score = dist[order[0]];
  if (k == 1 || deployment_ == nullptr) {
    est.cell = order[0];
    return est;
  }

  // Distance-weighted centroid of the k best cells, snapped back to the
  // nearest grid cell.
  double wx = 0.0, wy = 0.0, wsum = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const std::size_t j = order[t];
    const double w = 1.0 / (dist[j] + 1e-6);
    const geom::Point2 c = deployment_->cell_center(j);
    wx += w * c.x;
    wy += w * c.y;
    wsum += w;
  }
  est.cell = deployment_->nearest_cell({wx / wsum, wy / wsum});
  return est;
}

}  // namespace iup::loc
