// Self-augmented RSVD — Eq. 18 and Algorithm 1 of the paper.
//
// Objective (weights shown where our implementation generalises the paper):
//
//   min  lambda (||L||_F^2 + ||R||_F^2)            regularisation
//      + ||B o (L R^T) - X_B||_F^2                 no-decrease data term
//      + w1 ||L R^T - X_R Z||_F^2                  Constraint 1 (correlation)
//      + w2 ||X_D * G||_F^2 + w3 ||H * X_D||_F^2   Constraint 2 (continuity /
//                                                  adjacent-link similarity)
//
// solved by alternating per-column (R-update) and per-row (L-update) ridge
// systems in closed form, exactly the structure of the published MyInverse
// routine (Eq. 24).  Two published index bugs are repaired and documented
// in self_augmented.cpp; the ablation bench compares the literal and the
// repaired (Gauss-Seidel) treatment of Constraint 2.
//
// Performance: the per-column and per-row solves are independent, so the
// sweep fans out over RsvdOptions::threads via iup::parallel with
// bit-identical results for any thread count (each index owns its output
// row; no reduction is reordered).  All sweep scratch lives in a
// SweepContext of caller-owned buffers, so steady-state iterations perform
// zero heap allocations.
//
// Mask-grouping invariant (RsvdOptions::group_masks, default on).  The
// normal matrix Q of the column-j R-update is
//
//   Q_j = (lambda*I + L^T L) - sum_{i unobserved in column j} l_i l_i^T
//       + w1 L^T L                                     (Constraint 1)
//       + (w2 ||G(jj,:)||^2 + w3 c_ii) l_ii l_ii^T     (Constraint 2)
//
// with ii = band_of(j), jj = slot_of(j) and c_ii the similarity curvature
// count.  Q_j therefore depends ONLY on (a) the column's unobserved row
// set, (b) its band row ii, and (c) the two scalar curvature weights —
// never on the observed VALUES, which enter the right-hand side alone.
// Columns that agree on (a)-(c) share Q bit for bit in every sweep (same
// inputs, same op sequence), so the sweep groups them once per solve,
// factors each group's Q once, and solves the group's right-hand sides as
// one multi-RHS panel (linalg::solve_factored_spd_multi), whose per-column
// results are bit-identical to the historical one-column loop.  The RHS
// panel is built fused as well: a group's members share the observed index
// set (complement of the signature's unobserved set), so one walk over it
// feeds every member column — each L/R row is loaded once per group
// instead of once per member, with per-member accumulation order (and
// therefore every bit) unchanged.  The same
// holds for L-update rows when Constraint 2 is inactive (with c2 active,
// the per-row Theta curvature makes every row's Q unique).  Guarantees:
// grouped and ungrouped sweeps are exactly equal, at every thread count
// and kernel dispatch level (tests/linalg_spd_multi_test.cpp).
#pragma once

#include <utility>

#include "core/fingerprint.hpp"
#include "core/rsvd.hpp"

namespace iup::core {

/// Reusable buffers for one solve() call: factor iterates, shared sweep
/// products and one workspace per worker thread.  Defined in
/// self_augmented.cpp; stack-allocated by solve().
struct SweepContext;

class SelfAugmentedRsvd {
 public:
  /// `layout` describes the band structure used by Constraint 2.
  SelfAugmentedRsvd(BandLayout layout, RsvdOptions options);

  const RsvdOptions& options() const { return options_; }
  const linalg::Matrix& continuity() const { return g_; }
  const linalg::Matrix& similarity() const { return h_; }

  /// Run Algorithm 1 on a fully-specified problem.
  RsvdResult solve(const RsvdProblem& problem) const;

  /// The L0 iterate solve() starts from (Algorithm 1 line 1): the explicit
  /// problem.l0 when given (kWarmStart), otherwise the SVD factor of the
  /// completed matrix, or a seeded random factor for kRandom.  Public so
  /// callers that cache warm starts (api::Engine) and tests can reproduce
  /// the initialisation exactly.
  linalg::Matrix initial_factor(const RsvdProblem& problem) const;

 private:
  struct Weights {
    double w1 = 0.0;  ///< Constraint-1 weight (0 when disabled)
    double w2 = 0.0;  ///< continuity weight
    double w3 = 0.0;  ///< similarity weight
  };

  /// X_B completed with the Constraint-1 prediction (or row means): the
  /// warm-start matrix, also the reference iterate for auto-scaling.
  linalg::Matrix warm_matrix(const RsvdProblem& problem) const;

  /// The two scalar Constraint-2 curvature weights of column j's normal
  /// matrix (the coefficients of its l_band outer products): {w2c, w3c}
  /// with w2c = w2 ||G(jj,:)||^2 and w3c the similarity count /
  /// h-column factor of band ii.  Single source of truth for the
  /// R-update's Q build AND solve()'s mask-group signature — the
  /// grouping invariant is only sound while the signature encodes
  /// exactly the scalars the Q build applies.
  std::pair<double, double> c2_curvature(const Weights& w,
                                         std::size_t j) const;
  Weights effective_weights(const RsvdProblem& problem) const;
  double objective(const RsvdProblem& problem, const Weights& w,
                   const linalg::Matrix& l, const linalg::Matrix& r,
                   SweepContext& ctx) const;

  /// Closed-form update of every column of Theta = R^T with L fixed
  /// (Algorithm 1 line 3 / Eq. 24).  Writes ctx.r_next.
  void update_r(const RsvdProblem& problem, const Weights& w,
                const linalg::Matrix& l, const linalg::Matrix& r_prev,
                SweepContext& ctx) const;

  /// Closed-form update of every row of L with R fixed (line 4).
  /// Writes ctx.l_next.
  void update_l(const RsvdProblem& problem, const Weights& w,
                const linalg::Matrix& l_prev, const linalg::Matrix& r,
                SweepContext& ctx) const;

  BandLayout layout_;
  RsvdOptions options_;
  linalg::Matrix g_;    ///< continuity matrix (S x S)
  linalg::Matrix g_t_;  ///< G^T, precomputed for the L-update cross terms
  linalg::Matrix h_;    ///< similarity matrix (M x M)
};

}  // namespace iup::core
