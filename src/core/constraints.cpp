#include "core/constraints.hpp"

#include <cmath>
#include <stdexcept>

namespace iup::core {

linalg::Matrix neighbor_matrix(std::size_t slots) {
  if (slots == 0) throw std::invalid_argument("neighbor_matrix: slots == 0");
  linalg::Matrix t(slots, slots);
  for (std::size_t p = 0; p + 1 < slots; ++p) {
    t(p, p + 1) = 1.0;
    t(p + 1, p) = 1.0;
  }
  return t;
}

namespace {

// G* = T + Gbar where Gbar is diagonal with Gbar(p,p) = -(column sum of T);
// G is G* with each column divided by its diagonal entry, making the
// diagonal 1 (reproduces the paper's 3x3 example, Eq. 14).
linalg::Matrix base_continuity(std::size_t slots) {
  const linalg::Matrix t = neighbor_matrix(slots);
  linalg::Matrix g = t;
  for (std::size_t p = 0; p < slots; ++p) {
    double col_sum = 0.0;
    for (std::size_t w = 0; w < slots; ++w) col_sum += t(w, p);
    g(p, p) = -col_sum;
  }
  for (std::size_t q = 0; q < slots; ++q) {
    const double d = g(q, q);
    if (d == 0.0) continue;
    for (std::size_t p = 0; p < slots; ++p) g(p, q) /= d;
  }
  return g;
}

// Midpoint redefinition of one column c (0-based): the attenuation profile
// flips direction there, so the column becomes a symmetric difference of
// the two neighbours instead of a deviation-from-average (Eqs. 15/16).
void redefine_midpoint_column(linalg::Matrix& g, std::size_t c) {
  const std::size_t s = g.rows();
  for (std::size_t p = 0; p < s; ++p) g(p, c) = 0.0;
  if (c + 1 < s) g(c + 1, c) = 1.0;
  if (c >= 1) g(c - 1, c) = -1.0;
}

}  // namespace

linalg::Matrix continuity_matrix_without_midpoint_fix(std::size_t slots) {
  return base_continuity(slots);
}

linalg::Matrix continuity_matrix(std::size_t slots) {
  linalg::Matrix g = base_continuity(slots);
  if (slots < 3) return g;  // no interior midpoint to redefine

  // Paper indexing is 1-based: p = (N/M - 1)/2 + 1.  Convert to 0-based.
  const double p_one_based =
      (static_cast<double>(slots) - 1.0) / 2.0 + 1.0;
  const double integral = std::floor(p_one_based);
  if (p_one_based == integral) {
    redefine_midpoint_column(g, static_cast<std::size_t>(integral) - 1);
  } else {
    const auto lo = static_cast<std::size_t>(std::floor(p_one_based)) - 1;
    const auto hi = static_cast<std::size_t>(std::ceil(p_one_based)) - 1;
    redefine_midpoint_column(g, lo);
    redefine_midpoint_column(g, hi);
  }
  return g;
}

linalg::Matrix similarity_matrix(std::size_t links) {
  if (links == 0) throw std::invalid_argument("similarity_matrix: links == 0");
  return linalg::Matrix::toeplitz(-1.0, 1.0, 0.0, links);
}

}  // namespace iup::core
