// Low-rank representation (LRR) solver — Eq. 12 of the paper:
//
//     min_{Z,E}  ||Z||_* + eps ||E||_{2,1}   s.t.  X = X_MIC Z + E,
//
// solved by the inexact Augmented Lagrange Multiplier method of
// Liu, Lin & Yu (ICML 2010).  Z is the "inherent correlation matrix" that
// links the MIC columns to every other column; it is computed once from the
// original (or latest updated) fingerprint matrix and reused at every
// subsequent update (Constraint 1 of the self-augmented RSVD), which is why
// a fresh survey of only the reference locations suffices.
//
// Performance: the ADMM state is kept transposed (grid columns are
// contiguous rows), the fixed normal matrix I + A^T A is factored exactly
// once per call (back-substitution only per iteration), the J-update's
// singular-value thresholding runs through the n x n Gram eigenproblem
// instead of an SVD of the tall iterate, and the per-column work of each
// iteration fans out over iup::parallel with the same one-owner-per-output
// determinism guarantee as the solver sweep.  Steady-state iterations
// perform zero heap allocations.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace iup::core {

struct LrrOptions {
  double epsilon = 0.5;     ///< weight of the ||E||_{2,1} corruption term
  double mu = 1e-4;         ///< initial ALM penalty
  double mu_max = 1e10;
  double rho = 1.6;         ///< penalty growth factor
  double tol = 1e-7;        ///< relative stopping tolerance
  std::size_t max_iters = 500;
  /// Adaptive mu scheduling: while the combined residual stagnates
  /// (> 90% of the previous iteration's) the penalty grows by rho^2
  /// instead of rho, skipping most of the small-mu warm-up phase; once
  /// residuals fall geometrically the schedule drops back to rho.  The
  /// sequence stays monotone non-decreasing (capped at mu_max), so the
  /// inexact-ALM convergence argument is unaffected.  Deterministic —
  /// results remain bit-identical across thread counts — but iterates
  /// differ from the fixed schedule, so the default stays off; warm
  /// restarts (solve_lrr with a LrrWarmStart) always use it, cold solves
  /// only when this flag is set.
  bool adaptive_rho = false;
  /// Worker threads for the per-column fan-out of each ADMM iteration
  /// (Z back-substitution, E shrinkage and the A*Z product; 0 = all
  /// hardware threads).  Results are bit-identical for any value: every
  /// grid column owns its slice of the iterate and the residual-norm
  /// reductions stay serial.  Note: api::Engine overrides this with its
  /// effective EngineConfig::threads() budget, exactly as it does for
  /// RsvdOptions::threads — set the engine-wide knob there.
  std::size_t threads = 1;
};

struct LrrResult {
  linalg::Matrix z;       ///< n x N correlation matrix
  linalg::Matrix e;       ///< M x N sparse-column corruption
  linalg::Matrix y1;      ///< M x N data-constraint multiplier at exit
  linalg::Matrix y2;      ///< n x N Z=J multiplier at exit
  double mu_final = 0.0;  ///< penalty at exit (seed for warm restarts)
  std::size_t iterations = 0;
  bool converged = false;
  double residual = 0.0;  ///< final ||X - A Z - E||_F / ||X||_F
};

/// Warm restart of the ADMM state, e.g. from the previous snapshot's
/// correlation when the fingerprint matrix drifts slowly between updates
/// (the paper's premise).  `z` seeds the primal iterate; `y1`/`y2` resume
/// dual ascent (used only when their shapes match the problem AND z was
/// accepted — multipliers are meaningless without the iterate they came
/// from); `mu > 0` resumes the penalty at mu / rho^2 (clamped to
/// [options.mu, options.mu_max]), skipping the small-mu warm-up entirely.
/// A shape mismatch on `z` (e.g. the reference set changed) falls back to
/// the cold start, so stale state can degrade convergence speed but never
/// correctness.
struct LrrWarmStart {
  linalg::Matrix z;    ///< n x N previous correlation
  linalg::Matrix y1;   ///< optional M x N multiplier
  linalg::Matrix y2;   ///< optional n x N multiplier
  double mu = 0.0;     ///< optional penalty to resume from (0 = cold mu)
};

/// Solve Eq. 12 with dictionary `a` (= X_MIC, M x n) and data `x` (M x N).
/// `warm` (optional) resumes from a previous solve's state; warm runs
/// always use the adaptive mu schedule (see LrrOptions::adaptive_rho).
LrrResult solve_lrr(const linalg::Matrix& a, const linalg::Matrix& x,
                    const LrrOptions& options = {},
                    const LrrWarmStart* warm = nullptr);

}  // namespace iup::core
