// Low-rank representation (LRR) solver — Eq. 12 of the paper:
//
//     min_{Z,E}  ||Z||_* + eps ||E||_{2,1}   s.t.  X = X_MIC Z + E,
//
// solved by the inexact Augmented Lagrange Multiplier method of
// Liu, Lin & Yu (ICML 2010).  Z is the "inherent correlation matrix" that
// links the MIC columns to every other column; it is computed once from the
// original (or latest updated) fingerprint matrix and reused at every
// subsequent update (Constraint 1 of the self-augmented RSVD), which is why
// a fresh survey of only the reference locations suffices.
//
// Performance: the ADMM state is kept transposed (grid columns are
// contiguous rows), the fixed normal matrix I + A^T A is factored exactly
// once per call (back-substitution only per iteration), the J-update's
// singular-value thresholding runs through the n x n Gram eigenproblem
// instead of an SVD of the tall iterate, and the per-column work of each
// iteration fans out over iup::parallel with the same one-owner-per-output
// determinism guarantee as the solver sweep.  Steady-state iterations
// perform zero heap allocations.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace iup::core {

struct LrrOptions {
  double epsilon = 0.5;     ///< weight of the ||E||_{2,1} corruption term
  double mu = 1e-4;         ///< initial ALM penalty
  double mu_max = 1e10;
  double rho = 1.6;         ///< penalty growth factor
  double tol = 1e-7;        ///< relative stopping tolerance
  std::size_t max_iters = 500;
  /// Worker threads for the per-column fan-out of each ADMM iteration
  /// (Z back-substitution, E shrinkage and the A*Z product; 0 = all
  /// hardware threads).  Results are bit-identical for any value: every
  /// grid column owns its slice of the iterate and the residual-norm
  /// reductions stay serial.  Note: api::Engine overrides this with its
  /// effective EngineConfig::threads() budget, exactly as it does for
  /// RsvdOptions::threads — set the engine-wide knob there.
  std::size_t threads = 1;
};

struct LrrResult {
  linalg::Matrix z;       ///< n x N correlation matrix
  linalg::Matrix e;       ///< M x N sparse-column corruption
  std::size_t iterations = 0;
  bool converged = false;
  double residual = 0.0;  ///< final ||X - A Z - E||_F / ||X||_F
};

/// Solve Eq. 12 with dictionary `a` (= X_MIC, M x n) and data `x` (M x N).
LrrResult solve_lrr(const linalg::Matrix& a, const linalg::Matrix& x,
                    const LrrOptions& options = {});

}  // namespace iup::core
