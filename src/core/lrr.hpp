// Low-rank representation (LRR) solver — Eq. 12 of the paper:
//
//     min_{Z,E}  ||Z||_* + eps ||E||_{2,1}   s.t.  X = X_MIC Z + E,
//
// solved by the inexact Augmented Lagrange Multiplier method of
// Liu, Lin & Yu (ICML 2010).  Z is the "inherent correlation matrix" that
// links the MIC columns to every other column; it is computed once from the
// original (or latest updated) fingerprint matrix and reused at every
// subsequent update (Constraint 1 of the self-augmented RSVD), which is why
// a fresh survey of only the reference locations suffices.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace iup::core {

struct LrrOptions {
  double epsilon = 0.5;     ///< weight of the ||E||_{2,1} corruption term
  double mu = 1e-4;         ///< initial ALM penalty
  double mu_max = 1e10;
  double rho = 1.6;         ///< penalty growth factor
  double tol = 1e-7;        ///< relative stopping tolerance
  std::size_t max_iters = 500;
};

struct LrrResult {
  linalg::Matrix z;       ///< n x N correlation matrix
  linalg::Matrix e;       ///< M x N sparse-column corruption
  std::size_t iterations = 0;
  bool converged = false;
  double residual = 0.0;  ///< final ||X - A Z - E||_F / ||X||_F
};

/// Solve Eq. 12 with dictionary `a` (= X_MIC, M x n) and data `x` (M x N).
LrrResult solve_lrr(const linalg::Matrix& a, const linalg::Matrix& x,
                    const LrrOptions& options = {});

}  // namespace iup::core
