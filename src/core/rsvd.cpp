#include "core/rsvd.hpp"

#include "core/self_augmented.hpp"

namespace iup::core {

RsvdResult basic_rsvd(const linalg::Matrix& x_b, const linalg::Matrix& b,
                      RsvdOptions options) {
  options.use_constraint1 = false;
  options.use_constraint2 = false;
  // With both constraints off the band layout is never consulted, so basic
  // RSVD works on matrices of any shape (tests use synthetic low-rank data).
  const BandLayout layout{b.rows(),
                          b.rows() ? b.cols() / b.rows() : std::size_t{0}};
  const SelfAugmentedRsvd solver(layout, options);
  RsvdProblem problem;
  problem.x_b = x_b;
  problem.b = b;
  return solver.solve(problem);
}

}  // namespace iup::core
