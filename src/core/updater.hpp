// The iUpdater pipeline (Fig. 10): ties the four modules together.
//
//  1. Inherent Correlation Acquisition — MIC extraction from the original
//     (or latest updated) fingerprint matrix, then the LRR solve for Z.
//  2. Reconstruction Data Collection — the caller supplies fresh X_B
//     (no-decrease matrix, no labor) and X_R (reference-location survey,
//     the only labor-cost measurements).
//  3. Fingerprint Matrix Reconstruction — self-augmented RSVD.
//  4. Target Localization — see loc/ (OMP) which consumes the result.
//
// The class is deliberately stateful across updates: after `update()` the
// reconstructed matrix becomes the "latest updated" database, exactly as
// the paper describes re-acquiring the correlation from it next time.
//
// DEPRECATED as a service entry point: new code should drive the pipeline
// through iup::api::Engine (src/api/engine.hpp), which adds versioned
// snapshots, Status-based error handling, batched updates and pluggable
// solver backends.  IUpdater remains as a thin single-site shim over the
// same core modules for existing tests and benches.
#pragma once

#include <cstddef>
#include <vector>

#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "core/rsvd.hpp"
#include "core/self_augmented.hpp"

namespace iup::core {

/// Inherent-correlation acquisition shared by IUpdater and api::Engine:
/// solve the LRR (Eq. 12) with the MIC columns as dictionary and return Z.
linalg::Matrix acquire_correlation(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options);

/// As acquire_correlation, but returning the full ADMM result (Z plus the
/// multiplier state and final penalty) and optionally resuming from a
/// previous solve's state — the warm path of the correlation refresh: the
/// database drifts slowly between updates, so the previous snapshot's Z
/// and multipliers are a near-converged iterate for the next refresh.
LrrResult acquire_correlation_full(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options,
                                   const LrrWarmStart* warm = nullptr);

struct UpdaterConfig {
  RsvdOptions rsvd;
  LrrOptions lrr;
  MicStrategy mic_strategy = MicStrategy::kQrcp;
  /// Re-derive Z from each reconstructed matrix so consecutive updates
  /// track slow structural change (true follows the paper's "original or
  /// latest updated" phrasing).
  bool refresh_correlation = true;
  /// Warm-start each correlation refresh from the previous ADMM state
  /// (Z + multipliers + penalty) instead of solving cold — roughly halves
  /// the refresh's iterations on slowly-drifting databases.  Changes the
  /// refreshed Z at iterate level (same fixed point within tolerance);
  /// set false to reproduce cold-refresh-era numbers exactly.  Mirrored
  /// by EngineConfig::lrr_warm_start so Engine and IUpdater stay in exact
  /// parity.
  bool lrr_warm_start = true;
};

struct UpdateInputs {
  linalg::Matrix x_b;  ///< M x N no-decrease measurements (zeros elsewhere)
  linalg::Matrix x_r;  ///< M x n fresh reference-location survey (Eq. 13)
};

struct UpdateReport {
  linalg::Matrix x_hat;          ///< reconstructed fingerprint matrix
  RsvdResult solver;             ///< factors + objective history
  std::size_t reference_count = 0;
};

class IUpdater {
 public:
  /// `x_original` is the full fingerprint matrix from the initial site
  /// survey; `b_mask` the 0/1 no-decrease index matrix (Eq. 8).
  IUpdater(linalg::Matrix x_original, linalg::Matrix b_mask,
           UpdaterConfig config = {});

  /// The grid cells a surveyor must visit for every update.
  const std::vector<std::size_t>& reference_cells() const {
    return mic_.reference_cells;
  }

  /// Override the reference set (benchmarks evaluate 7 / 8+1 / random
  /// sets); recomputes the correlation matrix from the current database.
  void set_reference_cells(const std::vector<std::size_t>& cells);

  /// Inherent correlation matrix Z (n x N).
  const linalg::Matrix& correlation() const { return z_; }

  /// Latest database (original until the first update).
  const linalg::Matrix& database() const { return x_latest_; }

  const linalg::Matrix& mask() const { return b_; }
  const UpdaterConfig& config() const { return config_; }

  /// Reconstruct the full matrix from fresh measurements without mutating
  /// the stored database (benchmarks evaluate several time stamps against
  /// the same original correlation).
  UpdateReport reconstruct(const UpdateInputs& inputs) const;

  /// Reconstruct and commit: the result becomes the latest database and,
  /// when `refresh_correlation` is set, the correlation is re-acquired.
  UpdateReport update(const UpdateInputs& inputs);

 private:
  /// Cold acquisition (construction, reference-set changes): solves from
  /// scratch and replaces the cached ADMM state.
  void acquire_correlation();
  /// Post-update refresh: warm-starts from {z_, multiplier state} when
  /// config_.lrr_warm_start is set, cold otherwise.
  void refresh_correlation();
  void store_lrr_state(LrrResult&& result);

  UpdaterConfig config_;
  linalg::Matrix x_latest_;
  linalg::Matrix b_;
  BandLayout layout_;
  MicResult mic_;
  linalg::Matrix z_;
  /// ADMM multiplier state of the solve that produced z_ (z field unused;
  /// z_ itself seeds the next warm restart).
  linalg::Matrix lrr_y1_;
  linalg::Matrix lrr_y2_;
  double lrr_mu_ = 0.0;
};

}  // namespace iup::core
