// The iUpdater pipeline (Fig. 10): shared pieces of the four modules.
//
//  1. Inherent Correlation Acquisition — MIC extraction from the original
//     (or latest updated) fingerprint matrix, then the LRR solve for Z.
//  2. Reconstruction Data Collection — the caller supplies fresh X_B
//     (no-decrease matrix, no labor) and X_R (reference-location survey,
//     the only labor-cost measurements).
//  3. Fingerprint Matrix Reconstruction — self-augmented RSVD.
//  4. Target Localization — see loc/ (OMP) which consumes the result.
//
// The pipeline's service entry point is iup::api::Engine
// (src/api/engine.hpp): versioned snapshots, Status-based error handling,
// batched updates, warm-start caches and pluggable solver backends.  The
// pre-Engine IUpdater shim that used to live here was retired once its
// last callers migrated; what remains is the correlation-acquisition seam
// the Engine (and tests) drive directly, plus the input/report value
// types every layer shares.
#pragma once

#include <cstddef>
#include <vector>

#include "base/ids.hpp"
#include "core/lrr.hpp"
#include "core/mic.hpp"
#include "core/rsvd.hpp"
#include "core/self_augmented.hpp"

namespace iup::core {

/// Inherent-correlation acquisition (Eq. 12): solve the LRR with the MIC
/// columns as dictionary and return Z.
linalg::Matrix acquire_correlation(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options);

/// As acquire_correlation, but returning the full ADMM result (Z plus the
/// multiplier state and final penalty) and optionally resuming from a
/// previous solve's state — the warm path of the correlation refresh: the
/// database drifts slowly between updates, so the previous snapshot's Z
/// and multipliers are a near-converged iterate for the next refresh.
LrrResult acquire_correlation_full(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options,
                                   const LrrWarmStart* warm = nullptr);

struct UpdateInputs {
  linalg::Matrix x_b;  ///< M x N no-decrease measurements (zeros elsewhere)
  linalg::Matrix x_r;  ///< M x n fresh reference-location survey (Eq. 13)
  /// Per-link source provenance of the measurement campaign (one entry
  /// per row of x_b / x_r), empty when unattributed.  The numeric core
  /// ignores it; api::Engine rejects inputs whose provenance disagrees
  /// with the site's registered source table.
  std::vector<SourceInfo> sources;
};

struct UpdateReport {
  linalg::Matrix x_hat;          ///< reconstructed fingerprint matrix
  RsvdResult solver;             ///< factors + objective history
  std::size_t reference_count = 0;
};

}  // namespace iup::core
