#include "core/updater.hpp"

namespace iup::core {

linalg::Matrix acquire_correlation(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options) {
  return solve_lrr(mic.x_mic, x, options).z;
}

LrrResult acquire_correlation_full(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options,
                                   const LrrWarmStart* warm) {
  return solve_lrr(mic.x_mic, x, options, warm);
}

}  // namespace iup::core
