#include "core/updater.hpp"

#include <stdexcept>

namespace iup::core {

linalg::Matrix acquire_correlation(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options) {
  return solve_lrr(mic.x_mic, x, options).z;
}

LrrResult acquire_correlation_full(const MicResult& mic,
                                   const linalg::Matrix& x,
                                   const LrrOptions& options,
                                   const LrrWarmStart* warm) {
  return solve_lrr(mic.x_mic, x, options, warm);
}

IUpdater::IUpdater(linalg::Matrix x_original, linalg::Matrix b_mask,
                   UpdaterConfig config)
    : config_(std::move(config)),
      x_latest_(std::move(x_original)),
      b_(std::move(b_mask)) {
  if (x_latest_.rows() != b_.rows() || x_latest_.cols() != b_.cols()) {
    throw std::invalid_argument("IUpdater: X / B shape mismatch");
  }
  layout_ = band_layout_of(x_latest_);
  mic_ = extract_mic(x_latest_, config_.mic_strategy);
  acquire_correlation();
}

void IUpdater::store_lrr_state(LrrResult&& result) {
  z_ = std::move(result.z);
  if (config_.lrr_warm_start) {
    lrr_y1_ = std::move(result.y1);
    lrr_y2_ = std::move(result.y2);
    lrr_mu_ = result.mu_final;
  }
}

void IUpdater::acquire_correlation() {
  store_lrr_state(acquire_correlation_full(mic_, x_latest_, config_.lrr));
}

void IUpdater::refresh_correlation() {
  if (!config_.lrr_warm_start) {
    acquire_correlation();
    return;
  }
  LrrWarmStart warm;
  warm.z = z_;
  warm.y1 = lrr_y1_;
  warm.y2 = lrr_y2_;
  warm.mu = lrr_mu_;
  store_lrr_state(
      acquire_correlation_full(mic_, x_latest_, config_.lrr, &warm));
}

void IUpdater::set_reference_cells(const std::vector<std::size_t>& cells) {
  mic_ = mic_from_cells(x_latest_, cells);
  acquire_correlation();
}

UpdateReport IUpdater::reconstruct(const UpdateInputs& inputs) const {
  if (inputs.x_b.rows() != b_.rows() || inputs.x_b.cols() != b_.cols()) {
    throw std::invalid_argument("IUpdater::reconstruct: X_B shape mismatch");
  }
  if (inputs.x_r.rows() != b_.rows() ||
      inputs.x_r.cols() != mic_.reference_cells.size()) {
    throw std::invalid_argument(
        "IUpdater::reconstruct: X_R must have one fresh column per "
        "reference location");
  }

  RsvdProblem problem;
  problem.x_b = inputs.x_b;
  problem.b = b_;
  if (config_.rsvd.use_constraint1) {
    problem.p = inputs.x_r * z_;  // Constraint-1 prediction X_R * Z
  }

  const SelfAugmentedRsvd solver(layout_, config_.rsvd);
  UpdateReport report;
  report.solver = solver.solve(problem);
  report.x_hat = report.solver.x_hat;
  report.reference_count = mic_.reference_cells.size();
  return report;
}

UpdateReport IUpdater::update(const UpdateInputs& inputs) {
  UpdateReport report = reconstruct(inputs);

  // The reconstruction becomes the "latest updated" database; optionally
  // refresh the MIC/correlation from it for the next cycle.
  x_latest_ = report.x_hat;
  if (config_.refresh_correlation) {
    mic_ = mic_from_cells(x_latest_, mic_.reference_cells);
    refresh_correlation();
  }
  return report;
}

}  // namespace iup::core
