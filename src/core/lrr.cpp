#include "core/lrr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "linalg/vec.hpp"
#include "parallel/thread_pool.hpp"

namespace iup::core {

namespace {

// Per-call scratch of solve_lrr.  The ADMM state is stored TRANSPOSED:
// a grid column of X / Z / E / Y1 / Y2 is a contiguous row here, so the
// per-column Z back-substitution, the E shrinkage and the (A Z)^T product
// all run on contiguous memory and each column is one independently-owned
// unit of parallel work.  Everything is allocated once below; the
// iterations themselves never touch the heap.
struct LrrWorkspace {
  linalg::Matrix xt;    ///< N x M : X^T
  linalg::Matrix at;    ///< n x M : A^T (rows contiguous for the rhs dots)
  linalg::Matrix lfac;  ///< n x n : Cholesky factor of I + A^T A
  linalg::Matrix zt;    ///< N x n : Z^T (also holds the rhs pre-solve)
  linalg::Matrix jt;    ///< N x n : J^T
  linalg::Matrix y2t;   ///< N x n : Y2^T
  linalg::Matrix et;    ///< N x M : E^T
  linalg::Matrix y1t;   ///< N x M : Y1^T
  linalg::Matrix dt;    ///< N x M : (X - E)^T rhs scratch
  linalg::Matrix azt;   ///< N x M : (A Z)^T, shared by E-update and residual
  linalg::Matrix jin;   ///< N x n : (Z + Y2/mu)^T, the SVT input
  linalg::Matrix gmat;  ///< n x n : jin^T jin, eigendecomposed in place
  linalg::Matrix evec;  ///< n x n : eigenvectors of gmat
  linalg::Matrix smat;  ///< n x n : V diag(f(sigma)/sigma) V^T
  std::vector<double> scale;  ///< n : per-mode SVT shrink factors
  std::vector<double> diag;   ///< n : factor_spd retry scratch
};

// Jt = SVT(Jin) at level tau, computed through the small side: with
// G = Jin^T Jin = V Sigma^2 V^T (n x n, n = MIC rank), the thresholded
// iterate is Jin * V diag(max(sigma - tau, 0)/sigma) V^T — no SVD of the
// tall N x n iterate needed.  Modes with sigma <= tau (including exact
// null directions) are zeroed, exactly like the dense SVT.
void svt_via_gram(LrrWorkspace& ws, double tau) {
  linalg::gram_into(ws.jin, ws.gmat);
  linalg::eigh_sym_in_place(ws.gmat, ws.evec);
  const std::size_t n = ws.gmat.rows();
  ws.scale.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = ws.gmat(k, k);
    const double sigma = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    ws.scale[k] = sigma > tau ? (sigma - tau) / sigma : 0.0;
  }
  ws.smat.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (ws.scale[k] == 0.0) continue;
        acc += ws.scale[k] * ws.evec(i, k) * ws.evec(j, k);
      }
      ws.smat(i, j) = acc;
    }
  }
  linalg::multiply_into(ws.jin, ws.smat, ws.jt);
}

}  // namespace

LrrResult solve_lrr(const linalg::Matrix& a, const linalg::Matrix& x,
                    const LrrOptions& options, const LrrWarmStart* warm) {
  if (a.rows() != x.rows()) {
    throw std::invalid_argument("solve_lrr: dictionary/data row mismatch");
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t big_n = x.cols();
  const std::size_t threads = parallel::resolve_threads(options.threads);

  LrrWorkspace ws;
  linalg::transpose_into(x, ws.xt);
  linalg::transpose_into(a, ws.at);

  // Warm restart: accept the previous correlation only when its shape
  // matches this problem exactly (a reference-set change resets to cold —
  // the convergence-preserving reset).  Multipliers and the resumed
  // penalty ride along only with an accepted Z.
  const bool warm_z =
      warm != nullptr && warm->z.rows() == n && warm->z.cols() == big_n;
  const bool warm_y = warm_z && warm->y1.rows() == m &&
                      warm->y1.cols() == big_n && warm->y2.rows() == n &&
                      warm->y2.cols() == big_n;

  // The Z-update normal matrix I + A^T A is fixed for the whole ADMM run:
  // factor it exactly once (with the deterministic diagonal-bump retry of
  // the SPD pipeline) and back-substitute per iteration.
  linalg::gram_into(a, ws.lfac);
  for (std::size_t i = 0; i < n; ++i) ws.lfac(i, i) += 1.0;
  ws.diag.resize(n);
  if (!linalg::factor_spd(ws.lfac, ws.diag)) {
    throw std::runtime_error("solve_lrr: (I + A^T A) not SPD (numerical)");
  }

  if (warm_z) {
    linalg::transpose_into(warm->z, ws.zt);
  } else {
    ws.zt.resize(big_n, n);
  }
  ws.jt.resize(big_n, n);
  if (warm_y) {
    linalg::transpose_into(warm->y2, ws.y2t);
    linalg::transpose_into(warm->y1, ws.y1t);
  } else {
    ws.y2t.resize(big_n, n);
    ws.y1t.resize(big_n, m);
  }
  ws.et.resize(big_n, m);
  ws.dt.resize(big_n, m);
  ws.azt.resize(big_n, m);
  ws.jin.resize(big_n, n);

  const double x_norm = std::max(linalg::frobenius_norm(x), 1e-12);
  double mu = options.mu;
  if (warm_z && warm->mu > 0.0) {
    // Resume the penalty two growth steps below where the previous solve
    // stopped: near-final mu keeps the SVT threshold small immediately
    // (no warm-up phase), while the rho^2 headroom leaves the first few
    // iterations enough step size to absorb the drift in X.
    mu = std::clamp(warm->mu / (options.rho * options.rho), options.mu,
                    options.mu_max);
  }
  const bool adaptive = options.adaptive_rho || (warm_z && warm->mu > 0.0);
  double prev_r_max = -1.0;
  LrrResult out;

  for (std::size_t it = 0; it < options.max_iters; ++it) {
    const double inv_mu = 1.0 / mu;

    // J-update: singular-value thresholding of Z + Y2/mu at level 1/mu.
    {
      const auto z = ws.zt.data();
      const auto y2 = ws.y2t.data();
      const auto jin = ws.jin.data();
      for (std::size_t k = 0; k < jin.size(); ++k) {
        jin[k] = z[k] + y2[k] * inv_mu;
      }
    }
    svt_via_gram(ws, inv_mu);

    // Z-update, (A Z)^T product and E-update in one fan-out over the N
    // grid columns.  Every column (= row of the transposed state) is
    // written by exactly one chunk and all cross-column inputs (at, lfac,
    // jt, the multipliers) are read-only here, so the result is
    // bit-identical for any thread count.
    const double tau = options.epsilon * inv_mu;
    parallel::parallel_for(
        threads, big_n, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t r = begin; r < end; ++r) {
            const auto xrow = ws.xt.row_span(r);
            const auto y1row = ws.y1t.row_span(r);
            const auto y2row = ws.y2t.row_span(r);
            const auto jrow = ws.jt.row_span(r);
            const auto d = ws.dt.row_span(r);
            const auto erow = ws.et.row_span(r);
            for (std::size_t i = 0; i < m; ++i) d[i] = xrow[i] - erow[i];

            // (I + A^T A) z = A^T (X - E) + J + (A^T Y1 - Y2)/mu, built
            // directly in the output row and solved there.
            const auto zrow = ws.zt.row_span(r);
            for (std::size_t jj = 0; jj < n; ++jj) {
              const auto arow = ws.at.row_span(jj);
              zrow[jj] = linalg::dot(arow, d) + jrow[jj] +
                         (linalg::dot(arow, y1row) - y2row[jj]) * inv_mu;
            }
            linalg::solve_factored_spd(ws.lfac, zrow);

            const auto azrow = ws.azt.row_span(r);
            for (std::size_t i = 0; i < m; ++i) {
              azrow[i] = linalg::dot(a.row_span(i), zrow);
            }

            // E-update: l2,1 shrinkage of q = X - A Z + Y1/mu, column-wise.
            double col_norm = 0.0;
            for (std::size_t i = 0; i < m; ++i) {
              const double q = xrow[i] - azrow[i] + y1row[i] * inv_mu;
              col_norm += q * q;
            }
            col_norm = std::sqrt(col_norm);
            const double shrink =
                col_norm > tau ? (col_norm - tau) / col_norm : 0.0;
            for (std::size_t i = 0; i < m; ++i) {
              erow[i] = shrink * (xrow[i] - azrow[i] + y1row[i] * inv_mu);
            }
          }
        });

    // Multiplier updates and residual norms, fused.  The norms are global
    // reductions, so this pass stays serial — its accumulation order must
    // not depend on the chunk partition.
    double r1_sq = 0.0;
    double r2_sq = 0.0;
    for (std::size_t r = 0; r < big_n; ++r) {
      const auto xrow = ws.xt.row_span(r);
      const auto azrow = ws.azt.row_span(r);
      const auto erow = ws.et.row_span(r);
      const auto y1row = ws.y1t.row_span(r);
      for (std::size_t i = 0; i < m; ++i) {
        const double res = xrow[i] - azrow[i] - erow[i];
        y1row[i] += mu * res;
        r1_sq += res * res;
      }
      const auto zrow = ws.zt.row_span(r);
      const auto jrow = ws.jt.row_span(r);
      const auto y2row = ws.y2t.row_span(r);
      for (std::size_t jj = 0; jj < n; ++jj) {
        const double res = zrow[jj] - jrow[jj];
        y2row[jj] += mu * res;
        r2_sq += res * res;
      }
    }
    out.iterations = it + 1;
    const double r1 = std::sqrt(r1_sq) / x_norm;
    const double r2 = std::sqrt(r2_sq) / x_norm;
    out.residual = r1;
    const double r_max = std::max(r1, r2);
    // Adaptive mu: while the combined residual stagnates the penalty is
    // too small to make progress — grow it by rho^2; once the residual
    // contracts geometrically, fall back to the plain rho schedule.
    double rho_eff = options.rho;
    if (adaptive && prev_r_max >= 0.0 && r_max > 0.9 * prev_r_max) {
      rho_eff = options.rho * options.rho;
    }
    prev_r_max = r_max;
    mu = std::min(rho_eff * mu, options.mu_max);
    if (r1 < options.tol && r2 < options.tol) {
      out.converged = true;
      break;
    }
  }

  out.mu_final = mu;
  linalg::transpose_into(ws.zt, out.z);
  linalg::transpose_into(ws.et, out.e);
  linalg::transpose_into(ws.y1t, out.y1);
  linalg::transpose_into(ws.y2t, out.y2);
  return out;
}

}  // namespace iup::core
