#include "core/lrr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"

namespace iup::core {

LrrResult solve_lrr(const linalg::Matrix& a, const linalg::Matrix& x,
                    const LrrOptions& options) {
  if (a.rows() != x.rows()) {
    throw std::invalid_argument("solve_lrr: dictionary/data row mismatch");
  }
  const std::size_t n = a.cols();
  const std::size_t big_n = x.cols();

  // Cached Cholesky of (I + A^T A) for the Z-update.
  linalg::Matrix gram = a.gram();
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += 1.0;
  const auto chol = linalg::cholesky(gram);
  if (!chol) {
    throw std::runtime_error("solve_lrr: (I + A^T A) not SPD (numerical)");
  }

  const linalg::Matrix at = a.transpose();
  const double x_norm = std::max(linalg::frobenius_norm(x), 1e-12);

  linalg::Matrix z(n, big_n);
  linalg::Matrix j(n, big_n);
  linalg::Matrix e(x.rows(), big_n);
  linalg::Matrix y1(x.rows(), big_n);  // multiplier for X = AZ + E
  linalg::Matrix y2(n, big_n);         // multiplier for Z = J

  double mu = options.mu;
  LrrResult out;

  for (std::size_t it = 0; it < options.max_iters; ++it) {
    // J-update: singular-value thresholding of Z + Y2/mu at level 1/mu.
    j = linalg::singular_value_threshold(z + y2 / mu, 1.0 / mu);

    // Z-update: (I + A^T A) Z = A^T (X - E) + J + (A^T Y1 - Y2)/mu.
    {
      linalg::Matrix rhs = at * (x - e) + j + (at * y1 - y2) / mu;
      for (std::size_t c = 0; c < big_n; ++c) {
        z.set_col(c, linalg::cholesky_solve(*chol, rhs.col(c)));
      }
    }

    // E-update: column-wise l2,1 shrinkage of Q = X - A Z + Y1/mu.
    {
      const linalg::Matrix q = x - a * z + y1 / mu;
      const double tau = options.epsilon / mu;
      for (std::size_t c = 0; c < big_n; ++c) {
        double col_norm = 0.0;
        for (std::size_t r = 0; r < q.rows(); ++r) {
          col_norm += q(r, c) * q(r, c);
        }
        col_norm = std::sqrt(col_norm);
        const double scale =
            col_norm > tau ? (col_norm - tau) / col_norm : 0.0;
        for (std::size_t r = 0; r < q.rows(); ++r) {
          e(r, c) = scale * q(r, c);
        }
      }
    }

    // Multiplier and penalty updates.
    const linalg::Matrix res1 = x - a * z - e;
    const linalg::Matrix res2 = z - j;
    y1 += mu * res1;
    y2 += mu * res2;
    mu = std::min(options.rho * mu, options.mu_max);

    out.iterations = it + 1;
    const double r1 = linalg::frobenius_norm(res1) / x_norm;
    const double r2 = linalg::frobenius_norm(res2) / x_norm;
    out.residual = r1;
    if (r1 < options.tol && r2 < options.tol) {
      out.converged = true;
      break;
    }
  }

  out.z = std::move(z);
  out.e = std::move(e);
  return out;
}

}  // namespace iup::core
