// Constraint matrices of Section IV-C: T (Eq. 4), G (Eqs. 14-16) and
// H (Eq. 17).
//
// T encodes which along-link slots are neighbours; G is the
// column-normalised continuity operator with the paper's mid-column
// redefinition (the RSS attenuation profile peaks at the link ends and dips
// at the midpoint, so the plain neighbour-average penalty would be wrong
// exactly at the middle of each link); H = Toeplitz(-1, 1, 0) differences
// adjacent links.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace iup::core {

/// Neighbour relationship matrix T (Eq. 4): S x S with T(p, q) = 1 when
/// slots p and q are adjacent along a link.
linalg::Matrix neighbor_matrix(std::size_t slots);

/// Continuity matrix G (Eq. 14) including the midpoint redefinition
/// (Eqs. 15/16).  Columns are normalised by their diagonal entry of
/// G* = T + Gbar so that the diagonal becomes 1, reproducing the worked
/// 3 x 3 example in the paper.
linalg::Matrix continuity_matrix(std::size_t slots);

/// Continuity matrix *without* the midpoint fix; exposed so the ablation
/// bench can quantify what the fix is worth.
linalg::Matrix continuity_matrix_without_midpoint_fix(std::size_t slots);

/// Adjacent-link similarity matrix H (Eq. 17): M x M Toeplitz(-1, 1, 0).
linalg::Matrix similarity_matrix(std::size_t links);

}  // namespace iup::core
