#include "core/fingerprint.hpp"

#include <cmath>
#include <stdexcept>

namespace iup::core {

BandLayout band_layout_of(const linalg::Matrix& x) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("band_layout_of: empty matrix");
  }
  if (x.cols() % x.rows() != 0) {
    throw std::invalid_argument(
        "band_layout_of: columns not a multiple of rows (N/M must be "
        "integral; see Definition 2)");
  }
  return BandLayout{x.rows(), x.cols() / x.rows()};
}

linalg::Matrix extract_largely_decrease(const linalg::Matrix& x,
                                        const BandLayout& layout) {
  if (x.rows() != layout.links || x.cols() != layout.num_cells()) {
    throw std::invalid_argument("extract_largely_decrease: shape mismatch");
  }
  linalg::Matrix xd(layout.links, layout.slots);
  for (std::size_t i = 0; i < layout.links; ++i) {
    for (std::size_t u = 0; u < layout.slots; ++u) {
      xd(i, u) = x(i, layout.cell(i, u));
    }
  }
  return xd;
}

void insert_largely_decrease(linalg::Matrix& x, const linalg::Matrix& xd,
                             const BandLayout& layout) {
  if (x.rows() != layout.links || x.cols() != layout.num_cells() ||
      xd.rows() != layout.links || xd.cols() != layout.slots) {
    throw std::invalid_argument("insert_largely_decrease: shape mismatch");
  }
  for (std::size_t i = 0; i < layout.links; ++i) {
    for (std::size_t u = 0; u < layout.slots; ++u) {
      x(i, layout.cell(i, u)) = xd(i, u);
    }
  }
}

linalg::Matrix nlc_values(const linalg::Matrix& xd, const linalg::Matrix& t) {
  const std::size_t m = xd.rows();
  const std::size_t s = xd.cols();
  if (t.rows() != s || t.cols() != s) {
    throw std::invalid_argument("nlc_values: T must be S x S");
  }

  // Normalisation constant: spread of |X_D| across the whole matrix.
  double max_abs = 0.0, min_abs = std::abs(xd(0, 0));
  for (double v : xd.data()) {
    max_abs = std::max(max_abs, std::abs(v));
    min_abs = std::min(min_abs, std::abs(v));
  }
  const double spread = std::max(max_abs - min_abs, 1e-12);

  linalg::Matrix out(m, s);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t u = 0; u < s; ++u) {
      double neigh_sum = 0.0, neigh_count = 0.0;
      for (std::size_t w = 0; w < s; ++w) {
        if (t(w, u) != 0.0) {
          neigh_sum += std::abs(xd(i, w)) * t(w, u);
          neigh_count += t(w, u);
        }
      }
      const double avg = neigh_count > 0.0 ? neigh_sum / neigh_count : 0.0;
      out(i, u) = std::abs(std::abs(xd(i, u)) - avg) / spread;
    }
  }
  return out;
}

linalg::Matrix als_values(const linalg::Matrix& xd) {
  const std::size_t m = xd.rows();
  const std::size_t s = xd.cols();
  if (m < 2) {
    throw std::invalid_argument("als_values: need at least two links");
  }
  // Normalisation: the largest adjacent-link difference anywhere.
  double max_diff = 0.0;
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t u = 0; u < s; ++u) {
      max_diff = std::max(max_diff, std::abs(xd(i, u) - xd(i - 1, u)));
    }
  }
  max_diff = std::max(max_diff, 1e-12);

  linalg::Matrix out(m - 1, s);
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t u = 0; u < s; ++u) {
      out(i - 1, u) = std::abs(xd(i, u) - xd(i - 1, u)) / max_diff;
    }
  }
  return out;
}

double fraction_below(const linalg::Matrix& values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values.data()) {
    if (v < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace iup::core
