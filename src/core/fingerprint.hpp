// Fingerprint-matrix containers and the paper's Section II machinery.
//
// Definition 1: X = (x_ij), i in [1,M] links, j in [1,N] grid cells.
// Definition 2: the largely-decrease matrix X_D (M x N/M) collects the
// entries where the target blocks the direct path: d_{i,u} = x_{i,j} with
// j = (i-1) * N/M + u.
//
// This header also implements the two benchmark statistics the paper uses
// to establish Observations 2 and 3:
//   NLC (Eq. 5) — normalized difference between a largely-decrease entry
//                 and the mean of its along-link neighbours;
//   ALS (Eq. 6) — normalized difference between the same relative slot of
//                 adjacent links.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace iup::core {

/// Band structure of the grid: M links, S = N/M slots along each link.
struct BandLayout {
  std::size_t links = 0;  ///< M
  std::size_t slots = 0;  ///< S = N/M

  std::size_t num_cells() const { return links * slots; }
  std::size_t cell(std::size_t link, std::size_t slot) const {
    return link * slots + slot;
  }
  std::size_t band_of(std::size_t cell) const { return cell / slots; }
  std::size_t slot_of(std::size_t cell) const { return cell % slots; }
};

/// Deduce the band layout from a fingerprint matrix (M = rows, S = cols/M;
/// throws when the column count is not a multiple of the row count).
BandLayout band_layout_of(const linalg::Matrix& x);

/// Extract X_D (Definition 2) from a fingerprint matrix.
linalg::Matrix extract_largely_decrease(const linalg::Matrix& x,
                                        const BandLayout& layout);

/// Write a largely-decrease matrix back into the corresponding entries of a
/// full fingerprint matrix (used by tests and by the exact Constraint-2
/// solver to assemble the current estimate).
void insert_largely_decrease(linalg::Matrix& x, const linalg::Matrix& xd,
                             const BandLayout& layout);

/// NLC values (Eq. 5) for every entry of X_D: the location-continuity
/// statistic.  `t` is the neighbour relationship matrix (Eq. 4).
linalg::Matrix nlc_values(const linalg::Matrix& xd, const linalg::Matrix& t);

/// ALS values (Eq. 6) for adjacent link pairs: (M-1) x S matrix where row
/// i compares links i+1 and i.
linalg::Matrix als_values(const linalg::Matrix& xd);

/// Fraction of entries of `values` that are strictly below `threshold`
/// (the paper summarises Figs. 8/9 as "90% of NLC < 0.2", "80% of ALS < 0.4").
double fraction_below(const linalg::Matrix& values, double threshold);

}  // namespace iup::core
