// Maximum-independent-column (MIC) extraction and reference-location
// selection (Section IV-B).
//
// The paper selects as reference locations the grid cells whose fingerprint
// columns form a maximum independent column set; the count equals the
// matrix rank (= M for the paper's testbeds), which is why only 8 of 94
// locations need a fresh labor-cost survey.
//
// Two numerical realisations are provided:
//  * kRref  — Gauss-Jordan elimination, pivot columns of the reduced
//             echelon form.  Literal reading of the paper ("elementary
//             column transformation; first nonzero element of each row").
//  * kQrcp  — rank-revealing column-pivoted QR, which greedily picks the
//             best-conditioned independent set.  Same rank, same
//             independence guarantee, markedly better conditioning of
//             X_MIC on noisy data; this is the default.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace iup::core {

enum class MicStrategy { kRref, kQrcp };

/// Default relative rank tolerance of extract_mic — named so callers that
/// must pass trailing arguments (e.g. a thread count) cannot drift from
/// the default by restating it.
inline constexpr double kMicDefaultRelTol = 1e-8;

struct MicResult {
  std::vector<std::size_t> reference_cells;  ///< selected column indices
  linalg::Matrix x_mic;                      ///< M x n matrix of MIC columns
  std::size_t rank = 0;                      ///< numerical rank found
};

/// Extract the MIC set of `x`.  `rel_tol` is the relative rank tolerance.
/// `threads` (0 = all hardware threads) fans the kQrcp column scoring out
/// over iup::parallel with bit-identical results for any thread count (see
/// linalg::qr_column_pivoted); kRref is a literal-paper reference path and
/// stays serial.
MicResult extract_mic(const linalg::Matrix& x,
                      MicStrategy strategy = MicStrategy::kQrcp,
                      double rel_tol = kMicDefaultRelTol,
                      std::size_t threads = 1);

/// Build an X_MIC matrix for an explicit set of reference cells (used by
/// the Fig. 14 benchmark to evaluate 7 / 8+1 / 11-random reference sets).
MicResult mic_from_cells(const linalg::Matrix& x,
                         const std::vector<std::size_t>& cells);

}  // namespace iup::core
