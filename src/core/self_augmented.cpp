#include "core/self_augmented.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/constraints.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "linalg/vec.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

// Two index repairs relative to the published Algorithm 1 (documented in
// DESIGN.md Sec. 5):
//
//  (1) The similarity curvature term indexes H by the *link* (band) index
//      ii, not by the within-link slot jj: H is M x M, and jj ranges over
//      [1, N/M], which is out of bounds whenever N/M != M.
//  (2) The first row of H = Toeplitz(-1,1,0) differences link 1 against
//      nothing, which in the raw objective would shrink link 1's
//      largely-decrease RSS toward 0 dBm.  In kGaussSeidel mode the
//      absolute term on the first link is dropped (only genuine
//      adjacent-link differences are penalised); kPaperLiteral keeps the
//      published curvature including the first-row term.
//
// Parallel sweep invariants (the thread-count-determinism guarantee):
//  * every column j of the R-update / row i of the L-update writes only
//    its own output row and its chunk's workspace;
//  * all shared inputs (L, R_prev, X_D, Gram products, G, H) are read-only
//    during the fan-out;
//  * no floating-point reduction crosses an index boundary, so the chunk
//    partition cannot reorder any accumulation;
//  * the mask-grouped sweep partitions parallel_for over the groups'
//    member-count prefix space instead of columns (a group's members are
//    solved against one shared factor, so they must stay in one chunk;
//    weighting the partition by group size keeps chunks balanced when
//    sizes are skewed); the group list is built once on the calling
//    thread, each group writes only its members' output rows, and each
//    member's solve is bit-identical to its per-column solve — so the
//    1-vs-N-thread and grouped-vs-ungrouped identities both hold exactly.
namespace iup::core {

namespace {

// theta_j columns are stored as rows of R; these helpers keep the algebra
// readable.
//
// The normal matrices Q are symmetric, so the outer-product accumulation
// only fills the upper triangle (half the flops of the dense update);
// symmetrize_lower() mirrors it once per solve.  The mirrored Q is exactly
// symmetric and fully deterministic (in particular thread-count
// invariant); it may differ from a dense two-triangle accumulation at ulp
// level, because a weighted lower entry would round as (w*v[b])*v[a]
// rather than the mirrored (w*v[a])*v[b].  The suffix axpys run through
// the SIMD kernel layer (linalg/kernels/).
void add_outer(linalg::Matrix& q, std::span<const double> v, double weight) {
  linalg::kernels::add_outer_upper(weight, v.data(), v.size(),
                                   q.data().data(), q.cols());
}

void symmetrize_lower(linalg::Matrix& q) {
  const std::size_t n = q.rows();
  for (std::size_t a = 1; a < n; ++a) {
    for (std::size_t b = 0; b < a; ++b) q(a, b) = q(b, a);
  }
}

double row_norm_sq(const linalg::Matrix& m, std::size_t row) {
  const auto r = m.row_span(row);
  return linalg::kernels::norm_sq(r.data(), r.size());
}

}  // namespace

/// One batch of sweep indices whose normal matrix Q is identical (the
/// mask-grouping invariant, self_augmented.hpp): Q is built and factored
/// once from members.front() and every member solves as one RHS column of
/// a shared panel.
struct MaskGroup {
  std::vector<std::size_t> members;  ///< ascending column / row indices
};

/// Scratch owned by one worker chunk.  Everything is overwritten from
/// scratch for every index, so reuse across indices (and across sweeps)
/// cannot leak state — a precondition for thread-count invariance.
struct ThreadWorkspace {
  linalg::Matrix q;         ///< rr x rr normal-equation matrix
  std::vector<double> diag;  ///< rr, solve_spd_into retry scratch
  // Mask-group scratch: the rr x k multi-RHS block of one group, the
  // dot_panel reduction scratch of its back substitution, and a Q copy
  // for the (rare) per-column LU-fallback replay.
  linalg::Matrix panel;      ///< rr x k RHS panel of one mask group
  std::vector<double> dots;  ///< k, solve_factored_spd_multi scratch
  linalg::Matrix q_retry;    ///< group fallback: per-column solve replay
  // L-update Constraint-2 scratch (Theta_i stored transposed: row u of
  // theta_t is the factor of band cell (i, u) — a contiguous copy of a row
  // of R instead of a strided column write).
  linalg::Matrix theta_t;  ///< slots x rr
  linalg::Matrix tg;       ///< slots x rr: G^T Theta^T
  linalg::Matrix gbuf;     ///< rr x rr: (Theta G)(Theta G)^T
  linalg::Matrix ttt;      ///< rr x rr: Theta Theta^T
  std::vector<double> neighbor_sum;  ///< slots
  std::vector<double> contrib;       ///< rr
};

struct SweepContext {
  std::size_t threads = 1;
  // Shared read-only sweep products.
  linalg::Matrix ltl;     ///< L^T L
  linalg::Matrix rtr;     ///< R^T R
  linalg::Matrix lql;     ///< lambda*I + L^T L (per-column Q seed)
  linalg::Matrix rql;     ///< lambda*I + R^T R (per-row Q seed)
  linalg::Matrix xd_cur;  ///< current largely-decrease estimate
  linalg::Matrix xdg;     ///< X_D * G
  // Complement-form data term: the mask B is fixed for the whole solve,
  // so the observed/unobserved index sets per column (R-update) and per
  // row (L-update) are scanned exactly once.  With the realistic dense
  // masks of the no-decrease matrix (~80% observed) seeding Q with
  // lambda*I + L^T L and SUBTRACTING the few unobserved outer products
  // replaces ~dense-many rank-1 updates by ~(1-density)-many.
  std::vector<std::vector<std::size_t>> obs_rows;    ///< per column j
  std::vector<std::vector<std::size_t>> unobs_rows;  ///< per column j
  std::vector<std::vector<std::size_t>> obs_cols;    ///< per row i
  std::vector<std::vector<std::size_t>> unobs_cols;  ///< per row i
  // Mask groups, built once per solve when RsvdOptions::group_masks (the
  // grouping depends only on B, the layout and the constraint weights —
  // all fixed across sweeps).  Empty vectors select the ungrouped sweep.
  std::vector<MaskGroup> col_groups;  ///< R-update (grid columns)
  std::vector<MaskGroup> row_groups;  ///< L-update; only when Q is
                                      ///< mask-only (Constraint 2 inactive)
  // Member-count prefix offsets of the groups above: the grouped fan-out
  // partitions this virtual index space (one slot per member) so chunk
  // work stays balanced when group sizes are skewed — a chunk executes
  // exactly the groups whose prefix offset lands inside it.
  std::vector<std::size_t> col_group_starts;
  std::vector<std::size_t> row_group_starts;
  // Sweep outputs (double-buffered against l_hat / r_hat in solve()).
  linalg::Matrix r_next;
  linalg::Matrix l_next;
  // Objective scratch.
  linalg::Matrix x_hat;
  linalg::Matrix xd_obj;
  linalg::Matrix xdg_obj;
  linalg::Matrix hxd_obj;
  std::vector<ThreadWorkspace> ws;
};

namespace {

/// Solve one mask group against `out`'s member rows (which already hold
/// the right-hand sides): Q is built once from the representative member,
/// factored once, and every member solves as one column of a shared RHS
/// panel.  Size-1 groups and failed factorisations take the exact
/// per-column solve_spd_into path, so grouped results are bit-identical
/// to the ungrouped sweep in every case.  (SpdStats granularity is the
/// one observable difference: a shared factorisation counts its bump
/// recovery once per group instead of once per member, and the
/// LU-fallback replay below adds one group-level failure on top of the
/// per-member ladders.)
template <typename BuildQ>
void solve_mask_group(const MaskGroup& grp, ThreadWorkspace& ws,
                      linalg::Matrix& out, const BuildQ& build_q) {
  build_q(ws.q, grp.members.front());
  if (grp.members.size() == 1) {
    linalg::solve_spd_into(ws.q, out.row_span(grp.members.front()), ws.diag);
    return;
  }
  if (!linalg::factor_spd(ws.q, ws.diag)) {
    // Rare indefinite Q: factor_spd restored ws.q to the symmetrised
    // unbumped input, so replaying solve_spd_into per member (on a copy —
    // it destroys its matrix) reproduces the ungrouped retry ladder and
    // LU fallback bit for bit.  (SpdStats on this path: the group-level
    // attempt above counted one extra failure, then every member replay
    // counts its own ladder — k members report k+1 failures vs the
    // ungrouped sweep's k.)
    for (const std::size_t j : grp.members) {
      ws.q_retry = ws.q;
      linalg::solve_spd_into(ws.q_retry, out.row_span(j), ws.diag);
    }
    return;
  }
  const std::size_t n = ws.q.rows();
  const std::size_t k = grp.members.size();
  ws.panel.resize(n, k);
  ws.dots.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    const auto row = out.row_span(grp.members[c]);
    for (std::size_t i = 0; i < n; ++i) ws.panel(i, c) = row[i];
  }
  linalg::solve_factored_spd_multi(ws.q, ws.panel, ws.dots);
  for (std::size_t c = 0; c < k; ++c) {
    const auto row = out.row_span(grp.members[c]);
    for (std::size_t i = 0; i < n; ++i) row[i] = ws.panel(i, c);
  }
}

/// Invoke `fn(group, slot)` exactly once per mask group, fanning out over
/// the groups' member-count prefix space (`total` = sum of member counts,
/// `starts` the prefix offsets).  The partition is size-weighted so chunk
/// work stays balanced when group sizes are skewed, and chunk boundaries
/// are pure integer arithmetic, so the chunk-to-group assignment — and
/// therefore every bit of the result — is identical at every thread
/// count: a chunk executes exactly the groups whose prefix offset starts
/// inside it.  Shared by the R- and L-update grouped paths so the
/// assignment rule cannot drift between them.
template <typename PerGroup>
void for_each_group_chunked(std::size_t threads, std::size_t total,
                            const std::vector<MaskGroup>& groups,
                            const std::vector<std::size_t>& starts,
                            const PerGroup& fn) {
  parallel::parallel_for(
      threads, total,
      [&](std::size_t begin, std::size_t end, std::size_t slot) {
        std::size_t g = static_cast<std::size_t>(
            std::lower_bound(starts.begin(), starts.end(), begin) -
            starts.begin());
        for (; g < starts.size() && starts[g] < end; ++g) {
          fn(groups[g], slot);
        }
      });
}

}  // namespace

SelfAugmentedRsvd::SelfAugmentedRsvd(BandLayout layout, RsvdOptions options)
    : layout_(layout), options_(options) {
  if (options_.use_constraint2) {
    if (layout_.links == 0 || layout_.slots == 0) {
      throw std::invalid_argument(
          "SelfAugmentedRsvd: Constraint 2 requires a band layout");
    }
    g_ = continuity_matrix(layout_.slots);
    h_ = similarity_matrix(layout_.links);
    if (options_.c2_mode == Constraint2Mode::kGaussSeidel) {
      h_(0, 0) = 0.0;  // repair (2): no absolute term on the first link
    }
    g_t_ = g_.transpose();
  }
}

linalg::Matrix SelfAugmentedRsvd::warm_matrix(
    const RsvdProblem& problem) const {
  // Complete the observed entries with the Constraint-1 prediction, or the
  // observed row mean when Constraint 1 is unavailable.
  linalg::Matrix warm = problem.x_b;
  const bool have_p = !problem.p.empty();
  for (std::size_t i = 0; i < warm.rows(); ++i) {
    double row_sum = 0.0;
    double row_cnt = 0.0;
    for (std::size_t j = 0; j < warm.cols(); ++j) {
      if (problem.b(i, j) != 0.0) {
        row_sum += problem.x_b(i, j);
        row_cnt += 1.0;
      }
    }
    const double row_mean = row_cnt > 0.0 ? row_sum / row_cnt : 0.0;
    for (std::size_t j = 0; j < warm.cols(); ++j) {
      if (problem.b(i, j) == 0.0) {
        warm(i, j) = have_p ? problem.p(i, j) : row_mean;
      }
    }
  }
  return warm;
}

linalg::Matrix SelfAugmentedRsvd::initial_factor(
    const RsvdProblem& problem) const {
  const std::size_t m = problem.b.rows();
  const std::size_t r =
      options_.rank == 0 ? m : std::min(options_.rank, problem.b.cols());

  // Explicit warm start: reuse a previously converged factor (the engine's
  // versioned cache) instead of paying for a fresh SVD.  kRandom ignores it
  // so the paper's random-init ablation stays reproducible.
  if (!problem.l0.empty() && options_.init == FactorInit::kWarmStart) {
    if (problem.l0.rows() != m || problem.l0.cols() != r) {
      throw std::invalid_argument(
          "SelfAugmentedRsvd: warm-start factor shape mismatch");
    }
    return problem.l0;
  }

  if (options_.init == FactorInit::kRandom) {
    rng::Rng rng(options_.init_seed);
    linalg::Matrix l0(m, r);
    for (double& v : l0.data()) v = rng.normal();
    return l0;
  }

  // Warm start: SVD factor U * sqrt(Sigma) of the completed matrix,
  // truncated at rank r.
  const linalg::SvdResult d = linalg::svd(warm_matrix(problem));
  linalg::Matrix l0(m, r);
  for (std::size_t k = 0; k < r && k < d.sigma.size(); ++k) {
    const double s = std::sqrt(d.sigma[k]);
    for (std::size_t i = 0; i < m; ++i) l0(i, k) = d.u(i, k) * s;
  }
  return l0;
}

std::pair<double, double> SelfAugmentedRsvd::c2_curvature(
    const Weights& w, std::size_t j) const {
  double w2c = 0.0;
  double w3c = 0.0;
  const std::size_t ii = layout_.band_of(j);
  if (w.w2 > 0.0) w2c = w.w2 * row_norm_sq(g_, layout_.slot_of(j));
  if (w.w3 > 0.0) {
    if (options_.c2_mode == Constraint2Mode::kGaussSeidel) {
      double count = 0.0;
      if (ii > 0) count += 1.0;
      if (ii + 1 < layout_.links) count += 1.0;
      w3c = w.w3 * count;
    } else {
      // Published curvature: ||H(:, ii)||^2, repair (1) applied.
      w3c = w.w3 * (ii + 1 < layout_.links ? 2.0 : 1.0);
    }
  }
  return {w2c, w3c};
}

SelfAugmentedRsvd::Weights SelfAugmentedRsvd::effective_weights(
    const RsvdProblem& problem) const {
  Weights w;
  const bool c1 = options_.use_constraint1 && !problem.p.empty();
  const bool c2 = options_.use_constraint2;
  w.w1 = c1 ? options_.w_constraint1 : 0.0;
  w.w2 = c2 ? options_.w_continuity : 0.0;
  w.w3 = c2 ? options_.w_similarity : 0.0;
  if (!options_.auto_scale) return w;

  // "Scale the terms to the same order of magnitude" (Sec. IV-E): measure
  // each term's natural magnitude at the warm-start completion and rescale
  // the base weights by data_scale / term_scale, clamped to [1e-3, 1e3].
  const double data_scale =
      std::max(linalg::frobenius_norm_sq(problem.x_b), 1e-9);
  const auto clamp_scale = [](double s) {
    return std::clamp(s, 1e-3, 1e3);
  };
  if (w.w1 > 0.0) {
    const double c1_scale =
        std::max(linalg::frobenius_norm_sq(problem.p), 1e-9);
    w.w1 *= clamp_scale(data_scale / c1_scale);
  }
  if (c2 && (w.w2 > 0.0 || w.w3 > 0.0)) {
    const linalg::Matrix xd0 =
        extract_largely_decrease(warm_matrix(problem), layout_);
    if (w.w2 > 0.0) {
      const double g_scale =
          std::max(linalg::frobenius_norm_sq(xd0 * g_), 1e-9);
      w.w2 *= clamp_scale(data_scale / g_scale);
    }
    if (w.w3 > 0.0) {
      const double h_scale =
          std::max(linalg::frobenius_norm_sq(h_ * xd0), 1e-9);
      w.w3 *= clamp_scale(data_scale / h_scale);
    }
  }
  return w;
}

double SelfAugmentedRsvd::objective(const RsvdProblem& problem,
                                    const Weights& w, const linalg::Matrix& l,
                                    const linalg::Matrix& r,
                                    SweepContext& ctx) const {
  linalg::multiply_transposed_into(l, r, ctx.x_hat);  // X_hat = L R^T
  double v = options_.lambda * (linalg::frobenius_norm_sq(l) +
                                linalg::frobenius_norm_sq(r));
  v += linalg::masked_diff_norm_sq(problem.b, ctx.x_hat, problem.x_b);
  if (w.w1 > 0.0) {
    v += w.w1 * linalg::diff_norm_sq(ctx.x_hat, problem.p);
  }
  if (options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0)) {
    ctx.xd_obj.resize(layout_.links, layout_.slots);
    for (std::size_t i = 0; i < layout_.links; ++i) {
      for (std::size_t u = 0; u < layout_.slots; ++u) {
        ctx.xd_obj(i, u) = ctx.x_hat(i, layout_.cell(i, u));
      }
    }
    if (w.w2 > 0.0) {
      linalg::multiply_into(ctx.xd_obj, g_, ctx.xdg_obj);
      v += w.w2 * linalg::frobenius_norm_sq(ctx.xdg_obj);
    }
    if (w.w3 > 0.0) {
      linalg::multiply_into(h_, ctx.xd_obj, ctx.hxd_obj);
      v += w.w3 * linalg::frobenius_norm_sq(ctx.hxd_obj);
    }
  }
  return v;
}

void SelfAugmentedRsvd::update_r(const RsvdProblem& problem, const Weights& w,
                                 const linalg::Matrix& l,
                                 const linalg::Matrix& r_prev,
                                 SweepContext& ctx) const {
  const std::size_t m = l.rows();
  const std::size_t rr = l.cols();
  const std::size_t n = problem.b.cols();
  const bool c2 = options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0);
  const bool gauss_seidel =
      options_.c2_mode == Constraint2Mode::kGaussSeidel;

  linalg::gram_into(l, ctx.ltl);
  ctx.lql = ctx.ltl;
  for (std::size_t a = 0; a < rr; ++a) ctx.lql(a, a) += options_.lambda;

  // Current largely-decrease estimate (from the previous R) for the
  // Gauss-Seidel cross terms of Constraint 2.
  if (c2) {
    ctx.xd_cur.resize(layout_.links, layout_.slots);
    for (std::size_t i = 0; i < layout_.links; ++i) {
      for (std::size_t u = 0; u < layout_.slots; ++u) {
        ctx.xd_cur(i, u) =
            linalg::dot(l.row_span(i), r_prev.row_span(layout_.cell(i, u)));
      }
    }
    if (gauss_seidel && w.w2 > 0.0) {
      linalg::multiply_into(ctx.xd_cur, g_, ctx.xdg);
    }
  }

  ctx.r_next.resize(n, rr);

  // Q for column j — the exact op sequence of the historical per-column
  // loop (the mask-grouping invariant relies on identical inputs plus an
  // identical sequence producing identical bits).  Data term in
  // complement form: Q = (lambda*I + L^T L) minus the unobserved rows'
  // outer products, instead of lambda*I plus the observed ones — far
  // fewer rank-1 updates on realistic dense masks, identical curvature
  // up to rounding.
  const auto build_q = [&](linalg::Matrix& q, std::size_t j) {
    std::copy(ctx.lql.data().begin(), ctx.lql.data().end(),
              q.data().begin());
    for (const std::size_t i : ctx.unobs_rows[j]) {
      add_outer(q, l.row_span(i), -1.0);
    }
    // Constraint 1: w1 ||L theta - p_j||^2 over all links.
    if (w.w1 > 0.0) linalg::add_scaled(q, w.w1, ctx.ltl);
    // Constraint 2: only the band entry (ii, jj) of column j is a
    // largely-decrease element.  The curvature scalars come from
    // c2_curvature — the same helper the mask-group signature encodes.
    if (c2) {
      const auto l_band = l.row_span(layout_.band_of(j));
      const auto [w2c, w3c] = c2_curvature(w, j);
      if (w.w2 > 0.0) add_outer(q, l_band, w2c);
      if (w.w3 > 0.0) add_outer(q, l_band, w3c);
    }
    symmetrize_lower(q);
  };

  // Constraint-2 Gauss-Seidel cross terms of column j, appended AFTER the
  // data / Constraint-1 axpys by both RHS builders below (the fused panel
  // builder and the per-column one), so the per-column accumulation order
  // can never differ between them.
  const auto append_rhs_c2 = [&](std::size_t j) {
    const auto c = ctx.r_next.row_span(j);
    const std::size_t ii = layout_.band_of(j);
    const std::size_t jj = layout_.slot_of(j);
    const auto l_band = l.row_span(ii);
    if (w.w2 > 0.0) {
      // Cross term with the neighbouring slots of the current
      // estimate: sum_q (XD*G)(ii,q) G(jj,q) with the self
      // contribution removed.
      double cross = 0.0;
      for (std::size_t qq = 0; qq < layout_.slots; ++qq) {
        const double others =
            ctx.xdg(ii, qq) - ctx.xd_cur(ii, jj) * g_(jj, qq);
        cross += others * g_(jj, qq);
      }
      linalg::axpy(-w.w2 * cross, l_band, c);
    }
    if (w.w3 > 0.0) {
      double neighbor_sum = 0.0;
      if (ii > 0) neighbor_sum += ctx.xd_cur(ii - 1, jj);
      if (ii + 1 < layout_.links) neighbor_sum += ctx.xd_cur(ii + 1, jj);
      linalg::axpy(w.w3 * neighbor_sum, l_band, c);
    }
  };

  // Right-hand side of column j, built directly in the output row so the
  // in-place solve lands the solution there without a copy.
  const auto build_rhs = [&](std::size_t j) {
    const auto c = ctx.r_next.row_span(j);
    std::fill(c.begin(), c.end(), 0.0);
    for (const std::size_t i : ctx.obs_rows[j]) {
      linalg::axpy(problem.x_b(i, j), l.row_span(i), c);
    }
    if (w.w1 > 0.0) {
      for (std::size_t i = 0; i < m; ++i) {
        linalg::axpy(w.w1 * problem.p(i, j), l.row_span(i), c);
      }
    }
    if (c2 && gauss_seidel) append_rhs_c2(j);
  };

  // Fused RHS construction of one mask group (ROADMAP 4a): the group
  // signature fixes the unobserved row set, hence its complement — every
  // member walks the SAME observed index list.  Walk it once, loading each
  // L row once per group instead of once per member, and feed all member
  // columns from it.  Per member the accumulation order is unchanged
  // (data axpys in ascending i, then the Constraint-1 axpys in ascending
  // i, then the Constraint-2 cross terms), so every member's RHS is
  // bit-identical to build_rhs above.
  const auto build_rhs_group = [&](const MaskGroup& grp) {
    for (const std::size_t j : grp.members) {
      const auto c = ctx.r_next.row_span(j);
      std::fill(c.begin(), c.end(), 0.0);
    }
    for (const std::size_t i : ctx.obs_rows[grp.members.front()]) {
      const auto li = l.row_span(i);
      for (const std::size_t j : grp.members) {
        linalg::axpy(problem.x_b(i, j), li, ctx.r_next.row_span(j));
      }
    }
    if (w.w1 > 0.0) {
      for (std::size_t i = 0; i < m; ++i) {
        const auto li = l.row_span(i);
        for (const std::size_t j : grp.members) {
          linalg::axpy(w.w1 * problem.p(i, j), li, ctx.r_next.row_span(j));
        }
      }
    }
    if (c2 && gauss_seidel) {
      for (const std::size_t j : grp.members) append_rhs_c2(j);
    }
  };

  if (ctx.col_groups.empty()) {
    // Ungrouped sweep: one Q + one solve per column.
    parallel::parallel_for(ctx.threads, n, [&](std::size_t begin,
                                               std::size_t end,
                                               std::size_t slot) {
      ThreadWorkspace& ws = ctx.ws[slot];
      ws.q.resize(rr, rr);
      ws.diag.resize(rr);
      for (std::size_t j = begin; j < end; ++j) {
        build_q(ws.q, j);
        build_rhs(j);
        linalg::solve_spd_into(ws.q, ctx.r_next.row_span(j), ws.diag);
      }
    });
    return;
  }

  // Mask-grouped sweep: a group's members share one factored Q and must
  // stay in one chunk (see for_each_group_chunked for the size-weighted
  // deterministic partition).
  for_each_group_chunked(
      ctx.threads, n, ctx.col_groups, ctx.col_group_starts,
      [&](const MaskGroup& grp, std::size_t slot) {
        ThreadWorkspace& ws = ctx.ws[slot];
        ws.q.resize(rr, rr);
        ws.diag.resize(rr);
        build_rhs_group(grp);
        solve_mask_group(grp, ws, ctx.r_next, build_q);
      });
}

void SelfAugmentedRsvd::update_l(const RsvdProblem& problem, const Weights& w,
                                 const linalg::Matrix& l_prev,
                                 const linalg::Matrix& r,
                                 SweepContext& ctx) const {
  const std::size_t m = problem.b.rows();
  const std::size_t rr = r.cols();
  const std::size_t n = r.rows();
  const bool c2 = options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0);
  const bool gauss_seidel =
      options_.c2_mode == Constraint2Mode::kGaussSeidel;

  linalg::gram_into(r, ctx.rtr);
  ctx.rql = ctx.rtr;
  for (std::size_t a = 0; a < rr; ++a) ctx.rql(a, a) += options_.lambda;

  // Current X_D (from l_prev and the fresh r) for the similarity cross
  // terms; the continuity term is exactly quadratic per row and needs no
  // cross terms.
  if (c2) {
    ctx.xd_cur.resize(layout_.links, layout_.slots);
    for (std::size_t i = 0; i < layout_.links; ++i) {
      for (std::size_t u = 0; u < layout_.slots; ++u) {
        ctx.xd_cur(i, u) = linalg::dot(l_prev.row_span(i),
                                       r.row_span(layout_.cell(i, u)));
      }
    }
  }

  ctx.l_next.resize(m, rr);

  // Q and RHS for row i, data + Constraint-1 terms only (complement-form
  // data term, mirroring update_r) — shared verbatim by the grouped and
  // ungrouped paths below so they cannot drift apart.  The Q stream stops
  // before the Constraint-2 curvature: the ungrouped loop appends it, the
  // grouped path (mask-only Q by construction) symmetrizes directly.
  const auto build_q_base = [&](linalg::Matrix& q, std::size_t i) {
    std::copy(ctx.rql.data().begin(), ctx.rql.data().end(),
              q.data().begin());
    for (const std::size_t j : ctx.unobs_cols[i]) {
      add_outer(q, r.row_span(j), -1.0);
    }
    if (w.w1 > 0.0) linalg::add_scaled(q, w.w1, ctx.rtr);
  };
  const auto build_rhs_base = [&](std::size_t i) {
    const auto c = ctx.l_next.row_span(i);
    std::fill(c.begin(), c.end(), 0.0);
    for (const std::size_t j : ctx.obs_cols[i]) {
      linalg::axpy(problem.x_b(i, j), r.row_span(j), c);
    }
    if (w.w1 > 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        linalg::axpy(w.w1 * problem.p(i, j), r.row_span(j), c);
      }
    }
  };

  // Fused RHS construction of one row group, mirroring the R-update's
  // build_rhs_group: all member rows share the observed column set, so one
  // walk over it (and over the Constraint-1 columns) feeds every member,
  // loading each R row once per group.  Per-member accumulation order is
  // identical to build_rhs_base, so the fused panel is bit-identical.
  const auto build_rhs_group = [&](const MaskGroup& grp) {
    for (const std::size_t i : grp.members) {
      const auto c = ctx.l_next.row_span(i);
      std::fill(c.begin(), c.end(), 0.0);
    }
    for (const std::size_t j : ctx.obs_cols[grp.members.front()]) {
      const auto rj = r.row_span(j);
      for (const std::size_t i : grp.members) {
        linalg::axpy(problem.x_b(i, j), rj, ctx.l_next.row_span(i));
      }
    }
    if (w.w1 > 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        const auto rj = r.row_span(j);
        for (const std::size_t i : grp.members) {
          linalg::axpy(w.w1 * problem.p(i, j), rj, ctx.l_next.row_span(i));
        }
      }
    }
  };

  if (!ctx.row_groups.empty()) {
    // Mask-grouped L-update.  Only reached when Constraint 2 is inactive
    // (solve() builds row_groups for mask-only Q), so Q is exactly
    // (lambda*I + R^T R) minus the unobserved columns' outer products
    // plus the optional Constraint-1 curvature — identical for rows
    // sharing an unobserved set.
    const auto build_q = [&](linalg::Matrix& q, std::size_t i) {
      build_q_base(q, i);
      symmetrize_lower(q);
    };
    for_each_group_chunked(
        ctx.threads, m, ctx.row_groups, ctx.row_group_starts,
        [&](const MaskGroup& grp, std::size_t slot) {
          ThreadWorkspace& ws = ctx.ws[slot];
          ws.q.resize(rr, rr);
          ws.diag.resize(rr);
          build_rhs_group(grp);
          solve_mask_group(grp, ws, ctx.l_next, build_q);
        });
    return;
  }

  parallel::parallel_for(ctx.threads, m, [&](std::size_t begin,
                                             std::size_t end,
                                             std::size_t slot) {
    ThreadWorkspace& ws = ctx.ws[slot];
    ws.q.resize(rr, rr);
    ws.diag.resize(rr);
    if (c2) {
      ws.theta_t.resize(layout_.slots, rr);
      ws.neighbor_sum.resize(layout_.slots);
      ws.contrib.resize(rr);
    }
    for (std::size_t i = begin; i < end; ++i) {
      linalg::Matrix& q = ws.q;
      build_q_base(q, i);
      build_rhs_base(i);
      const auto c = ctx.l_next.row_span(i);

      if (c2) {
        // Theta_i stored transposed: row u of theta_t is the factor of
        // band cell (i, u) — one contiguous copy per slot.
        for (std::size_t u = 0; u < layout_.slots; ++u) {
          r.copy_row_into(layout_.cell(i, u), ws.theta_t.row_span(u));
        }
        if (w.w2 > 0.0) {
          if (gauss_seidel) {
            // Row i of X_D*G is (l_i Theta_i) G: exactly quadratic in l_i
            // with curvature (Theta G)(Theta G)^T = gram(G^T Theta^T).
            linalg::multiply_into(g_t_, ws.theta_t, ws.tg);
            linalg::gram_into(ws.tg, ws.gbuf);
            linalg::add_scaled(q, w.w2, ws.gbuf);
          } else {
            for (std::size_t u = 0; u < layout_.slots; ++u) {
              add_outer(q, ws.theta_t.row_span(u),
                        w.w2 * row_norm_sq(g_, u));
            }
          }
        }
        if (w.w3 > 0.0) {
          linalg::gram_into(ws.theta_t, ws.ttt);  // Theta Theta^T
          if (gauss_seidel) {
            double count = 0.0;
            std::fill(ws.neighbor_sum.begin(), ws.neighbor_sum.end(), 0.0);
            if (i > 0) {
              count += 1.0;
              for (std::size_t u = 0; u < layout_.slots; ++u) {
                ws.neighbor_sum[u] += ctx.xd_cur(i - 1, u);
              }
            }
            if (i + 1 < layout_.links) {
              count += 1.0;
              for (std::size_t u = 0; u < layout_.slots; ++u) {
                ws.neighbor_sum[u] += ctx.xd_cur(i + 1, u);
              }
            }
            linalg::add_scaled(q, w.w3 * count, ws.ttt);
            // contrib = Theta * neighbor_sum, accumulated row by row of
            // theta_t (same ascending-u order as the dense product).
            std::fill(ws.contrib.begin(), ws.contrib.end(), 0.0);
            for (std::size_t u = 0; u < layout_.slots; ++u) {
              linalg::axpy(ws.neighbor_sum[u], ws.theta_t.row_span(u),
                           ws.contrib);
            }
            linalg::axpy(w.w3, ws.contrib, c);
          } else {
            const double h_col_sq = i + 1 < layout_.links ? 2.0 : 1.0;
            linalg::add_scaled(q, w.w3 * h_col_sq, ws.ttt);
          }
        }
      }

      symmetrize_lower(q);
      linalg::solve_spd_into(q, c, ws.diag);
    }
  });
}

RsvdResult SelfAugmentedRsvd::solve(const RsvdProblem& problem) const {
  if (problem.x_b.rows() != problem.b.rows() ||
      problem.x_b.cols() != problem.b.cols()) {
    throw std::invalid_argument("SelfAugmentedRsvd: X_B / B shape mismatch");
  }
  if (options_.use_constraint1 && !problem.p.empty() &&
      (problem.p.rows() != problem.b.rows() ||
       problem.p.cols() != problem.b.cols())) {
    throw std::invalid_argument("SelfAugmentedRsvd: P shape mismatch");
  }
  if (options_.use_constraint2 &&
      (problem.b.rows() != layout_.links ||
       problem.b.cols() != layout_.num_cells())) {
    throw std::invalid_argument("SelfAugmentedRsvd: band layout mismatch");
  }

  linalg::Matrix l_hat = initial_factor(problem);
  // First R solve pairs with the initial L (Algorithm 1 line 3).
  linalg::Matrix r_hat(problem.b.cols(), l_hat.cols());
  const Weights w = effective_weights(problem);

  SweepContext ctx;
  ctx.threads = parallel::resolve_threads(options_.threads);
  ctx.ws.resize(ctx.threads);

  // B is fixed across the whole solve: scan the observed/unobserved index
  // sets once, instead of re-testing every mask entry in every sweep.
  {
    const std::size_t m = problem.b.rows();
    const std::size_t n = problem.b.cols();
    ctx.obs_rows.assign(n, {});
    ctx.unobs_rows.assign(n, {});
    ctx.obs_cols.assign(m, {});
    ctx.unobs_cols.assign(m, {});
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (problem.b(i, j) != 0.0) {
          ctx.obs_rows[j].push_back(i);
          ctx.obs_cols[i].push_back(j);
        } else {
          ctx.unobs_rows[j].push_back(i);
          ctx.unobs_cols[i].push_back(j);
        }
      }
    }
  }

  // Mask grouping (the invariant is documented in the header): a column's
  // Q depends on the mask/layout structure and the current factor only —
  // never on the column's observed values — so columns whose Q-defining
  // inputs coincide share Q bit for bit in every sweep.  Encode those
  // inputs (unobserved row set; under Constraint 2 also the band row and
  // the scalar curvature weights) as a byte-string signature and group by
  // it, keeping first-occurrence order so the grouped fan-out is
  // deterministic.  Built once: B and the weights are fixed per solve.
  if (options_.group_masks) {
    const std::size_t m = problem.b.rows();
    const std::size_t n = problem.b.cols();
    const bool c2 = options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0);
    const auto append_word = [](std::string& key, std::uint64_t word) {
      for (int b = 0; b < 64; b += 8) {
        key.push_back(static_cast<char>((word >> b) & 0xff));
      }
    };
    const auto group_by_signature =
        [&](std::size_t count,
            const std::vector<std::vector<std::size_t>>& unobs,
            const auto& extra_words, std::vector<MaskGroup>& groups) {
          std::unordered_map<std::string, std::size_t> index;
          std::string key;
          for (std::size_t j = 0; j < count; ++j) {
            key.clear();
            extra_words(key, j);
            for (const std::size_t i : unobs[j]) {
              append_word(key, static_cast<std::uint64_t>(i));
            }
            const auto [it, inserted] =
                index.try_emplace(key, groups.size());
            if (inserted) groups.emplace_back();
            groups[it->second].members.push_back(j);
          }
        };
    group_by_signature(
        n, ctx.unobs_rows,
        [&](std::string& key, std::size_t j) {
          if (!c2) return;
          append_word(key, static_cast<std::uint64_t>(layout_.band_of(j)));
          const auto [w2c, w3c] = c2_curvature(w, j);
          append_word(key, std::bit_cast<std::uint64_t>(w2c));
          append_word(key, std::bit_cast<std::uint64_t>(w3c));
        },
        ctx.col_groups);
    // The L-update's Q gains per-row Theta curvature under Constraint 2,
    // which makes every row unique; group rows only when Q is mask-only.
    if (!c2) {
      group_by_signature(
          m, ctx.unobs_cols, [](std::string&, std::size_t) {},
          ctx.row_groups);
    }
    const auto prefix_starts = [](const std::vector<MaskGroup>& groups,
                                  std::vector<std::size_t>& starts) {
      starts.clear();
      starts.reserve(groups.size());
      std::size_t acc = 0;
      for (const MaskGroup& grp : groups) {
        starts.push_back(acc);
        acc += grp.members.size();
      }
    };
    prefix_starts(ctx.col_groups, ctx.col_group_starts);
    prefix_starts(ctx.row_groups, ctx.row_group_starts);
  }

  RsvdResult out;
  for (const MaskGroup& grp : ctx.col_groups) {
    if (grp.members.size() >= 2) {
      ++out.mask_groups;
      out.grouped_columns += grp.members.size();
    }
  }
  double best_v = std::numeric_limits<double>::infinity();
  double v_initial = -1.0;
  const double data_scale =
      std::max(linalg::frobenius_norm_sq(problem.x_b), 1.0);

  for (std::size_t it = 0; it < options_.max_iters; ++it) {
    update_r(problem, w, l_hat, r_hat, ctx);
    update_l(problem, w, l_hat, ctx.r_next, ctx);
    // Rebalance the factors: scaling L by s and R by 1/s leaves the
    // product unchanged and, at s = (||R||/||L||)^(1/2), minimises the
    // lambda regulariser — a strict objective improvement that also keeps
    // the per-column systems well conditioned.
    {
      const double ln = linalg::frobenius_norm(ctx.l_next);
      const double rn = linalg::frobenius_norm(ctx.r_next);
      if (ln > 1e-12 && rn > 1e-12) {
        const double s = std::sqrt(rn / ln);
        ctx.l_next *= s;
        ctx.r_next /= s;
      }
    }
    const double v = objective(problem, w, ctx.l_next, ctx.r_next, ctx);
    out.objective_history.push_back(v);
    out.iterations = it + 1;
    if (v_initial < 0.0) v_initial = std::max(v, 1e-12);

    if (v <= best_v) {
      best_v = v;
      out.l = ctx.l_next;
      out.r = ctx.r_next;
    }
    // Capacity-reusing copies: after the first iteration these assignments
    // never touch the heap.
    l_hat = ctx.l_next;
    r_hat = ctx.r_next;

    // Algorithm 1 lines 6-8: stop refreshing once v falls below v_th,
    // interpreted relative to the data scale ||X_B||_F^2.
    if (v < options_.v_threshold * data_scale) {
      out.reached_threshold = true;
      break;
    }
    // Extra guard: stop on stagnation.
    const std::size_t hist = out.objective_history.size();
    if (hist >= 2) {
      const double prev = out.objective_history[hist - 2];
      if (std::abs(prev - v) <= 1e-10 * std::max(prev, 1.0)) break;
      // Opt-in early stop (RsvdOptions::stagnation_tol): end the solve
      // once a sweep still improves the objective but by less than the
      // tolerance.  A transient increase (possible under kPaperLiteral's
      // cross-term-free curvature) is NOT stagnation — keep sweeping and
      // let the best_v tracking hold the best iterate.  Off by default —
      // the full max_iters trajectory is the paper's.
      if (options_.stagnation_tol > 0.0 && prev >= v &&
          prev - v <=
              options_.stagnation_tol * std::max(std::abs(prev), 1.0)) {
        out.stagnated = true;
        break;
      }
    }
  }

  if (out.l.empty()) {  // max_iters == 0 edge case
    out.l = l_hat;
    out.r = r_hat;
  }
  linalg::multiply_transposed_into(out.l, out.r, out.x_hat);
  return out;
}

}  // namespace iup::core
