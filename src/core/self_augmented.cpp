#include "core/self_augmented.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/constraints.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "linalg/vec.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

// Two index repairs relative to the published Algorithm 1 (documented in
// DESIGN.md Sec. 5):
//
//  (1) The similarity curvature term indexes H by the *link* (band) index
//      ii, not by the within-link slot jj: H is M x M, and jj ranges over
//      [1, N/M], which is out of bounds whenever N/M != M.
//  (2) The first row of H = Toeplitz(-1,1,0) differences link 1 against
//      nothing, which in the raw objective would shrink link 1's
//      largely-decrease RSS toward 0 dBm.  In kGaussSeidel mode the
//      absolute term on the first link is dropped (only genuine
//      adjacent-link differences are penalised); kPaperLiteral keeps the
//      published curvature including the first-row term.
//
// Parallel sweep invariants (the thread-count-determinism guarantee):
//  * every column j of the R-update / row i of the L-update writes only
//    its own output row and its chunk's workspace;
//  * all shared inputs (L, R_prev, X_D, Gram products, G, H) are read-only
//    during the fan-out;
//  * no floating-point reduction crosses an index boundary, so the chunk
//    partition cannot reorder any accumulation.
namespace iup::core {

namespace {

// theta_j columns are stored as rows of R; these helpers keep the algebra
// readable.
//
// The normal matrices Q are symmetric, so the outer-product accumulation
// only fills the upper triangle (half the flops of the dense update);
// symmetrize_lower() mirrors it once per solve.  The mirrored Q is exactly
// symmetric and fully deterministic (in particular thread-count
// invariant); it may differ from a dense two-triangle accumulation at ulp
// level, because a weighted lower entry would round as (w*v[b])*v[a]
// rather than the mirrored (w*v[a])*v[b].  The suffix axpys run through
// the SIMD kernel layer (linalg/kernels/).
void add_outer(linalg::Matrix& q, std::span<const double> v, double weight) {
  linalg::kernels::add_outer_upper(weight, v.data(), v.size(),
                                   q.data().data(), q.cols());
}

void symmetrize_lower(linalg::Matrix& q) {
  const std::size_t n = q.rows();
  for (std::size_t a = 1; a < n; ++a) {
    for (std::size_t b = 0; b < a; ++b) q(a, b) = q(b, a);
  }
}

double row_norm_sq(const linalg::Matrix& m, std::size_t row) {
  const auto r = m.row_span(row);
  return linalg::kernels::norm_sq(r.data(), r.size());
}

}  // namespace

/// Scratch owned by one worker chunk.  Everything is overwritten from
/// scratch for every index, so reuse across indices (and across sweeps)
/// cannot leak state — a precondition for thread-count invariance.
struct ThreadWorkspace {
  linalg::Matrix q;         ///< rr x rr normal-equation matrix
  std::vector<double> diag;  ///< rr, solve_spd_into retry scratch
  // L-update Constraint-2 scratch (Theta_i stored transposed: row u of
  // theta_t is the factor of band cell (i, u) — a contiguous copy of a row
  // of R instead of a strided column write).
  linalg::Matrix theta_t;  ///< slots x rr
  linalg::Matrix tg;       ///< slots x rr: G^T Theta^T
  linalg::Matrix gbuf;     ///< rr x rr: (Theta G)(Theta G)^T
  linalg::Matrix ttt;      ///< rr x rr: Theta Theta^T
  std::vector<double> neighbor_sum;  ///< slots
  std::vector<double> contrib;       ///< rr
};

struct SweepContext {
  std::size_t threads = 1;
  // Shared read-only sweep products.
  linalg::Matrix ltl;     ///< L^T L
  linalg::Matrix rtr;     ///< R^T R
  linalg::Matrix lql;     ///< lambda*I + L^T L (per-column Q seed)
  linalg::Matrix rql;     ///< lambda*I + R^T R (per-row Q seed)
  linalg::Matrix xd_cur;  ///< current largely-decrease estimate
  linalg::Matrix xdg;     ///< X_D * G
  // Complement-form data term: the mask B is fixed for the whole solve,
  // so the observed/unobserved index sets per column (R-update) and per
  // row (L-update) are scanned exactly once.  With the realistic dense
  // masks of the no-decrease matrix (~80% observed) seeding Q with
  // lambda*I + L^T L and SUBTRACTING the few unobserved outer products
  // replaces ~dense-many rank-1 updates by ~(1-density)-many.
  std::vector<std::vector<std::size_t>> obs_rows;    ///< per column j
  std::vector<std::vector<std::size_t>> unobs_rows;  ///< per column j
  std::vector<std::vector<std::size_t>> obs_cols;    ///< per row i
  std::vector<std::vector<std::size_t>> unobs_cols;  ///< per row i
  // Sweep outputs (double-buffered against l_hat / r_hat in solve()).
  linalg::Matrix r_next;
  linalg::Matrix l_next;
  // Objective scratch.
  linalg::Matrix x_hat;
  linalg::Matrix xd_obj;
  linalg::Matrix xdg_obj;
  linalg::Matrix hxd_obj;
  std::vector<ThreadWorkspace> ws;
};

SelfAugmentedRsvd::SelfAugmentedRsvd(BandLayout layout, RsvdOptions options)
    : layout_(layout), options_(options) {
  if (options_.use_constraint2) {
    if (layout_.links == 0 || layout_.slots == 0) {
      throw std::invalid_argument(
          "SelfAugmentedRsvd: Constraint 2 requires a band layout");
    }
    g_ = continuity_matrix(layout_.slots);
    h_ = similarity_matrix(layout_.links);
    if (options_.c2_mode == Constraint2Mode::kGaussSeidel) {
      h_(0, 0) = 0.0;  // repair (2): no absolute term on the first link
    }
    g_t_ = g_.transpose();
  }
}

linalg::Matrix SelfAugmentedRsvd::warm_matrix(
    const RsvdProblem& problem) const {
  // Complete the observed entries with the Constraint-1 prediction, or the
  // observed row mean when Constraint 1 is unavailable.
  linalg::Matrix warm = problem.x_b;
  const bool have_p = !problem.p.empty();
  for (std::size_t i = 0; i < warm.rows(); ++i) {
    double row_sum = 0.0;
    double row_cnt = 0.0;
    for (std::size_t j = 0; j < warm.cols(); ++j) {
      if (problem.b(i, j) != 0.0) {
        row_sum += problem.x_b(i, j);
        row_cnt += 1.0;
      }
    }
    const double row_mean = row_cnt > 0.0 ? row_sum / row_cnt : 0.0;
    for (std::size_t j = 0; j < warm.cols(); ++j) {
      if (problem.b(i, j) == 0.0) {
        warm(i, j) = have_p ? problem.p(i, j) : row_mean;
      }
    }
  }
  return warm;
}

linalg::Matrix SelfAugmentedRsvd::initial_factor(
    const RsvdProblem& problem) const {
  const std::size_t m = problem.b.rows();
  const std::size_t r =
      options_.rank == 0 ? m : std::min(options_.rank, problem.b.cols());

  // Explicit warm start: reuse a previously converged factor (the engine's
  // versioned cache) instead of paying for a fresh SVD.  kRandom ignores it
  // so the paper's random-init ablation stays reproducible.
  if (!problem.l0.empty() && options_.init == FactorInit::kWarmStart) {
    if (problem.l0.rows() != m || problem.l0.cols() != r) {
      throw std::invalid_argument(
          "SelfAugmentedRsvd: warm-start factor shape mismatch");
    }
    return problem.l0;
  }

  if (options_.init == FactorInit::kRandom) {
    rng::Rng rng(options_.init_seed);
    linalg::Matrix l0(m, r);
    for (double& v : l0.data()) v = rng.normal();
    return l0;
  }

  // Warm start: SVD factor U * sqrt(Sigma) of the completed matrix,
  // truncated at rank r.
  const linalg::SvdResult d = linalg::svd(warm_matrix(problem));
  linalg::Matrix l0(m, r);
  for (std::size_t k = 0; k < r && k < d.sigma.size(); ++k) {
    const double s = std::sqrt(d.sigma[k]);
    for (std::size_t i = 0; i < m; ++i) l0(i, k) = d.u(i, k) * s;
  }
  return l0;
}

SelfAugmentedRsvd::Weights SelfAugmentedRsvd::effective_weights(
    const RsvdProblem& problem) const {
  Weights w;
  const bool c1 = options_.use_constraint1 && !problem.p.empty();
  const bool c2 = options_.use_constraint2;
  w.w1 = c1 ? options_.w_constraint1 : 0.0;
  w.w2 = c2 ? options_.w_continuity : 0.0;
  w.w3 = c2 ? options_.w_similarity : 0.0;
  if (!options_.auto_scale) return w;

  // "Scale the terms to the same order of magnitude" (Sec. IV-E): measure
  // each term's natural magnitude at the warm-start completion and rescale
  // the base weights by data_scale / term_scale, clamped to [1e-3, 1e3].
  const double data_scale =
      std::max(linalg::frobenius_norm_sq(problem.x_b), 1e-9);
  const auto clamp_scale = [](double s) {
    return std::clamp(s, 1e-3, 1e3);
  };
  if (w.w1 > 0.0) {
    const double c1_scale =
        std::max(linalg::frobenius_norm_sq(problem.p), 1e-9);
    w.w1 *= clamp_scale(data_scale / c1_scale);
  }
  if (c2 && (w.w2 > 0.0 || w.w3 > 0.0)) {
    const linalg::Matrix xd0 =
        extract_largely_decrease(warm_matrix(problem), layout_);
    if (w.w2 > 0.0) {
      const double g_scale =
          std::max(linalg::frobenius_norm_sq(xd0 * g_), 1e-9);
      w.w2 *= clamp_scale(data_scale / g_scale);
    }
    if (w.w3 > 0.0) {
      const double h_scale =
          std::max(linalg::frobenius_norm_sq(h_ * xd0), 1e-9);
      w.w3 *= clamp_scale(data_scale / h_scale);
    }
  }
  return w;
}

double SelfAugmentedRsvd::objective(const RsvdProblem& problem,
                                    const Weights& w, const linalg::Matrix& l,
                                    const linalg::Matrix& r,
                                    SweepContext& ctx) const {
  linalg::multiply_transposed_into(l, r, ctx.x_hat);  // X_hat = L R^T
  double v = options_.lambda * (linalg::frobenius_norm_sq(l) +
                                linalg::frobenius_norm_sq(r));
  v += linalg::masked_diff_norm_sq(problem.b, ctx.x_hat, problem.x_b);
  if (w.w1 > 0.0) {
    v += w.w1 * linalg::diff_norm_sq(ctx.x_hat, problem.p);
  }
  if (options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0)) {
    ctx.xd_obj.resize(layout_.links, layout_.slots);
    for (std::size_t i = 0; i < layout_.links; ++i) {
      for (std::size_t u = 0; u < layout_.slots; ++u) {
        ctx.xd_obj(i, u) = ctx.x_hat(i, layout_.cell(i, u));
      }
    }
    if (w.w2 > 0.0) {
      linalg::multiply_into(ctx.xd_obj, g_, ctx.xdg_obj);
      v += w.w2 * linalg::frobenius_norm_sq(ctx.xdg_obj);
    }
    if (w.w3 > 0.0) {
      linalg::multiply_into(h_, ctx.xd_obj, ctx.hxd_obj);
      v += w.w3 * linalg::frobenius_norm_sq(ctx.hxd_obj);
    }
  }
  return v;
}

void SelfAugmentedRsvd::update_r(const RsvdProblem& problem, const Weights& w,
                                 const linalg::Matrix& l,
                                 const linalg::Matrix& r_prev,
                                 SweepContext& ctx) const {
  const std::size_t m = l.rows();
  const std::size_t rr = l.cols();
  const std::size_t n = problem.b.cols();
  const bool c2 = options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0);
  const bool gauss_seidel =
      options_.c2_mode == Constraint2Mode::kGaussSeidel;

  linalg::gram_into(l, ctx.ltl);
  ctx.lql = ctx.ltl;
  for (std::size_t a = 0; a < rr; ++a) ctx.lql(a, a) += options_.lambda;

  // Current largely-decrease estimate (from the previous R) for the
  // Gauss-Seidel cross terms of Constraint 2.
  if (c2) {
    ctx.xd_cur.resize(layout_.links, layout_.slots);
    for (std::size_t i = 0; i < layout_.links; ++i) {
      for (std::size_t u = 0; u < layout_.slots; ++u) {
        ctx.xd_cur(i, u) =
            linalg::dot(l.row_span(i), r_prev.row_span(layout_.cell(i, u)));
      }
    }
    if (gauss_seidel && w.w2 > 0.0) {
      linalg::multiply_into(ctx.xd_cur, g_, ctx.xdg);
    }
  }

  ctx.r_next.resize(n, rr);
  parallel::parallel_for(ctx.threads, n, [&](std::size_t begin,
                                             std::size_t end,
                                             std::size_t slot) {
    ThreadWorkspace& ws = ctx.ws[slot];
    ws.q.resize(rr, rr);
    ws.diag.resize(rr);
    for (std::size_t j = begin; j < end; ++j) {
      linalg::Matrix& q = ws.q;
      const auto c = ctx.r_next.row_span(j);
      std::fill(c.begin(), c.end(), 0.0);

      // Data term in complement form: Q = (lambda*I + L^T L) minus the
      // unobserved rows' outer products, instead of lambda*I plus the
      // observed ones — far fewer rank-1 updates on realistic dense
      // masks, identical curvature up to rounding.
      std::copy(ctx.lql.data().begin(), ctx.lql.data().end(),
                q.data().begin());
      for (const std::size_t i : ctx.unobs_rows[j]) {
        add_outer(q, l.row_span(i), -1.0);
      }
      for (const std::size_t i : ctx.obs_rows[j]) {
        linalg::axpy(problem.x_b(i, j), l.row_span(i), c);
      }

      // Constraint 1: w1 ||L theta - p_j||^2 over all links.
      if (w.w1 > 0.0) {
        linalg::add_scaled(q, w.w1, ctx.ltl);
        for (std::size_t i = 0; i < m; ++i) {
          linalg::axpy(w.w1 * problem.p(i, j), l.row_span(i), c);
        }
      }

      // Constraint 2: only the band entry (ii, jj) of column j is a
      // largely-decrease element.
      if (c2) {
        const std::size_t ii = layout_.band_of(j);
        const std::size_t jj = layout_.slot_of(j);
        const auto l_band = l.row_span(ii);
        if (w.w2 > 0.0) {
          const double g_norm_sq = row_norm_sq(g_, jj);
          add_outer(q, l_band, w.w2 * g_norm_sq);
          if (gauss_seidel) {
            // Cross term with the neighbouring slots of the current
            // estimate: sum_q (XD*G)(ii,q) G(jj,q) with the self
            // contribution removed.
            double cross = 0.0;
            for (std::size_t qq = 0; qq < layout_.slots; ++qq) {
              const double others =
                  ctx.xdg(ii, qq) - ctx.xd_cur(ii, jj) * g_(jj, qq);
              cross += others * g_(jj, qq);
            }
            linalg::axpy(-w.w2 * cross, l_band, c);
          }
        }
        if (w.w3 > 0.0) {
          if (gauss_seidel) {
            double count = 0.0, neighbor_sum = 0.0;
            if (ii > 0) {
              count += 1.0;
              neighbor_sum += ctx.xd_cur(ii - 1, jj);
            }
            if (ii + 1 < layout_.links) {
              count += 1.0;
              neighbor_sum += ctx.xd_cur(ii + 1, jj);
            }
            add_outer(q, l_band, w.w3 * count);
            linalg::axpy(w.w3 * neighbor_sum, l_band, c);
          } else {
            // Published curvature: ||H(:, ii)||^2, repair (1) applied.
            const double h_col_sq = ii + 1 < layout_.links ? 2.0 : 1.0;
            add_outer(q, l_band, w.w3 * h_col_sq);
          }
        }
      }

      // Solve in place: the right-hand side was built directly in the
      // output row, so the solution lands there without a copy.
      symmetrize_lower(q);
      linalg::solve_spd_into(q, c, ws.diag);
    }
  });
}

void SelfAugmentedRsvd::update_l(const RsvdProblem& problem, const Weights& w,
                                 const linalg::Matrix& l_prev,
                                 const linalg::Matrix& r,
                                 SweepContext& ctx) const {
  const std::size_t m = problem.b.rows();
  const std::size_t rr = r.cols();
  const std::size_t n = r.rows();
  const bool c2 = options_.use_constraint2 && (w.w2 > 0.0 || w.w3 > 0.0);
  const bool gauss_seidel =
      options_.c2_mode == Constraint2Mode::kGaussSeidel;

  linalg::gram_into(r, ctx.rtr);
  ctx.rql = ctx.rtr;
  for (std::size_t a = 0; a < rr; ++a) ctx.rql(a, a) += options_.lambda;

  // Current X_D (from l_prev and the fresh r) for the similarity cross
  // terms; the continuity term is exactly quadratic per row and needs no
  // cross terms.
  if (c2) {
    ctx.xd_cur.resize(layout_.links, layout_.slots);
    for (std::size_t i = 0; i < layout_.links; ++i) {
      for (std::size_t u = 0; u < layout_.slots; ++u) {
        ctx.xd_cur(i, u) = linalg::dot(l_prev.row_span(i),
                                       r.row_span(layout_.cell(i, u)));
      }
    }
  }

  ctx.l_next.resize(m, rr);
  parallel::parallel_for(ctx.threads, m, [&](std::size_t begin,
                                             std::size_t end,
                                             std::size_t slot) {
    ThreadWorkspace& ws = ctx.ws[slot];
    ws.q.resize(rr, rr);
    ws.diag.resize(rr);
    if (c2) {
      ws.theta_t.resize(layout_.slots, rr);
      ws.neighbor_sum.resize(layout_.slots);
      ws.contrib.resize(rr);
    }
    for (std::size_t i = begin; i < end; ++i) {
      linalg::Matrix& q = ws.q;
      const auto c = ctx.l_next.row_span(i);
      std::fill(c.begin(), c.end(), 0.0);

      // Complement-form data term, mirroring update_r.
      std::copy(ctx.rql.data().begin(), ctx.rql.data().end(),
                q.data().begin());
      for (const std::size_t j : ctx.unobs_cols[i]) {
        add_outer(q, r.row_span(j), -1.0);
      }
      for (const std::size_t j : ctx.obs_cols[i]) {
        linalg::axpy(problem.x_b(i, j), r.row_span(j), c);
      }

      if (w.w1 > 0.0) {
        linalg::add_scaled(q, w.w1, ctx.rtr);
        for (std::size_t j = 0; j < n; ++j) {
          linalg::axpy(w.w1 * problem.p(i, j), r.row_span(j), c);
        }
      }

      if (c2) {
        // Theta_i stored transposed: row u of theta_t is the factor of
        // band cell (i, u) — one contiguous copy per slot.
        for (std::size_t u = 0; u < layout_.slots; ++u) {
          r.copy_row_into(layout_.cell(i, u), ws.theta_t.row_span(u));
        }
        if (w.w2 > 0.0) {
          if (gauss_seidel) {
            // Row i of X_D*G is (l_i Theta_i) G: exactly quadratic in l_i
            // with curvature (Theta G)(Theta G)^T = gram(G^T Theta^T).
            linalg::multiply_into(g_t_, ws.theta_t, ws.tg);
            linalg::gram_into(ws.tg, ws.gbuf);
            linalg::add_scaled(q, w.w2, ws.gbuf);
          } else {
            for (std::size_t u = 0; u < layout_.slots; ++u) {
              add_outer(q, ws.theta_t.row_span(u),
                        w.w2 * row_norm_sq(g_, u));
            }
          }
        }
        if (w.w3 > 0.0) {
          linalg::gram_into(ws.theta_t, ws.ttt);  // Theta Theta^T
          if (gauss_seidel) {
            double count = 0.0;
            std::fill(ws.neighbor_sum.begin(), ws.neighbor_sum.end(), 0.0);
            if (i > 0) {
              count += 1.0;
              for (std::size_t u = 0; u < layout_.slots; ++u) {
                ws.neighbor_sum[u] += ctx.xd_cur(i - 1, u);
              }
            }
            if (i + 1 < layout_.links) {
              count += 1.0;
              for (std::size_t u = 0; u < layout_.slots; ++u) {
                ws.neighbor_sum[u] += ctx.xd_cur(i + 1, u);
              }
            }
            linalg::add_scaled(q, w.w3 * count, ws.ttt);
            // contrib = Theta * neighbor_sum, accumulated row by row of
            // theta_t (same ascending-u order as the dense product).
            std::fill(ws.contrib.begin(), ws.contrib.end(), 0.0);
            for (std::size_t u = 0; u < layout_.slots; ++u) {
              linalg::axpy(ws.neighbor_sum[u], ws.theta_t.row_span(u),
                           ws.contrib);
            }
            linalg::axpy(w.w3, ws.contrib, c);
          } else {
            const double h_col_sq = i + 1 < layout_.links ? 2.0 : 1.0;
            linalg::add_scaled(q, w.w3 * h_col_sq, ws.ttt);
          }
        }
      }

      symmetrize_lower(q);
      linalg::solve_spd_into(q, c, ws.diag);
    }
  });
}

RsvdResult SelfAugmentedRsvd::solve(const RsvdProblem& problem) const {
  if (problem.x_b.rows() != problem.b.rows() ||
      problem.x_b.cols() != problem.b.cols()) {
    throw std::invalid_argument("SelfAugmentedRsvd: X_B / B shape mismatch");
  }
  if (options_.use_constraint1 && !problem.p.empty() &&
      (problem.p.rows() != problem.b.rows() ||
       problem.p.cols() != problem.b.cols())) {
    throw std::invalid_argument("SelfAugmentedRsvd: P shape mismatch");
  }
  if (options_.use_constraint2 &&
      (problem.b.rows() != layout_.links ||
       problem.b.cols() != layout_.num_cells())) {
    throw std::invalid_argument("SelfAugmentedRsvd: band layout mismatch");
  }

  linalg::Matrix l_hat = initial_factor(problem);
  // First R solve pairs with the initial L (Algorithm 1 line 3).
  linalg::Matrix r_hat(problem.b.cols(), l_hat.cols());
  const Weights w = effective_weights(problem);

  SweepContext ctx;
  ctx.threads = parallel::resolve_threads(options_.threads);
  ctx.ws.resize(ctx.threads);

  // B is fixed across the whole solve: scan the observed/unobserved index
  // sets once, instead of re-testing every mask entry in every sweep.
  {
    const std::size_t m = problem.b.rows();
    const std::size_t n = problem.b.cols();
    ctx.obs_rows.assign(n, {});
    ctx.unobs_rows.assign(n, {});
    ctx.obs_cols.assign(m, {});
    ctx.unobs_cols.assign(m, {});
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (problem.b(i, j) != 0.0) {
          ctx.obs_rows[j].push_back(i);
          ctx.obs_cols[i].push_back(j);
        } else {
          ctx.unobs_rows[j].push_back(i);
          ctx.unobs_cols[i].push_back(j);
        }
      }
    }
  }

  RsvdResult out;
  double best_v = std::numeric_limits<double>::infinity();
  double v_initial = -1.0;
  const double data_scale =
      std::max(linalg::frobenius_norm_sq(problem.x_b), 1.0);

  for (std::size_t it = 0; it < options_.max_iters; ++it) {
    update_r(problem, w, l_hat, r_hat, ctx);
    update_l(problem, w, l_hat, ctx.r_next, ctx);
    // Rebalance the factors: scaling L by s and R by 1/s leaves the
    // product unchanged and, at s = (||R||/||L||)^(1/2), minimises the
    // lambda regulariser — a strict objective improvement that also keeps
    // the per-column systems well conditioned.
    {
      const double ln = linalg::frobenius_norm(ctx.l_next);
      const double rn = linalg::frobenius_norm(ctx.r_next);
      if (ln > 1e-12 && rn > 1e-12) {
        const double s = std::sqrt(rn / ln);
        ctx.l_next *= s;
        ctx.r_next /= s;
      }
    }
    const double v = objective(problem, w, ctx.l_next, ctx.r_next, ctx);
    out.objective_history.push_back(v);
    out.iterations = it + 1;
    if (v_initial < 0.0) v_initial = std::max(v, 1e-12);

    if (v <= best_v) {
      best_v = v;
      out.l = ctx.l_next;
      out.r = ctx.r_next;
    }
    // Capacity-reusing copies: after the first iteration these assignments
    // never touch the heap.
    l_hat = ctx.l_next;
    r_hat = ctx.r_next;

    // Algorithm 1 lines 6-8: stop refreshing once v falls below v_th,
    // interpreted relative to the data scale ||X_B||_F^2.
    if (v < options_.v_threshold * data_scale) {
      out.reached_threshold = true;
      break;
    }
    // Extra guard: stop on stagnation.
    const std::size_t hist = out.objective_history.size();
    if (hist >= 2) {
      const double prev = out.objective_history[hist - 2];
      if (std::abs(prev - v) <= 1e-10 * std::max(prev, 1.0)) break;
    }
  }

  if (out.l.empty()) {  // max_iters == 0 edge case
    out.l = l_hat;
    out.r = r_hat;
  }
  linalg::multiply_transposed_into(out.l, out.r, out.x_hat);
  return out;
}

}  // namespace iup::core
