#include "core/mic.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/qr.hpp"
#include "linalg/rref.hpp"

namespace iup::core {

MicResult extract_mic(const linalg::Matrix& x, MicStrategy strategy,
                      double rel_tol, std::size_t threads) {
  if (x.empty()) throw std::invalid_argument("extract_mic: empty matrix");
  MicResult out;
  switch (strategy) {
    case MicStrategy::kRref: {
      out.reference_cells = linalg::pivot_columns(x, rel_tol);
      break;
    }
    case MicStrategy::kQrcp: {
      const linalg::QrcpResult f =
          linalg::qr_column_pivoted(x, rel_tol, threads);
      out.reference_cells.assign(f.perm.begin(),
                                 f.perm.begin() + static_cast<long>(f.rank));
      // Sorted order makes the walk between reference locations shortest
      // and keeps reports deterministic.
      std::sort(out.reference_cells.begin(), out.reference_cells.end());
      break;
    }
  }
  out.rank = out.reference_cells.size();
  out.x_mic = x.select_columns(out.reference_cells);
  return out;
}

MicResult mic_from_cells(const linalg::Matrix& x,
                         const std::vector<std::size_t>& cells) {
  if (cells.empty()) {
    throw std::invalid_argument("mic_from_cells: no cells given");
  }
  MicResult out;
  out.reference_cells = cells;
  out.x_mic = x.select_columns(cells);
  out.rank = cells.size();
  return out;
}

}  // namespace iup::core
