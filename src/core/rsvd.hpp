// Shared problem/option types for the RSVD family of solvers, plus the
// basic regularized-SVD matrix completion (Eq. 11) as a convenience entry
// point.  The full self-augmented method (Eq. 18 / Algorithm 1) lives in
// core/self_augmented.hpp and subsumes this one (basic RSVD is the special
// case with both constraints disabled).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace iup::core {

/// How Constraint 2 enters the per-column normal equations.
enum class Constraint2Mode {
  /// The published pseudo code: Q4/Q5 are the squared-norm curvature terms
  /// and C4 = C5 = 0 — a data-independent shrinkage of the largely-decrease
  /// entries along the current factor direction.
  kPaperLiteral,
  /// Block-coordinate (Gauss-Seidel) linearisation: the cross terms with
  /// the neighbouring entries of the *current* estimate are kept, so the
  /// penalty genuinely pulls each entry toward its neighbour average /
  /// adjacent-link value.  This matches the stated intent of Observations
  /// 2/3 and is the default.
  kGaussSeidel,
};

/// How the factor L is initialised (Algorithm 1 line 1).
enum class FactorInit {
  kRandom,     ///< the paper's choice: random L0
  kWarmStart,  ///< SVD factors of X_B completed with X_R * Z (faster, used
               ///< by default; benches verify both reach similar objectives)
};

struct RsvdOptions {
  double lambda = 0.05;        ///< rank/fit tradeoff (Eq. 11)
  std::size_t rank = 0;        ///< factor width r; 0 = use the row count M
  std::size_t max_iters = 60;  ///< Algorithm 1 line 2 ("t")
  double v_threshold = 1e-9;   ///< Algorithm 1 "v_th", relative to the data
                               ///< scale ||X_B||_F^2
  bool use_constraint1 = true;
  bool use_constraint2 = true;
  /// Worker threads for the per-column / per-row sweep (0 = all hardware
  /// threads).  Results are bit-identical for any value: every column/row
  /// owns its output slot and no floating-point reduction is reordered.
  std::size_t threads = 1;
  Constraint2Mode c2_mode = Constraint2Mode::kGaussSeidel;
  FactorInit init = FactorInit::kWarmStart;
  std::uint64_t init_seed = 7;  ///< seed for kRandom initialisation
  /// Batch the per-column solves of the R-update (and, when Constraint 2
  /// is inactive, the per-row solves of the L-update) by observation-mask
  /// signature: columns whose normal matrix Q is provably identical share
  /// one factor_spd and solve as a multi-RHS panel.  Results are
  /// bit-identical to the ungrouped sweep at every thread count (the
  /// invariant is documented in self_augmented.hpp); the knob exists for
  /// the grouped-vs-ungrouped identity tests and A/B benches.
  bool group_masks = true;
  /// Opt-in objective-stagnation early stop: when > 0, a sweep that
  /// still improves the objective but whose relative improvement
  /// (v_prev - v) / max(|v_prev|, 1) falls below this tolerance ends the
  /// solve (RsvdResult::stagnated); a transient objective increase is
  /// not stagnation and never triggers it.  The default 0 keeps the full
  /// max_iters trajectory, so every paper figure and historical result
  /// is untouched unless a caller asks for the saving.
  double stagnation_tol = 0.0;

  // Term weights.  The paper scales the constraint terms "to the same
  // order of magnitude" (Sec. IV-E); with auto_scale the weights below are
  // multiplied by data_term / constraint_term measured at the warm-start
  // completion (clamped to [1e-3, 1e3]).  The fixed defaults equalise the
  // per-entry curvature of the terms instead, which keeps Constraint 2 an
  // outlier-rejecting regulariser rather than letting it dominate the
  // (naturally much smaller) difference terms; the ablation bench compares
  // both policies.
  bool auto_scale = false;
  double w_constraint1 = 1.0;
  double w_continuity = 0.3;  ///< weight of ||X_D * G||_F^2
  double w_similarity = 0.05;  ///< weight of ||H * X_D||_F^2
};

/// The data of one reconstruction problem.
struct RsvdProblem {
  linalg::Matrix x_b;   ///< M x N, no-decrease measurements (zeros elsewhere)
  linalg::Matrix b;     ///< M x N 0/1 index matrix (Eq. 8)
  linalg::Matrix p;     ///< M x N prediction X_R * Z (Constraint 1); may be
                        ///< empty when use_constraint1 is false
  linalg::Matrix l0;    ///< optional M x r warm-start factor: when non-empty
                        ///< and FactorInit::kWarmStart is selected,
                        ///< Algorithm 1 starts from this L0 and skips the
                        ///< SVD of the completed matrix.  api::Engine feeds
                        ///< the previous snapshot's converged factor here
                        ///< through its versioned warm-start cache.
};

struct RsvdResult {
  linalg::Matrix x_hat;  ///< reconstructed fingerprint matrix
  linalg::Matrix l;      ///< M x r factor
  linalg::Matrix r;      ///< N x r factor
  std::vector<double> objective_history;  ///< v per iteration (line 5)
  std::size_t iterations = 0;
  bool reached_threshold = false;  ///< objective fell below v_th
  bool stagnated = false;  ///< stopped by RsvdOptions::stagnation_tol
  /// Mask-grouping diagnostics (RsvdOptions::group_masks): how many
  /// multi-RHS groups (>= 2 columns sharing one factored Q) the R-update
  /// solves per sweep, and how many of the grid columns they cover.
  std::size_t mask_groups = 0;
  std::size_t grouped_columns = 0;
};

/// Basic RSVD (Eq. 11): complete `x_b` over the observed mask `b` with no
/// additional constraints.
RsvdResult basic_rsvd(const linalg::Matrix& x_b, const linalg::Matrix& b,
                      RsvdOptions options = {});

}  // namespace iup::core
