// Fixed thread pool + deterministic parallel_for.
//
// The solver hot path (Algorithm 1) is embarrassingly parallel: every
// column of the R-update and every row of the L-update solves its own
// independent r x r normal-equation system and writes its own output row.
// This subsystem exploits that with the *strongest* determinism guarantee:
//
//   parallel_for(threads, n, body) produces bit-identical results for any
//   thread count, because the iteration space is split into contiguous
//   chunks by pure integer arithmetic (chunk_range), each index is
//   processed by exactly one chunk, and no floating-point reduction is
//   ever reordered — bodies only write state they exclusively own
//   (their output rows and their per-slot workspace).
//
// Scheduling model:
//   * One process-wide pool (global_pool()) lazily spawns its workers on
//     first use; parallel_for borrows it, so solvers never pay thread
//     creation per sweep.
//   * The calling thread participates: it executes chunk 0, then helps
//     drain its own batch's still-queued chunks (never another batch's —
//     a caller holding a lock must not execute foreign work), then waits.
//     The pool therefore makes progress even with zero workers
//     (single-core machines) and is never a deadlock hazard.
//   * Budgeted nesting: a parallel_for from inside a chunk submits its
//     chunks to the shared queue (one nested level deep), so idle workers
//     flow into the nested fan-outs — an update_batch with fewer site
//     chains than pool threads feeds its surplus threads to the chains'
//     solver/LRR sweeps instead of pinning each chain to one thread.
//     Deeper nesting degrades to sequential chunk execution on the
//     calling thread.  Either way: same chunks, same slots, same results,
//     no deadlock (every nested caller drains its own still-queued chunks
//     before blocking, and nesting bottoms out at the depth cap).
//
// Consumers beyond the solver: the serving layer (src/serve/) fans its
// batched localize panels out through the same parallel_for — the
// "bodies only write state they exclusively own" rule is what lets a
// ServeFront leader compute a whole batch against immutable published
// bundles with no extra synchronization, and the deterministic chunking
// is why batching changes scheduling but never bits.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace iup::parallel {

/// Body of a parallel loop: process indices [begin, end).  `slot` is the
/// chunk index in [0, ways) — stable across thread counts and runs, so it
/// can index per-chunk scratch workspaces.
using ChunkBody =
    std::function<void(std::size_t begin, std::size_t end, std::size_t slot)>;

/// Deterministic static partition: the half-open index range of chunk `c`
/// when [0, n) is split `ways` ways.  Chunks are contiguous, cover [0, n)
/// exactly once, and differ in size by at most one element.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                std::size_t ways,
                                                std::size_t c);

/// Resolve a thread-count knob: 0 means "all hardware threads", anything
/// else is taken literally.  Always returns >= 1.
std::size_t resolve_threads(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns exactly `workers` worker threads (the caller of run() is an
  /// additional participant, so total parallelism is workers + 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const;

  /// Split [0, n) into min(ways, n) chunks and invoke `body` once per
  /// chunk.  Blocks until every chunk has finished.  Safe to call from a
  /// worker thread (runs the chunks sequentially in that case).  If one
  /// or more chunks throw, the remaining chunks still run to completion
  /// and the first exception is rethrown on the calling thread — a body
  /// exception never escapes a worker or aborts the process.
  void run(std::size_t n, std::size_t ways, const ChunkBody& body);

  /// The process-wide pool used by parallel_for, sized for the hardware.
  /// Workers are spawned lazily on first use.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

/// Run `body` over [0, n) split into up to `threads` chunks on the global
/// pool.  `threads` <= 1 (or n <= 1) runs inline with a single chunk —
/// the zero-overhead serial path.
void parallel_for(std::size_t threads, std::size_t n, const ChunkBody& body);

}  // namespace iup::parallel
