#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace iup::parallel {

namespace {

// Nesting depth of the current execution context: 0 outside the pool,
// d+1 while executing a chunk of a batch submitted at depth d.  run()
// submits to the pool while depth < kMaxNestDepth and degrades to
// sequential chunk execution beyond that — one level of budgeted nesting
// is enough for the engine's update_batch (site chains at depth 0, each
// chain's solver/LRR fan-outs at depth 1), and a finite cap keeps the
// termination argument trivial.
thread_local std::size_t t_nest_depth = 0;

constexpr std::size_t kMaxNestDepth = 1;

}  // namespace

std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                std::size_t ways,
                                                std::size_t c) {
  if (ways == 0) ways = 1;
  const std::size_t base = n / ways;
  const std::size_t extra = n % ways;
  // The first `extra` chunks get base+1 elements; pure integer arithmetic,
  // so the partition depends only on (n, ways, c).
  const std::size_t begin = c * base + std::min(c, extra);
  const std::size_t size = base + (c < extra ? 1 : 0);
  return {begin, begin + size};
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct ThreadPool::Impl {
  struct Task {
    const void* batch_tag;  ///< identity of the run() that enqueued it
    std::size_t depth;      ///< nesting depth the chunk executes at
    std::function<void()> fn;
  };

  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<Task> queue;
  std::vector<std::thread> threads;
  bool stopping = false;

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_cv.wait(lock, [this] { return stopping || !queue.empty(); });
      if (stopping && queue.empty()) return;
      auto task = std::move(queue.front());
      queue.pop_front();
      lock.unlock();
      t_nest_depth = task.depth;
      task.fn();
      t_nest_depth = 0;
      lock.lock();
    }
  }

  // Pop-and-run this batch's still-queued chunks on the calling thread,
  // so the pool makes progress even with zero free workers.  Only the
  // caller's own chunks: executing an unrelated batch's chunk here could
  // self-deadlock a caller that holds a lock that chunk also takes.
  void help_drain(const void* batch_tag) {
    const std::size_t caller_depth = t_nest_depth;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      const auto it = std::find_if(
          queue.begin(), queue.end(),
          [batch_tag](const Task& t) { return t.batch_tag == batch_tag; });
      if (it == queue.end()) break;
      auto task = std::move(*it);
      queue.erase(it);
      lock.unlock();
      t_nest_depth = task.depth;
      task.fn();
      t_nest_depth = caller_depth;
      lock.lock();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

std::size_t ThreadPool::workers() const { return impl_->threads.size(); }

void ThreadPool::run(std::size_t n, std::size_t ways, const ChunkBody& body) {
  if (n == 0) return;
  ways = std::min(ways, n);
  if (ways <= 1) {
    body(0, n, 0);
    return;
  }
  const std::size_t depth = t_nest_depth;
  if (depth > kMaxNestDepth) {
    // Past the nesting budget: execute the same chunks sequentially.
    // Identical partition, identical slots, identical results.
    for (std::size_t c = 0; c < ways; ++c) {
      const auto [begin, end] = chunk_range(n, ways, c);
      body(begin, end, c);
    }
    return;
  }
  // Budgeted nesting (depth <= kMaxNestDepth): submit chunks to the
  // shared queue even from inside a worker.  Idle workers pick them up,
  // so when an outer fan-out has fewer chunks than the pool has threads
  // (update_batch with few site chains), the surplus threads flow into
  // the nested fan-outs instead of idling.  Deadlock-free by induction on
  // depth: every nested caller first runs chunk 0 itself, then drains its
  // own still-queued chunks (help_drain), so by the time it blocks, its
  // remaining chunks are being executed by workers — and those chunks
  // terminate because their own nesting bottoms out at the depth cap.
  // Results are unchanged: the partition depends only on (n, ways) and
  // every chunk owns its outputs, so WHO executes a chunk is invisible.

  struct Batch {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t pending;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->pending = ways;
  // Every chunk — caller- or worker-executed — runs through this wrapper:
  // a throwing body never escapes a worker thread (which would terminate
  // the process) and never lets run() return before all chunks finished
  // (the queued closures reference `body` on the caller's stack).  The
  // first exception is rethrown on the caller once the batch completes.
  const auto run_chunk = [&body, batch, n, ways](std::size_t c) {
    try {
      const auto [begin, end] = chunk_range(n, ways, c);
      body(begin, end, c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(batch->mutex);
    if (--batch->pending == 0) batch->done_cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (std::size_t c = 1; c < ways; ++c) {
      impl_->queue.push_back(
          {batch.get(), depth + 1, [run_chunk, c] { run_chunk(c); }});
    }
  }
  impl_->work_cv.notify_all();

  // The caller owns chunk 0 (executed one nesting level deeper), then
  // helps with its own still-queued chunks, then waits for chunks picked
  // up by workers.
  t_nest_depth = depth + 1;
  run_chunk(0);
  t_nest_depth = depth;
  impl_->help_drain(batch.get());
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&batch] { return batch->pending == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

ThreadPool& ThreadPool::global() {
  // Workers = hardware threads - 1 (the caller participates); at least one
  // worker so the queue/wake machinery is exercised even on 1-core hosts.
  static ThreadPool pool(std::max<std::size_t>(1, resolve_threads(0) - 1));
  return pool;
}

void parallel_for(std::size_t threads, std::size_t n, const ChunkBody& body) {
  if (threads <= 1 || n <= 1) {
    if (n != 0) body(0, n, 0);
    return;
  }
  ThreadPool::global().run(n, threads, body);
}

}  // namespace iup::parallel
