#include "ingest/drift.hpp"

#include <cmath>

namespace iup::ingest {

EwmaDriftDetector::EwmaDriftDetector(DriftDetectorOptions options)
    : options_(options) {}

void EwmaDriftDetector::observe(double residual_db) {
  const double r = std::fabs(residual_db);
  // Seed the average with the first residual instead of decaying up from
  // zero, so min_observations is about support, not EWMA warm-up lag.
  ewma_ = count_ == 0 ? r : (1.0 - options_.alpha) * ewma_ + options_.alpha * r;
  ++count_;
}

bool EwmaDriftDetector::drifted() const {
  return count_ >= options_.min_observations &&
         ewma_ >= options_.threshold_db;
}

void EwmaDriftDetector::reset() {
  ewma_ = 0.0;
  count_ = 0;
}

}  // namespace iup::ingest
