#include "ingest/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "serve/shard.hpp"

namespace iup::ingest {

UpdateSupervisor::UpdateSupervisor(api::Engine& engine,
                                   SupervisorOptions options)
    : engine_(engine), options_(options) {}

UpdateSupervisor::~UpdateSupervisor() { stop(); }

api::Status UpdateSupervisor::watch(const std::string& site,
                                    WatchOptions options) {
  std::shared_ptr<serve::SiteShard> shard = engine_.shards().find(site);
  if (!shard) {
    return api::Status::not_found("watch: unknown site '" + site + "'");
  }
  api::Result<api::SnapshotPtr> snapshot = engine_.snapshot(site);
  if (!snapshot.ok()) return snapshot.status();
  const linalg::Matrix& x = (*snapshot)->database();

  auto watched = std::make_shared<Watched>();
  watched->site = site;
  watched->shard = std::move(shard);
  // The registered source table rides along so streamed observations are
  // source-checked at the buffer door (empty table = legacy site, no
  // source validation).
  watched->buffer = std::make_unique<ObservationBuffer>(
      x.rows(), x.cols(), (*snapshot)->sources(), watched->shard->health(),
      options.buffer);
  watched->watch = std::move(options);
  watched->jitter = rng::Rng(options_.seed).fork(site);
  watched->detector = EwmaDriftDetector(watched->watch.drift);
  watched->backoff = options_.backoff_initial;
  watched->next_attempt = Clock::now();

  // Crash-recovery re-arm: a site restored from a checkpoint carries its
  // health state word (persist::DurabilityManager + Engine::restore_from).
  // If the breaker was open when the process died, resume the degraded
  // protocol instead of silently resetting to healthy — keep serving
  // last-good and schedule a half-open probe after the cooldown, exactly
  // as if the breaker had tripped in this process.
  if (static_cast<serve::SiteState>(watched->shard->health().state.load(
          std::memory_order_relaxed)) == serve::SiteState::kDegraded) {
    watched->state = serve::SiteState::kDegraded;
    watched->degraded = true;
    watched->pending = true;
    watched->consecutive_failures =
        watched->shard->health().consecutive_failures.load(
            std::memory_order_relaxed);
    watched->next_attempt = Clock::now() + options_.breaker_cooldown;
  }

  std::lock_guard<std::mutex> lock(sites_mutex_);
  if (!sites_.emplace(site, std::move(watched)).second) {
    return api::Status::failed_precondition("watch: site '" + site +
                                            "' is already watched");
  }
  return {};
}

api::Status UpdateSupervisor::unwatch(const std::string& site) {
  std::lock_guard<std::mutex> lock(sites_mutex_);
  if (sites_.erase(site) == 0) {
    return api::Status::not_found("unwatch: site '" + site +
                                  "' is not watched");
  }
  return {};
}

UpdateSupervisor::WatchedPtr UpdateSupervisor::find(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(sites_mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : it->second;
}

api::Status UpdateSupervisor::observe(const std::string& site,
                                      const Observation& observation) {
  const WatchedPtr w = find(site);
  if (!w) {
    return api::Status::not_found("observe: site '" + site +
                                  "' is not watched");
  }
  if (api::Status verdict = w->buffer->push(observation); !verdict.ok()) {
    return verdict;  // quarantined; counters already bumped
  }

  // Residual against whatever is SERVING right now (lock-free load): the
  // detector asks "how stale is the published snapshot", not "how noisy
  // is the stream".
  const serve::PublishedPtr bundle = w->shard->published();
  double served = observation.rss_db;
  if (bundle && bundle->snapshot) {
    served = bundle->snapshot->database()(observation.link, observation.cell);
  }

  std::lock_guard<std::mutex> lock(w->mutex);
  w->detector.observe(observation.rss_db - served);
  if (w->detector.drifted()) {
    w->shard->health().drift_triggers.fetch_add(1, std::memory_order_relaxed);
    w->detector.reset();
    if (!w->pending && !w->in_flight) {
      w->pending = true;
      w->next_attempt = Clock::now();
    }
  }
  return {};
}

api::Status UpdateSupervisor::trigger(const std::string& site) {
  const WatchedPtr w = find(site);
  if (!w) {
    return api::Status::not_found("trigger: site '" + site +
                                  "' is not watched");
  }
  std::lock_guard<std::mutex> lock(w->mutex);
  w->pending = true;
  w->next_attempt = Clock::now();
  return {};
}

void UpdateSupervisor::set_state(Watched& w, serve::SiteState state) {
  w.state = state;
  w.shard->health().state.store(static_cast<std::uint32_t>(state),
                                std::memory_order_relaxed);
}

api::Result<api::UpdateRequest> UpdateSupervisor::collect(Watched& w,
                                                          std::uint64_t day) {
  if (w.watch.collector) return w.watch.collector(w.site, day);
  api::Result<api::SnapshotPtr> snapshot = engine_.snapshot(w.site);
  if (!snapshot.ok()) return snapshot.status();
  api::Result<core::UpdateInputs> inputs = w.buffer->assemble(**snapshot);
  if (!inputs.ok()) return inputs.status();
  api::UpdateRequest request;
  request.site = w.site;
  request.inputs = std::move(inputs).value();
  request.day = static_cast<std::size_t>(day);
  return request;
}

void UpdateSupervisor::attempt(Watched& w) {
  serve::SiteHealthCounters& health = w.shard->health();
  const std::uint64_t day =
      health.last_observed_day.load(std::memory_order_relaxed);

  // Build + solve OUTSIDE every supervisor lock: observe() keeps
  // streaming while the solver runs.
  const Clock::time_point started = Clock::now();
  api::Status outcome;
  {
    api::Result<api::UpdateRequest> request = collect(w, day);
    if (!request.ok()) {
      outcome = request.status();
    } else {
      const api::Result<api::UpdateResult> result = engine_.update(*request);
      if (!result.ok()) outcome = result.status();
    }
  }
  const std::chrono::nanoseconds elapsed = Clock::now() - started;

  std::lock_guard<std::mutex> lock(w.mutex);
  w.in_flight = false;
  if (outcome.ok()) {
    w.pending = false;
    w.consecutive_failures = 0;
    health.consecutive_failures.store(0, std::memory_order_relaxed);
    w.backoff = options_.backoff_initial;
    w.buffer->consume();   // the committed update ate this epoch
    w.detector.reset();    // residuals were against the replaced version
    if (w.degraded) {
      w.degraded = false;
      health.recoveries.fetch_add(1, std::memory_order_relaxed);
    }
    set_state(w, serve::SiteState::kHealthy);
    if (options_.deadline.count() > 0 && elapsed > options_.deadline) {
      // Soft classification: the commit landed, but over budget.
      health.deadline_trips.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  ++w.consecutive_failures;
  health.consecutive_failures.store(w.consecutive_failures,
                                    std::memory_order_relaxed);
  if (outcome.code() == api::StatusCode::kDeadlineExceeded) {
    health.deadline_trips.fetch_add(1, std::memory_order_relaxed);
  }
  w.pending = true;  // never give up; the breaker only slows the cadence
  const Clock::time_point now = Clock::now();
  if (w.consecutive_failures >= options_.breaker_threshold) {
    if (!w.degraded) {
      w.degraded = true;
      health.breaker_trips.fetch_add(1, std::memory_order_relaxed);
    }
    set_state(w, serve::SiteState::kDegraded);
    w.next_attempt = now + options_.breaker_cooldown;  // half-open probe
  } else {
    set_state(w, serve::SiteState::kBackoff);
    const double factor = options_.backoff_jitter > 0.0
                              ? w.jitter.uniform(1.0 - options_.backoff_jitter,
                                                 1.0 + options_.backoff_jitter)
                              : 1.0;
    const auto base = std::min<std::chrono::nanoseconds>(
        w.backoff, options_.backoff_max);
    w.next_attempt =
        now + std::chrono::nanoseconds(static_cast<std::int64_t>(
                  std::llround(static_cast<double>(base.count()) * factor)));
    w.backoff = std::min<std::chrono::nanoseconds>(base * 2,
                                                   options_.backoff_max);
  }
}

std::size_t UpdateSupervisor::pump() {
  std::vector<WatchedPtr> sites;
  {
    std::lock_guard<std::mutex> lock(sites_mutex_);
    sites.reserve(sites_.size());
    for (const auto& [name, w] : sites_) sites.push_back(w);
  }

  std::size_t ran = 0;
  for (const WatchedPtr& w : sites) {
    {
      std::lock_guard<std::mutex> lock(w->mutex);
      if (!w->pending || w->in_flight || Clock::now() < w->next_attempt) {
        continue;
      }
      w->in_flight = true;
      set_state(*w, serve::SiteState::kUpdating);
      w->shard->health().update_attempts.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    attempt(*w);
    ++ran;
  }
  return ran;
}

void UpdateSupervisor::start() {
  std::lock_guard<std::mutex> lock(run_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    while (true) {
      pump();
      std::unique_lock<std::mutex> lk(run_mutex_);
      if (run_cv_.wait_for(lk, options_.poll_period,
                           [this] { return stop_requested_; })) {
        return;
      }
    }
  });
}

void UpdateSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(run_mutex_);
  running_ = false;
}

bool UpdateSupervisor::running() const {
  std::lock_guard<std::mutex> lock(run_mutex_);
  return running_;
}

}  // namespace iup::ingest
