// Deterministic, seeded fault injection for the update pipeline.
//
// The chaos soak (bench_serve_soak --chaos) and the robustness tests need
// to make the pipeline fail on demand — solver outages, corrupt readings,
// publishes that stall, solves that blow their deadline — without
// touching production code paths.  FaultInjector is that control panel:
// each FaultKind is armed with a schedule over that kind's own attempt
// counter (deterministic — no clocks, no real randomness beyond the
// seed), and the injector's engine_hooks() compiles the armed state into
// the api::UpdateHooks seams the Engine consults.  Everything is
// runtime-re-armable: the soak arms faults mid-run, lets sites degrade,
// then clear()s and asserts every site recovers.
//
// Thread-safe: schedules sit behind a mutex (cold path), the delay /
// deadline knobs are relaxed atomics read by the hooks.
#pragma once

#include <chrono>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "api/engine_config.hpp"
#include "ingest/observation.hpp"
#include "rng/rng.hpp"

namespace iup::ingest {

enum class FaultKind : std::uint32_t {
  kSolverFailure = 0,       ///< on_solve returns kUnavailable
  kCorruptObservation = 1,  ///< corrupt() mangles a reading (sampled by
                            ///< the producer via fire())
  kDelayPublish = 2,        ///< before_publish sleeps publish_delay
  kSlowSolve = 3,           ///< on_solve sleeps solve_delay (then the
                            ///< deadline trips at before_publish)
};

/// When an armed fault fires, over the kind's own 0-based attempt
/// counter n (each fire() consultation advances it while armed):
/// fires when n >= start, (n - start) % every == 0, and fewer than
/// `count` firings have happened (count == 0 means unlimited).
struct FaultSchedule {
  std::uint64_t start = 0;
  std::uint64_t count = 0;
  std::uint64_t every = 1;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xfa0175eedULL);

  /// Arm `kind` with `schedule` (re-arming resets that kind's counters).
  void arm(FaultKind kind, FaultSchedule schedule = {});

  /// Disarm one kind / every kind ("faults clear").  Attempt counters
  /// freeze; fired totals remain readable.
  void clear(FaultKind kind);
  void clear();

  /// Consult `kind`: advances its attempt counter iff armed, returns
  /// whether the schedule says this attempt faults.  Always false (and
  /// counter-neutral) while disarmed — a cleared injector is free.
  bool fire(FaultKind kind);

  /// Times one kind has fired since it was last armed.
  std::uint64_t fired(FaultKind kind) const;

  /// Deterministically mangle a reading into one of the quarantine
  /// classes (NaN, +Inf, out-of-range, unknown link) — which one is a
  /// seeded draw, so a given seed yields a reproducible corruption
  /// sequence.  Callers gate on fire(kCorruptObservation).
  void corrupt(Observation& observation);

  // --- runtime knobs read by the hooks (relaxed atomics) ---------------
  void set_solve_delay(std::chrono::nanoseconds delay);
  void set_publish_delay(std::chrono::nanoseconds delay);
  /// Cooperative update deadline enforced at before_publish; zero (the
  /// default) disables enforcement.
  void set_deadline(std::chrono::nanoseconds deadline);
  std::chrono::nanoseconds deadline() const;

  /// Compile this injector into the Engine's failure-path seams.  The
  /// returned hooks hold a pointer to *this (the injector must outlive
  /// the engine):
  ///   on_solve: a kSlowSolve firing sleeps solve_delay and lets the
  ///     solve proceed (so the *deadline* trips, not the solver); else a
  ///     kSolverFailure firing returns kUnavailable.
  ///   before_publish: a kDelayPublish firing sleeps publish_delay;
  ///     then, with a deadline set, an over-budget elapsed returns
  ///     kDeadlineExceeded — the Engine aborts the commit and the site
  ///     keeps serving its last-good bundle.
  api::UpdateHooks engine_hooks();

 private:
  struct KindState {
    bool armed = false;
    FaultSchedule schedule;
    std::uint64_t attempts = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, KindState> kinds_;
  rng::Rng rng_;
  std::atomic<std::int64_t> solve_delay_ns_{0};
  std::atomic<std::int64_t> publish_delay_ns_{0};
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace iup::ingest
